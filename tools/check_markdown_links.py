"""Check relative markdown links in the repository's documentation.

Scans README.md, DESIGN.md, EXPERIMENTS.md and docs/*.md for inline
markdown links (``[text](target)``) and verifies that every *relative*
target resolves to an existing file, directory, or — for ``#fragment``
links — a heading in the target document.  External links (http/https/
mailto) are not fetched: CI must not depend on the network.

Usage::

    python tools/check_markdown_links.py          # exit 1 on broken links
    python tools/check_markdown_links.py -v       # also list checked files

No third-party dependencies.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DEFAULT_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md")
DEFAULT_GLOBS = ("docs/*.md",)

# Inline links only; reference-style links are not used in this repo.
# Skips images' leading "!", tolerates titles: [t](path "title").
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
_CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = re.sub(r"[`*_]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    """All heading anchors of a markdown file (code fences excluded)."""
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING_RE.match(line)
        if m:
            anchors.add(_slugify(m.group(1)))
    return anchors


def _iter_links(path: Path):
    """Yield ``(lineno, target)`` for every inline link outside code fences."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in _LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    """Problems found in one markdown file (empty when clean)."""
    problems: list[str] = []
    for lineno, target in _iter_links(path):
        if target.startswith(_EXTERNAL):
            continue
        target, _, fragment = target.partition("#")
        if not target:  # pure in-page fragment
            dest = path
        else:
            dest = (path.parent / target).resolve()
            if not dest.exists():
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: broken link -> {target}"
                )
                continue
        if fragment and dest.suffix == ".md" and dest.is_file():
            if dest not in anchor_cache:
                anchor_cache[dest] = _anchors(dest)
            if fragment.lower() not in anchor_cache[dest]:
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: "
                    f"missing anchor -> {target}#{fragment}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: check the default documentation set."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-v", "--verbose", action="store_true")
    parser.add_argument(
        "files", nargs="*", help="markdown files to check (default: docs set)"
    )
    args = parser.parse_args(argv)

    if args.files:
        files = [Path(f).resolve() for f in args.files]
    else:
        files = [REPO / f for f in DEFAULT_FILES if (REPO / f).is_file()]
        for pattern in DEFAULT_GLOBS:
            files.extend(sorted(REPO.glob(pattern)))

    anchor_cache: dict[Path, set[str]] = {}
    problems: list[str] = []
    for path in files:
        if args.verbose:
            print(f"checking {path.relative_to(REPO)}")
        problems.extend(check_file(path, anchor_cache))

    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"{len(files)} files checked, all links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
