#!/usr/bin/env python3
"""Double hashing beyond balls-and-bins: Bloom, cuckoo, open addressing.

The paper's conclusion suggests double hashing should match fully random
hashing in other multi-hash structures.  This example runs the three
neighbouring structures implemented in repro.extensions and reports the
observable each one cares about, double-hashed vs fully random.

Run:  python examples/double_hashing_everywhere.py
"""

from __future__ import annotations

import numpy as np

from repro.errors import TableFullError
from repro.extensions import (
    BloomFilter,
    CuckooTable,
    OpenAddressTable,
    expected_unsuccessful_probes,
    theoretical_fpr,
)


def bloom_demo() -> None:
    m, k, n_items = 2**16, 5, 8000
    rng = np.random.default_rng(42)
    keys = rng.integers(0, 2**60, n_items)
    fresh = rng.integers(2**60, 2**61, 20000)
    print(f"Bloom filter: m = {m} bits, k = {k}, {n_items} items")
    for mode in ("random", "double"):
        bf = BloomFilter(m, k, mode=mode, seed=1)
        bf.add(keys)
        print(f"  {mode:>6}: false-positive rate {bf.empirical_fpr(fresh):.5f}")
    print(f"  theory: {theoretical_fpr(m, k, n_items):.5f} "
          "(Kirsch-Mitzenmacher: both modes converge to this)\n")


def cuckoo_demo() -> None:
    n, d, target = 2**13, 3, 0.88
    print(f"Cuckoo hashing: {n} buckets, d = {d}, filling to load {target}")
    for mode in ("random", "double"):
        table = CuckooTable(n, d, mode=mode, seed=2, max_kicks=2000)
        try:
            table.fill_to(target)
        except TableFullError:
            pass
        kicks = np.array(table.stats.per_insert)
        print(f"  {mode:>6}: load {table.load_factor:.3f}, "
              f"mean evictions/insert {kicks.mean():.3f}, "
              f"max chain {table.stats.max_displacements}")
    print("  (the follow-up paper [30] found the same: no visible gap)\n")


def open_addressing_demo() -> None:
    n, alpha = 2**13, 0.8
    print(f"Open addressing: n = {n}, load alpha = {alpha}")
    for probe in ("random", "double", "linear"):
        table = OpenAddressTable(n, probe=probe, seed=3)
        key = 0
        while table.load_factor < alpha:
            table.insert(key)
            key += 1
        cost = table.mean_unsuccessful_cost(3000, rng=4)
        print(f"  {probe:>6}: mean unsuccessful-search probes {cost:.3f}")
    print(f"  1/(1-alpha) law: {expected_unsuccessful_probes(alpha):.3f} "
          "(double matches random probing; linear is asymptotically worse)")


def main() -> None:
    bloom_demo()
    cuckoo_demo()
    open_addressing_demo()


if __name__ == "__main__":
    main()
