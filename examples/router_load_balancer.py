#!/usr/bin/env python3
"""Router-style load balancing: the supermarket model with double hashing.

The paper's motivation: multiple-choice hashing is used in hardware (e.g.
routers), where generating d independent hash values per packet is costly
but double hashing needs only two.  This example simulates a bank of
server queues fed by a Poisson packet stream: each packet samples d queues
and joins the shortest.  It reports mean time-in-system for both schemes
against the fluid-limit equilibrium — the paper's Table 8 experiment.

Run:  python examples/router_load_balancer.py [--queues 1024] [--lam 0.9]
"""

from __future__ import annotations

import argparse

from repro import DoubleHashingChoices, FullyRandomChoices
from repro.fluid import equilibrium_mean_sojourn_time, solve_supermarket
from repro.queueing import simulate_supermarket


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queues", type=int, default=512)
    parser.add_argument("--lam", type=float, default=0.9,
                        help="arrival rate per queue (must be < 1)")
    parser.add_argument("--d", type=int, default=3)
    parser.add_argument("--time", type=float, default=500.0)
    parser.add_argument("--burn-in", type=float, default=100.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--backend", choices=["numpy", "numba"], default=None,
                        help="placement-kernel backend "
                             "(default: REPRO_BACKEND, then auto)")
    args = parser.parse_args()

    print(f"{args.queues} queues, lambda = {args.lam}, d = {args.d}, "
          f"horizon {args.time}s (burn-in {args.burn_in}s)\n")

    for label, scheme in (
        ("fully random ", FullyRandomChoices(args.queues, args.d)),
        ("double hashing", DoubleHashingChoices(args.queues, args.d)),
    ):
        result = simulate_supermarket(
            scheme, args.lam, args.time,
            burn_in=args.burn_in, seed=args.seed, backend=args.backend,
        )
        print(f"{label}: mean sojourn {result.mean_sojourn_time:.4f}  "
              f"({result.completed_jobs} jobs, "
              f"mean queue length {result.mean_queue_length:.3f})")

    eq = equilibrium_mean_sojourn_time(args.lam, args.d)
    one_choice = 1.0 / (1.0 - args.lam)  # M/M/1 mean sojourn
    print(f"\nfluid-limit equilibrium:   {eq:.4f}")
    print(f"one-choice (M/M/1) would be: {one_choice:.4f}  "
          f"({one_choice / eq:.1f}x worse)")

    transient = solve_supermarket(args.lam, args.d, args.time)
    print(f"transient fluid mean at t={args.time:.0f}: "
          f"{transient.mean_sojourn_time:.4f}")


if __name__ == "__main__":
    main()
