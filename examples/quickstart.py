#!/usr/bin/env python3
"""Quickstart: is double hashing distinguishable from fully random hashing?

Reproduces the paper's headline experiment (Table 1) at laptop scale: throw
n balls into n bins with d choices, once with d fully random choices and
once with double hashing, and compare the resulting load distributions
against each other and against the fluid-limit prediction.

Run:  python examples/quickstart.py [--n 16384] [--d 3] [--trials 200]
"""

from __future__ import annotations

import argparse

from repro import (
    DoubleHashingChoices,
    ExperimentSpec,
    FullyRandomChoices,
    run_experiment,
)
from repro.analysis import compare_distributions
from repro.fluid import solve_balls_bins


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=2**14, help="balls and bins")
    parser.add_argument("--d", type=int, default=3, help="choices per ball")
    parser.add_argument("--trials", type=int, default=200)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()

    print(f"Throwing {args.n} balls into {args.n} bins, d = {args.d}, "
          f"{args.trials} trials per scheme\n")

    spec = ExperimentSpec(
        n=args.n, d=args.d, trials=args.trials, seed=args.seed,
        workers=args.workers,
    )
    random_res = run_experiment(FullyRandomChoices(spec.n, spec.d), spec)
    double_res = run_experiment(
        DoubleHashingChoices(spec.n, spec.d), spec.replace(seed=args.seed + 1)
    )
    fluid = solve_balls_bins(args.d, 1.0)

    print(f"{'Load':>4}  {'Fully Random':>13}  {'Double Hashing':>14}  "
          f"{'Fluid Limit':>11}")
    width = max(len(random_res.distribution.counts),
                len(double_res.distribution.counts))
    for load in range(width):
        print(f"{load:>4}  "
              f"{random_res.distribution.fraction_at(load):>13.5f}  "
              f"{double_res.distribution.fraction_at(load):>14.5f}  "
              f"{fluid.fraction_at(load):>11.5f}")

    report = compare_distributions(
        random_res.distribution, double_res.distribution
    )
    print(f"\nmax load: random = {random_res.distribution.max_load}, "
          f"double = {double_res.distribution.max_load}")
    print(f"total-variation distance: {report.tv_distance:.6f}")
    print(f"chi-square p-value:       {report.p_value:.3f}")
    print(f"largest deviation:        {report.max_deviation:.6f} "
          f"({report.max_deviation_sigmas:.2f} sampling sigmas)")
    verdict = "indistinguishable" if report.indistinguishable else "DIFFERENT"
    print(f"verdict at these sample sizes: {verdict}")


if __name__ == "__main__":
    main()
