#!/usr/bin/env python3
"""Vöcking's d-left scheme with double hashing (paper Table 7).

d-left hashing is the multiple-choice layout used in hardware hash tables:
d subtables probed in parallel, ties broken left, giving near-perfect
occupancy with O(1) worst-case lookups.  This example shows the load
distribution under fully random vs double-hashed subtable choices, against
the d-left fluid limit — and contrasts both with the *standard* (symmetric)
d-choice scheme to show why the asymmetric variant is preferred.

Run:  python examples/dleft_hash_table.py [--n 16384] [--d 4]
"""

from __future__ import annotations

import argparse

from repro import DoubleHashingChoices, simulate_batch, simulate_dleft
from repro.core.dleft import make_dleft_scheme
from repro.fluid import solve_balls_bins, solve_dleft


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=2**14)
    parser.add_argument("--d", type=int, default=4)
    parser.add_argument("--trials", type=int, default=100)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--backend", choices=["numpy", "numba"], default=None,
                        help="placement-kernel backend "
                             "(default: REPRO_BACKEND, then auto)")
    parser.add_argument("--block", type=int, default=None,
                        help="ball-steps per kernel superblock "
                             "(default: sweep-derived)")
    args = parser.parse_args()
    kernel_kwargs = {"backend": args.backend}
    if args.block is not None:
        kernel_kwargs["block"] = args.block

    print(f"d-left: {args.n} bins in {args.d} subtables of "
          f"{args.n // args.d}, {args.n} balls, {args.trials} trials\n")

    random_dist = simulate_dleft(
        make_dleft_scheme(args.n, args.d, "random"),
        args.n, args.trials, seed=args.seed, **kernel_kwargs,
    ).distribution()
    double_dist = simulate_dleft(
        make_dleft_scheme(args.n, args.d, "double"),
        args.n, args.trials, seed=args.seed + 1, **kernel_kwargs,
    ).distribution()
    fluid = solve_dleft(args.d, 1.0)

    print(f"{'Load':>4}  {'Fully Random':>13}  {'Double Hashing':>14}  "
          f"{'Fluid Limit':>11}")
    width = max(len(random_dist.counts), len(double_dist.counts))
    for load in range(width):
        print(f"{load:>4}  {random_dist.fraction_at(load):>13.5f}  "
              f"{double_dist.fraction_at(load):>14.5f}  "
              f"{fluid.fraction_at(load):>11.5f}")

    # Contrast: the symmetric d-choice scheme on the same geometry.
    standard = simulate_batch(
        DoubleHashingChoices(args.n, args.d), args.n, args.trials,
        seed=args.seed + 2, **kernel_kwargs,
    ).distribution()
    sym_fluid = solve_balls_bins(args.d, 1.0)
    print(f"\nfraction of bins with load >= 2 "
          f"(lower is better for a hash table):")
    print(f"  d-left + double hashing:   {double_dist.tail_at(2):.5f}")
    print(f"  standard + double hashing: {standard.tail_at(2):.5f}")
    print(f"  (fluid limits: {fluid.tails[2]:.5f} vs "
          f"{sym_fluid.tail_at(2):.5f} — asymmetry helps)")
    print(f"max loads: d-left random {random_dist.max_load}, "
          f"d-left double {double_dist.max_load}, "
          f"standard double {standard.max_load}")


if __name__ == "__main__":
    main()
