#!/usr/bin/env python3
"""Peeling / erasure-decoding with double hashing — the paper's frontier.

The paper's conclusion asks whether double hashing can replace full
randomness in structures analysed by fluid limits, naming LDPC-style
codes.  This example runs the peeling experiment from the follow-up work
([30]) and shows the nuanced answer this library's experiments surface:

- the *macroscopic* behaviour (threshold, core size) is identical,
- but *complete* recovery fails at a constant rate under double hashing,
  because duplicate hyperedges (probability Theta(1/n^2) per pair, times
  Theta(n^2) pairs) form tiny unpeelable 2-cores.

Run:  python examples/peeling_codes.py
"""

from __future__ import annotations

import numpy as np

from repro.peeling import (
    core_edge_fraction,
    peeling_threshold,
    threshold_experiment,
)


def main() -> None:
    d = 3
    print(f"Density-evolution peeling threshold for d = {d}: "
          f"c* = {peeling_threshold(d):.5f}\n")

    densities = [0.70, 0.76, 0.80, 0.84, 0.88, 0.95]
    exp = threshold_experiment(4096, d, densities, trials=10, seed=42)

    print("density | P(complete)        | mean core fraction | DE core")
    print("        | random   double    | random   double    |")
    print("-" * 66)
    for i, c in enumerate(densities):
        print(f"  {c:.2f}  | {exp.success_random[i]:>6.2f}   "
              f"{exp.success_double[i]:>6.2f}    "
              f"| {exp.core_fraction_random[i]:>7.4f}  "
              f"{exp.core_fraction_double[i]:>7.4f}   "
              f"| {core_edge_fraction(c, d):.4f}")

    print("""
Reading the table:
- The *core fraction* columns agree between schemes and match density
  evolution — the fluid-limit equivalence extends to peeling.
- The *complete recovery* column shows double hashing failing well below
  threshold.  Those failures are duplicate hyperedges (two items drawing
  the same (f, g) progression), each a 2-core of 2 edges: a constant-
  probability event the paper's footnote 1 anticipates.
- Engineering consequence: an IBLT or erasure code using double hashing
  must deduplicate colliding key signatures or tolerate O(1) residue.
""")


if __name__ == "__main__":
    main()
