#!/usr/bin/env python3
"""Explore the fluid-limit ODEs behind the paper's Theorem 8.

Solves the d-choice system dx_i/dt = x_{i-1}^d − x_i^d for several d,
shows the doubly-exponential tail decay that drives the log log n maximum
load, runs the heavy-load regime of Table 6, and checks simulation
convergence toward the limit as n grows.

Run:  python examples/fluid_limit_explorer.py
"""

from __future__ import annotations

from repro import DoubleHashingChoices, simulate_batch
from repro.fluid import solve_balls_bins, solve_heavy_load


def main() -> None:
    print("Tail fractions x_i(1) (fraction of bins with load >= i):\n")
    print(f"{'i':>3}  " + "  ".join(f"{'d=' + str(d):>12}" for d in (1, 2, 3, 4)))
    limits = {d: solve_balls_bins(d, 1.0, max_load=8) for d in (1, 2, 3, 4)}
    for i in range(1, 7):
        cells = "  ".join(f"{limits[d].tail_at(i):>12.3e}" for d in (1, 2, 3, 4))
        print(f"{i:>3}  {cells}")
    print("\nNote the doubly-exponential decay for d >= 2 — one extra load"
          "\nlevel squares (cubes, ...) the tail, which is the fluid-limit"
          "\nview of the log log n / log d maximum load.\n")

    print("Heavy-load regime (Table 6): T = 16 balls per bin, d = 3:")
    heavy = solve_heavy_load(3, 16.0)
    for load in range(12, 20):
        print(f"  load {load}: {heavy.fraction_at(load):.5f}")
    print(f"  mean load: {heavy.mean_load:.6f} (exactly T by conservation)\n")

    print("Convergence of double hashing to the fluid limit as n grows")
    print("(fraction of bins with load exactly 2, d = 3; limit "
          f"{limits[3].fraction_at(2):.5f}):")
    for log2_n in (8, 10, 12, 14):
        n = 2**log2_n
        dist = simulate_batch(
            DoubleHashingChoices(n, 3), n, trials=200, seed=log2_n
        ).distribution()
        gap = abs(dist.fraction_at(2) - limits[3].fraction_at(2))
        print(f"  n = 2^{log2_n:<2}: {dist.fraction_at(2):.5f} "
              f"(gap {gap:.5f})")


if __name__ == "__main__":
    main()
