#!/usr/bin/env python3
"""The scheme zoo: every allocation strategy in the library, side by side.

One table summarizing what reduced randomness does and does not change:
one-choice, (1+beta)-choice, Kenthapadi-Panigrahy blocks, fully random,
double hashing, and d-left — plus the heavily-loaded "gap" probe of the
paper's open question (does the gap max - m/n stay flat in m under double
hashing, as Berenbrink et al. proved for full randomness?).

Run:  python examples/scheme_zoo.py
"""

from __future__ import annotations

from repro.experiments.extra import gap_experiment, scheme_zoo_experiment


def main() -> None:
    n = 2**12
    print(f"Scheme zoo: {n} balls into {n} bins (d = 4 where applicable)\n")
    zoo = scheme_zoo_experiment(n, trials=40, d=4, seed=1)
    print(f"{'scheme':<20} {'empty bins':>10} {'load >= 2':>10} "
          f"{'mean max':>9}")
    print("-" * 53)
    for name, stats in zoo.items():
        print(f"{name:<20} {stats['empty']:>10.5f} {stats['tail2']:>10.5f} "
              f"{stats['max_load']:>9.2f}")

    print("""
Notes:
- one-choice: e^-1 = 0.368 empty bins, max load ~ log n / log log n;
- (1+beta): halfway house — a fraction of two-choice balls already helps;
- kp-blocks: 2 random values, O(log log n) max load, but a *different*
  distribution (correlated in-block bins -> more empty bins);
- double hashing: 2 random values and *identical* distribution to fully
  random — the paper's result, and why it is the interesting scheme;
- d-left: better constant via asymmetry (Vöcking).
""")

    print("Open-question probe: gap = (max load - m/n) as m grows, d = 3")
    exp = gap_experiment(2**11, 3, balls_per_bin=(1, 4, 16, 64), trials=15,
                         seed=2)
    print(f"{'balls/bin':>9} {'gap random':>11} {'gap double':>11}")
    for c, gr, gd in zip(exp.balls_per_bin, exp.gap_random, exp.gap_double):
        print(f"{c:>9} {gr:>11.2f} {gd:>11.2f}")
    print("""
Berenbrink et al. proved the fully-random gap is independent of m; the
paper notes the double-hashing case is open.  Empirically the two columns
track each other — evidence the equivalence extends to the heavily loaded
regime.""")


if __name__ == "__main__":
    main()
