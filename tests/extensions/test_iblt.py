"""Tests for the invertible Bloom lookup table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.extensions.iblt import IBLT
from repro.peeling import peeling_threshold


class TestBasics:
    @pytest.mark.parametrize("mode", ["double", "random"])
    def test_insert_get(self, mode):
        t = IBLT(256, 3, mode=mode, seed=1)
        t.insert(42, 100)
        t.insert(77, 200)
        assert t.get(42) == 100
        assert t.get(77) == 200

    def test_absent_key_none(self):
        t = IBLT(256, 3, seed=2)
        t.insert(1, 10)
        assert t.get(999999) is None

    def test_insert_delete_empties(self):
        t = IBLT(128, 3, seed=3)
        t.insert(5, 50)
        t.insert(6, 60)
        t.delete(5, 50)
        t.delete(6, 60)
        assert t.is_empty

    def test_delete_before_insert_cancels(self):
        """Set-difference usage: operations commute."""
        t = IBLT(128, 3, seed=4)
        t.delete(9, 90)
        t.insert(9, 90)
        assert t.is_empty

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IBLT(1, 3)
        with pytest.raises(ConfigurationError):
            IBLT(64, 1)
        with pytest.raises(ConfigurationError):
            IBLT(2, 4)
        with pytest.raises(ConfigurationError):
            IBLT(64, 3, mode="zigzag")

    def test_double_mode_cells_distinct(self):
        t = IBLT(256, 4, mode="double", seed=5)
        for key in range(100):
            assert len(set(t.cells(key).tolist())) == 4


class TestListing:
    @pytest.mark.parametrize("mode", ["double", "random"])
    def test_lists_all_below_threshold(self, mode):
        """Well below the d = 3 peeling threshold, listing recovers
        everything."""
        m = 512
        t = IBLT(m, 3, mode=mode, seed=6)
        inserted = {k: k * 7 for k in range(1000, 1000 + m // 2)}
        for k, v in inserted.items():
            t.insert(k, v)
        result = t.list_entries()
        assert result.complete
        assert dict(result.entries) == inserted
        assert t.is_empty

    def test_listing_fails_above_threshold(self):
        """Above c* ~ 0.818 keys per cell, a macroscopic core remains."""
        m = 1024
        c = peeling_threshold(3) + 0.1
        t = IBLT(m, 3, mode="random", seed=7)
        n_keys = int(c * m)
        for k in range(n_keys):
            t.insert(k + 5, k)
        result = t.list_entries()
        assert not result.complete
        assert result.residue_cells > 0
        assert len(result.entries) < n_keys

    def test_net_deleted_entries_listed(self):
        """A net-deleted entry appears during listing (count −1 cells)."""
        t = IBLT(128, 3, seed=8)
        t.delete(31, 310)
        result = t.list_entries()
        assert result.complete
        assert (31, 310) in result.entries

    def test_set_difference_recovery(self):
        """Insert set A, delete set B: listing recovers A Δ B."""
        t = IBLT(512, 3, seed=9)
        a = {k: k * 3 for k in range(100, 160)}
        b = {k: k * 3 for k in range(140, 200)}
        for k, v in a.items():
            t.insert(k, v)
        for k, v in b.items():
            t.delete(k, v)
        result = t.list_entries()
        assert result.complete
        recovered = {k for k, _ in result.entries}
        assert recovered == set(a) ^ set(b)

    def test_listing_is_destructive(self):
        t = IBLT(128, 3, seed=10)
        t.insert(4, 44)
        t.list_entries()
        assert t.is_empty
        assert t.get(4) is None


class TestLoadEstimate:
    def test_load_tracks_entries(self):
        t = IBLT(100, 4, mode="random", seed=11)
        for k in range(25):
            t.insert(k, k)
        # 25 entries over 100 cells; duplicated cells within a key can
        # reduce the count mass slightly in random mode.
        assert t.load == pytest.approx(0.25, abs=0.02)


def _same_cellset_pair(table: IBLT, limit: int = 50000) -> tuple[int, int]:
    """Two keys whose d cells coincide exactly (double-mode collision)."""
    keys = np.arange(limit, dtype=np.int64)
    rows = np.sort(table.cells_batch(keys), axis=1)
    _, first, inverse, counts = np.unique(
        rows, axis=0, return_index=True, return_inverse=True,
        return_counts=True,
    )
    dup = np.flatnonzero(counts > 1)
    if dup.size == 0:  # pragma: no cover - seed chosen so this never trips
        pytest.skip("no duplicate cell-set pair in search range")
    members = np.flatnonzero(inverse == dup[0])
    return int(keys[members[0]]), int(keys[members[1]])


class TestResidueRegression:
    def test_cancelled_count_cell_is_counted(self):
        """Regression: residue must count cells with count 0 but keySum ≠ 0.

        Insert one key and delete another with the *same* cell set: every
        touched cell ends at count 0 with key_sum = k1 XOR k2 ≠ 0.  The
        short-circuiting scalar residue check this replaces reported 0
        here, hiding a stuck (and provably nonempty) table.
        """
        t = IBLT(64, 3, mode="double", seed=12)
        k1, k2 = _same_cellset_pair(t)
        t.insert(k1, 10)
        t.delete(k2, 20)
        assert np.count_nonzero(t.count) == 0
        assert not t.is_empty
        result = t.list_entries()
        assert not result.complete
        assert result.entries == []
        assert result.residue_cells == 3
        assert result.residue_cells == int(
            np.count_nonzero((t.count != 0) | (t.key_sum != 0))
        )

    def test_batched_lister_reports_same_residue(self):
        t1 = IBLT(64, 3, mode="double", seed=12)
        t2 = IBLT(64, 3, mode="double", seed=12)
        k1, k2 = _same_cellset_pair(t1)
        for t in (t1, t2):
            t.insert(k1, 10)
            t.delete(k2, 20)
        scalar = t1.list_entries()
        batched = t2.list_entries_batched()
        assert not batched.complete
        assert batched.residue_cells == scalar.residue_cells == 3


class TestBatchedAPI:
    @pytest.mark.parametrize("mode", ["double", "random"])
    def test_insert_many_matches_scalar_loop(self, mode):
        keys = np.arange(3000, 3200, dtype=np.int64)
        values = keys * 5
        batched = IBLT(512, 3, mode=mode, seed=13)
        scalar = IBLT(512, 3, mode=mode, seed=13)
        batched.insert_many(keys, values)
        for k, v in zip(keys, values):
            scalar.insert(int(k), int(v))
        assert np.array_equal(batched.count, scalar.count)
        assert np.array_equal(batched.key_sum, scalar.key_sum)
        assert np.array_equal(batched.check_sum, scalar.check_sum)
        assert np.array_equal(batched.value_sum, scalar.value_sum)

    @pytest.mark.parametrize("mode", ["double", "random"])
    def test_batched_listing_matches_scalar(self, mode):
        keys = np.arange(9000, 9150, dtype=np.int64)
        values = keys * 11
        t_scalar = IBLT(512, 3, mode=mode, seed=14)
        t_batched = IBLT(512, 3, mode=mode, seed=14)
        t_scalar.insert_many(keys, values)
        t_batched.insert_many(keys, values)
        scalar = t_scalar.list_entries()
        batched = t_batched.list_entries_batched()
        assert batched.complete == scalar.complete
        assert sorted(batched.entries) == sorted(scalar.entries)
        assert batched.residue_cells == scalar.residue_cells

    def test_batched_set_difference_with_negative_counts(self):
        """Subtract two tables; peel the delta with sign recovery."""
        shared = np.arange(10**4, dtype=np.int64) * 3 + 7
        a_only = np.array([10**6 + 1, 10**6 + 2], dtype=np.int64)
        b_only = np.array([2 * 10**6 + 5], dtype=np.int64)
        ta = IBLT(128, 3, seed=15)
        tb = IBLT(128, 3, seed=15)
        ta.insert_many(np.concatenate([shared, a_only]),
                       np.concatenate([shared, a_only]) * 2)
        tb.insert_many(np.concatenate([shared, b_only]),
                       np.concatenate([shared, b_only]) * 2)
        diff = ta.subtract(tb)
        assert not ta.is_empty and not tb.is_empty  # inputs untouched
        listing = diff.list_entries_batched()
        assert listing.complete
        assert sorted(listing.keys[listing.signs > 0]) == sorted(a_only)
        assert sorted(listing.keys[listing.signs < 0]) == sorted(b_only)
        assert np.array_equal(listing.values[listing.signs > 0],
                              np.sort(a_only) * 2)

    def test_subtract_requires_matching_fingerprint(self):
        ta = IBLT(128, 3, seed=16)
        tb = IBLT(128, 3, seed=17)
        with pytest.raises(ConfigurationError):
            ta.subtract(tb)

    def test_batch_validation(self):
        t = IBLT(64, 3, seed=18, key_bits=16, capacity=10)
        with pytest.raises(ConfigurationError):
            t.insert_many(np.array([1 << 20]), np.array([1]))  # key too wide
        with pytest.raises(ConfigurationError):
            t.insert_many(np.array([1]), np.array([-1]))  # negative value
        with pytest.raises(ConfigurationError):
            t.insert_many(np.array([1, 2]), np.array([1]))  # length mismatch
        with pytest.raises(ConfigurationError):
            t.insert_many(np.arange(11), np.arange(11))  # over capacity


class TestWidthNegotiation:
    def test_small_capacity_gets_int32_counts(self):
        t = IBLT(64, 3, seed=19, capacity=1000)
        assert t.count.dtype == np.int32

    def test_huge_capacity_gets_int64_counts(self):
        t = IBLT(64, 3, seed=20, capacity=(1 << 40))
        assert t.count.dtype == np.int64

    def test_overwide_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            IBLT(64, 3, seed=21, key_bits=64)
