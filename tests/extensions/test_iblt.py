"""Tests for the invertible Bloom lookup table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.extensions.iblt import IBLT
from repro.peeling import peeling_threshold


class TestBasics:
    @pytest.mark.parametrize("mode", ["double", "random"])
    def test_insert_get(self, mode):
        t = IBLT(256, 3, mode=mode, seed=1)
        t.insert(42, 100)
        t.insert(77, 200)
        assert t.get(42) == 100
        assert t.get(77) == 200

    def test_absent_key_none(self):
        t = IBLT(256, 3, seed=2)
        t.insert(1, 10)
        assert t.get(999999) is None

    def test_insert_delete_empties(self):
        t = IBLT(128, 3, seed=3)
        t.insert(5, 50)
        t.insert(6, 60)
        t.delete(5, 50)
        t.delete(6, 60)
        assert t.is_empty

    def test_delete_before_insert_cancels(self):
        """Set-difference usage: operations commute."""
        t = IBLT(128, 3, seed=4)
        t.delete(9, 90)
        t.insert(9, 90)
        assert t.is_empty

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IBLT(1, 3)
        with pytest.raises(ConfigurationError):
            IBLT(64, 1)
        with pytest.raises(ConfigurationError):
            IBLT(2, 4)
        with pytest.raises(ConfigurationError):
            IBLT(64, 3, mode="zigzag")

    def test_double_mode_cells_distinct(self):
        t = IBLT(256, 4, mode="double", seed=5)
        for key in range(100):
            assert len(set(t.cells(key).tolist())) == 4


class TestListing:
    @pytest.mark.parametrize("mode", ["double", "random"])
    def test_lists_all_below_threshold(self, mode):
        """Well below the d = 3 peeling threshold, listing recovers
        everything."""
        m = 512
        t = IBLT(m, 3, mode=mode, seed=6)
        inserted = {k: k * 7 for k in range(1000, 1000 + m // 2)}
        for k, v in inserted.items():
            t.insert(k, v)
        result = t.list_entries()
        assert result.complete
        assert dict(result.entries) == inserted
        assert t.is_empty

    def test_listing_fails_above_threshold(self):
        """Above c* ~ 0.818 keys per cell, a macroscopic core remains."""
        m = 1024
        c = peeling_threshold(3) + 0.1
        t = IBLT(m, 3, mode="random", seed=7)
        n_keys = int(c * m)
        for k in range(n_keys):
            t.insert(k + 5, k)
        result = t.list_entries()
        assert not result.complete
        assert result.residue_cells > 0
        assert len(result.entries) < n_keys

    def test_net_deleted_entries_listed(self):
        """A net-deleted entry appears during listing (count −1 cells)."""
        t = IBLT(128, 3, seed=8)
        t.delete(31, 310)
        result = t.list_entries()
        assert result.complete
        assert (31, 310) in result.entries

    def test_set_difference_recovery(self):
        """Insert set A, delete set B: listing recovers A Δ B."""
        t = IBLT(512, 3, seed=9)
        a = {k: k * 3 for k in range(100, 160)}
        b = {k: k * 3 for k in range(140, 200)}
        for k, v in a.items():
            t.insert(k, v)
        for k, v in b.items():
            t.delete(k, v)
        result = t.list_entries()
        assert result.complete
        recovered = {k for k, _ in result.entries}
        assert recovered == set(a) ^ set(b)

    def test_listing_is_destructive(self):
        t = IBLT(128, 3, seed=10)
        t.insert(4, 44)
        t.list_entries()
        assert t.is_empty
        assert t.get(4) is None


class TestLoadEstimate:
    def test_load_tracks_entries(self):
        t = IBLT(100, 4, mode="random", seed=11)
        for k in range(25):
            t.insert(k, k)
        # 25 entries over 100 cells; duplicated cells within a key can
        # reduce the count mass slightly in random mode.
        assert t.load == pytest.approx(0.25, abs=0.02)
