"""Tests for the enhanced-double-hashing Bloom filter mode."""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions import BloomFilter, theoretical_fpr


class TestEnhancedMode:
    def test_no_false_negatives(self, rng):
        bf = BloomFilter(4096, 5, mode="enhanced", seed=1)
        keys = rng.integers(0, 2**60, 400)
        bf.add(keys)
        assert bool(np.all(bf.contains(keys)))

    def test_cubic_offset_structure(self):
        """Indices are h1 + i*h2 + (i^3 - i)/6, not a plain progression."""
        bf = BloomFilter(2**12, 5, mode="enhanced", seed=2)
        plain = BloomFilter(2**12, 5, mode="double", seed=2)
        key = np.array([123456789])
        idx_e = bf._indices(key)[0]
        idx_d = plain._indices(key)[0]
        # Same hash tables (same seed), so the difference is the cubic term.
        ks = np.arange(5)
        assert np.array_equal(
            (idx_e - idx_d) % 2**12, ((ks**3 - ks) // 6) % 2**12
        )

    def test_fpr_matches_theory_and_other_modes(self, rng):
        m, k, n_items = 2**14, 5, 2000
        keys = rng.integers(0, 2**59, n_items)
        fresh = rng.integers(2**59, 2**60, 20000)
        fprs = {}
        for mode in ("double", "enhanced", "random"):
            bf = BloomFilter(m, k, mode=mode, seed=3)
            bf.add(keys)
            fprs[mode] = bf.empirical_fpr(fresh)
        theory = theoretical_fpr(m, k, n_items)
        for mode, fpr in fprs.items():
            assert fpr == pytest.approx(theory, rel=0.35), mode

    def test_breaks_progression_sharing(self):
        """Two keys sharing (h1+h2) under plain double hashing share their
        whole progression tail; the cubic term de-correlates positions.
        Statistically: enhanced rows with one shared index share fewer
        further indices than double rows."""
        rng = np.random.default_rng(4)
        m = 256

        def shared_tail(mode: str) -> float:
            bf = BloomFilter(m, 6, mode=mode, seed=5)
            keys = rng.integers(0, 2**60, 3000)
            idx = bf._indices(np.asarray(keys, dtype=np.int64))
            total, shared = 0, 0
            for i in range(0, 2000, 2):
                a, b = set(idx[i].tolist()), set(idx[i + 1].tolist())
                inter = len(a & b)
                if inter >= 1:
                    total += 1
                    shared += inter >= 3
            return shared / total if total else 0.0

        assert shared_tail("double") >= shared_tail("enhanced")

    def test_invalid_mode_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            BloomFilter(64, 3, mode="cubic")
