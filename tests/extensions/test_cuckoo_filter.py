"""Tests for the cuckoo filter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, TableFullError
from repro.extensions.cuckoo_filter import CuckooFilter


class TestBasics:
    def test_insert_contains(self):
        f = CuckooFilter(256, seed=1)
        for key in range(400):
            f.insert(key)
        assert all(f.contains(k) for k in range(400))

    def test_no_false_negatives_under_relocation(self):
        """Even after heavy kicking, every inserted key stays findable."""
        f = CuckooFilter(128, seed=2)
        n = int(0.9 * 128 * 4)
        for key in range(n):
            f.insert(key)
        assert all(f.contains(k) for k in range(n))

    def test_delete(self):
        f = CuckooFilter(64, seed=3)
        f.insert(42)
        assert f.contains(42)
        assert f.delete(42)
        assert not f.contains(42)
        assert f.size == 0

    def test_delete_absent_returns_false(self):
        f = CuckooFilter(64, seed=4)
        assert not f.delete(777)

    def test_partner_is_involution(self):
        """i2's partner under the same fingerprint is i1 — required for
        relocation correctness."""
        f = CuckooFilter(256, seed=5)
        for key in range(500):
            i1, i2, fp = f.buckets_for(key)
            assert f._partner(i2, fp) == i1

    def test_fingerprint_nonzero(self):
        f = CuckooFilter(64, fingerprint_bits=4, seed=6)
        assert all(f.fingerprint(k) != 0 for k in range(3000))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CuckooFilter(100)  # not a power of two
        with pytest.raises(ConfigurationError):
            CuckooFilter(64, bucket_size=0)
        with pytest.raises(ConfigurationError):
            CuckooFilter(64, fingerprint_bits=1)
        with pytest.raises(ConfigurationError):
            CuckooFilter(64, max_kicks=0)


class TestCapacity:
    def test_reaches_high_load(self):
        """b = 4 cuckoo filters support ~95% occupancy."""
        f = CuckooFilter(256, seed=7, max_kicks=1000)
        key = 0
        try:
            while f.load_factor < 0.95:
                f.insert(key)
                key += 1
        except TableFullError:
            pass
        assert f.load_factor > 0.9

    def test_overfull_raises(self):
        f = CuckooFilter(4, bucket_size=1, seed=8, max_kicks=20)
        with pytest.raises(TableFullError):
            for key in range(10):
                f.insert(key)

    def test_relocations_grow_with_load(self):
        f = CuckooFilter(512, seed=9, max_kicks=2000)
        early = sum(f.insert(k) for k in range(500))
        late = sum(f.insert(k) for k in range(500, 1900))
        assert late > early


class TestFalsePositives:
    def test_fpr_near_theory(self):
        f = CuckooFilter(1024, fingerprint_bits=10, seed=10)
        rng = np.random.default_rng(11)
        for k in rng.integers(0, 2**50, 3500):
            f.insert(int(k))
        fresh = rng.integers(2**50, 2**51, 20000)
        fpr = float(np.mean([f.contains(int(k)) for k in fresh]))
        assert fpr == pytest.approx(f.expected_fpr(), rel=0.5)

    def test_more_bits_fewer_false_positives(self):
        rates = {}
        rng = np.random.default_rng(12)
        keys = rng.integers(0, 2**50, 1500)
        fresh = rng.integers(2**50, 2**51, 8000)
        for bits in (6, 14):
            f = CuckooFilter(1024, fingerprint_bits=bits, seed=13)
            for k in keys:
                f.insert(int(k))
            rates[bits] = float(np.mean([f.contains(int(k)) for k in fresh]))
        assert rates[14] < rates[6]
