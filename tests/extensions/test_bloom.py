"""Tests for the Bloom filter extension (Kirsch–Mitzenmacher double hashing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.extensions import BloomFilter, theoretical_fpr


class TestBasics:
    @pytest.mark.parametrize("mode", ["double", "random"])
    def test_no_false_negatives(self, mode, rng):
        bf = BloomFilter(4096, 4, mode=mode, seed=1)
        keys = rng.integers(0, 2**60, 500)
        bf.add(keys)
        assert bool(np.all(bf.contains(keys)))

    def test_empty_filter_rejects_everything(self):
        bf = BloomFilter(1024, 3, seed=2)
        assert not bf.contains(12345)
        assert bf.fill_fraction == 0.0

    def test_scalar_api(self):
        bf = BloomFilter(1024, 3, seed=3)
        bf.add(42)
        assert bf.contains(42) is True
        assert isinstance(bf.contains(np.array([42, 43])), np.ndarray)

    def test_fill_fraction_grows(self, rng):
        bf = BloomFilter(2048, 4, seed=4)
        bf.add(rng.integers(0, 2**60, 100))
        first = bf.fill_fraction
        bf.add(rng.integers(0, 2**60, 400))
        assert bf.fill_fraction > first

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(1, 3)
        with pytest.raises(ConfigurationError):
            BloomFilter(64, 0)
        with pytest.raises(ConfigurationError):
            BloomFilter(64, 3, mode="triple")
        with pytest.raises(ConfigurationError):
            theoretical_fpr(0, 3, 10)


class TestDoubleHashedIndices:
    def test_indices_distinct_power_of_two(self, rng):
        """Odd strides mod 2^k give k distinct probe bits per key."""
        bf = BloomFilter(256, 5, mode="double", seed=5)
        keys = rng.integers(0, 2**60, 300)
        idx = bf._indices(np.asarray(keys, dtype=np.int64))
        for row in idx:
            assert len(set(row.tolist())) == 5

    def test_indices_deterministic_per_key(self):
        bf = BloomFilter(256, 4, mode="double", seed=6)
        a = bf._indices(np.array([777]))
        b = bf._indices(np.array([777]))
        assert np.array_equal(a, b)


class TestFalsePositiveRate:
    @pytest.mark.parametrize("mode", ["double", "random"])
    def test_fpr_near_theory(self, mode, rng):
        m, k, n_items = 2**14, 5, 2000
        bf = BloomFilter(m, k, mode=mode, seed=7)
        bf.add(rng.integers(0, 2**59, n_items))
        fresh = rng.integers(2**59, 2**60, 20000)
        fpr = bf.empirical_fpr(fresh)
        theory = theoretical_fpr(m, k, n_items)
        assert fpr == pytest.approx(theory, rel=0.35)

    def test_double_matches_random(self, rng):
        """The Kirsch–Mitzenmacher claim: same FPR for both modes."""
        m, k, n_items = 2**14, 5, 2000
        keys = rng.integers(0, 2**59, n_items)
        fresh = rng.integers(2**59, 2**60, 30000)
        fprs = {}
        for mode in ("double", "random"):
            bf = BloomFilter(m, k, mode=mode, seed=8)
            bf.add(keys)
            fprs[mode] = bf.empirical_fpr(fresh)
        assert fprs["double"] == pytest.approx(fprs["random"], rel=0.3)

    def test_member_exclusion(self, rng):
        bf = BloomFilter(1024, 3, seed=9)
        keys = rng.integers(0, 1000, 50)
        bf.add(keys)
        members = set(int(x) for x in keys)
        # Probing only members would give FPR 1.0; exclusion must drop them.
        fpr = bf.empirical_fpr(keys, member_keys=members)
        assert np.isnan(fpr)

    def test_expected_fpr_tracks_items(self, rng):
        bf = BloomFilter(4096, 4, seed=10)
        assert bf.expected_fpr() == 0.0
        bf.add(rng.integers(0, 2**50, 1000))
        assert 0.0 < bf.expected_fpr() < 1.0
