"""Tests for the two-party set-reconciliation driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.extensions.iblt import IBLT
from repro.extensions.reconcile import (
    default_cells,
    make_parties,
    reconcile,
    run_reconciliation,
)


class TestMakeParties:
    def test_shapes_and_split(self):
        keys_a, keys_b, a_only, b_only = make_parties(1000, 7, seed=1)
        assert keys_a.size == 1000
        assert keys_b.size == 999  # odd delta: equal sizes are impossible
        assert a_only.size == 4 and b_only.size == 3  # A gets the larger half
        keys_a, keys_b, _, _ = make_parties(1000, 8, seed=1)
        assert keys_a.size == keys_b.size == 1000

    def test_planted_delta_is_the_symmetric_difference(self):
        keys_a, keys_b, a_only, b_only = make_parties(500, 10, seed=2)
        sa, sb = set(keys_a.tolist()), set(keys_b.tolist())
        assert sa - sb == set(a_only.tolist())
        assert sb - sa == set(b_only.tolist())
        assert len(sa) == len(sb) == 500  # all keys distinct

    def test_zero_delta(self):
        keys_a, keys_b, a_only, b_only = make_parties(100, 0, seed=3)
        assert np.array_equal(np.sort(keys_a), np.sort(keys_b))
        assert a_only.size == b_only.size == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_parties(0, 0)
        with pytest.raises(ConfigurationError):
            make_parties(3, 100)


class TestDefaultCells:
    def test_power_of_two_and_floor(self):
        assert default_cells(0, 3) == 64
        cells = default_cells(1000, 3)
        assert cells & (cells - 1) == 0
        # Must exceed the density-evolution minimum |delta| / c*_3.
        assert cells > 1000 / 0.8185

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            default_cells(-1, 3)


class TestReconcile:
    @pytest.mark.parametrize("mode", ["double", "random"])
    def test_round_trip_recovers_planted_delta(self, mode):
        res = run_reconciliation(5000, 40, mode=mode, seed=4)
        assert res.success
        assert res.missed == 0 and res.spurious == 0
        assert res.residue_cells == 0
        assert res.only_in_a.size == 20 and res.only_in_b.size == 20
        assert res.mode == mode

    def test_recovered_keys_match_planted(self):
        _, _, a_only, b_only = make_parties(5000, 40, seed=4)
        res = run_reconciliation(5000, 40, seed=4)
        assert np.array_equal(res.only_in_a, a_only)
        assert np.array_equal(res.only_in_b, b_only)

    def test_deterministic_under_seed(self):
        r1 = run_reconciliation(2000, 16, seed=5)
        r2 = run_reconciliation(2000, 16, seed=5)
        assert np.array_equal(r1.only_in_a, r2.only_in_a)
        assert np.array_equal(r1.only_in_b, r2.only_in_b)
        assert r1.rounds == r2.rounds

    def test_table_sized_by_delta_not_set_size(self):
        res = run_reconciliation(20000, 10, seed=6)
        assert res.success
        assert res.cells == default_cells(10, 3)
        assert res.cells < 200  # tiny table despite 20k items

    def test_undersized_table_reports_failure(self):
        # Far above threshold: the delta's hypergraph keeps a giant core.
        res = run_reconciliation(2000, 500, cells=64, seed=7)
        assert not res.success
        assert res.missed > 0
        assert res.residue_cells > 0

    def test_reconcile_preserves_inputs(self):
        ta = IBLT(256, 3, seed=8)
        tb = IBLT(256, 3, seed=8)
        ta.insert_many(np.arange(50), np.arange(50))
        tb.insert_many(np.arange(10, 60), np.arange(10, 60))
        before_a, before_b = ta.count.copy(), tb.count.copy()
        only_a, only_b, residue, rounds = reconcile(ta, tb)
        assert np.array_equal(ta.count, before_a)
        assert np.array_equal(tb.count, before_b)
        assert residue == 0 and rounds >= 1
        assert np.array_equal(only_a, np.arange(10))
        assert np.array_equal(only_b, np.arange(50, 60))

    def test_throughput_properties(self):
        res = run_reconciliation(1000, 8, seed=9)
        assert res.items_per_second > 0
        assert res.delta_per_second > 0
