"""Tests for the open-addressing table and the 1/(1−α) search-cost law."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, TableFullError
from repro.extensions import (
    OpenAddressTable,
    expected_unsuccessful_probes,
)
from repro.extensions.open_addressing import expected_linear_probes


class TestTheoryCurves:
    def test_costs_at_zero_load(self):
        assert expected_unsuccessful_probes(0.0) == 1.0
        assert expected_linear_probes(0.0) == 1.0

    def test_costs_diverge_at_high_load(self):
        assert expected_unsuccessful_probes(0.99) == pytest.approx(100.0)
        assert expected_linear_probes(0.9) == pytest.approx(50.5)

    def test_linear_worse_than_double_beyond_zero(self):
        for alpha in (0.3, 0.6, 0.9):
            assert expected_linear_probes(alpha) > expected_unsuccessful_probes(
                alpha
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_unsuccessful_probes(1.0)
        with pytest.raises(ConfigurationError):
            expected_linear_probes(-0.1)


@pytest.mark.parametrize("probe", ["double", "linear", "random"])
class TestTableBasics:
    def test_insert_search_roundtrip(self, probe):
        table = OpenAddressTable(128, probe=probe, seed=1)
        for key in range(60):
            table.insert(key)
        assert all(table.search(k) for k in range(60))
        assert not table.search(10**9)

    def test_insert_cost_grows_with_load(self, probe):
        table = OpenAddressTable(256, probe=probe, seed=2)
        early = [table.insert(k) for k in range(25)]
        for k in range(25, 200):
            table.insert(k)
        late = [table.insert(k) for k in range(200, 225)]
        assert sum(late) > sum(early)

    def test_full_table_raises(self, probe):
        table = OpenAddressTable(8, probe=probe, seed=3)
        for key in range(8):
            table.insert(key)
        with pytest.raises(TableFullError):
            table.insert(99)

    def test_unsuccessful_cost_positive(self, probe):
        table = OpenAddressTable(64, probe=probe, seed=4)
        for key in range(32):
            table.insert(key)
        assert table.unsuccessful_search_cost(10**6) >= 1


class TestGuibasSzemerediLaw:
    """Double hashing matches random probing at 1/(1−α) (paper related
    work, refs [6, 16, 24]); linear probing does not."""

    @staticmethod
    def _cost(probe: str, alpha: float, n: int = 4096) -> float:
        table = OpenAddressTable(n, probe=probe, seed=5)
        key = 0
        while table.load_factor < alpha:
            table.insert(key)
            key += 1
        return table.mean_unsuccessful_cost(2000, rng=6)

    def test_double_matches_law(self):
        cost = self._cost("double", 0.7)
        assert cost == pytest.approx(expected_unsuccessful_probes(0.7), rel=0.08)

    def test_random_matches_law(self):
        cost = self._cost("random", 0.7)
        assert cost == pytest.approx(expected_unsuccessful_probes(0.7), rel=0.08)

    def test_double_matches_random(self):
        assert self._cost("double", 0.8) == pytest.approx(
            self._cost("random", 0.8), rel=0.1
        )

    def test_linear_strictly_worse(self):
        assert self._cost("linear", 0.8) > 1.5 * self._cost("double", 0.8)


class TestValidation:
    def test_bad_probe_name(self):
        with pytest.raises(ConfigurationError):
            OpenAddressTable(64, probe="cubic")

    def test_tiny_table(self):
        with pytest.raises(ConfigurationError):
            OpenAddressTable(1)
