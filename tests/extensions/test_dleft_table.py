"""Tests for the d-left fingerprint hash table (router application)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, TableFullError
from repro.extensions.dleft_table import DLeftHashTable
from repro.fluid import solve_dleft


class TestBasics:
    @pytest.mark.parametrize("mode", ["double", "random"])
    def test_insert_lookup(self, mode):
        table = DLeftHashTable(256, 4, mode=mode, seed=1)
        for key in range(300):
            table.insert(key)
        assert all(table.lookup(k) for k in range(300))

    def test_absent_keys_mostly_miss(self):
        table = DLeftHashTable(256, 4, fingerprint_bits=20, seed=2)
        for key in range(200):
            table.insert(key)
        misses = sum(
            not table.lookup(k) for k in range(10**6, 10**6 + 500)
        )
        # FP rate ~ entries-per-probe * 2^-20; expect ~all misses.
        assert misses >= 495

    def test_size_and_load_factor(self):
        table = DLeftHashTable(64, 4, bucket_capacity=2, seed=3)
        for key in range(128):
            table.insert(key)
        assert table.size == 128
        assert table.load_factor == pytest.approx(128 / (4 * 64 * 2))

    def test_insert_returns_leftmost_tie(self):
        table = DLeftHashTable(64, 4, seed=4)
        k, b = table.insert(1)
        assert 0 <= k < 4 and 0 <= b < 64
        assert table.occupancy[k, b] == 1

    def test_fingerprint_never_zero(self):
        table = DLeftHashTable(64, 2, fingerprint_bits=4, seed=5)
        assert all(table.fingerprint(k) != 0 for k in range(2000))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DLeftHashTable(1, 2)
        with pytest.raises(ConfigurationError):
            DLeftHashTable(64, 1)
        with pytest.raises(ConfigurationError):
            DLeftHashTable(64, 2, bucket_capacity=0)
        with pytest.raises(ConfigurationError):
            DLeftHashTable(64, 2, mode="left-right")
        with pytest.raises(ConfigurationError):
            DLeftHashTable(64, 2, fingerprint_bits=0)


class TestOverflowBehaviour:
    def test_overflow_raises_and_counts(self):
        table = DLeftHashTable(2, 2, bucket_capacity=1, seed=6)
        inserted = 0
        with pytest.raises(TableFullError):
            for key in range(100):
                table.insert(key)
                inserted += 1
        assert table.overflow_count == 1
        assert table.size == inserted

    def test_no_overflow_below_one_per_bucket(self):
        """At ~1 entry per bucket with capacity 4, overflow never happens
        (the d-left tail: load >= 3 bins are ~1e-10 at this scale)."""
        table = DLeftHashTable(1024, 4, bucket_capacity=4, seed=7)
        for key in range(4 * 1024):
            table.insert(key)
        assert table.overflow_count == 0

    def test_occupancy_histogram_matches_fluid(self):
        """At one entry per bucket, the occupancy histogram is the d-left
        fluid-limit load distribution (0.124 / 0.752 / 0.124)."""
        n_buckets = 4096
        table = DLeftHashTable(n_buckets, 4, bucket_capacity=8, seed=8)
        for key in range(4 * n_buckets):
            table.insert(key)
        stats = table.occupancy_stats()
        fractions = stats.histogram / (4 * n_buckets)
        fluid = solve_dleft(4, 1.0)
        for occ in range(3):
            assert fractions[occ] == pytest.approx(
                fluid.fraction_at(occ), abs=0.01
            )
        assert stats.max_occupancy <= 3


class TestSchemeEquivalence:
    def test_double_matches_random_occupancy(self):
        """The paper's claim in its native application: bucket-occupancy
        histograms match between hashing modes."""
        histograms = {}
        for mode in ("double", "random"):
            table = DLeftHashTable(2048, 4, bucket_capacity=6, mode=mode,
                                   seed=9)
            for key in range(4 * 2048):
                table.insert(key)
            histograms[mode] = (
                table.occupancy_stats().histogram / (4 * 2048)
            )
        a, b = histograms["double"], histograms["random"]
        width = min(len(a), len(b))
        assert np.allclose(a[:width], b[:width], atol=0.012)
