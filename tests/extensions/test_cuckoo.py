"""Tests for d-ary cuckoo hashing with double-hashed candidates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, TableFullError
from repro.extensions import CuckooTable


class TestBasics:
    @pytest.mark.parametrize("mode", ["double", "random"])
    def test_insert_then_lookup(self, mode):
        table = CuckooTable(256, 3, mode=mode, seed=1)
        for key in range(100):
            table.insert(key)
        assert all(table.lookup(k) for k in range(100))
        assert not table.lookup(10**9)

    def test_size_and_load_factor(self):
        table = CuckooTable(128, 3, seed=2)
        for key in range(64):
            table.insert(key)
        assert table.size == 64
        assert table.load_factor == pytest.approx(0.5)

    def test_stats_tracked(self):
        table = CuckooTable(64, 3, seed=3)
        for key in range(48):
            table.insert(key)
        assert table.stats.insertions == 48
        assert len(table.stats.per_insert) == 48
        assert table.stats.max_displacements == max(table.stats.per_insert)

    def test_candidates_distinct_in_double_mode(self):
        table = CuckooTable(256, 4, mode="double", seed=4)
        for key in range(200):
            cands = table.candidates(key)
            assert len(set(cands.tolist())) == 4

    def test_candidates_deterministic(self):
        table = CuckooTable(256, 3, seed=5)
        assert np.array_equal(table.candidates(99), table.candidates(99))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CuckooTable(1, 2)
        with pytest.raises(ConfigurationError):
            CuckooTable(64, 1)
        with pytest.raises(ConfigurationError):
            CuckooTable(2, 4)
        with pytest.raises(ConfigurationError):
            CuckooTable(64, 3, mode="weird")
        with pytest.raises(ConfigurationError):
            CuckooTable(64, 3, max_kicks=0)


class TestEvictionBehaviour:
    def test_keys_survive_evictions(self):
        """After heavy filling, every successfully inserted key is findable."""
        table = CuckooTable(512, 3, seed=6, max_kicks=2000)
        inserted = table.fill_to(0.85)
        assert all(table.lookup(k) for k in range(inserted))

    def test_overfull_table_raises(self):
        table = CuckooTable(16, 2, seed=7, max_kicks=50)
        with pytest.raises(TableFullError):
            for key in range(17):
                table.insert(key)
        assert table.stats.failures == 1

    def test_fill_to_stops_gracefully(self):
        table = CuckooTable(32, 2, seed=8, max_kicks=30)
        table.fill_to(1.0)
        # d = 2 threshold is ~0.5 for one-slot buckets; must stop below 1.0
        # without raising.
        assert 0.3 < table.load_factor < 1.0

    def test_fill_to_validation(self):
        with pytest.raises(ConfigurationError):
            CuckooTable(32, 2).fill_to(1.5)


class TestSchemeComparison:
    def test_double_and_random_reach_same_load(self):
        """The follow-up paper's empirical claim: achievable load factors
        match between candidate-generation modes (d = 3 threshold ~0.91)."""
        loads = {}
        for mode in ("double", "random"):
            table = CuckooTable(1024, 3, mode=mode, seed=9, max_kicks=800)
            table.fill_to(0.88)
            loads[mode] = table.load_factor
        assert loads["double"] == pytest.approx(loads["random"], abs=0.02)

    def test_displacement_means_comparable(self):
        means = {}
        for mode in ("double", "random"):
            table = CuckooTable(1024, 3, mode=mode, seed=10, max_kicks=800)
            table.fill_to(0.85)
            means[mode] = float(np.mean(table.stats.per_insert))
        # Same order of magnitude — both small at this load.
        assert means["double"] < 4 and means["random"] < 4
