"""Tests for the certification runner on a tiny custom tier."""

from __future__ import annotations

import pytest

from repro.certify.tiers import CertificationTier, TableRun
from repro.certify.verdict import validate_certification
from repro.experiments.config import ExperimentSpec

from .conftest import MICRO_TIER


class TestMicroCertification:
    def test_passes_at_toy_scale(self, micro_cert):
        failed = [c.check_id for c in micro_cert.checks if not c.passed]
        assert micro_cert.passed, f"failing checks: {failed}"

    def test_document_is_schema_valid(self, micro_cert):
        assert validate_certification(micro_cert.to_dict()) == []

    def test_all_four_check_kinds_present(self, micro_cert):
        kinds = {c.kind for c in micro_cert.checks}
        assert kinds == {"anchor", "equivalence", "fluid", "bootstrap"}

    def test_check_ids_unique(self, micro_cert):
        ids = [c.check_id for c in micro_cert.checks]
        assert len(ids) == len(set(ids))

    def test_backend_and_tier_recorded(self, micro_cert):
        doc = micro_cert.to_dict()
        assert doc["tier"] == "micro"
        assert doc["backend"] == "numpy"
        assert doc["thresholds"]["anchor_z"] == MICRO_TIER.anchor_z
        assert doc["thresholds"]["alpha"] == MICRO_TIER.alpha

    def test_runs_record_parameters(self, micro_cert):
        doc = micro_cert.to_dict()
        assert [r["table"] for r in doc["runs"]] == ["table1", "table2"]
        for run in doc["runs"]:
            assert run["params"]["backend"] == "numpy"
            assert run["params"]["workers"] == 1
            assert run["params"]["trials"] == 10
            assert run["wall_clock_seconds"] >= 0.0

    def test_holm_correction_wired(self, micro_cert):
        """Every equivalence check with a raw p-value carries a Holm-adjusted
        one that is no smaller, and the family decision used it."""
        equiv = [
            c for c in micro_cert.checks
            if c.kind == "equivalence" and c.p_value is not None
        ]
        assert equiv
        for check in equiv:
            assert check.p_holm is not None
            assert check.p_holm >= check.p_value - 1e-15
            assert check.passed == (check.p_holm > MICRO_TIER.alpha)

    def test_anchor_checks_reference_registry_ids(self, micro_cert):
        from repro.certify.anchors import anchor

        anchored = [c for c in micro_cert.checks if c.anchor_id]
        assert anchored
        for check in anchored:
            a = anchor(check.anchor_id)  # resolves, i.e. no invented ids
            if check.kind == "anchor":
                assert check.expected == pytest.approx(a.value, rel=1e-9)

    def test_deterministic_rerun(self, micro_cert):
        """Same tier, same backend: identical verdict apart from timing."""
        from repro.certify.runner import run_certification

        again = run_certification(MICRO_TIER, backend="numpy", workers=1)
        a, b = micro_cert.to_dict(), again.to_dict()
        for doc in (a, b):
            doc["wall_clock_seconds"] = 0.0
            for run in doc["runs"]:
                run["wall_clock_seconds"] = 0.0
        assert a == b


class TestRunnerErrors:
    def test_unknown_tier_name(self):
        from repro.certify.runner import run_certification

        with pytest.raises(KeyError, match="unknown certification tier"):
            run_certification("ludicrous")

    def test_unknown_backend(self):
        from repro.certify.runner import run_certification
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            run_certification(MICRO_TIER, backend="fortran")


SCHEMES_TIER = CertificationTier(
    name="micro-schemes",
    description="test-only tier: one hash-family-zoo cell at toy scale",
    runs=(
        TableRun(
            "schemes", "n10-d3",
            ExperimentSpec(n=1024, d=3, trials=12, seed=141),
            extras={"schemes": ("tabulation", "pairwise")},
        ),
    ),
    anchor_z=8.0,
    alpha=1e-3,
    queueing_rel_tol=0.12,
)


class TestSchemesCertifier:
    """The hash-family-zoo cells: per-scheme equivalence vs fully random."""

    @pytest.fixture(scope="class")
    def schemes_cert(self):
        from repro.certify.runner import run_certification

        return run_certification(SCHEMES_TIER, backend="numpy", workers=1)

    def test_passes_at_toy_scale(self, schemes_cert):
        failed = [c.check_id for c in schemes_cert.checks if not c.passed]
        assert schemes_cert.passed, f"failing checks: {failed}"

    def test_one_equivalence_and_bootstrap_per_scheme(self, schemes_cert):
        ids = {c.check_id for c in schemes_cert.checks}
        assert ids == {
            "equivalence:schemes/n10-d3/tabulation:chi2",
            "equivalence:schemes/n10-d3/pairwise:chi2",
            "bootstrap:schemes/n10-d3-tabulation:max-load",
            "bootstrap:schemes/n10-d3-pairwise:max-load",
        }

    def test_equivalence_checks_join_holm_family(self, schemes_cert):
        eq = [c for c in schemes_cert.checks if c.kind == "equivalence"]
        assert eq
        for check in eq:
            assert check.p_value is not None
            assert check.p_holm is not None

    def test_document_is_schema_valid(self, schemes_cert):
        assert validate_certification(schemes_cert.to_dict()) == []
