"""Tests for certification.json validation, writing, and the golden document."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.certify.verdict import (
    SCHEMA_VERSION,
    format_summary,
    validate_certification,
    write_certification,
)

GOLDEN = Path(__file__).resolve().parent.parent / "data" / "golden_certification.json"


def _minimal_doc() -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "paper": "arXiv:1209.5360v4 (Mitzenmacher, SPAA 2014)",
        "tier": "micro",
        "description": "hand-built document for schema tests",
        "passed": True,
        "backend": "numpy",
        "thresholds": {
            "anchor_z": 6.0,
            "alpha": 1e-3,
            "queueing_rel_tol": 0.12,
            "fluid_rel_tol": 1.5e-3,
        },
        "wall_clock_seconds": 1.25,
        "runs": [
            {
                "table": "table1",
                "variant": "d3",
                "params": {"n": 1024, "d": 3, "trials": 10, "seed": 101},
                "wall_clock_seconds": 1.25,
            }
        ],
        "checks": [
            {
                "check_id": "anchor:d3:table1/d3/random/load0",
                "table": "table1",
                "variant": "d3",
                "kind": "anchor",
                "passed": True,
                "measured": 0.177,
                "expected": 0.1769,
                "tolerance": 0.03,
                "anchor_id": "table1/d3/random/load0",
                "p_value": None,
                "p_holm": None,
                "effect_size": None,
                "detail": "within envelope",
            }
        ],
        "summary": {
            "n_checks": 1,
            "n_failed": 0,
            "by_kind": {"anchor": {"total": 1, "failed": 0}},
            "tables": ["table1"],
        },
    }


class TestValidate:
    def test_minimal_doc_valid(self):
        assert validate_certification(_minimal_doc()) == []

    def test_non_dict_rejected(self):
        assert validate_certification([1, 2]) != []
        assert validate_certification(None) != []

    @pytest.mark.parametrize("field", ["tier", "runs", "checks", "summary"])
    def test_missing_top_level_field(self, field):
        doc = _minimal_doc()
        del doc[field]
        assert any(field in p for p in validate_certification(doc))

    def test_wrong_schema_version(self):
        doc = _minimal_doc()
        doc["schema_version"] = SCHEMA_VERSION + 1
        assert any("schema_version" in p for p in validate_certification(doc))

    def test_missing_threshold(self):
        doc = _minimal_doc()
        del doc["thresholds"]["alpha"]
        assert any("alpha" in p for p in validate_certification(doc))

    def test_unknown_check_kind(self):
        doc = _minimal_doc()
        doc["checks"][0]["kind"] = "vibes"
        assert any("kind" in p for p in validate_certification(doc))

    def test_non_numeric_measured(self):
        doc = _minimal_doc()
        doc["checks"][0]["measured"] = "0.177"
        assert any("measured" in p for p in validate_certification(doc))

    def test_empty_checks_rejected(self):
        doc = _minimal_doc()
        doc["checks"] = []
        doc["summary"]["n_checks"] = 0
        assert any("non-empty" in p for p in validate_certification(doc))

    def test_duplicate_check_ids(self):
        doc = _minimal_doc()
        doc["checks"].append(copy.deepcopy(doc["checks"][0]))
        doc["summary"]["n_checks"] = 2
        assert any("unique" in p for p in validate_certification(doc))

    def test_summary_count_mismatch(self):
        doc = _minimal_doc()
        doc["summary"]["n_checks"] = 7
        assert any("n_checks" in p for p in validate_certification(doc))

    def test_passed_must_track_failures(self):
        doc = _minimal_doc()
        doc["checks"][0]["passed"] = False
        doc["summary"]["n_failed"] = 1
        assert any("passed" in p for p in validate_certification(doc))
        doc["passed"] = False
        assert validate_certification(doc) == []

    def test_malformed_run_entry(self):
        doc = _minimal_doc()
        del doc["runs"][0]["params"]
        assert any("params" in p for p in validate_certification(doc))


class TestWrite:
    def test_roundtrip(self, tmp_path):
        out = tmp_path / "cert.json"
        write_certification(_minimal_doc(), out)
        assert validate_certification(json.loads(out.read_text())) == []

    def test_refuses_invalid(self, tmp_path):
        doc = _minimal_doc()
        doc["checks"] = []
        doc["summary"]["n_checks"] = 0
        with pytest.raises(ValueError, match="refusing to write"):
            write_certification(doc, tmp_path / "cert.json")
        assert not (tmp_path / "cert.json").exists()

    def test_accepts_certification_object(self, micro_cert, tmp_path):
        out = write_certification(micro_cert, tmp_path / "cert.json")
        assert validate_certification(json.loads(out.read_text())) == []


class TestFormatSummary:
    def test_mentions_verdict_and_kinds(self):
        text = format_summary(_minimal_doc())
        assert "PASSED" in text
        assert "anchor" in text
        assert "FAIL" not in text

    def test_lists_failures(self):
        doc = _minimal_doc()
        doc["checks"][0]["passed"] = False
        doc["passed"] = False
        doc["summary"]["n_failed"] = 1
        doc["summary"]["by_kind"]["anchor"]["failed"] = 1
        text = format_summary(doc)
        assert "FAILED" in text
        assert "FAIL anchor:d3:table1/d3/random/load0" in text


def _normalize(doc: dict) -> dict:
    """Strip the only nondeterministic fields (wall-clock timings)."""
    doc = copy.deepcopy(doc)
    doc["wall_clock_seconds"] = 0.0
    for run in doc["runs"]:
        run["wall_clock_seconds"] = 0.0
    return doc


class TestGoldenDocument:
    """The committed golden verdict pins the schema and the micro-tier output.

    After an *intentional* change to the runner or registry, regenerate by
    running ``MICRO_TIER`` (see conftest) with ``backend="numpy"``,
    ``workers=1``, normalizing wall-clock fields to 0.0, and writing the
    ``to_dict()`` JSON (indent=2) to ``tests/data/golden_certification.json``.
    """

    def test_golden_is_schema_valid(self):
        assert validate_certification(json.loads(GOLDEN.read_text())) == []

    def test_micro_run_matches_golden(self, micro_cert):
        golden = _normalize(json.loads(GOLDEN.read_text()))
        fresh = _normalize(micro_cert.to_dict())
        assert fresh == golden
