"""Tests for the paper-anchor registry: shape, provenance, single-sourcing."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.certify.anchors import (
    ANCHORS,
    PAPER_SOURCE,
    anchor,
    anchor_value,
    anchors_for_table,
    paper_values,
)

REPO = Path(__file__).resolve().parent.parent.parent


class TestRegistryShape:
    def test_every_table_present(self):
        tables = {a.table for a in ANCHORS}
        assert tables >= {f"table{k}" for k in range(1, 9)}
        assert "derived" in tables

    def test_ids_unique_and_resolvable(self):
        ids = [a.anchor_id for a in ANCHORS]
        assert len(ids) == len(set(ids))
        for anchor_id in ids:
            assert anchor(anchor_id).anchor_id == anchor_id

    def test_paper_anchors_cite_the_paper(self):
        for a in ANCHORS:
            if a.table.startswith("table"):
                assert PAPER_SOURCE in a.source or a.source, a.anchor_id

    def test_unknown_id_raises_keyerror_naming_tables(self):
        with pytest.raises(KeyError, match="table1"):
            anchor("table1/no/such/cell")

    def test_known_cells(self):
        assert anchor_value("table2/fluid/tail1") == pytest.approx(0.8231)
        assert anchor("table1/d3/random/load0").role == "random"
        assert anchor("table8/lam0.9/d3/double").kind == "sojourn-time"

    def test_quantum_is_half_last_digit(self):
        a = anchor("table1/d3/random/load0")  # printed 0.17693: 5 decimals
        assert a.quantum == pytest.approx(0.5e-5)
        tail = anchor("table2/fluid/tail1")  # printed 0.8231: 4 decimals
        assert tail.quantum == pytest.approx(0.5e-4)

    def test_scientific_notation_quantum(self):
        # 2.25e-05: last printed digit is the 1e-7 place.
        a = anchor("table1/d4/random/load3")
        assert a.value == pytest.approx(2.25e-5)
        assert a.quantum == pytest.approx(0.5e-7)

    def test_anchors_for_table(self):
        t2 = anchors_for_table("table2")
        assert len(t2) == 9  # 3 columns x 3 tails
        assert all(a.table == "table2" for a in t2)


class TestLegacyView:
    def test_paper_values_shape(self):
        pv = paper_values()
        assert pv["table1"][(3, "random")][0] == pytest.approx(0.17693)
        assert pv["table2"]["fluid"][1] == pytest.approx(0.8231)

    def test_paper_values_is_a_copy(self):
        pv = paper_values()
        pv["table1"][(3, "random")][0] = -1.0
        assert paper_values()["table1"][(3, "random")][0] == pytest.approx(0.17693)

    def test_config_reexport_matches(self):
        from repro.experiments.config import PAPER_VALUES

        assert PAPER_VALUES == paper_values()


class TestSingleTranscription:
    """No paper value may be typed anywhere outside the registry."""

    # Distinctive literals, one per region of the paper: Table 1 load-0,
    # Table 2 tail-1, Table 4 percent, Table 7 load-1, Table 8 sojourn,
    # and the derived peeling threshold.
    SENTINELS = (
        "0.17693",
        "0.8231",
        "39.78",
        "0.75159",
        "2.02805",
        "0.81847",
    )

    def _offending_files(self, sentinel: str) -> list[str]:
        hits = []
        roots = [REPO / "src", REPO / "benchmarks", REPO / "tests"]
        for root in roots:
            for path in root.rglob("*.py"):
                if path.name == "anchors.py" and path.parent.name == "certify":
                    continue
                if path == Path(__file__).resolve():
                    continue
                if sentinel in path.read_text(encoding="utf-8"):
                    hits.append(str(path.relative_to(REPO)))
        return hits

    @pytest.mark.parametrize("sentinel", SENTINELS)
    def test_sentinel_only_in_registry(self, sentinel):
        assert sentinel in (REPO / "src/repro/certify/anchors.py").read_text()
        offenders = self._offending_files(sentinel)
        assert not offenders, (
            f"paper value {sentinel} transcribed outside the registry in: "
            f"{offenders}; look it up via repro.certify.anchors instead"
        )
