"""Tests for the shipped certification tiers."""

from __future__ import annotations

import pytest

from repro.certify.runner import _CERTIFIERS
from repro.certify.tiers import TIERS, tier


class TestTierLookup:
    def test_shipped_names(self):
        assert set(TIERS) == {"smoke", "standard", "full"}

    def test_lookup_and_unknown(self):
        assert tier("smoke").name == "smoke"
        with pytest.raises(KeyError, match="unknown certification tier"):
            tier("ludicrous")


class TestTierShape:
    @pytest.mark.parametrize("name", sorted(TIERS))
    def test_every_run_has_a_certifier(self, name):
        for run in TIERS[name].runs:
            assert run.table in _CERTIFIERS, run.table

    def test_smoke_covers_the_gate_tables(self):
        assert set(tier("smoke").tables) == {
            "table1", "table2", "table3", "table8", "peeling", "schemes",
        }

    def test_standard_and_full_cover_all_tables(self):
        expected = {f"table{k}" for k in range(1, 9)} | {"peeling", "schemes"}
        assert set(tier("standard").tables) == expected
        assert set(tier("full").tables) == expected

    def test_scheme_sweeps_name_registered_keyed_schemes(self):
        from repro.hashing import keyed_scheme_names

        keyed = set(keyed_scheme_names())
        for name in sorted(TIERS):
            for run in TIERS[name].runs:
                if run.table != "schemes":
                    continue
                swept = run.extras["schemes"]
                assert set(swept) <= keyed, (name, run.variant)
                assert len(swept) == len(set(swept))

    def test_full_tier_sweeps_production_scale(self):
        sizes = [run.spec.n for run in TIERS["full"].runs
                 if run.table == "schemes"]
        assert max(sizes) == 2**24

    @pytest.mark.parametrize("name", sorted(TIERS))
    def test_seeds_distinct_within_tier(self, name):
        seeds = [run.spec.seed for run in TIERS[name].runs]
        assert len(seeds) == len(set(seeds))

    def test_thresholds_tighten_with_budget(self):
        smoke, standard, full = tier("smoke"), tier("standard"), tier("full")
        assert smoke.anchor_z > standard.anchor_z > full.anchor_z
        assert smoke.queueing_rel_tol > standard.queueing_rel_tol
        assert standard.queueing_rel_tol > full.queueing_rel_tol

    @pytest.mark.parametrize("name", sorted(TIERS))
    def test_variants_unique_per_table(self, name):
        pairs = [(run.table, run.variant) for run in TIERS[name].runs]
        assert len(pairs) == len(set(pairs))
