"""Shared fixtures: one tiny certification run reused across test files."""

from __future__ import annotations

import pytest

from repro.certify.runner import Certification, run_certification
from repro.certify.tiers import CertificationTier, TableRun
from repro.experiments.config import ExperimentSpec

#: A deliberately tiny tier: Tables 1 and 2 at toy scale, seconds to run,
#: exercising all four check kinds (anchor, equivalence, bootstrap, fluid).
MICRO_TIER = CertificationTier(
    name="micro",
    description="test-only tier: tables 1-2 at toy scale",
    runs=(
        TableRun("table1", "d3", ExperimentSpec(n=1024, d=3, trials=10, seed=101)),
        TableRun("table2", "d3", ExperimentSpec(n=1024, d=3, trials=10, seed=102)),
    ),
    anchor_z=8.0,
    alpha=1e-3,
    queueing_rel_tol=0.12,
)


@pytest.fixture(scope="session")
def micro_cert() -> Certification:
    """Run the micro tier once per session on the always-available backend."""
    return run_certification(MICRO_TIER, backend="numpy", workers=1)
