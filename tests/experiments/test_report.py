"""Tests for report formatting details."""

from __future__ import annotations

from repro.experiments.report import format_number, format_table
from repro.experiments.tables import ExperimentTable


class TestFormatNumber:
    def test_large_values_two_decimals(self):
        assert format_number(1752.4974) == "1752.50"
        assert format_number(100.0) == "100.00"

    def test_mid_range_five_decimals(self):
        assert format_number(0.5) == "0.50000"
        assert format_number(2.02805) == "2.02805"

    def test_tiny_scientific(self):
        assert format_number(2.25e-5) == "2.25e-05"

    def test_zero_and_strings_and_ints(self):
        assert format_number(0.0) == "0"
        assert format_number(0) == "0"
        assert format_number(42) == "42"
        assert format_number("2^14") == "2^14"

    def test_negative(self):
        assert format_number(-0.25) == "-0.25000"


class TestFormatTable:
    def _table(self) -> ExperimentTable:
        return ExperimentTable(
            table_id="Table X",
            title="demo",
            columns=["Load", "Value"],
            rows=[(0, 0.12345678), (1, 2.5e-6)],
            paper={},
            meta={"n": 16},
        )

    def test_meta_shown_by_default(self):
        text = format_table(self._table())
        assert "[n=16]" in text

    def test_meta_hidden(self):
        text = format_table(self._table(), show_meta=False)
        assert "[n=16]" not in text

    def test_alignment_and_values(self):
        text = format_table(self._table())
        lines = text.splitlines()
        header = next(line for line in lines if "Load" in line)
        assert "Value" in header
        assert "0.12346" in text
        assert "2.50e-06" in text

    def test_empty_rows(self):
        table = ExperimentTable(
            table_id="T", title="empty", columns=["A"], rows=[], paper=None
        )
        text = format_table(table)
        assert "A" in text
