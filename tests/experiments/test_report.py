"""Tests for report formatting details."""

from __future__ import annotations

from repro.experiments.report import format_number, format_table
from repro.experiments.tables import ExperimentTable


class TestFormatNumber:
    def test_large_values_two_decimals(self):
        assert format_number(1752.4974) == "1752.50"
        assert format_number(100.0) == "100.00"

    def test_mid_range_five_decimals(self):
        assert format_number(0.5) == "0.50000"
        assert format_number(2.71828) == "2.71828"

    def test_tiny_scientific(self):
        assert format_number(2.25e-5) == "2.25e-05"

    def test_zero_and_strings_and_ints(self):
        assert format_number(0.0) == "0"
        assert format_number(0) == "0"
        assert format_number(42) == "42"
        assert format_number("2^14") == "2^14"

    def test_negative(self):
        assert format_number(-0.25) == "-0.25000"


class TestFormatTable:
    def _table(self) -> ExperimentTable:
        return ExperimentTable(
            table_id="Table X",
            title="demo",
            columns=["Load", "Value"],
            rows=[(0, 0.12345678), (1, 2.5e-6)],
            paper={},
            meta={"n": 16},
        )

    def test_meta_shown_by_default(self):
        text = format_table(self._table())
        assert "[n=16]" in text

    def test_meta_hidden(self):
        text = format_table(self._table(), show_meta=False)
        assert "[n=16]" not in text

    def test_alignment_and_values(self):
        text = format_table(self._table())
        lines = text.splitlines()
        header = next(line for line in lines if "Load" in line)
        assert "Value" in header
        assert "0.12346" in text
        assert "2.50e-06" in text

    def test_empty_rows(self):
        table = ExperimentTable(
            table_id="T", title="empty", columns=["A"], rows=[], paper=None
        )
        text = format_table(table)
        assert "A" in text


class TestFormatTableAlignment:
    def _wide_table(self) -> ExperimentTable:
        return ExperimentTable(
            table_id="Table Y",
            title="alignment demo",
            columns=["Load", "A long header", "B"],
            rows=[(0, 0.5, 1752.4974), (10, 2.5e-6, 3)],
            paper={},
            meta={},
        )

    def test_columns_align_across_rows(self):
        """Every cell of a column starts at the offset the separator row
        (the dash runs) defines, in the header and every data row."""
        text = format_table(self._wide_table(), show_meta=False)
        lines = text.splitlines()
        sep = next(line for line in lines if set(line) <= {"-", " "} and "-" in line)
        starts = [
            i for i, ch in enumerate(sep)
            if ch == "-" and (i == 0 or sep[i - 1] == " ")
        ]
        assert len(starts) == 3  # one dash run per column
        rows = [line for line in lines if line is not sep and "  " in line]
        header = next(line for line in rows if "Load" in line)
        data = [line for line in rows if line is not header]
        assert len(data) >= 2
        for line in [header] + data:
            for start in starts:
                assert line[start] != " ", (text, start)
                if start:
                    assert line[start - 1] == " ", (text, start)
        assert len({len(line) for line in [sep, header] + data}) == 1

    def test_header_wider_than_values(self):
        """Column width follows the widest cell, header included."""
        text = format_table(self._wide_table(), show_meta=False)
        header = next(line for line in text.splitlines() if "A long header" in line)
        assert "B" in header
