"""Tests for the per-table experiment harness (small-scale runs)."""

from __future__ import annotations

import pytest

from repro.certify.anchors import anchor_value
from repro.experiments import (
    PAPER_VALUES,
    ExperimentSpec,
    format_table,
    table1_load_fractions,
    table2_fluid_vs_simulation,
    table3_larger_n,
    table4_max_load,
    table5_level_stats,
    table6_heavy_load,
    table7_dleft,
    table8_queueing,
)

# Small-scale shared runs (module-scoped to keep the suite fast).


@pytest.fixture(scope="module")
def t1():
    return table1_load_fractions(ExperimentSpec(n=2**12, d=3, trials=60, seed=1))


@pytest.fixture(scope="module")
def t2():
    return table2_fluid_vs_simulation(ExperimentSpec(n=2**12, d=3, trials=60, seed=2))


class TestTable1(object):
    def test_rows_shape(self, t1):
        assert t1.columns == ["Load", "Fully Random", "Double Hashing"]
        assert all(len(row) == 3 for row in t1.rows)

    def test_fractions_sum_to_one(self, t1):
        assert sum(r[1] for r in t1.rows) == pytest.approx(1.0, abs=1e-9)
        assert sum(r[2] for r in t1.rows) == pytest.approx(1.0, abs=1e-9)

    def test_near_paper_values(self, t1):
        paper = PAPER_VALUES["table1"][(3, "double")]
        for load, _, double_frac in t1.rows:
            if load in paper:
                assert double_frac == pytest.approx(paper[load], abs=0.004)

    def test_schemes_agree(self, t1):
        for _, random_frac, double_frac in t1.rows:
            assert random_frac == pytest.approx(double_frac, abs=0.005)

    def test_paper_reference_attached(self, t1):
        assert t1.paper["random"][0] == anchor_value("table1/d3/random/load0")


class TestTable2(object):
    def test_fluid_column_matches_paper(self, t2):
        paper = PAPER_VALUES["table2"]["fluid"]
        for load, fluid, _, _ in t2.rows:
            if load in paper:
                assert fluid == pytest.approx(paper[load], abs=2e-4)

    def test_simulation_near_fluid(self, t2):
        for load, fluid, random_frac, double_frac in t2.rows:
            if fluid > 1e-3:
                assert random_frac == pytest.approx(fluid, rel=0.05)
                assert double_frac == pytest.approx(fluid, rel=0.05)

    def test_tails_monotone(self, t2):
        fluid_col = [r[1] for r in t2.rows]
        assert fluid_col == sorted(fluid_col, reverse=True)


class TestTable3:
    def test_small_scale_run(self):
        t = table3_larger_n(ExperimentSpec(d=3, log2_n=12, trials=20, seed=3))
        assert "2^12" in t.table_id
        assert t.paper == {"random": {}, "double": {}}  # no 2^12 in paper

    def test_paper_reference_for_published_sizes(self):
        t = table3_larger_n(ExperimentSpec(d=3, log2_n=16, trials=2, seed=4))
        assert t.paper["random"][0] == 0.17695


class TestTable4:
    def test_structure_and_monotonicity(self):
        t = table4_max_load(
            ExperimentSpec(d=3, trials=60, seed=5), log2_n_values=(9, 11, 13)
        )
        assert len(t.rows) == 3
        random_col = [r[1] for r in t.rows]
        # Fraction of trials with max load 3 increases with n (d = 3).
        assert random_col[0] <= random_col[-1]

    def test_percent_range(self):
        t = table4_max_load(ExperimentSpec(d=3, trials=40, seed=6), log2_n_values=(12,))
        for _, a, b in t.rows:
            assert 0.0 <= a <= 100.0 and 0.0 <= b <= 100.0


class TestTable5:
    def test_level_stats_structure(self):
        t = table5_level_stats(ExperimentSpec(n=2**12, d=4, trials=10, seed=7))
        schemes = {row[0] for row in t.rows}
        assert schemes == {"random", "double"}
        for _, load, mn, avg, mx, std in t.rows:
            assert mn <= avg <= mx
            assert std >= 0

    def test_counts_scale_with_n(self):
        t = table5_level_stats(ExperimentSpec(n=2**12, d=4, trials=10, seed=8))
        level1 = [r for r in t.rows if r[1] == 1]
        for row in level1:
            # ~71.8% of bins at load 1 (paper Table 5 shape).
            assert row[3] == pytest.approx(0.718 * 2**12, rel=0.03)


class TestTable6:
    def test_heavy_load_shape(self):
        t = table6_heavy_load(ExperimentSpec(n=2**10, d=3, trials=10, seed=9), balls_per_bin=16)
        loads = [r[0] for r in t.rows]
        assert 16 in loads
        peak = max(t.rows, key=lambda r: r[1])
        assert peak[0] == 16  # distribution peaks at the mean load

    def test_fluid_column_matches_paper(self):
        t = table6_heavy_load(ExperimentSpec(n=2**10, d=3, trials=5, seed=10), balls_per_bin=16)
        paper = PAPER_VALUES["table6"][(3, "random")]
        fluid_by_load = {r[0]: r[3] for r in t.rows}
        for load, expected in paper.items():
            if expected > 1e-3:
                assert fluid_by_load[load] == pytest.approx(expected, rel=0.02)


class TestTable7:
    def test_dleft_small_scale(self):
        t = table7_dleft(ExperimentSpec(n=2**12, d=4, trials=40, seed=11))
        by_load = {r[0]: r for r in t.rows}
        load0 = anchor_value("table7/n18/random/load0")
        load1 = anchor_value("table7/n18/random/load1")
        # Fluid column matches the paper's published fractions.
        assert by_load[0][3] == pytest.approx(load0, abs=1e-4)
        assert by_load[1][3] == pytest.approx(load1, abs=1e-4)
        # Simulated columns near fluid.
        assert by_load[0][1] == pytest.approx(load0, abs=0.01)
        assert by_load[0][2] == pytest.approx(load0, abs=0.01)


class TestTable8:
    def test_queueing_row(self):
        t = table8_queueing(
            ExperimentSpec(n=128, sim_time=200.0, burn_in=40.0, seed=12),
            lambdas=(0.9,), d_values=(3,),
        )
        (lam, d, rand, dbl, fluid) = t.rows[0]
        assert lam == 0.9 and d == 3
        assert fluid == pytest.approx(2.0279, abs=1e-3)
        assert rand == pytest.approx(fluid, rel=0.2)
        assert dbl == pytest.approx(fluid, rel=0.2)


class TestFormatting:
    def test_format_table_renders(self, t1):
        text = format_table(t1)
        assert "Table 1" in text
        assert "Fully Random" in text
        assert "0.6" in text  # the load-1 fraction

    def test_scientific_notation_for_tiny(self):
        from repro.experiments.report import format_number

        assert "e" in format_number(2.3e-5)
        assert format_number(0.12345) == "0.12345"
        assert format_number(7) == "7"
        assert format_number(0.0) == "0"
        assert format_number("x") == "x"
