"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_all_table_commands_registered(self):
        parser = build_parser()
        for i in range(1, 9):
            args = parser.parse_args([f"table{i}"])
            assert args.command == f"table{i}"

    def test_common_options(self):
        args = build_parser().parse_args(
            ["table1", "--n", "256", "--d", "4", "--trials", "7"]
        )
        assert (args.n, args.d, args.trials) == (256, 4, 7)

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tableX"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "compare" in out

    def test_fluid(self, capsys):
        assert main(["fluid", "--d", "3", "--t", "1.0", "--levels", "3"]) == 0
        out = capsys.readouterr().out
        assert "0.823" in out

    def test_table1_small(self, capsys):
        assert main(["table1", "--n", "256", "--trials", "10"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Double Hashing" in out

    def test_compare_small(self, capsys):
        assert main(["compare", "--n", "256", "--trials", "10"]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out

    def test_table7_small(self, capsys):
        assert main(["table7", "--n", "256", "--d", "4",
                     "--trials", "10"]) == 0
        assert "d-left" in capsys.readouterr().out

    def test_zoo_small(self, capsys):
        assert main(["zoo", "--n", "256", "--trials", "5"]) == 0
        out = capsys.readouterr().out
        assert "double-hashing" in out and "one-choice" in out

    def test_peeling_small(self, capsys):
        assert main(["peeling", "--n", "256", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        from repro.certify.anchors import anchor_value

        threshold = anchor_value("derived/peeling-threshold/d3")
        assert f"{threshold:.5f}" in out

    def test_peeling_backend_knob(self, capsys):
        assert main(["peeling", "--n", "256", "--trials", "2",
                     "--backend", "numpy"]) == 0

    def test_reconcile_small(self, capsys):
        assert main(["reconcile", "--items", "2e3", "--diff", "20",
                     "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "double" in out and "random" in out
        assert "items/s" in out

    def test_list_mentions_new_commands(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "zoo" in out and "peeling" in out and "validate" in out
        assert "serve" in out and "reconcile" in out

    def test_compare_with_scheme(self, capsys):
        assert main(["compare", "--n", "256", "--d", "2", "--trials", "5",
                     "--scheme", "tabulation"]) == 0
        out = capsys.readouterr().out
        assert "scheme=tabulation" in out and "verdict" in out

    def test_serve_small(self, capsys, tmp_path):
        import json

        metrics_path = tmp_path / "serve_metrics.json"
        assert main([
            "serve", "--scheme", "tabulation", "--keys", "5e3",
            "--bins", "1024", "--batch", "512", "--churn", "0.5",
            "--lookups", "0.2", "--popularity", "zipf", "--shards", "2",
            "--metrics-out", str(metrics_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "scheme=tabulation" in out and "throughput" in out
        snap = json.loads(metrics_path.read_text())
        assert snap["series"]["service.slo"]
        sample = snap["series"]["service.slo"][-1]
        assert {"ops", "size", "max_load", "p50", "p99", "p999"} <= set(sample)

    @pytest.mark.parametrize(
        "argv",
        [
            ["table2", "--n", "256", "--trials", "5"],
            ["table3", "--d", "3", "--log2-n", "8", "--trials", "5"],
            ["table5", "--n", "256", "--d", "4", "--trials", "4"],
            ["table6", "--n", "128", "--trials", "3"],
        ],
        ids=["table2", "table3", "table5", "table6"],
    )
    def test_remaining_table_commands_run(self, capsys, argv):
        assert main(argv) == 0
        assert "Table" in capsys.readouterr().out

    def test_table4_runs(self, capsys):
        # table4 sweeps several n internally; keep trials tiny.
        assert main(["table4", "--d", "3", "--trials", "3"]) == 0
        assert "maximum load" in capsys.readouterr().out

    def test_table8_runs(self, capsys):
        assert main(["table8", "--n", "64", "--sim-time", "30"]) == 0
        assert "queues" in capsys.readouterr().out
