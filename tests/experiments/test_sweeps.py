"""Tests for the sweep framework and report rendering utilities."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentSpec
from repro.experiments.report import render_all
from repro.experiments.sweeps import (
    convergence_sweep,
    load_sweep,
    save_sweep,
)
from repro.experiments.tables import table1_load_fractions


class TestConvergenceSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return convergence_sweep(
            3, log2_n_values=(7, 9, 11), trials=150, seed=1
        )

    def test_structure(self, sweep):
        assert sweep.parameter == "log2_n"
        assert sweep.values == (7, 9, 11)
        assert len(sweep.random) == 3 == len(sweep.double)
        assert sweep.meta["d"] == 3

    def test_gaps_shrink_with_n(self, sweep):
        assert sweep.random[-1] < sweep.random[0]
        assert sweep.double[-1] < sweep.double[0]

    def test_gaps_small_at_largest_n(self, sweep):
        assert sweep.random[-1] < 0.01
        assert sweep.double[-1] < 0.01

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            convergence_sweep(3, log2_n_values=())
        with pytest.raises(ConfigurationError):
            convergence_sweep(3, trials=0)


class TestSweepIO:
    def test_round_trip(self, tmp_path):
        sweep = convergence_sweep(2, log2_n_values=(6, 8), trials=20, seed=2)
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        restored = load_sweep(path)
        assert restored == sweep

    def test_wrong_kind_rejected(self, tmp_path):
        from repro.io import save_json

        path = tmp_path / "bad.json"
        save_json({"kind": "Other"}, path)
        with pytest.raises(ValueError, match="SweepResult"):
            load_sweep(path)


class TestRenderAll:
    def test_renders_multiple_tables(self):
        thunks = [
            lambda: table1_load_fractions(ExperimentSpec(n=128, d=3, trials=5, seed=1)),
            lambda: table1_load_fractions(ExperimentSpec(n=128, d=4, trials=5, seed=2)),
        ]
        text = render_all(thunks)
        assert text.count("Table 1") == 2
        assert "\n\n" in text

    def test_empty_input(self):
        assert render_all([]) == ""
