"""The giant-n knobs: spec fields, CLI flags, certify overrides."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.cli import _spec_from_args, build_parser
from repro.experiments.config import ExperimentSpec


class TestSpecFields:
    def test_defaults(self):
        spec = ExperimentSpec()
        assert spec.trials_mode == "chunked"
        assert spec.shards is None

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="trials_mode"):
            ExperimentSpec(trials_mode="prange")
        with pytest.raises(ConfigurationError, match="shards"):
            ExperimentSpec(shards=0)

    def test_replace_round_trips(self):
        spec = ExperimentSpec().replace(trials_mode="parallel", shards=4)
        assert (spec.trials_mode, spec.shards) == ("parallel", 4)


class TestCliFlags:
    def test_table_subcommands_accept_knobs(self):
        args = build_parser().parse_args(
            ["table1", "--trials-mode", "parallel", "--shards", "3"]
        )
        spec = _spec_from_args("table1", args)
        assert (spec.trials_mode, spec.shards) == ("parallel", 3)

    def test_defaults_flow_from_spec(self):
        args = build_parser().parse_args(["table1"])
        spec = _spec_from_args("table1", args)
        assert (spec.trials_mode, spec.shards) == ("chunked", None)

    def test_certify_accepts_knobs(self):
        args = build_parser().parse_args(
            ["certify", "--trials-mode", "parallel", "--shards", "2"]
        )
        assert (args.trials_mode, args.shards) == ("parallel", 2)
        defaults = build_parser().parse_args(["certify"])
        assert (defaults.trials_mode, defaults.shards) == (None, None)


class TestCertifyOverride:
    def test_override_reaches_every_run(self):
        from repro.certify.runner import run_certification
        from repro.certify.tiers import TIERS

        tier = TIERS["smoke"]
        cert = run_certification(
            tier, trials_mode="parallel", shards=2
        )
        assert cert.passed, [c for c in cert.checks if not c.passed]


class TestEndToEnd:
    def test_parallel_mode_statistics_match_chunked(self):
        # Different RNG construction, same law: the two modes must agree
        # statistically on an easy observable (the d=3 empty-bin
        # fraction, ~0.176 with tight concentration at this scale).
        from repro.core.runner import run_experiment
        from repro.hashing import DoubleHashingChoices

        n, trials = 1 << 12, 16
        base = ExperimentSpec(n=n, d=3, trials=trials, seed=5)
        chunked = run_experiment(DoubleHashingChoices(n, 3), base)
        parallel = run_experiment(
            DoubleHashingChoices(n, 3), base.replace(trials_mode="parallel")
        )
        f_chunked = chunked.distribution.counts[0] / (n * trials)
        f_parallel = parallel.distribution.counts[0] / (n * trials)
        assert abs(f_chunked - f_parallel) < 0.01
        assert np.isclose(f_parallel, 0.1765, atol=0.01)
