"""Tests for the unified ExperimentSpec API and its deprecation shims."""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

import repro
from repro.core import run_experiment
from repro.errors import ConfigurationError
from repro.experiments import TABLE_DEFAULTS, ExperimentSpec
from repro.experiments.cli import build_parser, main
from repro.experiments.tables import table1_load_fractions, table6_heavy_load
from repro.hashing import DoubleHashingChoices, FullyRandomChoices


class TestSpec:
    def test_frozen(self):
        spec = ExperimentSpec()
        with pytest.raises(AttributeError):
            spec.n = 99

    def test_replace(self):
        spec = ExperimentSpec(n=128, trials=5)
        other = spec.replace(trials=10)
        assert other.trials == 10 and other.n == 128
        assert spec.trials == 5  # original untouched

    def test_balls_defaults_to_n(self):
        assert ExperimentSpec(n=64).balls == 64
        assert ExperimentSpec(n=64, n_balls=1024).balls == 1024

    def test_burn_in_defaults_to_fifth_of_sim_time(self):
        assert ExperimentSpec(sim_time=500.0).effective_burn_in == 100.0
        assert ExperimentSpec(burn_in=7.0).effective_burn_in == 7.0

    @pytest.mark.parametrize(
        "bad",
        [
            {"n": 0},
            {"d": 0},
            {"trials": -1},
            {"tie_break": "nope"},
            {"block": 0},
            {"workers": -1},
            {"max_retries": -1},
            {"chunk_timeout": -2.0},
            {"backend": "fortran"},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(**bad)

    def test_backend_field(self):
        assert ExperimentSpec().backend is None
        assert ExperimentSpec(backend="numpy").backend == "numpy"
        assert ExperimentSpec(backend="numba").backend == "numba"

    def test_block_default_is_kernel_default(self):
        from repro.kernels import DEFAULT_BLOCK

        assert ExperimentSpec().block == DEFAULT_BLOCK

    def test_engine_config_mirrors_spec(self):
        spec = ExperimentSpec(
            workers=3, chunks=7, max_retries=5, chunk_timeout=9.0,
            checkpoint="/tmp/x.jsonl",
        )
        cfg = spec.engine_config()
        assert (cfg.workers, cfg.chunks, cfg.max_retries) == (3, 7, 5)
        assert cfg.chunk_timeout == 9.0
        assert cfg.checkpoint_path == "/tmp/x.jsonl"

    def test_top_level_reexports(self):
        assert repro.ExperimentSpec is ExperimentSpec
        assert "ExperimentSpec" in repro.__all__
        assert "MetricsRegistry" in repro.__all__
        assert "run_experiment" in repro.__all__
        missing = [name for name in repro.__all__ if not hasattr(repro, name)]
        assert missing == []


class TestRunExperimentSpec:
    def test_spec_call_is_warning_free(self):
        spec = ExperimentSpec(n=64, d=3, trials=6, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            res = run_experiment(DoubleHashingChoices(64, 3), spec)
        assert res.distribution.trials == 6

    def test_legacy_call_warns_and_matches_spec_call(self):
        spec = ExperimentSpec(n=64, d=3, trials=6, seed=9)
        new = run_experiment(FullyRandomChoices(64, 3), spec)
        with pytest.warns(DeprecationWarning, match="ExperimentSpec"):
            old = run_experiment(FullyRandomChoices(64, 3), 64, 6, seed=9)
        assert np.array_equal(
            new.distribution.counts, old.distribution.counts
        )

    def test_overrides_on_top_of_spec(self):
        spec = ExperimentSpec(n=64, d=3, trials=4, seed=1)
        res = run_experiment(DoubleHashingChoices(64, 3), spec, trials=8)
        assert res.distribution.trials == 8

    def test_heavy_load_via_n_balls(self):
        spec = ExperimentSpec(n=32, d=3, trials=3, seed=1, n_balls=128)
        res = run_experiment(FullyRandomChoices(32, 3), spec)
        # 128 balls in 32 bins: mean load 4.
        assert res.distribution.counts.sum() == 3 * 32

    def test_metrics_out_writes_snapshot(self, tmp_path):
        path = tmp_path / "m.json"
        spec = ExperimentSpec(
            n=64, d=3, trials=6, seed=1, metrics_out=str(path)
        )
        res = run_experiment(DoubleHashingChoices(64, 3), spec)
        data = json.loads(path.read_text())
        assert data["counters"]["experiment.trials"] == 6
        assert data["counters"]["rng.draws_estimate"] == 6 * 64 * 3
        assert len(data["chunks"]) > 0
        assert res.metrics is not None

    def test_checkpoint_resume_via_spec(self, tmp_path):
        spec = ExperimentSpec(
            n=64, d=3, trials=8, seed=2, chunks=4,
            checkpoint=str(tmp_path / "ck.jsonl"),
        )
        first = run_experiment(DoubleHashingChoices(64, 3), spec)
        from repro.metrics import MetricsRegistry

        registry = MetricsRegistry()
        second = run_experiment(
            DoubleHashingChoices(64, 3), spec, metrics=registry
        )
        assert registry.get_counter("engine.chunks_resumed") == 4
        assert np.array_equal(
            first.distribution.counts, second.distribution.counts
        )


class TestTableShims:
    def test_spec_call_is_warning_free(self):
        spec = ExperimentSpec(n=256, d=3, trials=5, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            table = table1_load_fractions(spec)
        assert table.meta["n"] == 256

    def test_legacy_keywords_warn_and_match(self):
        spec = ExperimentSpec(n=256, d=3, trials=5, seed=1)
        new = table1_load_fractions(spec)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            old = table1_load_fractions(3, n=256, trials=5, seed=1)
        assert old.rows == new.rows

    def test_legacy_positional_d_warns(self):
        with pytest.warns(DeprecationWarning):
            table = table1_load_fractions(4, n=128, trials=3, seed=1)
        assert table.meta["d"] == 4

    def test_spec_plus_legacy_keywords_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            table1_load_fractions(ExperimentSpec(), n=128)

    def test_defaults_need_no_warning(self):
        # Bare call == TABLE_DEFAULTS; nothing deprecated about it.
        spec = TABLE_DEFAULTS["table6"].replace(n=128, trials=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            table = table6_heavy_load(spec)
        assert table.meta["m"] == 128 * 16


class TestCliSpecDefaults:
    def test_subcommand_defaults_come_from_table_defaults(self):
        parser = build_parser()
        for name, spec in TABLE_DEFAULTS.items():
            args = parser.parse_args([name])
            assert args.n == spec.n, name
            assert args.d == spec.d, name
            assert args.trials == spec.trials, name
            assert args.seed == spec.seed, name
            assert args.workers == spec.workers, name
            assert args.retries == spec.max_retries, name

    def test_engine_flags_parse(self):
        args = build_parser().parse_args(
            [
                "table1", "--n", "128", "--trials", "4",
                "--retries", "5", "--chunk-timeout", "30",
                "--checkpoint", "/tmp/c.jsonl", "--metrics-out", "/tmp/m.json",
                "--progress", "--chunks", "2",
            ]
        )
        assert args.retries == 5
        assert args.chunk_timeout == 30.0
        assert args.checkpoint == "/tmp/c.jsonl"
        assert args.metrics_out == "/tmp/m.json"
        assert args.progress is True
        assert args.chunks == 2

    def test_backend_and_block_flags_parse_and_thread(self):
        from repro.experiments.cli import _spec_from_args

        args = build_parser().parse_args(
            ["table1", "--backend", "numpy", "--block", "512"]
        )
        assert args.backend == "numpy" and args.block == 512
        spec = _spec_from_args("table1", args)
        assert spec.backend == "numpy" and spec.block == 512

    def test_backend_flag_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--backend", "fortran"])

    def test_backend_default_is_none(self):
        args = build_parser().parse_args(["table1"])
        assert args.backend is None

    def test_metrics_out_end_to_end(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        assert main(
            ["table1", "--n", "256", "--trials", "10",
             "--metrics-out", str(path)]
        ) == 0
        data = json.loads(path.read_text())
        assert data["counters"]["engine.chunks_total"] > 0
        assert "engine.retries" in data["counters"]
        assert all("seconds" in c for c in data["chunks"])

    def test_checkpoint_resume_end_to_end(self, tmp_path, capsys):
        ck = tmp_path / "ck.jsonl"
        metrics = tmp_path / "m.json"
        argv = ["table1", "--n", "256", "--trials", "10",
                "--checkpoint", str(ck)]
        assert main(argv) == 0
        out_first = capsys.readouterr().out
        assert main(argv + ["--metrics-out", str(metrics)]) == 0
        out_second = capsys.readouterr().out
        assert out_first == out_second  # resumed run prints identical table
        data = json.loads(metrics.read_text())
        resumed = data["counters"]["engine.chunks_resumed"]
        assert resumed == data["counters"]["engine.chunks_total"] > 0

    def test_progress_prints_to_stderr(self, capsys):
        assert main(
            ["table1", "--n", "128", "--trials", "4", "--progress"]
        ) == 0
        err = capsys.readouterr().err
        assert "[engine] chunk" in err
