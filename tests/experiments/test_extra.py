"""Tests for the open-question experiments (gap probe, scheme zoo)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.extra import gap_experiment, scheme_zoo_experiment


class TestGapExperiment:
    def test_gap_flat_in_m_for_both_schemes(self):
        """The Berenbrink et al. phenomenon: the gap max − m/n does not grow
        with m — and (the open-question probe) neither does it for double
        hashing at these scales."""
        exp = gap_experiment(512, 3, balls_per_bin=(1, 8, 32), trials=10,
                             seed=1)
        # Gap stays within a small constant band across a 32x range of m.
        assert exp.gap_random.max() - exp.gap_random.min() < 2.0
        assert exp.gap_double.max() - exp.gap_double.min() < 2.0

    def test_schemes_agree(self):
        exp = gap_experiment(512, 3, balls_per_bin=(1, 16), trials=10, seed=2)
        for gr, gd in zip(exp.gap_random, exp.gap_double):
            assert gr == pytest.approx(gd, abs=1.0)

    def test_gap_positive(self):
        exp = gap_experiment(256, 3, balls_per_bin=(4,), trials=5, seed=3)
        assert (exp.gap_random > 0).all()
        assert (exp.gap_double > 0).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            gap_experiment(64, 3, balls_per_bin=(), trials=5)
        with pytest.raises(ConfigurationError):
            gap_experiment(64, 3, trials=0)


class TestSchemeZoo:
    @pytest.fixture(scope="class")
    def zoo(self):
        return scheme_zoo_experiment(2048, trials=40, d=4, seed=4)

    def test_all_schemes_present(self, zoo):
        assert set(zoo) == {
            "one-choice",
            "one-plus-beta(0.5)",
            "kp-blocks",
            "fully-random",
            "double-hashing",
            "d-left-double",
        }

    def test_balancing_hierarchy(self, zoo):
        """More/better choices -> fewer overloaded bins:
        one-choice > (1+beta) > kp-blocks >= fully-random ~ double >
        d-left."""
        t = {name: s["tail2"] for name, s in zoo.items()}
        assert t["one-choice"] > t["one-plus-beta(0.5)"]
        assert t["one-plus-beta(0.5)"] > t["kp-blocks"]
        assert t["kp-blocks"] >= t["fully-random"] - 0.002
        assert t["d-left-double"] < t["double-hashing"]

    def test_double_equals_random(self, zoo):
        # Tolerance ~4 pooled standard errors at this scale.
        assert zoo["double-hashing"]["empty"] == pytest.approx(
            zoo["fully-random"]["empty"], abs=0.006
        )
        assert zoo["double-hashing"]["tail2"] == pytest.approx(
            zoo["fully-random"]["tail2"], abs=0.006
        )

    def test_max_load_hierarchy(self, zoo):
        assert zoo["one-choice"]["max_load"] > zoo["fully-random"]["max_load"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            scheme_zoo_experiment(100, d=3)  # odd d
        with pytest.raises(ConfigurationError):
            scheme_zoo_experiment(102, d=4)  # not divisible