"""Tests for the Wormald deviation sweep."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fluid.wormald import deviation_sweep
from repro.hashing import DoubleHashingChoices, FullyRandomChoices


class TestDeviationSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return deviation_sweep(
            DoubleHashingChoices, 3, n_values=(128, 512, 2048),
            trials=60, seed=1,
        )

    def test_deviation_shrinks_with_n(self, sweep):
        assert sweep.deviations[-1] < sweep.deviations[0]

    def test_decay_exponent_near_clt(self, sweep):
        """With trials averaging, the deviation scales like the standard
        error of the mean tail fraction: between ~n^-0.3 and ~n^-0.8."""
        assert 0.2 < sweep.decay_exponent < 1.0

    def test_absolute_scale_small(self, sweep):
        assert sweep.deviations[-1] < 0.01

    def test_random_scheme_similar(self):
        sweep_r = deviation_sweep(
            FullyRandomChoices, 3, n_values=(128, 1024), trials=40, seed=2
        )
        assert sweep_r.deviations[-1] < 0.01

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            deviation_sweep(DoubleHashingChoices, 3, n_values=(128,))
        with pytest.raises(ConfigurationError):
            deviation_sweep(DoubleHashingChoices, 3, n_values=(512, 128))
