"""Tests for the d-choice fluid limit — including the paper's Table 2 values."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.certify.anchors import anchor_value
from repro.errors import ConfigurationError
from repro.fluid import solve_balls_bins, solve_heavy_load


class TestPaperValues:
    """Anchors from the paper's Table 2 (d = 3, T = 1)."""

    def test_table2_tail_fractions(self):
        fl = solve_balls_bins(3, 1.0)
        # Paper rounds to 4 decimals; the solver is a hair inside that.
        assert fl.tail_at(1) == pytest.approx(
            anchor_value("table2/fluid/tail1"), abs=1.5e-4
        )
        assert fl.tail_at(2) == pytest.approx(
            anchor_value("table2/fluid/tail2"), abs=1.5e-4
        )
        assert fl.tail_at(3) == pytest.approx(
            anchor_value("table2/fluid/tail3"), abs=5e-6
        )

    def test_table1_load_fractions_d3(self):
        # The fluid limit should sit on the paper's largest-n (2^18) column.
        fl = solve_balls_bins(3, 1.0)
        for load in range(4):
            assert fl.fraction_at(load) == pytest.approx(
                anchor_value(f"table3/n18/d3/random/load{load}"), abs=1e-4
            )

    def test_table1_load_fractions_d4(self):
        fl = solve_balls_bins(4, 1.0)
        for load in range(3):
            assert fl.fraction_at(load) == pytest.approx(
                anchor_value(f"table1/d4/random/load{load}"), abs=1e-4
            )
        assert fl.fraction_at(3) == pytest.approx(2.3e-5, abs=2e-6)


class TestExactSpecialCases:
    def test_d1_is_poisson(self):
        """For d = 1, x_i(t) is the Poisson(t) upper tail — closed form."""
        from scipy import stats as sps

        fl = solve_balls_bins(1, 1.0, max_load=12)
        for i in range(6):
            expected = float(sps.poisson.sf(i - 1, 1.0))
            assert fl.tail_at(i) == pytest.approx(expected, abs=1e-8)

    def test_mean_load_equals_time(self):
        """Ball conservation: sum of tails equals T exactly."""
        for d in (1, 2, 3, 4):
            for t in (0.25, 1.0, 2.0):
                fl = solve_balls_bins(d, t, max_load=24)
                assert fl.mean_load == pytest.approx(t, abs=1e-8)

    def test_zero_time(self):
        fl = solve_balls_bins(3, 0.0)
        assert fl.tail_at(0) == 1.0
        assert fl.tail_at(1) == 0.0


class TestStructure:
    def test_tails_monotone_decreasing(self):
        fl = solve_balls_bins(3, 1.0)
        assert all(np.diff(fl.tails) <= 1e-12)

    def test_tails_in_unit_interval(self):
        fl = solve_balls_bins(4, 2.0)
        assert (fl.tails >= 0).all() and (fl.tails <= 1).all()

    def test_fractions_sum_to_one(self):
        fl = solve_balls_bins(3, 1.0)
        assert fl.load_fractions.sum() == pytest.approx(1.0, abs=1e-10)

    def test_doubly_exponential_decay(self):
        """x_{i+1} ~ x_i^d near the tail: log-tail ratio grows ~ d-fold."""
        fl = solve_balls_bins(3, 1.0, max_load=6)
        # x3/x2^3 bounded: tail at 3 should be close to (tail at 2)^3 scale.
        ratio = fl.tail_at(3) / fl.tail_at(2) ** 3
        assert 0.05 < ratio < 2.0

    def test_larger_d_lighter_tail(self):
        tails = [solve_balls_bins(d, 1.0).tail_at(2) for d in (2, 3, 4, 5)]
        assert tails == sorted(tails, reverse=True)

    def test_tail_at_beyond_truncation_is_zero(self):
        fl = solve_balls_bins(3, 1.0, max_load=5)
        assert fl.tail_at(99) == 0.0
        assert fl.fraction_at(99) == 0.0

    def test_negative_load_rejected(self):
        fl = solve_balls_bins(3, 1.0)
        with pytest.raises(ValueError):
            fl.tail_at(-1)


class TestHeavyLoad:
    def test_table6_values_d3(self):
        """Paper Table 6(a): T = 16, d = 3 fluid predictions match the
        simulated fractions the paper reports (which sit at the limit)."""
        fl = solve_heavy_load(3, 16.0)
        assert fl.fraction_at(15) == pytest.approx(0.16885, abs=2e-4)
        assert fl.fraction_at(16) == pytest.approx(0.62220, abs=2e-4)
        assert fl.fraction_at(17) == pytest.approx(0.19482, abs=2e-4)
        assert fl.fraction_at(14) == pytest.approx(0.01254, abs=1e-4)

    def test_table6_values_d4(self):
        fl = solve_heavy_load(4, 16.0)
        assert fl.fraction_at(15) == pytest.approx(0.13908, abs=2e-4)
        assert fl.fraction_at(16) == pytest.approx(0.71110, abs=2e-4)
        assert fl.fraction_at(17) == pytest.approx(0.14622, abs=2e-4)

    def test_mean_is_balls_per_bin(self):
        fl = solve_heavy_load(3, 16.0)
        assert fl.mean_load == pytest.approx(16.0, abs=1e-6)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            solve_heavy_load(3, -1.0)


class TestValidation:
    def test_rejects_bad_d(self):
        with pytest.raises(ConfigurationError):
            solve_balls_bins(0, 1.0)

    def test_rejects_bad_truncation(self):
        with pytest.raises(ConfigurationError):
            solve_balls_bins(3, 1.0, max_load=0)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            solve_balls_bins(3, -0.5)


@given(
    d=st.integers(min_value=1, max_value=6),
    t=st.floats(min_value=0.01, max_value=4.0),
)
@settings(max_examples=30, deadline=None)
def test_property_conservation_and_monotonicity(d, t):
    fl = solve_balls_bins(d, t, max_load=int(t) + 14)
    assert fl.mean_load == pytest.approx(t, abs=1e-6)
    assert all(np.diff(fl.tails) <= 1e-9)
    assert (fl.load_fractions >= -1e-12).all()
