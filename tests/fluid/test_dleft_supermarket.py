"""Tests for the d-left and supermarket fluid limits (Tables 7 and 8)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.certify.anchors import anchor_value
from repro.errors import ConfigurationError
from repro.fluid import (
    equilibrium_mean_queue_length,
    equilibrium_mean_sojourn_time,
    equilibrium_tail,
    solve_balls_bins,
    solve_dleft,
    solve_supermarket,
)
from repro.fluid.supermarket import supermarket_rhs


class TestDLeftPaperValues:
    def test_table7_fractions(self):
        """Paper Table 7: d-left, 4 choices, at the largest-n column."""
        fl = solve_dleft(4, 1.0)
        for load in range(3):
            assert fl.fraction_at(load) == pytest.approx(
                anchor_value(f"table7/n18/random/load{load}"), abs=5e-5
            )

    def test_dleft_beats_symmetric(self):
        """Asymmetry helps: lighter >= 2 tail than the symmetric scheme."""
        dleft = solve_dleft(4, 1.0)
        sym = solve_balls_bins(4, 1.0)
        assert dleft.tails[2] < sym.tail_at(2)


class TestDLeftStructure:
    def test_conservation(self):
        fl = solve_dleft(3, 1.0)
        assert fl.tails[1:].sum() == pytest.approx(1.0, abs=1e-8)

    def test_left_subtables_fill_first(self):
        """Ties go left, so subtable 0 carries at least the load of
        subtable d-1 at level 1."""
        fl = solve_dleft(4, 1.0)
        assert fl.subtable_tails[1, 0] >= fl.subtable_tails[1, 3]

    def test_subtable_tails_monotone_in_level(self):
        fl = solve_dleft(4, 1.0)
        assert (np.diff(fl.subtable_tails, axis=0) <= 1e-12).all()

    def test_d1_reduces_to_one_choice(self):
        """With one subtable the process is plain one-choice: Poisson."""
        from scipy import stats as sps

        fl = solve_dleft(1, 1.0, max_load=10)
        for i in range(1, 5):
            assert fl.tails[i] == pytest.approx(
                float(sps.poisson.sf(i - 1, 1.0)), abs=1e-8
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            solve_dleft(0, 1.0)
        with pytest.raises(ConfigurationError):
            solve_dleft(3, 1.0, max_load=0)


class TestSupermarketEquilibrium:
    @pytest.mark.parametrize(
        "lam,d", [(0.9, 3), (0.9, 4), (0.99, 3), (0.99, 4)]
    )
    def test_table8_reference_column(self, lam, d):
        """The closed form reproduces the paper's Table 8 simulated values
        to ~1e-3 (the residual is the paper's own finite-n/finite-T noise)."""
        expected = anchor_value(f"table8/lam{lam}/d{d}/random")
        assert equilibrium_mean_sojourn_time(lam, d) == pytest.approx(
            expected, abs=2.5e-3
        )

    def test_d1_is_mm1(self):
        """d = 1 must reduce to M/M/1: mean sojourn 1/(1−λ)."""
        for lam in (0.3, 0.5, 0.9):
            assert equilibrium_mean_sojourn_time(lam, 1) == pytest.approx(
                1.0 / (1.0 - lam), rel=1e-9
            )

    def test_tail_formula(self):
        tail = equilibrium_tail(0.9, 3, max_jobs=5)
        assert tail[0] == 1.0
        assert tail[1] == pytest.approx(0.9)
        assert tail[2] == pytest.approx(0.9**4)
        assert tail[3] == pytest.approx(0.9**13)

    def test_tail_no_overflow_deep(self):
        tail = equilibrium_tail(0.5, 4, max_jobs=100)
        assert np.isfinite(tail).all()
        assert tail[-1] == 0.0

    def test_mean_queue_positive_and_below_mm1(self):
        mm1 = 0.9 / (1 - 0.9)  # M/M/1 mean queue length
        val = equilibrium_mean_queue_length(0.9, 2)
        assert 0 < val < mm1

    def test_more_choices_faster(self):
        times = [equilibrium_mean_sojourn_time(0.9, d) for d in (1, 2, 3, 4)]
        assert times == sorted(times, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            equilibrium_mean_sojourn_time(1.0, 3)
        with pytest.raises(ConfigurationError):
            equilibrium_mean_sojourn_time(0.9, 0)


class TestSupermarketTransient:
    def test_converges_to_equilibrium(self):
        fl = solve_supermarket(0.9, 3, 200.0)
        assert fl.mean_sojourn_time == pytest.approx(
            equilibrium_mean_sojourn_time(0.9, 3), abs=1e-6
        )

    def test_fixed_point_is_stationary(self):
        """The RHS vanishes at the closed-form equilibrium tail."""
        tail = equilibrium_tail(0.9, 3, max_jobs=30)
        rhs = supermarket_rhs(0.0, tail[1:], 0.9, 3)
        assert np.abs(rhs).max() < 1e-12

    def test_warm_restart(self):
        first = solve_supermarket(0.9, 3, 50.0)
        resumed = solve_supermarket(0.9, 3, 150.0, start_tails=first.tails)
        direct = solve_supermarket(0.9, 3, 200.0)
        assert resumed.mean_sojourn_time == pytest.approx(
            direct.mean_sojourn_time, abs=1e-7
        )

    def test_monotone_build_up_from_empty(self):
        early = solve_supermarket(0.9, 3, 1.0)
        late = solve_supermarket(0.9, 3, 20.0)
        assert early.mean_queue_length < late.mean_queue_length

    def test_tails_shape(self):
        fl = solve_supermarket(0.5, 2, 10.0, max_jobs=12)
        assert fl.tails.shape == (13,)
        assert fl.tails[0] == 1.0


@given(
    lam=st.floats(min_value=0.05, max_value=0.98),
    d=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=40, deadline=None)
def test_property_equilibrium_tail_monotone(lam, d):
    tail = equilibrium_tail(lam, d)
    assert (np.diff(tail) <= 1e-15).all()
    assert tail[0] == 1.0
    assert (tail >= 0).all()
