"""Tests for the built-in self-validation suite."""

from __future__ import annotations

from repro.validation import VALIDATION_CHECKS, run_validation


class TestValidationSuite:
    def test_all_checks_pass(self, capsys):
        assert run_validation(verbose=True)
        out = capsys.readouterr().out
        assert "FAIL" not in out
        assert out.count("PASS") == len(VALIDATION_CHECKS)

    def test_check_inventory(self):
        names = {c.name for c in VALIDATION_CHECKS}
        assert {
            "fluid-table2",
            "queueing-equilibrium",
            "indistinguishable",
            "majorization",
            "dleft-fluid",
            "witness-bound",
            "peeling-threshold",
            "queueing-simulation",
        } <= names

    def test_quiet_mode(self, capsys):
        assert run_validation(verbose=False)
        assert capsys.readouterr().out == ""

    def test_each_check_returns_detail(self):
        for check in VALIDATION_CHECKS:
            ok, detail = check.run()
            assert isinstance(ok, (bool,)) or ok in (True, False)
            assert isinstance(detail, str) and detail
