"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def rng2() -> np.random.Generator:
    """A second independent deterministic generator."""
    return np.random.default_rng(0xDECAF)
