"""Tests for Miller–Rabin primality and prime search."""

from __future__ import annotations

import pytest

from repro.numtheory import is_prime, next_prime, prev_prime


def _sieve(limit: int) -> list[bool]:
    flags = [True] * limit
    flags[0] = flags[1] = False
    for p in range(2, int(limit**0.5) + 1):
        if flags[p]:
            flags[p * p :: p] = [False] * len(flags[p * p :: p])
    return flags


class TestIsPrime:
    def test_agrees_with_sieve_to_10000(self):
        flags = _sieve(10000)
        for n in range(10000):
            assert is_prime(n) == flags[n], f"disagreement at {n}"

    @pytest.mark.parametrize(
        "p",
        [2**13 - 1, 2**17 - 1, 2**19 - 1, 2**31 - 1, 2**61 - 1, 16411, 65537],
    )
    def test_known_primes(self, p):
        assert is_prime(p)

    @pytest.mark.parametrize(
        "n",
        [561, 1105, 1729, 2465, 2821, 6601, 8911,  # Carmichael numbers
         2**14, 2**16, 2**31, (2**31 - 1) * (2**13 - 1)],
    )
    def test_known_composites(self, n):
        assert not is_prime(n)

    def test_negative_and_small(self):
        assert not is_prime(-7)
        assert not is_prime(0)
        assert not is_prime(1)

    def test_large_semiprime(self):
        p, q = 1000003, 1000033
        assert not is_prime(p * q)
        assert is_prime(p) and is_prime(q)


class TestNextPrevPrime:
    def test_next_prime_examples(self):
        assert next_prime(2**14) == 16411
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(13) == 17

    def test_prev_prime_examples(self):
        assert prev_prime(2**14) == 16381
        assert prev_prime(3) == 2
        assert prev_prime(20) == 19

    def test_prev_prime_below_smallest_raises(self):
        with pytest.raises(ValueError):
            prev_prime(2)

    def test_round_trip(self):
        for n in (100, 1000, 2**16, 2**20):
            p = next_prime(n)
            assert is_prime(p)
            assert prev_prime(p + 1) == p

    def test_next_prime_strictly_greater(self):
        assert next_prime(17) == 19
