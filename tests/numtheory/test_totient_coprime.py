"""Tests for factorization, Euler's totient, and unit sampling."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numtheory import (
    count_units,
    euler_phi,
    factorize,
    is_unit,
    sample_units,
    units_mod,
)


class TestFactorize:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (1, {}),
            (2, {2: 1}),
            (360, {2: 3, 3: 2, 5: 1}),
            (2**14, {2: 14}),
            (16411, {16411: 1}),
            (1000003 * 1000033, {1000003: 1, 1000033: 1}),
        ],
    )
    def test_known_factorizations(self, n, expected):
        assert factorize(n) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            factorize(0)

    @given(st.integers(min_value=2, max_value=10**6))
    @settings(max_examples=200, deadline=None)
    def test_product_of_factors_reconstructs(self, n):
        product = 1
        for p, e in factorize(n).items():
            product *= p**e
        assert product == n


class TestEulerPhi:
    def test_small_values_by_enumeration(self):
        for n in range(1, 200):
            brute = sum(1 for g in range(1, n + 1) if math.gcd(g, n) == 1)
            assert euler_phi(n) == brute, f"phi({n})"

    def test_power_of_two(self):
        assert euler_phi(2**14) == 2**13

    def test_prime(self):
        assert euler_phi(16411) == 16410

    def test_multiplicative_on_coprimes(self):
        assert euler_phi(7 * 16) == euler_phi(7) * euler_phi(16)

    def test_count_units_alias(self):
        assert count_units(360) == euler_phi(360)


class TestUnits:
    def test_is_unit_basic(self):
        assert is_unit(3, 10)
        assert not is_unit(5, 10)
        assert is_unit(1, 2)

    def test_is_unit_reduces_mod_n(self):
        assert is_unit(13, 10)  # 13 mod 10 = 3

    def test_units_mod_prime_is_everything(self):
        units = units_mod(13)
        assert list(units) == list(range(1, 13))

    def test_units_mod_power_of_two_is_odds(self):
        units = units_mod(16)
        assert list(units) == [1, 3, 5, 7, 9, 11, 13, 15]

    def test_units_mod_count_matches_phi(self):
        for n in (12, 30, 100, 128):
            assert len(units_mod(n)) == euler_phi(n)


class TestSampleUnits:
    @pytest.mark.parametrize("n", [2, 16, 1024, 13, 16411, 12, 360, 1000])
    def test_samples_are_units(self, n, rng):
        out = sample_units(n, 500, rng)
        assert np.all(np.gcd(out, n) == 1)
        assert out.min() >= 1 and out.max() < max(n, 2)

    def test_shape_tuple(self, rng):
        out = sample_units(64, (3, 5), rng)
        assert out.shape == (3, 5)

    def test_modulus_two_always_one(self, rng):
        assert (sample_units(2, 20, rng) == 1).all()

    def test_uniform_over_units_chi2(self, rng):
        n = 12  # units: 1, 5, 7, 11
        out = sample_units(n, 8000, rng)
        counts = np.bincount(out, minlength=n)
        units = [1, 5, 7, 11]
        observed = counts[units]
        expected = 8000 / 4
        chi2 = float(((observed - expected) ** 2 / expected).sum())
        assert chi2 < 16.27  # chi2_{0.999, df=3}

    def test_rejects_tiny_modulus(self, rng):
        with pytest.raises(ValueError):
            sample_units(1, 5, rng)

    def test_small_composite_uses_cached_table(self, rng):
        """Small composite moduli sample from a cached unit table (one
        bounded draw, no rejection loop); results must still be exactly
        the units."""
        from repro.numtheory.coprime import _UNIT_TABLE_MAX, _unit_table

        _unit_table.cache_clear()
        out = sample_units(360, 2000, rng)
        assert _unit_table.cache_info().misses == 1
        sample_units(360, 10, rng)
        assert _unit_table.cache_info().hits == 1
        assert np.all(np.gcd(out, 360) == 1)
        assert set(np.unique(out)) <= set(units_mod(360).tolist())
        assert _UNIT_TABLE_MAX >= 360

    def test_cached_table_is_immutable(self):
        from repro.numtheory.coprime import _unit_table

        table = _unit_table(100)
        with pytest.raises(ValueError):
            table[0] = 99

    def test_large_composite_falls_back_to_rejection(self, rng):
        from repro.numtheory.coprime import _UNIT_TABLE_MAX

        n = 6 * 1024  # composite, above the table cap
        assert n > _UNIT_TABLE_MAX
        out = sample_units(n, 300, rng)
        assert np.all(np.gcd(out, n) == 1)
