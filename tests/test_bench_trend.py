"""Tests for tools/bench_trend.py: collation, splicing, drift check."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "bench_trend", REPO_ROOT / "tools" / "bench_trend.py"
)
bench_trend = importlib.util.module_from_spec(_spec)
sys.modules["bench_trend"] = bench_trend
_spec.loader.exec_module(bench_trend)


def _write_fixture(root: Path) -> None:
    (root / "BENCH_kernels.json").write_text(json.dumps({
        "results": {
            "legacy": {"median_seconds": 0.07, "balls_per_second": 3.0e6,
                       "speedup_vs_legacy": 1.0},
            "numpy": {"median_seconds": 0.037, "balls_per_second": 5.5e6,
                      "speedup_vs_legacy": 1.9},
            "numba": {"status": "unavailable", "error": "no numba"},
        },
    }))
    (root / "BENCH_service.json").write_text(json.dumps({
        "results": {
            "double": {"insert_ops_per_second": 1.0e7,
                       "lookup_ops_per_second": 2.0e7,
                       "throughput_vs_double": 1.0},
        },
        "backends": {
            "reference": {"insert_ops_per_second": 3.0e6,
                          "lookup_ops_per_second": 7.0e6,
                          "throughput_vs_reference": 1.0},
            "numpy": {"insert_ops_per_second": 1.0e7,
                      "lookup_ops_per_second": 2.0e7,
                      "throughput_vs_reference": 3.2},
        },
    }))


class TestCollect:
    def test_rows_cover_sections_and_metrics(self, tmp_path):
        _write_fixture(tmp_path)
        rows = bench_trend.collect(tmp_path)
        keys = {(r[0], r[1], r[2], r[3]) for r in rows}
        assert ("kernels", "placement", "numpy", "balls") in keys
        assert ("service", "schemes", "double", "insert ops") in keys
        assert ("service", "keymap", "numpy", "lookup ops") in keys
        # Unavailable tiers are listed, not dropped.
        unavailable = [r for r in rows if r[4] == "unavailable"]
        assert [r[2] for r in unavailable] == ["numba"]

    def test_missing_files_are_skipped(self, tmp_path):
        assert bench_trend.collect(tmp_path) == []

    def test_ratio_column_names_baseline(self, tmp_path):
        _write_fixture(tmp_path)
        rows = bench_trend.collect(tmp_path)
        numpy_keymap = [
            r for r in rows if r[:3] == ("service", "keymap", "numpy")
        ]
        assert all(r[5] == "3.20x vs reference" for r in numpy_keymap)


class TestSplice:
    def test_appends_section_when_markers_absent(self, tmp_path):
        _write_fixture(tmp_path)
        block = bench_trend.render(bench_trend.collect(tmp_path))
        out = bench_trend.splice("# Doc\n\nbody\n", block)
        assert out.count(bench_trend.BEGIN_MARK) == 1
        assert out.count(bench_trend.END_MARK) == 1
        assert "| family | section |" in out

    def test_replaces_existing_block_idempotently(self, tmp_path):
        _write_fixture(tmp_path)
        block = bench_trend.render(bench_trend.collect(tmp_path))
        doc = bench_trend.splice("# Doc\n\nbody\n", block)
        again = bench_trend.splice(doc, block)
        assert again == doc
        stale = doc.replace("3.20x", "9.99x")
        assert bench_trend.splice(stale, block) == doc

    def test_preserves_text_outside_markers(self, tmp_path):
        _write_fixture(tmp_path)
        block = bench_trend.render(bench_trend.collect(tmp_path))
        doc = bench_trend.splice("# Doc\n\nbefore\n", block) + "\nafter\n"
        updated = bench_trend.splice(doc, block)
        assert "before" in updated and "after" in updated


class TestCheckMode:
    def test_repo_doc_is_current(self):
        # The shipped docs/performance.md table must match the shipped
        # BENCH_*.json artifacts — the same drift contract CI enforces.
        assert bench_trend.main(["--check"]) == 0

    def test_check_fails_on_stale_doc(self, tmp_path, capsys):
        _write_fixture(tmp_path)
        doc = tmp_path / "perf.md"
        doc.write_text("# Doc\n")

        orig_root = bench_trend.REPO_ROOT
        bench_trend.REPO_ROOT = tmp_path
        try:
            assert bench_trend.main(["--doc", str(doc)]) == 0
            assert bench_trend.main(["--check", "--doc", str(doc)]) == 0
            # Stale JSON -> table drift -> check fails.
            (tmp_path / "BENCH_kernels.json").write_text(json.dumps({
                "results": {
                    "numpy": {"balls_per_second": 9.9e6,
                              "speedup_vs_legacy": 2.5},
                },
            }))
            assert bench_trend.main(["--check", "--doc", str(doc)]) == 1
        finally:
            bench_trend.REPO_ROOT = orig_root
