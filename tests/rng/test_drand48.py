"""Tests for the POSIX drand48 port.

Golden values were produced by glibc's drand48/lrand48/mrand48 (verified
against a compiled C program during development); the port must be
bit-exact.
"""

from __future__ import annotations

import pytest

from repro.rng import Drand48
from repro.rng.drand48 import DRAND48_A, DRAND48_C, DRAND48_MASK

# glibc reference: srand48(1); drand48() x5.
GLIBC_DRAND48_SEED1 = [
    0.041630344771878214,
    0.45449244472862915,
    0.83481721816691490,
    0.33598603014520023,
    0.56548940356613642,
]


class TestGoldenValues:
    def test_drand48_matches_glibc(self):
        gen = Drand48(1)
        for expected in GLIBC_DRAND48_SEED1:
            assert gen.drand48() == pytest.approx(expected, abs=0.0)

    def test_lrand48_matches_glibc(self):
        gen = Drand48(12345)
        assert gen.lrand48() == 483889296

    def test_mrand48_matches_glibc(self):
        gen = Drand48(12345)
        gen.lrand48()  # advance one step, as in the reference program
        assert gen.mrand48() == -347106078


class TestSeeding:
    def test_srand48_state_layout(self):
        gen = Drand48(0)
        assert gen.state == 0x330E

    def test_srand48_high_bits(self):
        gen = Drand48(0xDEADBEEF)
        assert gen.state == ((0xDEADBEEF << 16) | 0x330E)

    def test_seed_truncated_to_32_bits(self):
        assert Drand48(2**40 + 7).state == Drand48(7).state

    def test_reseed_resets_sequence(self):
        gen = Drand48(99)
        first = [gen.drand48() for _ in range(3)]
        gen.srand48(99)
        assert [gen.drand48() for _ in range(3)] == first


class TestRecurrence:
    def test_single_step_formula(self):
        gen = Drand48(1)
        before = gen.state
        gen.drand48()
        assert gen.state == (DRAND48_A * before + DRAND48_C) & DRAND48_MASK

    def test_state_stays_48_bits(self):
        gen = Drand48(0xFFFFFFFF)
        for _ in range(100):
            gen.drand48()
            assert 0 <= gen.state < 2**48


class TestOutputs:
    def test_drand48_range(self):
        gen = Drand48(7)
        values = [gen.drand48() for _ in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_lrand48_range(self):
        gen = Drand48(7)
        values = [gen.lrand48() for _ in range(1000)]
        assert all(0 <= v < 2**31 for v in values)

    def test_mrand48_range(self):
        gen = Drand48(7)
        values = [gen.mrand48() for _ in range(1000)]
        assert all(-(2**31) <= v < 2**31 for v in values)
        assert any(v < 0 for v in values)

    def test_mean_is_near_half(self):
        gen = Drand48(3)
        mean = sum(gen.drand48() for _ in range(20000)) / 20000
        assert abs(mean - 0.5) < 0.01


class TestBitGeneratorProtocol:
    def test_next_u64_range(self):
        gen = Drand48(5)
        for _ in range(100):
            v = gen.next_u64()
            assert 0 <= v < 2**64

    def test_random_uses_native_drand48(self):
        a, b = Drand48(11), Drand48(11)
        assert [a.random() for _ in range(5)] == [b.drand48() for _ in range(5)]

    def test_integers_in_range(self):
        gen = Drand48(13)
        values = [gen.integers(10, 20) for _ in range(500)]
        assert all(10 <= v < 20 for v in values)
        assert set(values) == set(range(10, 20))

    def test_integers_rejects_empty_range(self):
        with pytest.raises(ValueError):
            Drand48(1).integers(5, 5)
