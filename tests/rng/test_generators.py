"""Tests for SplitMix64, xorshift128+, and PCG32.

SplitMix64 and PCG32 are checked against published reference vectors
(Steele et al.'s splitmix64.c outputs for seed 0; O'Neill's pcg32-demo
output for seed (42, 54)).
"""

from __future__ import annotations

import pytest

from repro.rng import PCG32, Drand48, SplitMix64, Xorshift128Plus
from repro.rng.splitmix import splitmix64_mix

# Reference outputs of splitmix64.c with state = 0.
SPLITMIX_SEED0 = [0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F]

# Reference outputs of O'Neill's pcg32-global-demo, seeded (42, 54).
PCG32_DEMO = [0xA15C02B7, 0x7B47F409, 0xBA1D3330, 0x83D2F293, 0xBFA4784B, 0xCBED606E]


class TestSplitMix64:
    def test_reference_vector(self):
        gen = SplitMix64(0)
        assert [gen.next_u64() for _ in range(3)] == SPLITMIX_SEED0

    def test_mix_is_bijective_sample(self):
        outputs = {splitmix64_mix(i) for i in range(10000)}
        assert len(outputs) == 10000

    def test_seed_reduced_mod_2_64(self):
        assert SplitMix64(2**64 + 5).state == SplitMix64(5).state

    def test_distinct_seeds_distinct_streams(self):
        a = [SplitMix64(1).next_u64() for _ in range(1)]
        b = [SplitMix64(2).next_u64() for _ in range(1)]
        assert a != b


class TestPCG32:
    def test_reference_vector(self):
        gen = PCG32(42, 54)
        assert [gen.next_u32() for _ in range(6)] == PCG32_DEMO

    def test_streams_differ(self):
        a = PCG32(7, 1)
        b = PCG32(7, 2)
        assert [a.next_u32() for _ in range(4)] != [b.next_u32() for _ in range(4)]

    def test_next_u64_combines_two_words(self):
        a, b = PCG32(9, 3), PCG32(9, 3)
        hi, lo = b.next_u32(), b.next_u32()
        assert a.next_u64() == (hi << 32) | lo

    def test_output_range(self):
        gen = PCG32(1)
        assert all(0 <= gen.next_u32() < 2**32 for _ in range(1000))


class TestXorshift128Plus:
    def test_deterministic(self):
        a = [Xorshift128Plus(5).next_u64() for _ in range(1)]
        b = [Xorshift128Plus(5).next_u64() for _ in range(1)]
        assert a == b

    def test_nonzero_state(self):
        gen = Xorshift128Plus(0)
        s0, s1 = gen.state
        assert (s0, s1) != (0, 0)

    def test_output_range(self):
        gen = Xorshift128Plus(3)
        assert all(0 <= gen.next_u64() < 2**64 for _ in range(1000))

    def test_no_short_cycle(self):
        gen = Xorshift128Plus(1)
        seen = [gen.next_u64() for _ in range(5000)]
        assert len(set(seen)) == 5000


@pytest.mark.parametrize(
    "factory",
    [lambda: Drand48(4), lambda: SplitMix64(4), lambda: Xorshift128Plus(4),
     lambda: PCG32(4)],
    ids=["drand48", "splitmix", "xorshift", "pcg32"],
)
class TestSharedProtocol:
    def test_random_in_unit_interval(self, factory):
        gen = factory()
        values = [gen.random() for _ in range(2000)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_random_mean(self, factory):
        gen = factory()
        mean = sum(gen.random() for _ in range(20000)) / 20000
        assert abs(mean - 0.5) < 0.02

    def test_integers_uniformity(self, factory):
        gen = factory()
        counts = [0] * 8
        for _ in range(8000):
            counts[gen.integers(0, 8)] += 1
        assert min(counts) > 800  # each cell near 1000

    def test_integers_array_shape(self, factory):
        out = factory().integers_array(0, 50, 64)
        assert out.shape == (64,)
        assert out.min() >= 0 and out.max() < 50

    def test_random_array_shape(self, factory):
        out = factory().random_array(32)
        assert out.shape == (32,)
        assert (out >= 0).all() and (out < 1).all()
