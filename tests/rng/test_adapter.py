"""Tests for the numpy-Generator adapter over pure-Python bit generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import simulate_batch, simulate_single_trial
from repro.hashing import DoubleHashingChoices
from repro.rng import Drand48, GeneratorAdapter, PCG32, Xorshift128Plus


class TestAdapterSurface:
    def test_integers_scalar(self):
        gen = GeneratorAdapter(Drand48(1))
        v = gen.integers(0, 10)
        assert 0 <= v < 10

    def test_integers_array_shape_and_range(self):
        gen = GeneratorAdapter(Drand48(2))
        out = gen.integers(5, 15, size=(3, 4), dtype=np.int64)
        assert out.shape == (3, 4)
        assert out.min() >= 5 and out.max() < 15
        assert out.dtype == np.int64

    def test_integers_single_arg_form(self):
        gen = GeneratorAdapter(PCG32(3))
        out = gen.integers(8, size=100)
        assert out.min() >= 0 and out.max() < 8

    def test_integers_endpoint(self):
        gen = GeneratorAdapter(PCG32(4))
        out = gen.integers(0, 1, size=200, endpoint=True)
        assert set(np.unique(out)) == {0, 1}

    def test_random_shapes(self):
        gen = GeneratorAdapter(Xorshift128Plus(5))
        scalar = gen.random()
        assert 0.0 <= scalar < 1.0
        arr = gen.random((2, 3))
        assert arr.shape == (2, 3)
        assert (arr >= 0).all() and (arr < 1).all()

    def test_exponential(self):
        gen = GeneratorAdapter(Drand48(6))
        out = gen.exponential(2.0, size=5000)
        assert (out > 0).all()
        assert out.mean() == pytest.approx(2.0, rel=0.1)

    def test_permutation(self):
        gen = GeneratorAdapter(PCG32(7))
        perm = gen.permutation(20)
        assert sorted(perm.tolist()) == list(range(20))


class TestEnginesOnPurePythonRNG:
    def test_vectorized_engine_runs_on_drand48(self):
        """The paper's generator drives the full production engine."""
        rng = GeneratorAdapter(Drand48(42))
        batch = simulate_batch(
            DoubleHashingChoices(128, 3), 128, 4, seed=rng,
            check_invariants=True,
        )
        assert (batch.loads.sum(axis=1) == 128).all()

    def test_reference_engine_runs_on_xorshift(self):
        rng = GeneratorAdapter(Xorshift128Plus(9))
        dist = simulate_single_trial(DoubleHashingChoices(64, 2), 64, seed=rng)
        assert dist.counts.sum() == 64

    def test_load_law_matches_numpy_rng(self):
        """Same engine + different raw bits -> same distribution (the
        ablation claim, run through the adapter path)."""
        drand = simulate_batch(
            DoubleHashingChoices(512, 3), 512, 20,
            seed=GeneratorAdapter(Drand48(10)),
        ).distribution()
        numpy_rng = simulate_batch(
            DoubleHashingChoices(512, 3), 512, 20, seed=11
        ).distribution()
        for load in range(3):
            assert drand.fraction_at(load) == pytest.approx(
                numpy_rng.fraction_at(load), abs=0.02
            )

    def test_deterministic_given_seed(self):
        a = simulate_batch(
            DoubleHashingChoices(64, 2), 64, 2,
            seed=GeneratorAdapter(Drand48(3)),
        )
        b = simulate_batch(
            DoubleHashingChoices(64, 2), 64, 2,
            seed=GeneratorAdapter(Drand48(3)),
        )
        assert np.array_equal(a.loads, b.loads)
