"""Tests for deterministic seed-stream spawning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import default_generator, spawn_generators, spawn_seeds
from repro.rng.streams import interleave_check


class TestDefaultGenerator:
    def test_none_gives_generator(self):
        assert isinstance(default_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = default_generator(123).integers(0, 1000, 10)
        b = default_generator(123).integers(0, 1000, 10)
        assert (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(5)
        assert default_generator(gen) is gen

    def test_seedsequence_accepted(self):
        seq = np.random.SeedSequence(77)
        gen = default_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn_seeds(1, 5)) == 5

    def test_spawn_deterministic(self):
        a = spawn_generators(42, 3)
        b = spawn_generators(42, 3)
        for ga, gb in zip(a, b):
            assert (ga.integers(0, 10**9, 5) == gb.integers(0, 10**9, 5)).all()

    def test_children_mutually_independent_keys(self):
        seeds = spawn_seeds(9, 16)
        assert interleave_check(seeds)

    def test_children_produce_distinct_streams(self):
        gens = spawn_generators(3, 4)
        draws = [tuple(g.integers(0, 2**62, 4)) for g in gens]
        assert len(set(draws)) == 4

    def test_zero_count(self):
        assert spawn_seeds(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)
