"""Streaming Welford merge tests (`StreamingLoadAggregator.merge`)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.max_load_stats import bootstrap_mean_ci
from repro.core.stats import StreamingLoadAggregator

N_BINS, N_BALLS = 64, 64


def _random_histograms(rng, trials, width):
    """Per-trial histograms with the correct bin total (sum == N_BINS)."""
    out = np.zeros((trials, width), np.int64)
    for t in range(trials):
        levels = rng.integers(0, width, size=N_BINS)
        out[t] = np.bincount(levels, minlength=width)
    return out


def _agg(histograms=None):
    agg = StreamingLoadAggregator(n_bins=N_BINS, n_balls=N_BALLS)
    if histograms is not None and len(histograms):
        agg.update_histograms(histograms)
    return agg


def _assert_same_aggregate(a, b, *, rtol=1e-9):
    assert a.trials == b.trials
    da, db = a.distribution(), b.distribution()
    assert np.array_equal(da.counts, db.counts)
    assert sorted(da.max_load_per_trial) == sorted(db.max_load_per_trial)
    width = max(len(a._counts), len(b._counts))
    for load in range(width):
        sa, sb = a.level_stats(load), b.level_stats(load)
        assert (sa.minimum, sa.maximum) == (sb.minimum, sb.maximum)
        assert sa.mean == pytest.approx(sb.mean, rel=rtol, abs=1e-12)
        assert sa.std == pytest.approx(sb.std, rel=1e-6, abs=1e-9)


class TestMergeCorrectness:
    def test_merge_equals_single_pass(self):
        rng = np.random.default_rng(1)
        hists = _random_histograms(rng, 30, 5)
        whole = _agg(hists)
        left, right = _agg(hists[:12]), _agg(hists[12:])
        left.merge(right)
        _assert_same_aggregate(left, whole)

    def test_merge_pads_mismatched_widths(self):
        rng = np.random.default_rng(2)
        wide = _random_histograms(rng, 8, 6)
        narrow = _random_histograms(rng, 8, 3)
        whole = _agg(np.pad(narrow, ((0, 0), (0, 3))))
        whole.update_histograms(wide)
        merged = _agg(narrow)
        merged.merge(_agg(wide))
        _assert_same_aggregate(merged, whole)

    def test_merge_into_empty_copies(self):
        rng = np.random.default_rng(3)
        hists = _random_histograms(rng, 10, 4)
        empty = _agg()
        empty.merge(_agg(hists))
        _assert_same_aggregate(empty, _agg(hists))

    def test_merge_of_empty_is_noop(self):
        rng = np.random.default_rng(4)
        hists = _random_histograms(rng, 10, 4)
        agg = _agg(hists)
        agg.merge(_agg())
        _assert_same_aggregate(agg, _agg(hists))

    def test_associativity(self):
        rng = np.random.default_rng(5)
        parts = [_random_histograms(rng, t, 5) for t in (7, 11, 3)]
        left = _agg(parts[0])
        left.merge(_agg(parts[1]))
        left.merge(_agg(parts[2]))
        bc = _agg(parts[1])
        bc.merge(_agg(parts[2]))
        right = _agg(parts[0])
        right.merge(bc)
        _assert_same_aggregate(left, right)

    def test_geometry_mismatch_raises(self):
        other = StreamingLoadAggregator(n_bins=N_BINS + 1, n_balls=N_BALLS)
        with pytest.raises(ValueError, match="geometry"):
            _agg().merge(other)


class TestAgainstBatchFormulas:
    def test_mean_std_match_numpy(self):
        rng = np.random.default_rng(6)
        hists = _random_histograms(rng, 40, 5)
        agg = _agg(hists[:15])
        agg.merge(_agg(hists[15:25]))
        agg.merge(_agg(hists[25:]))
        for load in range(5):
            col = hists[:, load].astype(float)
            stats = agg.level_stats(load)
            assert stats.mean == pytest.approx(col.mean(), rel=1e-12)
            assert stats.std == pytest.approx(col.std(ddof=1), rel=1e-9)
            assert stats.minimum == col.min()
            assert stats.maximum == col.max()

    def test_bootstrap_paths_agree_after_merge(self):
        # The bootstrap CIs consume dist.max_load_per_trial; a merged
        # aggregator must hand them the same trials (order-insensitively,
        # so compare on sorted maxima, which the resampler treats as a
        # multiset via its index draw over identical sorted inputs).
        rng = np.random.default_rng(7)
        hists = _random_histograms(rng, 50, 6)
        whole = _agg(hists)
        merged = _agg(hists[:20])
        merged.merge(_agg(hists[20:]))
        full = np.sort(whole.distribution().max_load_per_trial)
        parts = np.sort(merged.distribution().max_load_per_trial)
        assert np.array_equal(full, parts)
        assert bootstrap_mean_ci(full, seed=3) == bootstrap_mean_ci(
            parts, seed=3
        )


class TestShardedGiantN:
    @settings(max_examples=25, deadline=None)
    @given(
        splits=st.lists(st.integers(1, 6), min_size=1, max_size=6),
        width=st.integers(2, 7),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_any_partition_merges_to_the_whole(self, splits, width, seed):
        # Property: however trials are partitioned into per-shard (or
        # per-host) aggregators, merging the partials reproduces the
        # single-pass aggregate — the giant-n reduction contract.
        rng = np.random.default_rng(seed)
        trials = sum(splits)
        hists = _random_histograms(rng, trials, width)
        whole = _agg(hists)
        merged = _agg()
        start = 0
        for size in splits:
            merged.merge(_agg(hists[start : start + size]))
            start += size
        _assert_same_aggregate(merged, whole)
