"""Tests for the weighted balls-into-bins engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weighted import simulate_weighted
from repro.errors import ConfigurationError
from repro.hashing import DoubleHashingChoices, FullyRandomChoices


class TestMechanics:
    def test_weight_conservation(self):
        res = simulate_weighted(
            FullyRandomChoices(64, 3), 128, trials=6, seed=1
        )
        assert np.allclose(res.loads.sum(axis=1), res.total_weight_per_trial)

    def test_mean_total_weight(self):
        """exp(1) weights: total ~ n_balls per trial."""
        res = simulate_weighted(
            FullyRandomChoices(128, 2), 2000, trials=10, seed=2
        )
        assert res.total_weight_per_trial.mean() == pytest.approx(
            2000, rel=0.05
        )

    def test_custom_sampler(self):
        res = simulate_weighted(
            FullyRandomChoices(32, 2), 100, trials=3, seed=3,
            weight_sampler=lambda rng, size: np.full(size, 2.0),
        )
        assert np.allclose(res.total_weight_per_trial, 200.0)

    def test_unit_weights_match_unweighted_law(self):
        """Constant weight 1 reduces to the standard process."""
        from repro.core import simulate_batch

        n, trials = 512, 40
        weighted = simulate_weighted(
            FullyRandomChoices(n, 3), n, trials, seed=4,
            weight_sampler=lambda rng, size: np.ones(size),
        )
        plain = simulate_batch(FullyRandomChoices(n, 3), n, trials, seed=5)
        # Same fraction of empty bins (weight 0 == load 0).
        frac_w = (weighted.loads == 0).mean()
        frac_p = (plain.loads == 0).mean()
        assert frac_w == pytest.approx(frac_p, abs=0.01)

    def test_bad_sampler_shape(self):
        with pytest.raises(ConfigurationError):
            simulate_weighted(
                FullyRandomChoices(16, 2), 10, trials=2, seed=6,
                weight_sampler=lambda rng, size: np.ones(3),
            )

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_weighted(
                FullyRandomChoices(16, 2), 10, trials=2, seed=7,
                weight_sampler=lambda rng, size: np.zeros(size),
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_weighted(FullyRandomChoices(16, 2), -1, trials=2)
        with pytest.raises(ConfigurationError):
            simulate_weighted(FullyRandomChoices(16, 2), 10, trials=0)


class TestPaperQuestionExtended:
    def test_double_matches_random_weighted(self):
        """The double-hashing question one setting out: weighted gaps and
        load spreads agree between schemes."""
        n, trials = 1024, 60
        a = simulate_weighted(FullyRandomChoices(n, 3), n, trials, seed=8)
        b = simulate_weighted(DoubleHashingChoices(n, 3), n, trials, seed=9)
        # Gap means under exp(1) weights have std ~1 per trial; allow a
        # ~3-sigma band on the difference of means.
        pooled_se = float(
            np.sqrt(
                a.gap_per_trial.var(ddof=1) / trials
                + b.gap_per_trial.var(ddof=1) / trials
            )
        )
        assert abs(a.gap_per_trial.mean() - b.gap_per_trial.mean()) < max(
            3.5 * pooled_se, 0.3
        )
        assert (a.loads == 0).mean() == pytest.approx(
            (b.loads == 0).mean(), abs=0.01
        )

    def test_two_choices_beat_one_weighted(self):
        n, trials = 1024, 15
        one = simulate_weighted(FullyRandomChoices(n, 1), n, trials, seed=10)
        two = simulate_weighted(FullyRandomChoices(n, 2), n, trials, seed=11)
        assert two.gap_per_trial.mean() < one.gap_per_trial.mean()


@given(
    n_exp=st.integers(min_value=3, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=20, deadline=None)
def test_property_weighted_conservation(n_exp, seed):
    n = 2**n_exp
    res = simulate_weighted(DoubleHashingChoices(n, 2), n, trials=3, seed=seed)
    assert np.allclose(res.loads.sum(axis=1), res.total_weight_per_trial)
    assert (res.loads >= 0).all()
