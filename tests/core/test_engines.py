"""Tests for the balls-and-bins engines: reference, vectorized, and their
distributional agreement."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import simulate_batch, simulate_single_trial
from repro.core.balls_bins import place_ball
from repro.errors import ConfigurationError, SimulationError
from repro.hashing import DoubleHashingChoices, FullyRandomChoices


class TestPlaceBall:
    def test_picks_least_loaded(self, rng):
        loads = np.array([5, 0, 3], dtype=np.int64)
        chosen = place_ball(loads, np.array([0, 1, 2]), rng)
        assert chosen == 1
        assert loads[1] == 1

    def test_left_tie_break_picks_first(self, rng):
        loads = np.array([2, 2, 2], dtype=np.int64)
        chosen = place_ball(loads, np.array([2, 0, 1]), rng, tie_break="left")
        assert chosen == 2

    def test_random_tie_break_covers_all_ties(self, rng):
        picks = set()
        for _ in range(200):
            loads = np.zeros(3, dtype=np.int64)
            picks.add(place_ball(loads, np.array([0, 1, 2]), rng))
        assert picks == {0, 1, 2}

    def test_mutates_only_chosen(self, rng):
        loads = np.array([1, 0, 2], dtype=np.int64)
        place_ball(loads, np.array([0, 1]), rng)
        assert loads.tolist() == [1, 1, 2]


class TestReferenceEngine:
    def test_conservation(self):
        dist = simulate_single_trial(FullyRandomChoices(32, 3), 100, seed=1)
        total = sum(i * c for i, c in enumerate(dist.counts))
        assert total == 100

    def test_zero_balls(self):
        dist = simulate_single_trial(FullyRandomChoices(8, 2), 0, seed=1)
        assert dist.counts[0] == 8
        assert dist.max_load == 0

    def test_return_loads_shape(self):
        loads = simulate_single_trial(
            FullyRandomChoices(16, 2), 40, seed=2, return_loads=True
        )
        assert loads.shape == (16,)
        assert loads.sum() == 40

    def test_negative_balls_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_single_trial(FullyRandomChoices(8, 2), -1)

    def test_two_choices_beats_one_choice_typically(self):
        """Power of two choices: max load with d=2 should usually be lower
        than the single-choice max load at the same scale."""
        n = 512
        two = simulate_single_trial(FullyRandomChoices(n, 2), n, seed=3)
        one = simulate_single_trial(FullyRandomChoices(n, 1), n, seed=3)
        assert two.max_load <= one.max_load


class TestVectorizedEngine:
    def test_conservation_checked_internally(self):
        simulate_batch(
            DoubleHashingChoices(64, 3), 200, trials=10, seed=4,
            check_invariants=True,
        )

    def test_loads_shape(self):
        batch = simulate_batch(FullyRandomChoices(32, 2), 50, trials=7, seed=5)
        assert batch.loads.shape == (7, 32)
        assert (batch.loads.sum(axis=1) == 50).all()

    def test_trials_are_distinct(self):
        batch = simulate_batch(FullyRandomChoices(64, 2), 64, trials=5, seed=6)
        assert len({tuple(row) for row in batch.loads}) > 1

    def test_reproducible(self):
        a = simulate_batch(DoubleHashingChoices(32, 3), 64, 4, seed=7)
        b = simulate_batch(DoubleHashingChoices(32, 3), 64, 4, seed=7)
        assert np.array_equal(a.loads, b.loads)

    def test_block_size_does_not_change_distribution(self):
        """Different RNG blocking gives different streams but the same law;
        compare aggregate fractions at matched scale."""
        kwargs = dict(n_balls=256, trials=60, seed=8)
        a = simulate_batch(
            DoubleHashingChoices(256, 3), block=16, **kwargs
        ).distribution()
        b = simulate_batch(
            DoubleHashingChoices(256, 3), block=300, **kwargs
        ).distribution()
        assert abs(a.fraction_at(1) - b.fraction_at(1)) < 0.02

    def test_invalid_tie_break(self):
        with pytest.raises(ConfigurationError):
            simulate_batch(FullyRandomChoices(8, 2), 8, 1, tie_break="up")

    def test_invalid_block(self):
        with pytest.raises(ConfigurationError):
            simulate_batch(FullyRandomChoices(8, 2), 8, 1, block=0)

    def test_invalid_trials(self):
        with pytest.raises(ConfigurationError):
            simulate_batch(FullyRandomChoices(8, 2), 8, 0)

    def test_n_balls_overflowing_int32_rejected(self):
        """The int32 load table caps a trial at 2**31 - 1 balls; asking for
        more must fail loudly up front, naming the remedy."""
        with pytest.raises(ConfigurationError, match="int64"):
            simulate_batch(FullyRandomChoices(8, 2), 2**31, 1)

    def test_one_choice_degenerate(self):
        batch = simulate_batch(FullyRandomChoices(16, 1), 64, 5, seed=9)
        assert (batch.loads.sum(axis=1) == 64).all()


class TestCrossEngineAgreement:
    """The vectorized engine must match the reference engine in law."""

    @pytest.mark.parametrize("scheme_cls", [FullyRandomChoices, DoubleHashingChoices])
    def test_load_fractions_agree(self, scheme_cls):
        n, trials = 256, 60
        ref_counts = np.zeros(10)
        for t in range(trials):
            dist = simulate_single_trial(scheme_cls(n, 3), n, seed=1000 + t)
            ref_counts[: len(dist.counts)] += dist.counts
        ref_frac = ref_counts / (trials * n)

        vec = simulate_batch(scheme_cls(n, 3), n, trials, seed=77).distribution()
        for load in range(4):
            assert vec.fraction_at(load) == pytest.approx(
                ref_frac[load], abs=0.02
            ), f"load {load}"

    def test_left_tie_break_agrees(self):
        n, trials = 128, 60
        ref_counts = np.zeros(10)
        for t in range(trials):
            dist = simulate_single_trial(
                FullyRandomChoices(n, 3), n, seed=2000 + t, tie_break="left"
            )
            ref_counts[: len(dist.counts)] += dist.counts
        ref_frac = ref_counts / (trials * n)
        vec = simulate_batch(
            FullyRandomChoices(n, 3), n, trials, seed=88, tie_break="left"
        ).distribution()
        for load in range(3):
            assert vec.fraction_at(load) == pytest.approx(ref_frac[load], abs=0.03)


@given(
    n_exp=st.integers(min_value=2, max_value=7),
    d=st.integers(min_value=1, max_value=4),
    balls_factor=st.floats(min_value=0.1, max_value=2.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_property_ball_conservation(n_exp, d, balls_factor, seed):
    """Every trial places exactly n_balls balls, for any geometry."""
    n = 2**n_exp
    if d > n:
        return
    m = int(n * balls_factor)
    batch = simulate_batch(
        DoubleHashingChoices(n, d), m, trials=3, seed=seed,
        check_invariants=True,
    )
    assert (batch.loads.sum(axis=1) == m).all()
    assert (batch.loads >= 0).all()


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_property_max_load_at_least_ceiling_mean(seed):
    """Max load >= ceil(m/n) by pigeonhole."""
    batch = simulate_batch(FullyRandomChoices(16, 2), 50, trials=4, seed=seed)
    assert (batch.loads.max(axis=1) >= int(np.ceil(50 / 16))).all()
