"""Tests for the d-left, one-choice, and (1+beta) engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    simulate_batch,
    simulate_dleft,
    simulate_one_choice,
    simulate_one_plus_beta,
)
from repro.core.dleft import make_dleft_scheme
from repro.errors import ConfigurationError
from repro.hashing import DoubleHashingChoices, FullyRandomChoices


class TestDLeft:
    def test_requires_partitioned_scheme(self):
        with pytest.raises(ConfigurationError, match="partitioned"):
            simulate_dleft(FullyRandomChoices(16, 4), 16, 2)

    def test_make_scheme_kinds(self):
        assert make_dleft_scheme(16, 4, "random").describe().startswith("d-left")
        assert "double" in make_dleft_scheme(16, 4, "double").describe()
        with pytest.raises(ConfigurationError):
            make_dleft_scheme(16, 4, "triple")

    def test_conservation(self):
        batch = simulate_dleft(make_dleft_scheme(64, 4, "double"), 64, 8, seed=1)
        assert (batch.loads.sum(axis=1) == 64).all()

    def test_dleft_beats_symmetric_on_tail(self):
        """Vöcking's scheme should have a lighter >= 2 tail than the
        symmetric d-choice scheme at the same geometry (asymmetry helps)."""
        n, trials = 2048, 40
        dleft = simulate_dleft(
            make_dleft_scheme(n, 4, "random"), n, trials, seed=2
        ).distribution()
        sym = simulate_batch(
            FullyRandomChoices(n, 4), n, trials, seed=3
        ).distribution()
        assert dleft.tail_at(2) < sym.tail_at(2)

    def test_double_vs_random_dleft_agree(self):
        n, trials = 1024, 60
        a = simulate_dleft(
            make_dleft_scheme(n, 4, "random"), n, trials, seed=4
        ).distribution()
        b = simulate_dleft(
            make_dleft_scheme(n, 4, "double"), n, trials, seed=5
        ).distribution()
        for load in range(3):
            assert a.fraction_at(load) == pytest.approx(
                b.fraction_at(load), abs=0.01
            )


class TestOneChoice:
    def test_conservation(self):
        batch = simulate_one_choice(32, 100, trials=20, seed=1)
        assert (batch.loads.sum(axis=1) == 100).all()

    def test_matches_poisson_profile(self):
        """At m = n, load fractions approach Poisson(1) pmf."""
        n, trials = 4096, 50
        dist = simulate_one_choice(n, n, trials=trials, seed=2).distribution()
        poisson = np.exp(-1.0) / np.array([1, 1, 2, 6])  # e^-1 / k!
        for load in range(4):
            assert dist.fraction_at(load) == pytest.approx(
                poisson[load], abs=0.01
            )

    def test_one_choice_worse_than_two(self):
        n = 2048
        one = simulate_one_choice(n, n, trials=20, seed=3).distribution()
        two = simulate_batch(
            FullyRandomChoices(n, 2), n, trials=20, seed=4
        ).distribution()
        assert one.max_load > two.max_load

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_one_choice(0, 10, 1)
        with pytest.raises(ConfigurationError):
            simulate_one_choice(8, -1, 1)
        with pytest.raises(ConfigurationError):
            simulate_one_choice(8, 10, 0)


class TestOnePlusBeta:
    def test_beta_zero_is_one_choice_like(self):
        n = 1024
        dist = simulate_one_plus_beta(n, n, 30, beta=0.0, seed=1).distribution()
        one = simulate_one_choice(n, n, trials=30, seed=2).distribution()
        assert dist.fraction_at(0) == pytest.approx(one.fraction_at(0), abs=0.02)

    def test_beta_one_is_two_choice_like(self):
        n = 1024
        dist = simulate_one_plus_beta(n, n, 30, beta=1.0, seed=3).distribution()
        two = simulate_batch(
            FullyRandomChoices(n, 2), n, trials=30, seed=4
        ).distribution()
        assert dist.fraction_at(0) == pytest.approx(two.fraction_at(0), abs=0.02)

    def test_interpolation_monotone_in_beta(self):
        """Larger beta -> more balancing -> lighter >= 2 tail."""
        n = 2048
        tails = [
            simulate_one_plus_beta(n, n, 25, beta=b, seed=5)
            .distribution()
            .tail_at(2)
            for b in (0.0, 0.5, 1.0)
        ]
        assert tails[0] > tails[1] > tails[2]

    def test_double_hashing_variant(self):
        n = 512
        a = simulate_one_plus_beta(
            n, n, 40, beta=0.7, scheme="double", seed=6
        ).distribution()
        b = simulate_one_plus_beta(
            n, n, 40, beta=0.7, scheme="random", seed=7
        ).distribution()
        assert a.fraction_at(0) == pytest.approx(b.fraction_at(0), abs=0.02)

    def test_explicit_scheme_object(self):
        n = 128
        scheme = DoubleHashingChoices(n, 2)
        dist = simulate_one_plus_beta(
            n, n, 5, beta=0.5, scheme=scheme, seed=8
        ).distribution()
        assert dist.trials == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_one_plus_beta(16, 16, 1, beta=1.5)
        with pytest.raises(ConfigurationError):
            simulate_one_plus_beta(16, 16, 1, beta=0.5, scheme="weird")
        with pytest.raises(ConfigurationError):
            # d != 2 scheme rejected
            simulate_one_plus_beta(
                16, 16, 1, beta=0.5, scheme=FullyRandomChoices(16, 3)
            )
        with pytest.raises(ConfigurationError):
            # wrong n_bins rejected
            simulate_one_plus_beta(
                16, 16, 1, beta=0.5, scheme=FullyRandomChoices(8, 2)
            )
