"""Tests for the insert/delete churn engine (paper §2.2's deletions)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import compare_distributions
from repro.core import simulate_batch, simulate_churn
from repro.errors import ConfigurationError
from repro.hashing import DoubleHashingChoices, FullyRandomChoices


class TestMechanics:
    def test_population_conserved(self):
        batch = simulate_churn(
            DoubleHashingChoices(64, 3), 64, churn_steps=200, trials=8, seed=1
        )
        assert (batch.loads.sum(axis=1) == 64).all()

    def test_zero_churn_matches_plain_fill(self):
        """With churn_steps=0 the engine is the standard process in law."""
        n, trials = 512, 60
        churn = simulate_churn(
            FullyRandomChoices(n, 3), n, 0, trials, seed=2
        ).distribution()
        plain = simulate_batch(
            FullyRandomChoices(n, 3), n, trials, seed=3
        ).distribution()
        for load in range(3):
            assert churn.fraction_at(load) == pytest.approx(
                plain.fraction_at(load), abs=0.015
            )

    def test_loads_nonnegative_throughout(self):
        batch = simulate_churn(
            DoubleHashingChoices(32, 2), 32, 500, trials=5, seed=4
        )
        assert (batch.loads >= 0).all()

    def test_validation(self):
        scheme = FullyRandomChoices(16, 2)
        with pytest.raises(ConfigurationError):
            simulate_churn(scheme, 0, 10, 1)
        with pytest.raises(ConfigurationError):
            simulate_churn(scheme, 16, -1, 1)
        with pytest.raises(ConfigurationError):
            simulate_churn(scheme, 16, 10, 0)
        with pytest.raises(ConfigurationError):
            simulate_churn(scheme, 16, 10, 1, tie_break="middle")
        with pytest.raises(ConfigurationError):
            simulate_churn(scheme, 16, 10, 1, block=0)


class TestUnifiedKwargs:
    """simulate_churn mirrors simulate_batch's backend=/block=/tie_break=."""

    def test_golden_determinism(self):
        """Fixed seed + fixed block → bit-identical loads across calls."""
        def run():
            return simulate_churn(
                DoubleHashingChoices(64, 3), 64, churn_steps=100,
                trials=4, seed=123, block=32,
            ).loads

        a, b = run(), run()
        assert (a == b).all()

    def test_backend_kwarg_accepted_and_recorded(self):
        from repro.metrics import MetricsRegistry

        reg = MetricsRegistry()
        batch = simulate_churn(
            DoubleHashingChoices(64, 2), 64, 50, trials=3, seed=9,
            backend="numpy", metrics=reg,
        )
        assert (batch.loads.sum(axis=1) == 64).all()
        snap = reg.snapshot()
        assert snap["counters"]["churn.calls.numpy"] == 1
        assert "churn.seconds" in snap["timers"]

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_churn(
                FullyRandomChoices(16, 2), 16, 10, 1, backend="fortran"
            )

    def test_left_tie_break(self):
        batch = simulate_churn(
            DoubleHashingChoices(64, 3), 64, 100, trials=4, seed=10,
            tie_break="left",
        )
        assert (batch.loads.sum(axis=1) == 64).all()
        assert (batch.loads >= 0).all()

    def test_keyed_scheme_through_registry(self):
        """The churn engine consumes registry-built keyed schemes."""
        from repro.hashing import make_scheme

        scheme = make_scheme("tabulation", 64, 2, seed=11)
        batch = simulate_churn(scheme, 64, 100, trials=3, seed=12)
        assert (batch.loads.sum(axis=1) == 64).all()


class TestPaperClaimUnderChurn:
    def test_double_vs_random_indistinguishable_after_churn(self):
        """§2.2: the indistinguishability claim extends to deletions."""
        n, trials, steps = 1024, 30, 2048
        rnd = simulate_churn(
            FullyRandomChoices(n, 3), n, steps, trials, seed=5
        ).distribution()
        dbl = simulate_churn(
            DoubleHashingChoices(n, 3), n, steps, trials, seed=6
        ).distribution()
        report = compare_distributions(rnd, dbl)
        assert report.indistinguishable

    def test_churn_keeps_max_load_small(self):
        """Heavy churn does not degrade the max load (steady state stays
        balanced — the property deletions-tolerant systems rely on)."""
        n = 1024
        batch = simulate_churn(
            DoubleHashingChoices(n, 3), n, 4 * n, trials=10, seed=7
        )
        assert batch.loads.max() <= 5


@given(
    n_exp=st.integers(min_value=3, max_value=6),
    steps=st.integers(min_value=0, max_value=300),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_property_churn_conservation(n_exp, steps, seed):
    n = 2**n_exp
    batch = simulate_churn(
        DoubleHashingChoices(n, 2), n, steps, trials=3, seed=seed
    )
    assert (batch.loads.sum(axis=1) == n).all()
    assert (batch.loads >= 0).all()
