"""Tests for load-trajectory recording and its agreement with the ODE path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.trajectory import simulate_trajectory
from repro.errors import ConfigurationError
from repro.fluid.balls_bins_ode import balls_bins_rhs
from repro.fluid.solver import integrate
from repro.hashing import DoubleHashingChoices, FullyRandomChoices


class TestMechanics:
    def test_shapes(self):
        traj = simulate_trajectory(
            FullyRandomChoices(256, 3), 1.0, trials=10, checkpoints=5, seed=1
        )
        assert traj.times.shape == (5,)
        assert traj.tails.shape == (5, 9)
        assert traj.trials == 10

    def test_level0_is_one(self):
        traj = simulate_trajectory(
            FullyRandomChoices(128, 2), 0.5, trials=5, seed=2
        )
        assert np.allclose(traj.tail_series(0), 1.0)

    def test_tails_monotone_in_level(self):
        traj = simulate_trajectory(
            FullyRandomChoices(128, 3), 1.0, trials=10, seed=3
        )
        assert (np.diff(traj.tails, axis=1) <= 1e-12).all()

    def test_tails_monotone_in_time(self):
        """Tail fractions only grow as balls arrive (no deletions)."""
        traj = simulate_trajectory(
            DoubleHashingChoices(256, 3), 1.0, trials=10, seed=4
        )
        assert (np.diff(traj.tails, axis=0) >= -1e-12).all()

    def test_final_time_is_t_final(self):
        traj = simulate_trajectory(
            FullyRandomChoices(64, 2), 2.0, trials=3, seed=5
        )
        assert traj.times[-1] == pytest.approx(2.0)

    def test_max_load_series_monotone(self):
        traj = simulate_trajectory(
            FullyRandomChoices(256, 3), 1.0, trials=10, checkpoints=6, seed=7
        )
        assert traj.max_loads is not None
        assert (np.diff(traj.max_loads) >= -1e-12).all()
        assert traj.max_loads[-1] >= 1.0

    def test_max_load_growth_decelerates(self):
        """The log log n phenomenon in time: the second half of the
        process adds no more to the max load than the first half did."""
        traj = simulate_trajectory(
            DoubleHashingChoices(2048, 3), 1.0, trials=20,
            checkpoints=8, seed=8,
        )
        half = len(traj.max_loads) // 2
        first_half = traj.max_loads[half] - traj.max_loads[0]
        second_half = traj.max_loads[-1] - traj.max_loads[half]
        assert second_half <= first_half + 0.5

    def test_level_out_of_range(self):
        traj = simulate_trajectory(
            FullyRandomChoices(64, 2), 0.5, trials=3, seed=6
        )
        with pytest.raises(ValueError):
            traj.tail_series(99)

    def test_validation(self):
        scheme = FullyRandomChoices(32, 2)
        with pytest.raises(ConfigurationError):
            simulate_trajectory(scheme, 0.0, 3)
        with pytest.raises(ConfigurationError):
            simulate_trajectory(scheme, 1.0, 0)
        with pytest.raises(ConfigurationError):
            simulate_trajectory(scheme, 1.0, 3, checkpoints=0)


class TestTheorem8PathAgreement:
    """The whole simulated path follows the ODE path (Theorem 8), for both
    schemes — the strongest fluid-limit test in the suite."""

    @pytest.mark.parametrize(
        "scheme_cls", [FullyRandomChoices, DoubleHashingChoices]
    )
    def test_path_matches_dense_ode(self, scheme_cls):
        n, d = 4096, 3
        traj = simulate_trajectory(
            scheme_cls(n, d), 1.0, trials=40, checkpoints=8, seed=7
        )
        sol = integrate(
            lambda t, x: balls_bins_rhs(t, x, d), np.zeros(8), 1.0
        )
        for k, t in enumerate(traj.times):
            ode_tails = np.concatenate(([1.0], sol.sol(t)))
            for level in (1, 2):
                assert traj.tails[k, level] == pytest.approx(
                    ode_tails[level], abs=0.01
                ), f"t={t}, level={level}"

    def test_double_and_random_paths_agree(self):
        n, d = 2048, 3
        a = simulate_trajectory(
            FullyRandomChoices(n, d), 1.0, trials=30, checkpoints=6, seed=8
        )
        b = simulate_trajectory(
            DoubleHashingChoices(n, d), 1.0, trials=30, checkpoints=6, seed=9
        )
        assert np.allclose(a.tails[:, 1:3], b.tails[:, 1:3], atol=0.012)
