"""Tests for result aggregation (stats) and the experiment runner."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_experiment, simulate_batch
from repro.core.stats import (
    StreamingLoadAggregator,
    level_stats_table,
    load_fraction_rows,
    tail_fraction_rows,
    trial_histograms,
)
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentSpec
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.types import TrialBatchResult


def _small_batch(seed: int = 1, trials: int = 12) -> TrialBatchResult:
    return simulate_batch(FullyRandomChoices(64, 3), 64, trials, seed=seed)


class TestTrialHistograms:
    def test_rows_sum_to_bins(self):
        batch = _small_batch()
        hist = trial_histograms(batch.loads)
        assert (hist.sum(axis=1) == 64).all()

    def test_weighted_sum_is_balls(self):
        batch = _small_batch()
        hist = trial_histograms(batch.loads)
        loads_recovered = (hist * np.arange(hist.shape[1])).sum(axis=1)
        assert (loads_recovered == 64).all()


class TestStreamingAggregator:
    def test_matches_direct_distribution(self):
        batch = _small_batch(seed=3, trials=20)
        agg = StreamingLoadAggregator(n_bins=64, n_balls=64)
        agg.update(batch)
        direct = batch.distribution()
        streamed = agg.distribution()
        assert np.array_equal(streamed.counts, direct.counts)
        assert np.array_equal(
            np.sort(streamed.max_load_per_trial),
            np.sort(direct.max_load_per_trial),
        )

    def test_chunked_equals_monolithic(self):
        """Feeding trials in chunks must give identical statistics to one
        batch (Welford merge correctness)."""
        full = simulate_batch(FullyRandomChoices(32, 2), 32, 30, seed=5)
        agg = StreamingLoadAggregator(n_bins=32, n_balls=32)
        for start in range(0, 30, 7):
            chunk = TrialBatchResult(
                n_bins=32, n_balls=32, loads=full.loads[start : start + 7]
            )
            agg.update(chunk)
        for load in range(4):
            direct = full.level_stats(load)
            streamed = agg.level_stats(load)
            assert streamed.minimum == direct.minimum
            assert streamed.maximum == direct.maximum
            assert streamed.mean == pytest.approx(direct.mean, rel=1e-12)
            assert streamed.std == pytest.approx(direct.std, rel=1e-9)

    def test_late_appearing_level_min_is_zero(self):
        """A load level first seen in chunk 2 must report min=0 because
        chunk-1 trials had zero bins at that level."""
        agg = StreamingLoadAggregator(n_bins=4, n_balls=4)
        agg.update_histograms(np.array([[4, 0, 0]]))  # no load-2 bins
        agg.update_histograms(np.array([[1, 1, 1]]))  # one load-2 bin
        st2 = agg.level_stats(2)
        assert st2.minimum == 0
        assert st2.maximum == 1

    def test_geometry_mismatch_rejected(self):
        agg = StreamingLoadAggregator(n_bins=8, n_balls=8)
        with pytest.raises(ValueError, match="geometry"):
            agg.update(_small_batch())

    def test_empty_aggregator_raises(self):
        agg = StreamingLoadAggregator(n_bins=8, n_balls=8)
        with pytest.raises(ValueError):
            agg.distribution()
        with pytest.raises(ValueError):
            agg.level_stats(0)

    def test_stats_beyond_observed_levels(self):
        agg = StreamingLoadAggregator(n_bins=4, n_balls=4)
        agg.update_histograms(np.array([[2, 2]]))
        st9 = agg.level_stats(9)
        assert st9.minimum == 0 and st9.maximum == 0 and st9.mean == 0.0


class TestRowHelpers:
    def test_load_fraction_rows_sum_to_one(self):
        dist = _small_batch().distribution()
        rows = load_fraction_rows(dist)
        assert sum(frac for _, frac in rows) == pytest.approx(1.0)

    def test_min_fraction_filter(self):
        dist = _small_batch().distribution()
        rows = load_fraction_rows(dist, min_fraction=0.5)
        assert all(frac > 0.5 for _, frac in rows)

    def test_tail_rows_monotone(self):
        dist = _small_batch().distribution()
        rows = tail_fraction_rows(dist)
        tails = [frac for _, frac in rows]
        assert tails == sorted(tails, reverse=True)

    def test_level_stats_table_covers_all_levels(self):
        batch = _small_batch()
        table = level_stats_table(batch)
        assert table[0].load == 0
        assert len(table) == int(batch.loads.max()) + 1


class TestRunExperiment:
    def test_basic_run(self):
        spec = ExperimentSpec(n=64, d=3, trials=10, seed=1)
        res = run_experiment(DoubleHashingChoices(64, 3), spec)
        assert res.distribution.trials == 10
        assert res.distribution.counts.sum() == 10 * 64
        assert "double" in res.scheme_description

    def test_chunked_equals_unchunked_in_law(self):
        spec = ExperimentSpec(n=256, d=3, trials=40, seed=2)
        a = run_experiment(FullyRandomChoices(256, 3), spec.replace(chunks=1))
        b = run_experiment(FullyRandomChoices(256, 3), spec.replace(chunks=8))
        assert abs(
            a.distribution.fraction_at(1) - b.distribution.fraction_at(1)
        ) < 0.02

    def test_reproducible(self):
        spec = ExperimentSpec(n=32, d=2, trials=8, seed=9)
        a = run_experiment(DoubleHashingChoices(32, 2), spec)
        b = run_experiment(DoubleHashingChoices(32, 2), spec)
        assert np.array_equal(a.distribution.counts, b.distribution.counts)

    def test_multiprocess_matches_serial(self):
        """workers=2 must produce exactly the serial result (same spawned
        seed streams, order-independent aggregation)."""
        spec = ExperimentSpec(n=64, d=3, trials=8, seed=3, chunks=4)
        serial = run_experiment(DoubleHashingChoices(64, 3), spec)
        parallel = run_experiment(
            DoubleHashingChoices(64, 3), spec.replace(workers=2)
        )
        assert np.array_equal(
            serial.distribution.counts, parallel.distribution.counts
        )

    def test_legacy_signature_still_works(self):
        with pytest.warns(DeprecationWarning):
            res = run_experiment(DoubleHashingChoices(64, 3), 64, 10, seed=1)
        assert res.distribution.trials == 10

    def test_invalid_trials(self):
        with pytest.raises(ConfigurationError):
            run_experiment(
                FullyRandomChoices(8, 2), ExperimentSpec(n=8, d=2, trials=0)
            )


@given(
    trials=st.integers(min_value=1, max_value=25),
    chunk=st.integers(min_value=1, max_value=9),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_property_aggregator_counts_invariant(trials, chunk, seed):
    """Total counts equal trials * n_bins regardless of chunking."""
    full = simulate_batch(FullyRandomChoices(16, 2), 16, trials, seed=seed)
    agg = StreamingLoadAggregator(n_bins=16, n_balls=16)
    for start in range(0, trials, chunk):
        agg.update(
            TrialBatchResult(
                n_bins=16, n_balls=16, loads=full.loads[start : start + chunk]
            )
        )
    assert agg.distribution().counts.sum() == trials * 16
