"""Fixed-seed goldens for the scalar reference engine.

``tests/data/golden_reference.json`` was captured from the pre-kernel tree:
for five (scheme, n, d, seed, tie_break, n_balls) cases it records the
sha256 of the little-endian int64 load vector plus cheap summaries.  The
kernel refactor moved ``simulate_single_trial`` verbatim into
:mod:`repro.kernels.reference`; these tests pin down that the move (and any
future edit) preserves the RNG stream bit for bit.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import simulate_single_trial
from repro.hashing import DoubleHashingChoices, FullyRandomChoices

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_reference.json"

CASES = {
    "double_n256_d2_s7": dict(
        scheme=lambda: DoubleHashingChoices(256, 2), n_balls=256, seed=7,
        tie_break="random",
    ),
    "double_n1024_d3_s42": dict(
        scheme=lambda: DoubleHashingChoices(1024, 3), n_balls=1024, seed=42,
        tie_break="random",
    ),
    "random_n512_d3_s11": dict(
        scheme=lambda: FullyRandomChoices(512, 3), n_balls=512, seed=11,
        tie_break="random",
    ),
    "double_n512_d4_s3_left": dict(
        scheme=lambda: DoubleHashingChoices(512, 4), n_balls=512, seed=3,
        tie_break="left",
    ),
    "random_n128_d2_s99_heavy": dict(
        scheme=lambda: FullyRandomChoices(128, 2), n_balls=2048, seed=99,
        tie_break="random",
    ),
}


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def test_golden_file_covers_all_cases(golden):
    assert set(golden) == set(CASES)


@pytest.mark.parametrize("name", sorted(CASES))
def test_single_trial_matches_golden(golden, name):
    case = CASES[name]
    loads = simulate_single_trial(
        case["scheme"](),
        case["n_balls"],
        seed=case["seed"],
        tie_break=case["tie_break"],
        return_loads=True,
    )
    loads = np.asarray(loads, dtype=np.int64)
    want = golden[name]
    assert int(loads.sum()) == want["sum"]
    assert int(loads.max()) == want["max"]
    assert loads[:8].tolist() == want["head"]
    digest = hashlib.sha256(loads.astype("<i8").tobytes()).hexdigest()
    assert digest == want["sha256"]
