"""Tests for the sharded router: dispatch, determinism, merge algebra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics import MetricsRegistry
from repro.service import ShardedRouter


def fresh_router(**kwargs):
    kwargs.setdefault("n_shards", 4)
    kwargs.setdefault("scheme", "double")
    kwargs.setdefault("seed", 11)
    kwargs.setdefault("metrics", MetricsRegistry())
    return ShardedRouter(1 << 10, 2, **kwargs)


class TestDispatch:
    def test_order_preserved_across_shards(self):
        router = fresh_router()
        keys = np.arange(1, 4001, dtype=np.int64)
        bins = router.insert_many(keys)
        # Lookup in a shuffled order must return each key's own bin.
        perm = np.random.default_rng(0).permutation(keys.size)
        assert (router.lookup_many(keys[perm]) == bins[perm]).all()

    def test_aggregates_sum_over_shards(self):
        router = fresh_router()
        keys = np.arange(1, 4001, dtype=np.int64)
        router.insert_many(keys)
        assert router.size == 4000
        assert router.loads.sum() == 4000
        assert router.counters["inserts"] == 4000
        assert sum(s.size for s in router.shards) == 4000

    def test_single_shard_short_circuits(self):
        router = fresh_router(n_shards=1)
        keys = np.arange(1, 101, dtype=np.int64)
        bins = router.insert_many(keys)
        assert (router.shards[0].lookup_many(keys) == bins).all()

    def test_shard_routing_is_deterministic(self):
        a = fresh_router(seed=5)
        b = fresh_router(seed=5)
        keys = np.arange(1, 1001, dtype=np.int64)
        assert (a.shard_of(keys) == b.shard_of(keys)).all()
        assert (a.insert_many(keys) == b.insert_many(keys)).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fresh_router(n_shards=3)
        with pytest.raises(ConfigurationError):
            fresh_router(n_shards=0)


class TestMergeAlgebra:
    def test_shard_merge_is_associative(self):
        router = fresh_router()
        router.insert_many(np.arange(1, 5001, dtype=np.int64))
        s0, s1, s2, s3 = router.shards
        left = ((s0.merge(s1)).merge(s2)).merge(s3)
        right = s0.merge(s1.merge(s2.merge(s3)))
        assert (left.loads == right.loads).all()
        assert left.size == right.size == router.size
        keys = np.arange(1, 5001, dtype=np.int64)
        assert (left.lookup_many(keys) == right.lookup_many(keys)).all()

    def test_merged_equals_cluster_view(self):
        router = fresh_router()
        keys = np.arange(1, 3001, dtype=np.int64)
        bins = router.insert_many(keys)
        merged = router.merged()
        assert merged.size == router.size
        assert (merged.loads == router.loads).all()
        assert (merged.lookup_many(keys) == bins).all()

    def test_merge_survives_churn(self):
        router = fresh_router()
        keys = np.arange(1, 4001, dtype=np.int64)
        router.insert_many(keys)
        router.delete_many(keys[::3])
        merged = router.merged()
        assert merged.size == router.size
        assert (merged.loads == router.loads).all()
        assert merged.loads.sum() == merged.size


class TestSLO:
    def test_cluster_slo_sample(self):
        reg = MetricsRegistry()
        router = fresh_router(metrics=reg)
        router.insert_many(np.arange(1, 2001, dtype=np.int64))
        sample = router.record_slo()
        assert sample["size"] == 2000
        assert reg.get_series("service.slo")[-1]["size"] == 2000

    def test_per_shard_series_are_namespaced(self):
        reg = MetricsRegistry()
        router = fresh_router(metrics=reg, slo_interval=100)
        router.insert_many(np.arange(1, 2001, dtype=np.int64))
        snap = reg.snapshot()
        shard_series = [k for k in snap["series"] if ".shard" in k]
        assert shard_series  # per-shard auto-samples landed


class TestRoutePlan:
    def test_plan_reuse_matches_direct_dispatch(self):
        router = fresh_router()
        keys = np.arange(1, 3001, dtype=np.int64)
        plan = router.route(keys)
        bins = router.insert_many(plan=plan)
        assert (router.lookup_many(plan=plan) == bins).all()
        # An independent router fed the same keys without a plan agrees.
        other = fresh_router()
        assert (other.insert_many(keys) == bins).all()
        freed = router.delete_many(plan=plan)
        assert (freed == bins).all()
        assert router.size == 0

    def test_plan_with_matching_keys_is_accepted(self):
        router = fresh_router()
        keys = np.arange(1, 101, dtype=np.int64)
        plan = router.route(keys)
        bins = router.insert_many(keys.copy(), plan=plan)
        assert (router.lookup_many(keys, plan=plan) == bins).all()

    def test_plan_for_different_batch_is_rejected(self):
        router = fresh_router()
        plan = router.route(np.arange(1, 101, dtype=np.int64))
        with pytest.raises(ConfigurationError):
            router.insert_many(np.arange(2, 102, dtype=np.int64), plan=plan)
        with pytest.raises(ConfigurationError):
            router.lookup_many(np.arange(1, 51, dtype=np.int64), plan=plan)

    def test_plan_bounds_cover_all_shards(self):
        router = fresh_router()
        keys = np.arange(1, 2001, dtype=np.int64)
        plan = router.route(keys)
        assert plan.bounds.size == router.n_shards + 1
        assert plan.bounds[0] == 0 and plan.bounds[-1] == keys.size
        sid = router.shard_of(keys)
        for s in range(router.n_shards):
            lo, hi = int(plan.bounds[s]), int(plan.bounds[s + 1])
            assert (sid[plan.order[lo:hi]] == s).all()


class TestMergeUnderChurn:
    def test_merged_after_mixed_reinsert_and_delete_miss_churn(self):
        router = fresh_router()
        rng = np.random.default_rng(31)
        live_bins = {}
        for _ in range(5):
            ins = rng.integers(0, 3000, size=600)
            bins = router.insert_many(ins)
            for k, b in zip(ins.tolist(), bins.tolist()):
                live_bins.setdefault(k, b)  # reinserts keep the old bin
            dels = rng.integers(0, 4000, size=250)  # some misses
            router.delete_many(dels)
            for k in dels.tolist():
                live_bins.pop(k, None)
        merged = router.merged()
        assert merged.size == router.size == len(live_bins)
        assert (merged.loads == router.loads).all()
        probe = np.fromiter(live_bins.keys(), dtype=np.int64)
        want = np.fromiter(live_bins.values(), dtype=np.int64)
        assert (merged.lookup_many(probe) == want).all()
        assert (router.lookup_many(probe) == want).all()
        assert router.counters["reinserts"] > 0
        assert router.counters["delete_misses"] > 0

    def test_merge_rejects_fingerprint_mismatch_after_churn(self):
        a = fresh_router(seed=1, n_shards=1).shards[0]
        b = fresh_router(seed=2, n_shards=1).shards[0]
        a.insert_many(np.arange(1, 101, dtype=np.int64))
        b.insert_many(np.arange(200, 301, dtype=np.int64))
        a.delete_many([1000])  # delete-miss churn on both sides
        b.delete_many(np.arange(200, 210, dtype=np.int64))
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_backend_threads_through_router(self):
        router = fresh_router(backend="numpy", expected_keys=4000)
        assert router.backend == "numpy"
        assert all(s.backend == "numpy" for s in router.shards)
        ref = fresh_router(backend="reference")
        keys = np.arange(1, 2001, dtype=np.int64)
        assert (router.insert_many(keys) == ref.insert_many(keys)).all()
