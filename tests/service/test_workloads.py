"""Tests for workload generation and the service runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics import MetricsRegistry
from repro.service import WorkloadSpec, generate_stream, run_service_workload
from repro.service.workloads import intensity


class TestWorkloadSpec:
    def test_defaults(self):
        spec = WorkloadSpec(n_keys=1000)
        assert spec.effective_window == 8 * spec.batch
        assert spec.n_steps == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(n_keys=0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(n_keys=10, churn=-0.1)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(n_keys=10, popularity="hot")
        with pytest.raises(ConfigurationError):
            WorkloadSpec(n_keys=10, popularity="zipf", zipf_s=1.0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(n_keys=10, arrival="burst")


class TestStream:
    def test_exact_insert_count_and_fresh_keys(self):
        spec = WorkloadSpec(n_keys=10_000, batch=1024, churn=0.5, lookups=0.3)
        steps = list(generate_stream(spec, seed=1))
        inserts = np.concatenate([s.inserts for s in steps])
        assert inserts.size == 10_000
        assert np.unique(inserts).size == 10_000  # all fresh
        assert all(s.deletes.size > 0 for s in steps)

    def test_stream_is_deterministic(self):
        spec = WorkloadSpec(
            n_keys=5000, batch=512, churn=0.4, lookups=0.2,
            popularity="zipf", arrival="sine",
        )
        a = list(generate_stream(spec, seed=3))
        b = list(generate_stream(spec, seed=3))
        for x, y in zip(a, b):
            assert (x.inserts == y.inserts).all()
            assert (x.deletes == y.deletes).all()
            assert (x.lookups == y.lookups).all()

    def test_victims_come_from_history(self):
        spec = WorkloadSpec(n_keys=4000, batch=512, churn=1.0)
        seen = set()
        for step in generate_stream(spec, seed=5):
            seen.update(step.inserts.tolist())
            assert set(step.deletes.tolist()) <= seen

    def test_arrival_shapes(self):
        assert intensity("constant", 3, 10) == 1.0
        assert intensity("ramp", 0, 10) == pytest.approx(0.5)
        assert intensity("ramp", 9, 10) == pytest.approx(1.5)
        assert intensity("sine", 0, 10) == pytest.approx(1.0)
        spec = WorkloadSpec(n_keys=20_000, batch=1024, arrival="ramp")
        sizes = [s.inserts.size for s in generate_stream(spec, seed=7)]
        assert sum(sizes) == 20_000
        assert sizes[0] < sizes[-2]  # ramp grows (last step may truncate)


class TestRunner:
    def test_report_is_consistent_and_json_ready(self):
        import json

        spec = WorkloadSpec(n_keys=8000, batch=1024, churn=0.5, lookups=0.25)
        reg = MetricsRegistry()
        report = run_service_workload(
            spec, n_bins=1 << 12, d=2, scheme="double", seed=13,
            metrics=reg, slo_samples=4,
        )
        assert report.inserts == 8000
        assert report.size == 8000 - report.deletes
        assert report.ops == report.inserts + report.deletes \
            + report.counters["delete_misses"] + report.lookups
        assert len(report.slo_series) >= 2
        json.dumps(report.to_dict())  # must be JSON-serializable

    def test_sharded_run_matches_population(self):
        spec = WorkloadSpec(n_keys=6000, batch=1024)
        report = run_service_workload(
            spec, n_bins=1 << 12, d=2, scheme="tabulation", seed=17,
            n_shards=4, metrics=MetricsRegistry(),
        )
        assert report.size == 6000
        assert report.n_shards == 4

    def test_scheme_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEME", "tabulation")
        spec = WorkloadSpec(n_keys=500, batch=256)
        report = run_service_workload(
            spec, n_bins=1 << 10, d=2, seed=19, metrics=MetricsRegistry(),
        )
        assert "tabulation" in report.scheme
