"""Tests for the keyed store: invariants, determinism, SLO, merge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing import make_keyed_scheme
from repro.metrics import MetricsRegistry
from repro.service import KeyedStore


def fresh_store(**kwargs):
    kwargs.setdefault("scheme", "double")
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("metrics", MetricsRegistry())
    return KeyedStore(1 << 10, 2, **kwargs)


class TestInvariants:
    def test_load_sum_tracks_size(self):
        st = fresh_store()
        keys = np.arange(1, 3001, dtype=np.int64)
        st.insert_many(keys)
        assert st.size == 3000
        assert st.loads.sum() == 3000
        st.delete_many(keys[:1000])
        assert st.size == 2000
        assert st.loads.sum() == 2000
        assert (st.loads >= 0).all()

    def test_lookup_returns_assigned_bins(self):
        st = fresh_store()
        keys = np.arange(1, 501, dtype=np.int64)
        bins = st.insert_many(keys)
        assert (st.lookup_many(keys) == bins).all()
        assert st.lookup_many([10**12])[0] == -1
        assert st.counters["lookup_misses"] == 1

    def test_reinsert_is_idempotent(self):
        st = fresh_store()
        keys = np.arange(1, 501, dtype=np.int64)
        bins = st.insert_many(keys)
        again = st.insert_many(keys[:100])
        assert (again == bins[:100]).all()
        assert st.counters["reinserts"] == 100
        assert st.loads.sum() == 500  # speculative increments rolled back

    def test_delete_missing_policies(self):
        st = fresh_store()
        st.insert_many(np.arange(1, 11, dtype=np.int64))
        out = st.delete_many([999], missing="ignore")
        assert out[0] == -1
        assert st.counters["delete_misses"] == 1
        with pytest.raises(KeyError):
            st.delete_many([999], missing="error")
        assert st.size == 10  # error path left the store untouched
        with pytest.raises(ConfigurationError):
            st.delete_many([1], missing="bogus")

    def test_empty_batches_are_noops(self):
        st = fresh_store()
        assert st.insert_many([]).size == 0
        assert st.delete_many([]).size == 0
        assert st.lookup_many([]).size == 0
        assert st.ops == 0


class TestDeterminism:
    def test_same_seed_same_placements(self):
        keys = np.arange(1, 5001, dtype=np.int64)
        a = fresh_store(seed=42).insert_many(keys)
        b = fresh_store(seed=42).insert_many(keys)
        assert (a == b).all()

    def test_micro_batch_one_is_sequential(self):
        """micro_batch=1 places strictly sequentially: every key sees all
        earlier placements, so loads within each candidate set differ by
        at most what sequential least-loaded placement allows."""
        keys = np.arange(1, 2049, dtype=np.int64)
        st = fresh_store(seed=3, micro_batch=1)
        st.insert_many(keys)
        assert st.loads.sum() == 2048

    def test_shared_scheme_instance_reproduces(self):
        keyed = make_keyed_scheme("tabulation", 1 << 10, 2, seed=5)
        keys = np.arange(1, 1001, dtype=np.int64)
        a = KeyedStore(1 << 10, 2, scheme=keyed, metrics=MetricsRegistry())
        b = KeyedStore(1 << 10, 2, scheme=keyed, metrics=MetricsRegistry())
        assert (a.insert_many(keys) == b.insert_many(keys)).all()


class TestSLO:
    def test_record_slo_lands_in_metrics_series(self):
        reg = MetricsRegistry()
        st = fresh_store(metrics=reg)
        st.insert_many(np.arange(1, 2001, dtype=np.int64))
        sample = st.record_slo()
        assert sample["size"] == 2000
        snap = reg.snapshot()
        assert "service.slo" in snap["series"]
        recorded = snap["series"]["service.slo"][-1]
        for field in ("ops", "size", "max_load", "p50", "p99", "p999"):
            assert field in recorded
        assert recorded["max_load"] >= recorded["p999"] >= recorded["p99"]

    def test_slo_interval_samples_automatically(self):
        reg = MetricsRegistry()
        st = fresh_store(metrics=reg, slo_interval=500)
        st.insert_many(np.arange(1, 2001, dtype=np.int64))
        assert len(reg.get_series("service.slo")) >= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fresh_store(micro_batch=0)
        with pytest.raises(ConfigurationError):
            fresh_store(slo_interval=0)
        with pytest.raises(ConfigurationError):
            KeyedStore(
                1 << 10, 2,
                scheme=make_keyed_scheme("double", 512, 2, seed=1),
                metrics=MetricsRegistry(),
            )


class TestMerge:
    def test_merge_combines_disjoint_stores(self):
        keyed = make_keyed_scheme("double", 1 << 10, 2, seed=9)
        a = KeyedStore(1 << 10, 2, scheme=keyed, metrics=MetricsRegistry())
        b = KeyedStore(1 << 10, 2, scheme=keyed, metrics=MetricsRegistry())
        a.insert_many(np.arange(1, 501, dtype=np.int64))
        b.insert_many(np.arange(501, 1001, dtype=np.int64))
        merged = a.merge(b)
        assert merged.size == 1000
        assert (merged.loads == a.loads + b.loads).all()
        assert merged.counters["inserts"] == 1000

    def test_merge_rejects_different_hash_functions(self):
        a = fresh_store(seed=1)
        b = fresh_store(seed=2)
        a.insert_many([1])
        b.insert_many([2])
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_merge_rejects_overlapping_keys(self):
        keyed = make_keyed_scheme("double", 1 << 10, 2, seed=9)
        a = KeyedStore(1 << 10, 2, scheme=keyed, metrics=MetricsRegistry())
        b = KeyedStore(1 << 10, 2, scheme=keyed, metrics=MetricsRegistry())
        a.insert_many([1, 2, 3])
        b.insert_many([3, 4])
        with pytest.raises(ConfigurationError):
            a.merge(b)


class TestKernelBacking:
    """The store's bookkeeping runs on the keymap kernel."""

    def test_backend_is_exposed_and_selectable(self):
        st = fresh_store(backend="numpy")
        assert st.backend == "numpy"
        assert "backend=numpy" in st.describe()
        ref = fresh_store(backend="reference")
        assert ref.backend == "reference"

    def test_reference_and_numpy_stores_agree_exactly(self):
        rng = np.random.default_rng(23)
        ops = []
        for _ in range(6):
            ops.append(("insert", rng.integers(0, 4000, size=800)))
            ops.append(("delete", rng.integers(0, 4000, size=300)))
            ops.append(("lookup", rng.integers(0, 5000, size=500)))
        results = {}
        for backend in ("reference", "numpy"):
            st = fresh_store(seed=4, backend=backend)
            outs = []
            for op, keys in ops:
                if op == "insert":
                    outs.append(st.insert_many(keys))
                elif op == "delete":
                    outs.append(st.delete_many(keys))
                else:
                    outs.append(st.lookup_many(keys))
            results[backend] = (outs, st.loads.copy(), st.counters, st.size)
        ref_outs, ref_loads, ref_counters, ref_size = results["reference"]
        np_outs, np_loads, np_counters, np_size = results["numpy"]
        for got, want in zip(np_outs, ref_outs):
            assert np.array_equal(got, want)
        assert np.array_equal(np_loads, ref_loads)
        assert np_counters == ref_counters
        assert np_size == ref_size

    def test_returns_are_int64_ndarrays(self):
        st = fresh_store()
        keys = np.arange(1, 301, dtype=np.int64)
        bins = st.insert_many(keys)
        for out in (
            bins,
            st.lookup_many(keys),
            st.lookup_many([10**15]),
            st.delete_many(keys[:50]),
            st.delete_many([10**15]),
            st.insert_many(keys[50:60]),  # reinsert path
        ):
            assert isinstance(out, np.ndarray)
            assert out.dtype == np.int64
            assert out.ndim == 1
        assert st.insert_many([]).dtype == np.int64

    def test_assignments_property(self):
        st = fresh_store()
        keys = np.array([900, 5, 17, 4], dtype=np.int64)
        bins = st.insert_many(keys)
        got_keys, got_bins = st.assignments
        assert got_keys.dtype == np.int64 and got_bins.dtype == np.int64
        assert np.array_equal(got_keys, np.sort(keys))
        order = np.argsort(keys, kind="stable")
        assert np.array_equal(got_bins, bins[order])
        st.delete_many([17])
        got_keys, _ = st.assignments
        assert 17 not in got_keys.tolist()

    def test_expected_keys_presizes_map(self):
        reg = MetricsRegistry()
        st = fresh_store(metrics=reg, expected_keys=20_000)
        st.insert_many(np.arange(1, 20_001, dtype=np.int64))
        assert reg.get_counter("keymap.rehashes") == 0
        assert st.size == 20_000
