"""Integration tests: the paper's claims, end to end.

Each test here crosses at least two subsystems (scheme + engine + fluid /
analysis) and asserts the claim the corresponding part of the paper makes,
at a scale where sampling noise is controlled.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import compare_distributions, witness_tree_bound
from repro.core import simulate_batch, simulate_dleft
from repro.core.dleft import make_dleft_scheme
from repro.fluid import (
    equilibrium_mean_sojourn_time,
    solve_balls_bins,
    solve_dleft,
    solve_heavy_load,
)
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.queueing import simulate_supermarket

N = 2**13
TRIALS = 60


@pytest.fixture(scope="module")
def standard_runs():
    """Shared d = 3 standard-scheme runs for both schemes."""
    random_dist = simulate_batch(
        FullyRandomChoices(N, 3), N, TRIALS, seed=101
    ).distribution()
    double_dist = simulate_batch(
        DoubleHashingChoices(N, 3), N, TRIALS, seed=202
    ).distribution()
    return random_dist, double_dist


class TestHeadlineClaim:
    """Section 1 / Table 1: double hashing ~ fully random."""

    def test_statistically_indistinguishable(self, standard_runs):
        random_dist, double_dist = standard_runs
        report = compare_distributions(random_dist, double_dist)
        assert report.indistinguishable, (
            f"p={report.p_value:.4f}, "
            f"max dev {report.max_deviation_sigmas:.1f} sigmas"
        )

    def test_every_level_within_sampling_noise(self, standard_runs):
        random_dist, double_dist = standard_runs
        n_obs = TRIALS * N
        for load in range(4):
            diff = abs(
                random_dist.fraction_at(load) - double_dist.fraction_at(load)
            )
            p = max(random_dist.fraction_at(load), 1e-6)
            se = np.sqrt(2 * p * (1 - p) / n_obs)
            assert diff < 5 * se, f"load {load}: {diff} vs se {se}"

    def test_max_loads_agree(self, standard_runs):
        random_dist, double_dist = standard_runs
        assert abs(random_dist.max_load - double_dist.max_load) <= 1


class TestFluidLimitClaim:
    """Theorem 8 / Corollary 9: both schemes follow the same ODEs."""

    def test_double_hashing_matches_ode(self, standard_runs):
        _, double_dist = standard_runs
        fluid = solve_balls_bins(3, 1.0)
        for load in range(3):
            assert double_dist.fraction_at(load) == pytest.approx(
                fluid.fraction_at(load), abs=0.003
            )

    def test_fully_random_matches_ode(self, standard_runs):
        random_dist, _ = standard_runs
        fluid = solve_balls_bins(3, 1.0)
        for load in range(3):
            assert random_dist.fraction_at(load) == pytest.approx(
                fluid.fraction_at(load), abs=0.003
            )

    def test_convergence_rate_in_n(self):
        """The o(1) gap shrinks as n grows (Wormald deviation)."""
        fluid = solve_balls_bins(3, 1.0)
        gaps = []
        for n in (2**8, 2**12):
            dist = simulate_batch(
                DoubleHashingChoices(n, 3), n, 400, seed=n
            ).distribution()
            gaps.append(abs(dist.fraction_at(1) - fluid.fraction_at(1)))
        assert gaps[1] < gaps[0] + 0.002


class TestMaxLoadClaims:
    """Corollary 3 / Theorem 4: O(log log n) maximum load under double
    hashing."""

    def test_max_load_within_witness_bound(self):
        for d in (3, 4):
            batch = simulate_batch(
                DoubleHashingChoices(N, d), N, 30, seed=300 + d
            )
            bound = witness_tree_bound(N, d).max_load_bound
            assert batch.loads.max() <= bound

    def test_max_load_tracks_log_log(self):
        """Observed max load grows very slowly (at most +1 from 2^8 to
        2^13 at d = 3)."""
        maxes = {}
        for n in (2**8, 2**13):
            batch = simulate_batch(DoubleHashingChoices(n, 3), n, 40, seed=n)
            maxes[n] = int(np.median(batch.loads.max(axis=1)))
        assert maxes[2**13] - maxes[2**8] <= 1

    def test_d4_lighter_than_d3(self, standard_runs):
        random_d3, _ = standard_runs
        d4 = simulate_batch(
            FullyRandomChoices(N, 4), N, TRIALS, seed=404
        ).distribution()
        assert d4.tail_at(2) < random_d3.tail_at(2)


class TestDLeftClaim:
    """Table 7: the claim extends to Vöcking's scheme."""

    def test_dleft_schemes_indistinguishable(self):
        random_dist = simulate_dleft(
            make_dleft_scheme(N, 4, "random"), N, TRIALS, seed=500
        ).distribution()
        double_dist = simulate_dleft(
            make_dleft_scheme(N, 4, "double"), N, TRIALS, seed=501
        ).distribution()
        report = compare_distributions(random_dist, double_dist)
        assert report.indistinguishable

    def test_dleft_matches_its_fluid_limit(self):
        dist = simulate_dleft(
            make_dleft_scheme(N, 4, "double"), N, TRIALS, seed=502
        ).distribution()
        fluid = solve_dleft(4, 1.0)
        for load in range(3):
            assert dist.fraction_at(load) == pytest.approx(
                fluid.fraction_at(load), abs=0.003
            )


class TestHeavyLoadClaim:
    """Table 6: the claim persists at average load 16."""

    def test_heavy_load_indistinguishable_and_near_fluid(self):
        n, m = 2**10, 2**10 * 16
        random_dist = simulate_batch(
            FullyRandomChoices(n, 3), m, 15, seed=600
        ).distribution()
        double_dist = simulate_batch(
            DoubleHashingChoices(n, 3), m, 15, seed=601
        ).distribution()
        report = compare_distributions(random_dist, double_dist)
        assert report.indistinguishable
        fluid = solve_heavy_load(3, 16.0)
        for load in (15, 16, 17):
            assert double_dist.fraction_at(load) == pytest.approx(
                fluid.fraction_at(load), abs=0.01
            )


class TestQueueingClaim:
    """Table 8: the claim holds in the supermarket model."""

    def test_sojourn_times_close_and_near_equilibrium(self):
        kwargs = dict(lam=0.9, sim_time=300.0, burn_in=60.0)
        rand = simulate_supermarket(
            FullyRandomChoices(512, 3), seed=700, **kwargs
        ).mean_sojourn_time
        dbl = simulate_supermarket(
            DoubleHashingChoices(512, 3), seed=701, **kwargs
        ).mean_sojourn_time
        eq = equilibrium_mean_sojourn_time(0.9, 3)
        assert rand == pytest.approx(eq, rel=0.06)
        assert dbl == pytest.approx(eq, rel=0.06)
        assert abs(rand - dbl) < 0.12
