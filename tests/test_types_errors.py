"""Tests for the shared dataclasses and the exception hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    ReproError,
    SchemeError,
    SimulationError,
    StabilityError,
    TableFullError,
)
from repro.types import LevelStats, LoadDistribution, TrialBatchResult


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ConfigurationError,
            SchemeError,
            SimulationError,
            StabilityError,
            TableFullError,
        ):
            assert issubclass(exc, ReproError)

    def test_configuration_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_simulation_is_runtime_error(self):
        assert issubclass(SimulationError, RuntimeError)

    def test_scheme_error_specializes_configuration(self):
        assert issubclass(SchemeError, ConfigurationError)

    def test_stability_specializes_simulation(self):
        assert issubclass(StabilityError, SimulationError)


def _dist(counts, trials=2) -> LoadDistribution:
    counts = np.asarray(counts, dtype=np.int64)
    return LoadDistribution(
        n_bins=int(counts.sum() // trials),
        n_balls=10,
        trials=trials,
        counts=counts,
        max_load_per_trial=np.full(trials, len(counts) - 1),
    )


class TestLoadDistribution:
    def test_fractions_sum_to_one(self):
        d = _dist([10, 6, 4])
        assert d.fractions.sum() == pytest.approx(1.0)

    def test_tail_fractions(self):
        d = _dist([10, 6, 4])
        assert d.tail_fractions[0] == pytest.approx(1.0)
        assert d.tail_fractions[1] == pytest.approx(0.5)
        assert d.tail_fractions[2] == pytest.approx(0.2)

    def test_fraction_at_out_of_range(self):
        d = _dist([10, 10])
        assert d.fraction_at(99) == 0.0
        assert d.tail_at(99) == 0.0
        with pytest.raises(ValueError):
            d.fraction_at(-1)
        with pytest.raises(ValueError):
            d.tail_at(-2)

    def test_max_load(self):
        d = _dist([10, 6, 4])
        assert d.max_load == 2

    def test_fraction_trials_max_load(self):
        d = LoadDistribution(
            n_bins=4, n_balls=4, trials=4,
            counts=np.array([8, 4, 4]),
            max_load_per_trial=np.array([1, 2, 2, 3]),
        )
        assert d.fraction_trials_max_load(2) == pytest.approx(0.5)
        assert d.fraction_trials_max_load(5) == 0.0

    def test_merge(self):
        a = _dist([10, 6, 4])
        b = _dist([12, 8])
        merged = a.merged_with(b)
        assert merged.trials == 4
        assert merged.counts.tolist() == [22, 14, 4]
        assert len(merged.max_load_per_trial) == 4

    def test_merge_geometry_mismatch(self):
        a = _dist([10, 10])
        b = LoadDistribution(
            n_bins=99, n_balls=10, trials=2,
            counts=np.array([198]), max_load_per_trial=np.zeros(2),
        )
        with pytest.raises(ValueError, match="geometry"):
            a.merged_with(b)


class TestTrialBatchResult:
    def test_distribution_roundtrip(self):
        loads = np.array([[0, 1, 2, 1], [1, 1, 1, 1]])
        batch = TrialBatchResult(n_bins=4, n_balls=4, loads=loads)
        dist = batch.distribution()
        assert dist.counts.tolist() == [1, 6, 1]
        assert dist.max_load_per_trial.tolist() == [2, 1]

    def test_level_stats(self):
        loads = np.array([[0, 0, 2], [1, 1, 0]])
        batch = TrialBatchResult(n_bins=3, n_balls=2, loads=loads)
        st = batch.level_stats(0)
        assert isinstance(st, LevelStats)
        assert st.minimum == 1 and st.maximum == 2
        assert st.mean == pytest.approx(1.5)

    def test_level_stats_single_trial_std_zero(self):
        batch = TrialBatchResult(
            n_bins=3, n_balls=2, loads=np.array([[1, 1, 0]])
        )
        assert batch.level_stats(1).std == 0.0
