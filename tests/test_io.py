"""Tests for JSON serialization of results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import simulate_batch
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.io import (
    distribution_from_dict,
    distribution_to_dict,
    load_json,
    queueing_result_from_dict,
    queueing_result_to_dict,
    save_json,
)
from repro.queueing import simulate_supermarket
from repro.types import QueueingResult


class TestDistributionRoundTrip:
    def test_exact_round_trip(self):
        dist = simulate_batch(
            DoubleHashingChoices(64, 3), 64, 10, seed=1
        ).distribution()
        restored = distribution_from_dict(distribution_to_dict(dist))
        assert restored.n_bins == dist.n_bins
        assert restored.trials == dist.trials
        assert np.array_equal(restored.counts, dist.counts)
        assert np.array_equal(
            restored.max_load_per_trial, dist.max_load_per_trial
        )

    def test_derived_quantities_survive(self):
        dist = simulate_batch(
            FullyRandomChoices(32, 2), 32, 5, seed=2
        ).distribution()
        restored = distribution_from_dict(distribution_to_dict(dist))
        assert restored.fraction_at(1) == dist.fraction_at(1)
        assert restored.max_load == dist.max_load

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="LoadDistribution"):
            distribution_from_dict({"kind": "Other"})


class TestQueueingRoundTrip:
    def test_round_trip_with_tails(self):
        res = simulate_supermarket(
            FullyRandomChoices(64, 2), 0.5, 40.0, seed=3, track_tails=True
        )
        restored = queueing_result_from_dict(queueing_result_to_dict(res))
        assert restored.mean_sojourn_time == res.mean_sojourn_time
        assert restored.completed_jobs == res.completed_jobs
        assert np.allclose(restored.tail_fractions, res.tail_fractions)

    def test_round_trip_without_tails(self):
        res = QueueingResult(
            mean_sojourn_time=2.0,
            completed_jobs=100,
            mean_queue_length=1.5,
            sim_time=10.0,
        )
        restored = queueing_result_from_dict(queueing_result_to_dict(res))
        assert restored.tail_fractions is None

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="QueueingResult"):
            queueing_result_from_dict({"kind": "LoadDistribution"})


class TestFileIO:
    def test_save_load_file(self, tmp_path):
        dist = simulate_batch(
            DoubleHashingChoices(16, 2), 16, 3, seed=4
        ).distribution()
        path = tmp_path / "dist.json"
        save_json(distribution_to_dict(dist), path)
        restored = distribution_from_dict(load_json(path))
        assert np.array_equal(restored.counts, dist.counts)

    def test_numpy_scalars_encoded(self, tmp_path):
        path = tmp_path / "scalars.json"
        save_json(
            {"a": np.int64(5), "b": np.float64(1.5), "c": np.arange(3)}, path
        )
        data = load_json(path)
        assert data == {"a": 5, "b": 1.5, "c": [0, 1, 2]}

    def test_unencodable_raises(self, tmp_path):
        with pytest.raises(TypeError):
            save_json({"f": object()}, tmp_path / "bad.json")
