"""Tests for the vectorized hash-scheme kernel primitives.

Exactness contract: every backend tier returns bit-identical output to
the pure-Python scalar oracles in ``repro.kernels.hash_schemes`` for
every uint64 key, including the boundary keys 0 and 2^64 - 1.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    flatten_tables,
    pairwise_affine_scalar,
    pairwise_affine_u64,
    tabulation_hash_scalar,
    tabulation_hash_u64,
)
from repro.kernels.hash_schemes import MERSENNE_P
from repro.kernels.numba_hash import NUMBA_AVAILABLE

BOUNDARY_KEYS = np.array(
    [0, 1, 2, 255, 256, (1 << 32) - 1, 1 << 32, (1 << 63) - 1,
     1 << 63, (1 << 64) - 1, MERSENNE_P - 1, MERSENNE_P, MERSENNE_P + 1],
    dtype=np.uint64,
)

needs_numba = pytest.mark.skipif(
    not NUMBA_AVAILABLE, reason="numba not installed"
)


@pytest.fixture(scope="module")
def tables():
    rng = np.random.default_rng(7)
    return rng.integers(0, 1 << 64, size=(8, 256), dtype=np.uint64)


class TestTabulationKernel:
    def test_matches_scalar_oracle_on_boundary_keys(self, tables):
        out = tabulation_hash_u64(BOUNDARY_KEYS, flatten_tables(tables))
        expect = [tabulation_hash_scalar(int(k), tables) for k in BOUNDARY_KEYS]
        assert out.tolist() == expect

    def test_matches_scalar_oracle_on_random_keys(self, tables):
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 1 << 64, size=100_000, dtype=np.uint64)
        out = tabulation_hash_u64(keys, flatten_tables(tables))
        idx = rng.integers(0, keys.size, size=200)
        for i in idx:
            assert int(out[i]) == tabulation_hash_scalar(int(keys[i]), tables)

    def test_crosses_block_boundary(self, tables):
        # Exceed the internal gather block so the loop runs > 1 iteration.
        keys = np.arange(1 << 15 | 11, dtype=np.uint64)
        flat = flatten_tables(tables)
        out = tabulation_hash_u64(keys, flat)
        small = tabulation_hash_u64(keys[: 1 << 10], flat)
        assert np.array_equal(out[: 1 << 10], small)

    def test_int64_keys_are_reinterpreted_not_converted(self, tables):
        keys = np.array([-1, -(1 << 62)], dtype=np.int64)
        out = tabulation_hash_u64(keys, flatten_tables(tables))
        assert int(out[0]) == tabulation_hash_scalar((1 << 64) - 1, tables)

    def test_flatten_tables_shape_checked(self, tables):
        with pytest.raises(ValueError):
            flatten_tables(tables[:4])

    @needs_numba
    def test_numba_bit_identical_to_numpy(self, tables):
        rng = np.random.default_rng(13)
        keys = rng.integers(0, 1 << 64, size=50_000, dtype=np.uint64)
        flat = flatten_tables(tables)
        a = tabulation_hash_u64(keys, flat, backend="numpy")
        b = tabulation_hash_u64(keys, flat, backend="numba")
        assert np.array_equal(a, b)


class TestPairwiseKernel:
    A, B = 0x1234_5678_9ABC_DEF1 % MERSENNE_P, 987654321

    def test_matches_scalar_oracle_on_boundary_keys(self):
        out = pairwise_affine_u64(BOUNDARY_KEYS, self.A, self.B)
        expect = [
            pairwise_affine_scalar(int(k), self.A, self.B)
            for k in BOUNDARY_KEYS
        ]
        assert out.tolist() == expect

    def test_output_strictly_below_p(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 1 << 64, size=100_000, dtype=np.uint64)
        out = pairwise_affine_u64(keys, MERSENNE_P - 1, MERSENNE_P - 1)
        assert int(out.max()) < MERSENNE_P

    @settings(max_examples=50, deadline=None)
    @given(
        a=st.integers(1, MERSENNE_P - 1),
        b=st.integers(0, MERSENNE_P - 1),
        key=st.integers(0, (1 << 64) - 1),
    )
    def test_property_matches_oracle_any_parameters(self, a, b, key):
        out = pairwise_affine_u64(np.array([key], dtype=np.uint64), a, b)
        assert int(out[0]) == pairwise_affine_scalar(key, a, b)

    def test_parameter_validation(self):
        keys = np.zeros(1, dtype=np.uint64)
        with pytest.raises(ValueError):
            pairwise_affine_u64(keys, 0, 0)
        with pytest.raises(ValueError):
            pairwise_affine_u64(keys, MERSENNE_P, 0)
        with pytest.raises(ValueError):
            pairwise_affine_u64(keys, 1, MERSENNE_P)

    @needs_numba
    def test_numba_bit_identical_to_numpy(self):
        rng = np.random.default_rng(17)
        keys = rng.integers(0, 1 << 64, size=50_000, dtype=np.uint64)
        a = pairwise_affine_u64(keys, self.A, self.B, backend="numpy")
        b = pairwise_affine_u64(keys, self.A, self.B, backend="numba")
        assert np.array_equal(a, b)


class TestBackendDispatch:
    def test_env_var_routes_kernel(self, tables, monkeypatch):
        keys = np.arange(1000, dtype=np.uint64)
        flat = flatten_tables(tables)
        base = tabulation_hash_u64(keys, flat)
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert np.array_equal(tabulation_hash_u64(keys, flat), base)

    def test_numba_request_falls_back_without_numba(self, tables):
        # Explicit backend="numba" must still return correct results
        # (silent fallback to numpy when the JIT tier is absent).
        keys = np.arange(1000, dtype=np.uint64)
        flat = flatten_tables(tables)
        out = tabulation_hash_u64(keys, flat, backend="numba")
        assert np.array_equal(out, tabulation_hash_u64(keys, flat))

    def test_unknown_backend_rejected(self, tables):
        from repro.errors import ConfigurationError

        keys = np.arange(4, dtype=np.uint64)
        with pytest.raises(ConfigurationError):
            tabulation_hash_u64(keys, flatten_tables(tables), backend="gpu")
