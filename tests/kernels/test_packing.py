"""Tests for the packed-field width negotiation (`repro.kernels.packing`)."""

import pytest

from repro.errors import ConfigurationError
from repro.kernels.packing import (
    INT32_VALUE_BITS,
    INT64_VALUE_BITS,
    check_packed_fields,
    field_width,
    pack_key,
    select_tie_bits,
    unpack_key,
)


class TestFieldWidth:
    def test_exact_powers(self):
        assert field_width(1) == 0
        assert field_width(2) == 1
        assert field_width(1024) == 10
        assert field_width(1025) == 11
        assert field_width(1 << 43) == 43

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            field_width(0)
        with pytest.raises(ConfigurationError):
            field_width(-3)


class TestCheckPackedFields:
    def test_accepts_exact_fit(self):
        check_packed_fields(
            {"load": 33, "tie": 10, "cidx": 20},
            carrier_bits=INT64_VALUE_BITS,
            context="test layout",
        )

    def test_rejects_overflow_with_context(self):
        with pytest.raises(ConfigurationError, match="supermarket"):
            check_packed_fields(
                {"queue_len": 44, "tie": 20},
                carrier_bits=INT64_VALUE_BITS,
                context="supermarket",
            )

    def test_rejects_negative_width(self):
        with pytest.raises(ConfigurationError):
            check_packed_fields(
                {"x": -1}, carrier_bits=INT32_VALUE_BITS, context="test"
            )


class TestSelectTieBits:
    def test_preferred_fits(self):
        assert (
            select_tie_bits(1 << 10, preferred=10, minimum=8, address_bits=31)
            == 10
        )

    def test_trades_down(self):
        # 2^22 addresses need 22 bits, leaving 9 of 31 for ties: below
        # preferred, at or above minimum.
        assert (
            select_tie_bits(1 << 22, preferred=10, minimum=8, address_bits=31)
            == 9
        )

    def test_none_when_even_minimum_overflows(self):
        assert (
            select_tie_bits(1 << 30, preferred=10, minimum=8, address_bits=31)
            is None
        )


class TestPackRoundTrip:
    def test_roundtrip(self):
        load, tie, cidx = 19, 1001, (1 << 17) - 3
        key = pack_key(load, tie, cidx, tie_bits=10, cidx_bits=17)
        assert unpack_key(key, tie_bits=10, cidx_bits=17) == (load, tie, cidx)

    def test_rejects_field_overflow(self):
        with pytest.raises(ConfigurationError):
            pack_key(0, 1 << 10, 0, tie_bits=10, cidx_bits=17)
        with pytest.raises(ConfigurationError):
            pack_key(0, 0, 1 << 17, tie_bits=10, cidx_bits=17)
        with pytest.raises(ConfigurationError):
            pack_key(-1, 0, 0, tie_bits=10, cidx_bits=17)

    def test_key_ordering_is_load_major(self):
        # A lower load always wins, whatever the tie/cidx fields hold.
        low = pack_key(1, (1 << 10) - 1, 9, tie_bits=10, cidx_bits=17)
        high = pack_key(2, 0, 0, tie_bits=10, cidx_bits=17)
        assert low < high
