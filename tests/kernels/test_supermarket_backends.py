"""Supermarket kernel: golden regression + cross-backend bit-identity.

The contract (``repro.kernels.supermarket``): every backend reachable
through :func:`repro.kernels.run_supermarket_kernel` consumes the
generator in exactly the same order as the oracle
:func:`repro.kernels.reference.simulate_supermarket_reference`, produces
bit-identical results, raises identical stability errors, and leaves a
shared generator in the same state (callers run several simulations off
one generator, so post-run state is part of the contract).

``tests/data/golden_supermarket.json`` pins the oracle's outputs (float
values stored as exact hex) so the contract is also stable release to
release.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError, StabilityError
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.kernels import (
    run_supermarket_kernel,
    simulate_supermarket_reference,
)
from repro.kernels.numba_backend import NUMBA_AVAILABLE
from repro.metrics import MetricsRegistry

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_supermarket.json"

SCHEMES = {"random": FullyRandomChoices, "double": DoubleHashingChoices}

CASES = {
    "random_n64_d2_lam05_s1": dict(
        scheme="random", n=64, d=2, lam=0.5, seed=1, track_tails=False,
        tie_break="random",
    ),
    "double_n128_d3_lam095_s2_tails": dict(
        scheme="double", n=128, d=3, lam=0.95, seed=2, track_tails=True,
        tie_break="random",
    ),
    "random_n32_d3_lam08_s3_left": dict(
        scheme="random", n=32, d=3, lam=0.8, seed=3, track_tails=False,
        tie_break="left",
    ),
    "random_n48_d1_lam07_s4_tails": dict(
        scheme="random", n=48, d=1, lam=0.7, seed=4, track_tails=True,
        tie_break="random",
    ),
    "double_n256_d4_lam09_s5_tails": dict(
        scheme="double", n=256, d=4, lam=0.9, seed=5, track_tails=True,
        tie_break="random",
    ),
}

BACKENDS = ["reference", "numpy"] + (["numba"] if NUMBA_AVAILABLE else [])


def _run_case(case: dict, backend: str):
    scheme = SCHEMES[case["scheme"]](case["n"], case["d"])
    kwargs = dict(
        burn_in=10.0,
        seed=case["seed"],
        track_tails=case["track_tails"],
        tie_break=case["tie_break"],
    )
    if backend == "reference":
        return simulate_supermarket_reference(
            scheme, case["lam"], 60.0, **kwargs
        )
    return run_supermarket_kernel(
        scheme, case["lam"], 60.0, backend=backend, **kwargs
    )


def _assert_results_identical(a, b, *, context: str = ""):
    for field in (
        "mean_sojourn_time",
        "completed_jobs",
        "mean_queue_length",
        "sim_time",
        "n_arrivals",
        "n_departures",
        "busy_fraction",
    ):
        assert getattr(a, field) == getattr(b, field), f"{field} {context}"
    if a.tail_fractions is None:
        assert b.tail_fractions is None, context
    else:
        assert b.tail_fractions is not None, context
        np.testing.assert_array_equal(
            a.tail_fractions, b.tail_fractions, err_msg=context
        )


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


class TestGolden:
    def test_golden_file_covers_all_cases(self, golden):
        assert set(golden) == set(CASES)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_backend_matches_golden(self, golden, name, backend):
        res = _run_case(CASES[name], backend)
        want = golden[name]
        assert res.mean_sojourn_time.hex() == want["mean_sojourn_time_hex"]
        assert res.completed_jobs == want["completed_jobs"]
        assert res.mean_queue_length.hex() == want["mean_queue_length_hex"]
        assert res.busy_fraction.hex() == want["busy_fraction_hex"]
        assert res.n_arrivals == want["n_arrivals"]
        assert res.n_departures == want["n_departures"]
        if want["tail_fractions_hex"] is None:
            assert res.tail_fractions is None
        else:
            assert [
                float(v).hex() for v in res.tail_fractions
            ] == want["tail_fractions_hex"]


class TestCrossBackendBitIdentity:
    # Wider geometries than the goldens, including heavy load and d=1.
    GEOMETRIES = [
        ("random", 64, 2, 0.9, True, "random", 11),
        ("double", 100, 3, 0.99, False, "random", 12),
        ("random", 16, 4, 0.6, True, "left", 13),
        ("double", 512, 2, 0.8, False, "random", 14),
        ("random", 24, 1, 0.75, True, "random", 15),
    ]

    @pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "reference"])
    @pytest.mark.parametrize("geom", GEOMETRIES)
    def test_matches_reference_and_rng_state(self, geom, backend):
        kind, n, d, lam, tails, tie, seed = geom
        g_ref = np.random.default_rng(seed)
        g_bk = np.random.default_rng(seed)
        ref = simulate_supermarket_reference(
            SCHEMES[kind](n, d), lam, 50.0, burn_in=5.0, seed=g_ref,
            track_tails=tails, tie_break=tie,
        )
        res = run_supermarket_kernel(
            SCHEMES[kind](n, d), lam, 50.0, burn_in=5.0, seed=g_bk,
            track_tails=tails, tie_break=tie, backend=backend,
        )
        _assert_results_identical(ref, res, context=f"{geom} {backend}")
        # Post-run generator state is part of the contract: sequential
        # runs off one generator must agree across backends too.
        assert (
            g_ref.bit_generator.state == g_bk.bit_generator.state
        ), f"generator state diverged: {geom} {backend}"

    @pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "reference"])
    def test_sequential_runs_share_one_generator(self, backend):
        """Two back-to-back runs on one generator (the batch-runner
        pattern) are bit-identical across backends."""
        def two_runs(fn):
            rng = np.random.default_rng(77)
            out = []
            for lam in (0.7, 0.95):
                out.append(fn(FullyRandomChoices(48, 2), lam, rng))
            return out

        ref = two_runs(
            lambda s, lam, rng: simulate_supermarket_reference(
                s, lam, 40.0, burn_in=5.0, seed=rng
            )
        )
        got = two_runs(
            lambda s, lam, rng: run_supermarket_kernel(
                s, lam, 40.0, burn_in=5.0, seed=rng, backend=backend
            )
        )
        for a, b in zip(ref, got):
            _assert_results_identical(a, b, context=backend)

    @pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "reference"])
    def test_stability_error_parity(self, backend):
        messages = []
        for fn in (
            lambda: simulate_supermarket_reference(
                FullyRandomChoices(64, 2), 0.9, 200.0, seed=21,
                max_total_jobs=5,
            ),
            lambda: run_supermarket_kernel(
                FullyRandomChoices(64, 2), 0.9, 200.0, seed=21,
                max_total_jobs=5, backend=backend,
            ),
        ):
            with pytest.raises(StabilityError) as excinfo:
                fn()
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
        assert "appears unstable" in messages[0]


class TestDriver:
    def test_validation_errors(self):
        scheme = FullyRandomChoices(16, 2)
        with pytest.raises(ConfigurationError, match="lambda"):
            run_supermarket_kernel(scheme, 1.2, 10.0)
        with pytest.raises(ConfigurationError, match="sim_time"):
            run_supermarket_kernel(scheme, 0.5, -1.0)
        with pytest.raises(ConfigurationError, match="burn_in"):
            run_supermarket_kernel(scheme, 0.5, 10.0, burn_in=20.0)
        with pytest.raises(ConfigurationError, match="tie_break"):
            run_supermarket_kernel(scheme, 0.5, 10.0, tie_break="up")
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            run_supermarket_kernel(scheme, 0.5, 10.0, backend="fortran")

    def test_event_counts_are_consistent(self):
        res = run_supermarket_kernel(
            FullyRandomChoices(64, 2), 0.8, 100.0, burn_in=10.0, seed=9,
            backend="numpy",
        )
        assert res.n_events == res.n_arrivals + res.n_departures
        assert res.n_departures >= res.completed_jobs
        assert res.events_per_time == pytest.approx(
            res.n_events / res.sim_time
        )
        # In steady state the busy fraction approaches lambda.
        assert res.busy_fraction == pytest.approx(0.8, abs=0.1)

    def test_metrics_emitted(self):
        registry = MetricsRegistry()
        res = run_supermarket_kernel(
            FullyRandomChoices(32, 2), 0.7, 50.0, seed=5, backend="numpy",
            metrics=registry,
        )
        snap = registry.snapshot()
        assert snap["counters"]["kernel.supermarket_events"] == res.n_events
        assert (
            snap["counters"]["kernel.supermarket_completions"]
            == res.completed_jobs
        )
        assert snap["counters"]["kernel.calls.numpy"] == 1
        assert snap["timers"]["kernel.supermarket_seconds"]["count"] == 1

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="needs numba to be absent")
    def test_numba_request_falls_back_with_event(self):
        from repro.metrics import global_registry

        registry = MetricsRegistry()
        before = len(global_registry().events)
        res = run_supermarket_kernel(
            FullyRandomChoices(32, 2), 0.6, 40.0, seed=6, backend="numba",
            metrics=registry,
        )
        ref = run_supermarket_kernel(
            FullyRandomChoices(32, 2), 0.6, 40.0, seed=6, backend="numpy",
        )
        _assert_results_identical(ref, res, context="fallback")
        fallbacks = [
            e for e in registry.events if e["kind"] == "backend-fallback"
        ]
        assert fallbacks and fallbacks[-1]["requested"] == "numba"
        assert fallbacks[-1]["using"] == "numpy"
        assert len(global_registry().events) > before
