"""Bit-exactness of the fused numpy kernel against a sequential oracle.

The out-of-order speculative-commit kernel is only admissible because its
result is provably identical to placing the balls one at a time.  These
tests enforce that claim directly: for a grid of geometries the kernel's
loads must equal :func:`repro.kernels.sequential_packed_reference` (a
pure-Python ball-at-a-time loop over the same packed draws) bin for bin.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.kernels import (
    choose_window,
    generate_packed,
    plan_layout,
    resolve_backend,
    run_placement_kernel,
    sequential_packed_reference,
)
from repro.rng import default_generator

# (n_bins, d, trials, steps, tie_break) — covers d=1 (no choice), window
# larger than the whole stream, heavy load (steps >> n), left ties, and
# the asymmetric shapes that broke early kernel drafts.
GEOMETRIES = [
    (8, 3, 3, 32, "random"),
    (8, 1, 2, 16, "random"),
    (64, 4, 5, 200, "random"),
    (16, 2, 4, 64, "random"),
    (8, 3, 2, 5, "random"),      # window > steps
    (64, 2, 3, 777, "random"),
    (4, 4, 3, 64, "random"),     # heavy load, tiny table
    (64, 4, 5, 200, "left"),
    (256, 3, 2, 512, "left"),
    (4, 2, 3, 96, "left"),
]


def _kernel_loads(pc, layout, n_bins, d, trials):
    impl = resolve_backend("numpy")
    work = np.zeros(trials * layout.bins_p, dtype=np.int32)
    ws = impl.make_workspace(
        d=d, trials=trials, window=choose_window(n_bins, d),
        bins_p=layout.bins_p,
    )
    impl.place(work, pc, layout=layout, workspace=ws)
    return work.reshape(trials, layout.bins_p)[:, :n_bins].astype(np.int64)


@pytest.mark.parametrize("n,d,trials,steps,tie_break", GEOMETRIES)
def test_kernel_matches_sequential_reference(n, d, trials, steps, tie_break):
    layout = plan_layout(n, d, tie_break, trials, steps)
    assert layout is not None
    scheme = FullyRandomChoices(n, d)
    pc = generate_packed(scheme, trials, steps, default_generator(1234), layout)
    got = _kernel_loads(pc, layout, n, d, trials)
    want = sequential_packed_reference(pc, layout)
    assert np.array_equal(got, want)


@pytest.mark.parametrize("n", [8, 64, 512])
def test_fused_double_hashing_path_matches_reference(n):
    """The pow2 fused generator feeds the same kernel; exactness must hold
    on its output too (its packing differs from the generic path)."""
    d, trials, steps = 3, 4, 3 * n
    layout = plan_layout(n, d, "random", trials, steps)
    scheme = DoubleHashingChoices(n, d)
    pc = generate_packed(scheme, trials, steps, default_generator(9), layout)
    got = _kernel_loads(pc, layout, n, d, trials)
    want = sequential_packed_reference(pc, layout)
    assert np.array_equal(got, want)


def test_fused_draws_are_valid_double_hashing_progressions():
    """Candidate columns from the fused path form arithmetic progressions
    mod n with an odd stride, i.e. genuine double-hashing probes."""
    n, d, trials, steps = 64, 4, 3, 50
    layout = plan_layout(n, d, "random", trials, steps)
    pc = generate_packed(
        DoubleHashingChoices(n, d), trials, steps, default_generator(2), layout
    )
    toff = np.arange(trials, dtype=np.int64) * layout.bins_p
    bins = (pc[:, :, :steps] & int(layout.cidx_mask)) - toff[None, :, None]
    stride = (bins[1] - bins[0]) % n
    for k in range(2, d):
        assert np.array_equal((bins[k] - bins[k - 1]) % n, stride)
    assert (stride % 2 == 1).all()
    assert (bins >= 0).all() and (bins < n).all()


def test_window_exceeding_steps_is_exact():
    """The commit logic must not read past the dummy column when the whole
    stream fits inside one window."""
    n, d, trials, steps = 128, 2, 6, 3
    layout = plan_layout(n, d, "random", trials, steps)
    pc = generate_packed(
        FullyRandomChoices(n, d), trials, steps, default_generator(77), layout
    )
    got = _kernel_loads(pc, layout, n, d, trials)
    assert np.array_equal(got, sequential_packed_reference(pc, layout))
    assert (got.sum(axis=1) == steps).all()


def test_run_placement_kernel_matches_naive_python_loop():
    """End-to-end over raw arrays: the public entry point must agree with
    the obvious interpretation of its contract."""
    trials, n, steps, d = 3, 16, 120, 3
    rng = np.random.default_rng(5)
    choices = rng.integers(0, n, size=(trials, steps, d))
    tie_keys = rng.integers(0, 256, size=(trials, steps, d))
    loads = np.zeros((trials, n), dtype=np.int64)
    run_placement_kernel(loads, choices, tie_keys, backend="numpy")

    expect = np.zeros((trials, n), dtype=np.int64)
    for t in range(trials):
        for b in range(steps):
            best = None
            for j in range(d):
                c = int(choices[t, b, j])
                key = (int(expect[t, c]), int(tie_keys[t, b, j]), c)
                if best is None or key < best:
                    best = key
                    best_c = c
            expect[t, best_c] += 1
    assert np.array_equal(loads, expect)
