"""Backend registry: resolution order, fallback logging, public contract."""

from __future__ import annotations

import numpy as np
import pytest

import repro.kernels as kernels
from repro.errors import ConfigurationError
from repro.kernels import (
    available_backends,
    resolve_backend,
    run_placement_kernel,
)
from repro.kernels.numba_backend import NUMBA_AVAILABLE
from repro.metrics import MetricsRegistry


class TestResolution:
    def test_default_is_known_backend(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        impl = resolve_backend()
        assert impl.name in kernels.KNOWN_BACKENDS
        if not NUMBA_AVAILABLE:
            assert impl.name == "numpy"

    def test_explicit_numpy(self):
        assert resolve_backend("numpy").name == "numpy"

    def test_explicit_is_case_and_space_insensitive(self):
        assert resolve_backend("  NumPy ").name == "numpy"

    def test_env_variable_selects(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        assert resolve_backend().name == "numpy"

    def test_explicit_wins_over_env(self, monkeypatch):
        # An unknown env value must be ignored when an explicit name is given.
        monkeypatch.setenv(kernels.ENV_VAR, "bogus")
        assert resolve_backend("numpy").name == "numpy"

    def test_empty_env_means_auto(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "")
        assert resolve_backend().name in kernels.KNOWN_BACKENDS

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            resolve_backend("fortran")

    def test_unknown_env_raises(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "fortran")
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            resolve_backend()

    def test_available_backends(self):
        names = available_backends()
        assert "numpy" in names
        assert ("numba" in names) == NUMBA_AVAILABLE


@pytest.mark.skipif(NUMBA_AVAILABLE, reason="fallback only fires without numba")
class TestFallback:
    def test_numba_request_falls_back_to_numpy(self):
        assert resolve_backend("numba").name == "numpy"

    def test_fallback_event_logged_globally(self):
        before = len(kernels.kernel_metrics().events)
        resolve_backend("numba")
        events = kernels.kernel_metrics().events
        assert len(events) > before
        ev = events[-1]
        assert ev["kind"] == "backend-fallback"
        assert ev["requested"] == "numba"
        assert ev["using"] == "numpy"
        assert ev["source"] == "explicit"

    def test_fallback_event_logged_to_caller_registry(self):
        registry = MetricsRegistry()
        resolve_backend("numba", metrics=registry)
        kinds = [e["kind"] for e in registry.events]
        assert "backend-fallback" in kinds

    def test_env_fallback_records_source(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numba")
        registry = MetricsRegistry()
        assert resolve_backend(metrics=registry).name == "numpy"
        assert registry.events[-1]["source"] == "env"


class TestRunPlacementKernel:
    def _arrays(self, trials=4, n=32, steps=100, d=3, seed=3):
        rng = np.random.default_rng(seed)
        loads = np.zeros((trials, n), dtype=np.int64)
        choices = rng.integers(0, n, size=(trials, steps, d))
        tie_keys = rng.integers(0, 1 << 8, size=(trials, steps, d))
        return loads, choices, tie_keys

    def test_conserves_balls_and_returns_loads(self):
        loads, choices, tie_keys = self._arrays()
        out = run_placement_kernel(loads, choices, tie_keys)
        assert out is loads
        assert (loads.sum(axis=1) == choices.shape[1]).all()

    def test_matches_sequential_semantics(self):
        # d=1 removes all choice: the result must equal a bincount.
        trials, n, steps = 3, 16, 200
        rng = np.random.default_rng(11)
        choices = rng.integers(0, n, size=(trials, steps, 1))
        loads = np.zeros((trials, n), dtype=np.int64)
        run_placement_kernel(loads, choices)
        for t in range(trials):
            expect = np.bincount(choices[t, :, 0], minlength=n)
            assert np.array_equal(loads[t], expect)

    def test_left_tie_break_prefers_first_column(self):
        # Two empty bins offered each step; "left" must always pick col 0.
        trials, n, steps = 2, 8, 4
        choices = np.zeros((trials, steps, 2), dtype=np.int64)
        choices[:, :, 0] = np.arange(steps)        # distinct bins, col 0
        choices[:, :, 1] = np.arange(steps) + 4    # distinct bins, col 1
        loads = np.zeros((trials, n), dtype=np.int64)
        run_placement_kernel(loads, choices, tie_break="left")
        assert (loads[:, :4] == 1).all() and (loads[:, 4:] == 0).all()

    def test_tie_keys_with_left_rejected(self):
        loads, choices, tie_keys = self._arrays()
        with pytest.raises(ConfigurationError, match="tie_keys must be None"):
            run_placement_kernel(loads, choices, tie_keys, tie_break="left")

    def test_tie_keys_shape_mismatch_rejected(self):
        loads, choices, tie_keys = self._arrays()
        with pytest.raises(ConfigurationError, match="tie_keys shape"):
            run_placement_kernel(loads, choices, tie_keys[:, :-1])

    def test_tie_keys_out_of_range_rejected(self):
        loads, choices, tie_keys = self._arrays()
        tie_keys[0, 0, 0] = 1 << 40
        with pytest.raises(ConfigurationError, match="tie_keys must lie"):
            run_placement_kernel(loads, choices, tie_keys)

    def test_bad_tie_break_rejected(self):
        loads, choices, _ = self._arrays()
        with pytest.raises(ConfigurationError, match="tie_break"):
            run_placement_kernel(loads, choices, tie_break="middle")

    def test_bad_shapes_rejected(self):
        loads, choices, _ = self._arrays()
        with pytest.raises(ConfigurationError, match="loads must be 2-D"):
            run_placement_kernel(loads[0], choices)
        with pytest.raises(ConfigurationError, match="choices must be"):
            run_placement_kernel(loads, choices[:2])

    def test_negative_loads_rejected(self):
        loads, choices, _ = self._arrays()
        loads[0, 0] = -1
        with pytest.raises(ConfigurationError, match="non-negative"):
            run_placement_kernel(loads, choices)

    def test_resumes_from_existing_loads(self):
        loads, choices, tie_keys = self._arrays()
        half = choices.shape[1] // 2
        a = loads.copy()
        run_placement_kernel(a, choices, tie_keys)
        b = loads.copy()
        run_placement_kernel(b, choices[:, :half], tie_keys[:, :half])
        run_placement_kernel(b, choices[:, half:], tie_keys[:, half:])
        # Placement is exactly sequential, so splitting one ball stream
        # across two calls must reproduce the single-call result bit for bit.
        assert np.array_equal(a, b)

    def test_metrics_counters(self):
        registry = MetricsRegistry()
        loads, choices, tie_keys = self._arrays(trials=2, steps=50)
        run_placement_kernel(
            loads, choices, tie_keys, backend="numpy", metrics=registry
        )
        assert registry.get_counter("kernel.balls_placed") == 2 * 50
        assert registry.get_counter("kernel.calls.numpy") == 1
