"""Cross-backend assignment-map equivalence: every tier vs the dict oracle.

The keymap contract pins every observable — the per-key return array of
``insert_many`` (set-default), ``delete_many``, and ``lookup_many``, and
the final live ``(key, value)`` mapping — so every kernel tier must agree
*exactly* with :class:`~repro.kernels.keymap.ReferenceKeyMap` on any
stream, including intra-batch duplicate keys, reinserts of deleted keys,
delete misses, and rehash-triggering growth.  Structured golden streams
pin the tricky orderings; hypothesis streams sweep the rest.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hashing.probe import (
    DEFAULT_PROBE_SEED,
    probe_start_stride,
    probe_start_stride_scalar,
    splitmix64,
    splitmix64_scalar,
)
from repro.kernels.keymap import (
    KNOWN_KEYMAP_BACKENDS,
    MIN_CAP_BITS,
    NOT_FOUND,
    KeyMap,
    ReferenceKeyMap,
    available_keymap_backends,
    make_keymap,
    resolve_keymap_backend,
)
from repro.kernels.numba_keymap import NUMBA_AVAILABLE
from repro.metrics import MetricsRegistry

requires_numba = pytest.mark.skipif(
    not NUMBA_AVAILABLE, reason="numba not installed"
)

#: Kernel tiers importable here (the oracle is the comparison baseline).
KERNEL_BACKENDS = tuple(
    b for b in available_keymap_backends() if b != "reference"
)


def _apply_stream(backend, stream):
    """Run an op stream on a fresh map; return per-op outputs + final state."""
    m = make_keymap(backend=backend, metrics=MetricsRegistry())
    outputs = []
    for op, *args in stream:
        if op == "insert":
            keys, vals = args
            outputs.append(m.insert_many(keys, vals))
        elif op == "delete":
            outputs.append(m.delete_many(args[0]))
        else:
            outputs.append(m.lookup_many(args[0]))
    keys, vals = m.items()
    order = np.argsort(keys, kind="stable")
    return outputs, keys[order], vals[order], m


def _assert_stream_equal(stream):
    ref_out, ref_keys, ref_vals, _ = _apply_stream("reference", stream)
    for backend in KERNEL_BACKENDS:
        out, keys, vals, m = _apply_stream(backend, stream)
        assert len(out) == len(ref_out)
        for i, (got, want) in enumerate(zip(out, ref_out)):
            assert got.dtype == np.int64, f"{backend}: op {i} dtype"
            assert np.array_equal(got, want), (
                f"{backend}: op {i} ({stream[i][0]}) mismatch\n"
                f"got  {got}\nwant {want}"
            )
        assert np.array_equal(keys, ref_keys), f"{backend}: final keys"
        assert np.array_equal(vals, ref_vals), f"{backend}: final values"
        assert m.size == ref_keys.size, f"{backend}: size"


class TestGoldenStreams:
    """Structured streams pinning the orderings that broke drafts."""

    def test_duplicate_keys_first_occurrence_wins(self):
        # Set-default: the FIRST occurrence of a duplicate key in a batch
        # stores its value; later occurrences see it as the prior.
        _assert_stream_equal([
            ("insert", [7, 7, 7, 3, 3], [10, 20, 30, 40, 50]),
            ("lookup", [7, 3]),
        ])

    def test_duplicate_deletes_first_occurrence_pops(self):
        _assert_stream_equal([
            ("insert", [1, 2, 3], [11, 22, 33]),
            ("delete", [2, 2, 9, 2]),
            ("lookup", [1, 2, 3]),
        ])

    def test_reinsert_after_delete_within_stream(self):
        _assert_stream_equal([
            ("insert", [5, 6], [1, 2]),
            ("delete", [5]),
            ("insert", [5, 6], [100, 200]),  # 5 fresh again, 6 reinsert
            ("lookup", [5, 6]),
        ])

    def test_delete_then_insert_same_batch_keys_interleaved(self):
        _assert_stream_equal([
            ("insert", list(range(64)), list(range(64))),
            ("delete", [0, 1, 2, 3]),
            ("insert", [2, 3, 2, 64, 0], [9, 9, 8, 7, 6]),
            ("delete", [64, 64, 1]),
            ("lookup", list(range(66))),
        ])

    def test_negative_and_extreme_keys(self):
        keys = [-1, -(1 << 62), (1 << 62), 0, -1]
        _assert_stream_equal([
            ("insert", keys, [1, 2, 3, 4, 5]),
            ("lookup", keys),
            ("delete", [-1, (1 << 62)]),
            ("lookup", keys),
        ])

    def test_growth_stream_forces_rehash(self):
        # 400 keys from a 64-slot start forces several rehashes; deletes
        # in between leave tombstones for the rehash to purge.
        rng = np.random.default_rng(11)
        ops = []
        for step in range(8):
            keys = rng.integers(0, 1000, size=50)
            ops.append(("insert", keys, np.arange(50)))
            ops.append(("delete", rng.integers(0, 1000, size=20)))
        ops.append(("lookup", np.arange(1000)))
        _assert_stream_equal(ops)

    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_fresh_and_general_insert_paths_agree(self, backend):
        # First insert into an empty map takes the fresh-batch fast path
        # (no hit tests); the same batch inserted after a dummy
        # insert/delete cycle takes the general path.  Same results.
        rng = np.random.default_rng(7)
        keys = rng.integers(-(1 << 40), 1 << 40, size=5000)
        vals = rng.integers(0, 1 << 20, size=5000).astype(np.int32)

        fresh = KeyMap(backend=backend, metrics=MetricsRegistry())
        prev_fresh = fresh.insert_many(keys, vals)

        general = KeyMap(backend=backend, metrics=MetricsRegistry())
        general.insert_many([keys[0]], [0])
        general.delete_many([keys[0]])
        prev_general = general.insert_many(keys, vals)

        assert np.array_equal(prev_fresh, prev_general)
        fk, fv = fresh.items()
        gk, gv = general.items()
        fo, go = np.argsort(fk, kind="stable"), np.argsort(gk, kind="stable")
        assert np.array_equal(fk[fo], gk[go])
        assert np.array_equal(fv[fo], gv[go])


@st.composite
def op_streams(draw):
    """Mixed op streams over a small universe: heavy key collisions."""
    universe = draw(st.sampled_from([8, 40, 600, 100_000]))
    n_ops = draw(st.integers(1, 10))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    stream = []
    for _ in range(n_ops):
        kind = rng.integers(0, 3)
        size = int(rng.integers(0, 120))
        keys = rng.integers(-universe, universe, size=size)
        if kind == 0:
            stream.append(("insert", keys, rng.integers(0, 1 << 30, size)))
        elif kind == 1:
            stream.append(("delete", keys))
        else:
            stream.append(("lookup", keys))
    return stream


class TestHypothesisStreams:
    @settings(max_examples=60, deadline=None)
    @given(op_streams())
    def test_all_backends_match_oracle(self, stream):
        _assert_stream_equal(stream)


class TestNumpySemanticsCanary:
    def test_fancy_assignment_last_write_wins(self):
        # The reversed-scatter claim protocol in the numpy kernel depends
        # on fancy assignment storing the LAST value written to a
        # repeated index (NumPy indexing guide: "the last value... is
        # assigned").  If this ever changes, the kernel's duplicate-key
        # handling breaks — fail loudly here, not in a workload.
        arr = np.zeros(4, dtype=np.int64)
        arr[np.array([2, 2, 2])] = np.array([10, 20, 30])
        assert arr[2] == 30


class TestProbeHash:
    def test_splitmix64_matches_scalar_oracle(self):
        rng = np.random.default_rng(3)
        xs = rng.integers(0, 1 << 63, size=257, dtype=np.int64).view(np.uint64)
        vec = splitmix64(xs.copy())
        for x, got in zip(xs.tolist(), vec.tolist()):
            assert got == splitmix64_scalar(x)

    @pytest.mark.parametrize("cap_bits", [1, 6, 17, 31])
    def test_start_stride_matches_scalar_oracle(self, cap_bits):
        rng = np.random.default_rng(cap_bits)
        keys = rng.integers(-(1 << 62), 1 << 62, size=3 * 2**15 + 7)
        start, stride = probe_start_stride(keys, cap_bits)
        assert start.dtype == np.int32 and stride.dtype == np.int32
        for i in [0, 1, 2**15 - 1, 2**15, keys.size - 1]:
            s, t = probe_start_stride_scalar(int(keys[i]), cap_bits)
            assert (int(start[i]), int(stride[i])) == (s, t)
        assert (stride % 2 == 1).all()
        assert (start >= 0).all() and (start < (1 << cap_bits)).all()

    def test_probe_seed_changes_layout_not_results(self):
        keys = np.arange(1000)
        vals = np.arange(1000) % 97
        a = KeyMap(backend="numpy", metrics=MetricsRegistry())
        b = KeyMap(
            backend="numpy", metrics=MetricsRegistry(), probe_seed=12345
        )
        a.insert_many(keys, vals)
        b.insert_many(keys, vals)
        assert np.array_equal(a.lookup_many(keys), b.lookup_many(keys))

    def test_cap_bits_validation(self):
        with pytest.raises(ConfigurationError):
            probe_start_stride(np.arange(4), 0)
        with pytest.raises(ConfigurationError):
            probe_start_stride_scalar(1, 32)


class TestCapacityManagement:
    def test_grows_and_purges_tombstones(self):
        m = KeyMap(backend="numpy", metrics=MetricsRegistry())
        assert m.capacity == 1 << MIN_CAP_BITS
        m.insert_many(np.arange(100), np.arange(100))
        m.delete_many(np.arange(50))
        assert m.tombstones == 50
        cap_before = m.capacity
        # A large batch forces a rehash, purging tombstones.
        m.insert_many(np.arange(1000, 2000), np.arange(1000))
        assert m.capacity > cap_before
        assert m.tombstones == 0
        assert m.size == 1050

    def test_presize_avoids_growth(self):
        reg = MetricsRegistry()
        m = KeyMap(expected=10_000, backend="numpy", metrics=reg)
        cap = m.capacity
        m.insert_many(np.arange(10_000), np.zeros(10_000, dtype=np.int64))
        assert m.capacity == cap
        assert reg.get_counter("keymap.rehashes") == 0

    def test_tombstones_are_never_reused(self):
        # Deleting and reinserting different keys must not resurrect
        # tombstoned slots (no-reuse keeps all backends in lockstep).
        m = KeyMap(backend="numpy", metrics=MetricsRegistry())
        m.insert_many(np.arange(20), np.arange(20))
        m.delete_many(np.arange(10))
        m.insert_many(np.arange(100, 110), np.arange(10))
        assert m.tombstones == 10
        assert m.size == 20


class TestValidation:
    def test_empty_batches(self):
        for backend in ("reference",) + KERNEL_BACKENDS:
            m = make_keymap(backend=backend, metrics=MetricsRegistry())
            empty = np.empty(0, dtype=np.int64)
            for out in (
                m.insert_many(empty, empty),
                m.delete_many(empty),
                m.lookup_many(empty),
            ):
                assert out.size == 0 and out.dtype == np.int64

    def test_rejects_bad_keys_and_values(self):
        m = KeyMap(backend="numpy", metrics=MetricsRegistry())
        with pytest.raises(ConfigurationError):
            m.insert_many(np.zeros((2, 2)), np.zeros(4))
        with pytest.raises(ConfigurationError):
            m.insert_many([1, 2], [0])  # shape mismatch
        with pytest.raises(ConfigurationError):
            m.insert_many([1], [-5])  # negative value = sentinel space
        with pytest.raises(ConfigurationError):
            m.insert_many([1], [1 << 40])  # over 31-bit ceiling

    def test_keymap_rejects_reference_backend(self):
        with pytest.raises(ConfigurationError):
            KeyMap(backend="reference")


class TestRegistry:
    def test_known_and_available(self):
        assert KNOWN_KEYMAP_BACKENDS == (
            "reference", "numpy", "numba", "numba-parallel"
        )
        avail = available_keymap_backends()
        assert "numpy" in avail and "reference" in avail

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "reference")
        assert resolve_keymap_backend("numpy") == "numpy"
        assert resolve_keymap_backend(None) == "reference"

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_keymap_backend("cupy")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="needs numba to be absent")
    def test_numba_fallback_logs_event(self):
        reg = MetricsRegistry()
        assert resolve_keymap_backend("numba-parallel", metrics=reg) == "numpy"
        events = [e for e in reg.events if e["kind"] == "backend-fallback"]
        assert events and events[-1]["requested"] == "numba-parallel"

    def test_make_keymap_routes_reference(self):
        m = make_keymap(backend="reference", metrics=MetricsRegistry())
        assert isinstance(m, ReferenceKeyMap)
        assert m.backend == "reference"

    @requires_numba
    def test_auto_prefers_numba(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_keymap_backend(None) == "numba"


class TestMetrics:
    def test_probe_counters_accumulate(self):
        reg = MetricsRegistry()
        m = KeyMap(backend="numpy", metrics=reg)
        m.insert_many(np.arange(100), np.arange(100))
        m.lookup_many(np.arange(150))
        assert reg.get_counter("keymap.probes") >= 250
        assert reg.get_counter("keymap.probe_rounds") >= 2
        assert reg.get_counter("keymap.calls.numpy") == 2

    def test_rehash_counters(self):
        reg = MetricsRegistry()
        m = KeyMap(backend="numpy", metrics=reg)
        m.insert_many(np.arange(100), np.zeros(100, dtype=np.int64))
        m.insert_many(np.arange(100, 600), np.zeros(500, dtype=np.int64))
        assert reg.get_counter("keymap.rehashes") >= 2
        assert reg.get_counter("keymap.rehash_slots") >= 100


class TestSentinels:
    def test_not_found_is_minus_one(self):
        assert NOT_FOUND == -1
        m = KeyMap(backend="numpy", metrics=MetricsRegistry())
        assert m.lookup_many([123])[0] == NOT_FOUND
        assert m.delete_many([123])[0] == NOT_FOUND
        assert m.insert_many([123], [0])[0] == NOT_FOUND
