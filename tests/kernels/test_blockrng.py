"""Tests for the unified block-RNG substrate (`repro.kernels.blockrng`)."""

import numpy as np
import pytest

from repro.hashing import DoubleHashingChoices
from repro.kernels.blockrng import (
    CHOICE_BLOCK,
    EVENT_BLOCK,
    TIE_BITS,
    BlockedDraws,
    refill_choice_block,
    refill_event_block,
    splitmix64_block,
    take_field,
    trial_seed,
)
from repro.rng.splitmix import SplitMix64


class TestRefillOrder:
    def test_event_block_draw_order(self):
        # Exponentials first, uniforms second — replaying the two calls
        # on a twin generator must reproduce the refill exactly.
        rng = np.random.default_rng(7)
        twin = np.random.default_rng(7)
        expo, uni = refill_event_block(rng)
        assert np.array_equal(expo, twin.exponential(1.0, EVENT_BLOCK))
        assert np.array_equal(uni, twin.random(EVENT_BLOCK))
        # Both generators end in the same state.
        assert rng.integers(1 << 30) == twin.integers(1 << 30)

    def test_choice_block_draw_order(self):
        scheme = DoubleHashingChoices(128, 3)
        rng = np.random.default_rng(11)
        twin = np.random.default_rng(11)
        choices, ties = refill_choice_block(scheme, rng)
        assert np.array_equal(choices, scheme.batch(CHOICE_BLOCK, twin))
        assert np.array_equal(
            ties,
            twin.integers(0, 1 << TIE_BITS, size=(CHOICE_BLOCK, 3), dtype=np.int64),
        )
        assert ties.shape == (CHOICE_BLOCK, 3)
        assert int(ties.max()) < 1 << TIE_BITS

    def test_tie_keys_drawn_even_for_d1(self):
        # The stream must not depend on whether ties can occur.
        scheme = DoubleHashingChoices(128, 1)
        rng = np.random.default_rng(3)
        _, ties = refill_choice_block(scheme, rng)
        assert ties.shape == (CHOICE_BLOCK, 1)


class TestBlockedDraws:
    def test_starts_exhausted_and_refills_lazily(self):
        calls = []

        def refill():
            calls.append(len(calls))
            base = len(calls) * 100
            return (np.arange(base, base + 4),)

        cursor = BlockedDraws(4, refill)
        assert calls == []  # nothing drawn at construction
        assert [cursor.take()[0] for _ in range(4)] == [100, 101, 102, 103]
        assert calls == [0]
        assert cursor.take()[0] == 200  # second block, refilled on demand
        assert calls == [0, 1]

    def test_parallel_arrays_stay_aligned(self):
        cursor = BlockedDraws(
            2, lambda: (np.array([1, 2]), np.array([10, 20]))
        )
        assert cursor.take() == (1, 10)
        assert cursor.take() == (2, 20)


class TestTrialSeed:
    def test_pinned_values(self):
        # Pinned so the per-trial stream family can never silently change:
        # every shipped parallel-mode result is keyed by these.
        assert trial_seed(1, 0) == 8431846347943309920
        assert trial_seed(1, 1) == 4042681867674859579

    def test_matches_seed_sequence_spawn(self):
        root = 20140623
        parent = np.random.SeedSequence(root)
        children = parent.spawn(3)
        for i, child in enumerate(children):
            assert trial_seed(root, i) == int(
                child.generate_state(1, np.uint64)[0]
            )

    def test_distinct_across_trials_and_roots(self):
        keys = {trial_seed(r, i) for r in (1, 2) for i in range(64)}
        assert len(keys) == 128


class TestSplitmixBlock:
    def test_matches_scalar_generator(self):
        seed = trial_seed(99, 4)
        gen = SplitMix64(seed)
        expected = [gen.next_u64() for _ in range(40)]
        assert splitmix64_block(seed, 0, 40).tolist() == expected

    def test_offset_slices_same_stream(self):
        seed = 1234567
        full = splitmix64_block(seed, 0, 32)
        assert np.array_equal(splitmix64_block(seed, 10, 22), full[10:])

    @pytest.mark.parametrize("bits", [1, 10, 20, 63])
    def test_take_field_widths(self, bits):
        raw = splitmix64_block(42, 0, 256)
        field = take_field(raw, 0, bits)
        assert int(field.max()) < 1 << bits
        shifted = take_field(raw, 7, bits)
        assert np.array_equal(
            shifted, (raw >> np.uint64(7)) & np.uint64((1 << bits) - 1)
        )
