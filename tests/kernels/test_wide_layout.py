"""Wide (int64) packed-layout tests: planning, exactness, overflow guard."""

import numpy as np
import pytest

from repro.core.vectorized import simulate_batch
from repro.errors import SimulationError
from repro.hashing import DoubleHashingChoices
from repro.kernels.generate import (
    KEY_SHIFT,
    KernelLayout,
    generate_packed,
    plan_layout,
)
from repro.kernels.numpy_backend import NumpyBackend, choose_window
from repro.kernels.reference import sequential_packed_reference


def _place(work, pc, layout):
    impl = NumpyBackend()
    ws = impl.make_workspace(
        d=layout.d,
        trials=layout.trial_chunk,
        window=choose_window(layout.n_bins, layout.d),
        bins_p=layout.n_bins + 1,
        dtype=layout.dtype,
    )
    impl.place(work, pc, layout=layout, workspace=ws)


class TestPlanning:
    def test_small_tables_stay_narrow(self):
        layout = plan_layout(2**14, 3, "random", 50, 512)
        assert not layout.wide
        assert layout.key_shift == KEY_SHIFT
        assert layout.dtype == np.dtype(np.int32)

    def test_giant_tables_go_wide(self):
        # bins_p * trials far beyond the 31-bit packed address space.
        layout = plan_layout((1 << 23) + 7, 2, "random", 3, 512)
        assert layout is not None and layout.wide
        assert layout.dtype == np.dtype(np.int64)
        assert layout.key_shift == layout.tie_bits + layout.cidx_bits
        # The flat chunk table must fit both the cidx field and int32
        # scatter scratch.
        assert layout.cidx_bits <= 31
        assert (layout.n_bins + 1) * layout.trial_chunk <= 1 << 31
        assert layout.load_bits == 63 - layout.key_shift

    def test_wide_layouts_chunk_trials(self):
        layout = plan_layout((1 << 23) + 7, 2, "random", 64, 512)
        assert layout.wide
        assert layout.trial_chunk < 64

    def test_narrow_planning_unchanged(self):
        # The historical tie trade-down still happens before widening.
        layout = plan_layout((1 << 22) - 1, 3, "random", 1, 512)
        assert not layout.wide
        assert layout.tie_bits == 9


class TestExactness:
    def test_forced_wide_matches_sequential_reference(self):
        # A small geometry forced into a wide layout must place exactly
        # like the scalar reference walk of the same packed draws.
        n, d, trials, steps = 97, 3, 2, 300
        narrow = plan_layout(n, d, "random", trials, steps)
        wide = KernelLayout(
            n_bins=n,
            d=d,
            tie_break="random",
            tie_bits=narrow.tie_bits,
            cidx_bits=narrow.cidx_bits,
            trial_chunk=trials,
            key_shift=narrow.tie_bits + narrow.cidx_bits + 10,
            wide=True,
        )
        rng = np.random.default_rng(77)
        scheme = DoubleHashingChoices(n, d)
        pc = generate_packed(scheme, trials, steps, rng, wide)
        assert pc.dtype == np.int64
        expected = sequential_packed_reference(pc, wide)
        work = np.zeros(trials * (n + 1), np.int32)
        _place(work, pc, wide)
        assert np.array_equal(
            work.reshape(trials, n + 1)[:, :n], expected
        )

    def test_giant_n_smoke(self):
        # Past the int32 address space end to end (wide single-trial).
        n = (1 << 21) + 11
        batch = simulate_batch(DoubleHashingChoices(n, 2), n, 1, seed=5)
        assert batch.loads.sum() == n
        assert batch.loads.max() <= 10


class TestOverflowGuard:
    def test_thin_load_field_raises_instead_of_wrapping(self):
        # Engineer a 1-bit load field: any bin reaching load 2 must abort
        # the run loudly.
        n = (1 << 23) + 7
        layout = plan_layout(n, 2, "random", 1, 512)
        assert layout.wide
        # loads_bits is ~29 here; instead force the guard directly via a
        # tiny synthetic layout exercised through simulate_batch's chunk
        # check by throwing enough balls to overflow a 1-bit field.
        thin = KernelLayout(
            n_bins=15,
            d=2,
            tie_break="random",
            tie_bits=29,
            cidx_bits=33 - 4,
            trial_chunk=1,
            key_shift=62,
            wide=True,
        )
        assert thin.load_bits == 1
        rng = np.random.default_rng(3)
        scheme = DoubleHashingChoices(15, 2)
        pc = generate_packed(scheme, 1, 64, rng, thin)
        work = np.zeros(16, np.int32)
        _place(work, pc, thin)
        # 64 balls into 15 bins: some bin exceeds 1 -> the packed keys
        # wrapped, and the residue the kernel post-check looks for is set.
        assert int(work.max()) >> thin.load_bits != 0

    def test_simulate_batch_post_check_message(self, monkeypatch):
        # Route a normal run through a wide layout with a 1-bit load
        # field and confirm the engine raises SimulationError.
        import repro.core.vectorized as vec
        import repro.kernels.generate as gen

        real_plan = gen.plan_layout

        def thin_plan(n_bins, d, tie_break, trials, block):
            layout = real_plan(n_bins, d, tie_break, trials, block)
            return KernelLayout(
                n_bins=layout.n_bins,
                d=layout.d,
                tie_break=layout.tie_break,
                tie_bits=layout.tie_bits,
                cidx_bits=layout.cidx_bits,
                trial_chunk=layout.trial_chunk,
                key_shift=62,
                wide=True,
            )

        monkeypatch.setattr(vec, "plan_layout", thin_plan)
        with pytest.raises(SimulationError, match="overflow"):
            simulate_batch(DoubleHashingChoices(64, 2), 256, 1, seed=1)
