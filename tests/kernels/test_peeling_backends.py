"""Cross-backend peeling equivalence: reference vs numpy vs numba.

The synchronous-round contract (``repro.kernels.peeling``) pins every
observable — success flag, peeled order, core-edge set, round count —
so the three implementations must agree *exactly*, not statistically,
on any input: structured graphs, random hypergraphs from both schemes,
and adversarial edge lists with repeated vertices inside one edge.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.kernels import kernel_metrics, run_peeling_kernel
from repro.kernels.numba_peeling import NUMBA_AVAILABLE
from repro.metrics import MetricsRegistry
from repro.peeling import build_hypergraph, peel, peel_reference
from repro.peeling.hypergraph import Hypergraph

requires_numba = pytest.mark.skipif(
    not NUMBA_AVAILABLE, reason="numba not installed"
)

BACKENDS = ("numpy",) + (("numba",) if NUMBA_AVAILABLE else ())


def _all_outcomes(edges, n_vertices):
    """Decode with the oracle and every installed kernel backend."""
    edges = np.asarray(edges, dtype=np.int64)
    graph = Hypergraph(n_vertices=n_vertices, edges=edges)
    ref = peel_reference(graph)
    outcomes = {"reference": (ref.success, ref.peeled_order, ref.core_edges,
                              ref.rounds)}
    for name in BACKENDS:
        out = run_peeling_kernel(edges, n_vertices, backend=name)
        outcomes[name] = (out.success, out.peeled_order,
                          np.sort(out.core_edges), out.rounds)
    return outcomes


def _assert_all_equal(outcomes):
    ref = outcomes["reference"]
    for name, got in outcomes.items():
        assert got[0] == ref[0], f"{name}: success mismatch"
        assert np.array_equal(got[1], ref[1]), f"{name}: peeled order mismatch"
        assert np.array_equal(np.sort(got[2]), np.sort(ref[2])), \
            f"{name}: core mismatch"
        assert got[3] == ref[3], f"{name}: rounds mismatch"


class TestStructuredGraphs:
    CASES = [
        ("empty", np.empty((0, 3), dtype=np.int64), 5),
        ("single-edge", [[0, 1, 2]], 4),
        ("chain", [[0, 1, 2], [1, 2, 3], [2, 3, 4]], 5),
        ("duplicate-pair", [[0, 1, 2], [0, 1, 2]], 4),
        ("duplicate-pair-plus-tail", [[0, 1, 2], [0, 1, 2], [2, 3, 4]], 5),
        ("repeated-vertex-edge", [[0, 0, 1]], 3),
        ("repeated-vertex-cancels", [[0, 0, 1], [1, 2, 3]], 4),
        ("two-components", [[0, 1, 2], [3, 4, 5]], 6),
    ]

    @pytest.mark.parametrize("label,edges,n", CASES)
    def test_backends_agree(self, label, edges, n):
        _assert_all_equal(_all_outcomes(np.asarray(edges, dtype=np.int64)
                                        .reshape(-1, 3), n))


class TestRandomHypergraphs:
    @pytest.mark.parametrize("scheme_cls", [FullyRandomChoices,
                                            DoubleHashingChoices])
    @pytest.mark.parametrize("density", [0.4, 0.78, 0.95])
    def test_backends_agree_across_densities(self, scheme_cls, density):
        for seed in range(5):
            n = 256
            graph = build_hypergraph(
                scheme_cls(n, 3), int(density * n), seed=seed
            )
            _assert_all_equal(_all_outcomes(graph.edges, n))

    @pytest.mark.parametrize("d", [2, 4, 5])
    def test_backends_agree_other_edge_sizes(self, d):
        n = 128
        graph = build_hypergraph(FullyRandomChoices(n, d), 80, seed=11)
        _assert_all_equal(_all_outcomes(graph.edges, n))

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=24),
        m=st.integers(min_value=0, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_backends_agree_with_vertex_repeats(self, n, m, seed):
        # Unconstrained uniform rows: edges may repeat a vertex two or
        # three times — the adversarial case for claim bookkeeping.
        rng = np.random.default_rng(seed)
        edges = rng.integers(0, n, size=(m, 3), dtype=np.int64)
        _assert_all_equal(_all_outcomes(edges, n))


class TestKernelDriver:
    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            run_peeling_kernel(np.zeros((3,), dtype=np.int64), 4)
        with pytest.raises(ConfigurationError):
            run_peeling_kernel(np.zeros((2, 3)), 4)  # float dtype
        with pytest.raises(ConfigurationError):
            run_peeling_kernel(np.array([[0, 1, 4]]), 4)  # out of range
        with pytest.raises(ConfigurationError):
            run_peeling_kernel(np.array([[0, -1, 2]]), 4)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            run_peeling_kernel(np.array([[0, 1, 2]]), 3, backend="cuda")

    def test_numba_request_falls_back_when_missing(self):
        # Fallback contract: asking for numba where it is not installed
        # degrades to numpy with a logged event, never an error.
        graph = build_hypergraph(DoubleHashingChoices(64, 3), 40, seed=5)
        want = run_peeling_kernel(graph.edges, 64, backend="numpy")
        got = run_peeling_kernel(graph.edges, 64, backend="numba")
        assert got.success == want.success
        assert np.array_equal(got.peeled_order, want.peeled_order)

    def test_metrics_recorded(self):
        metrics = MetricsRegistry()
        graph = build_hypergraph(FullyRandomChoices(64, 3), 30, seed=9)
        out = run_peeling_kernel(graph.edges, 64, backend="numpy",
                                 metrics=metrics)
        snap = metrics.snapshot()
        assert snap["counters"]["kernel.calls.numpy"] == 1
        assert snap["counters"]["kernel.edges_peeled"] == out.peeled_order.size
        assert snap["timers"]["kernel.peel_seconds"]["count"] == 1

    def test_global_metrics_default(self):
        before = kernel_metrics().snapshot()["counters"].get(
            "kernel.edges_peeled", 0
        )
        run_peeling_kernel(np.array([[0, 1, 2]], dtype=np.int64), 3)
        after = kernel_metrics().snapshot()["counters"]["kernel.edges_peeled"]
        assert after == before + 1


class TestDecoderFacade:
    def test_peel_matches_reference(self):
        graph = build_hypergraph(DoubleHashingChoices(512, 3), 350, seed=21)
        ref = peel_reference(graph)
        for backend in BACKENDS:
            got = peel(graph, backend=backend)
            assert got.success == ref.success
            assert np.array_equal(got.peeled_order, ref.peeled_order)
            assert np.array_equal(np.sort(got.core_edges),
                                  np.sort(ref.core_edges))
            assert got.rounds == ref.rounds

    def test_peel_core_fraction_property(self):
        graph = build_hypergraph(FullyRandomChoices(64, 3), 70, seed=3)
        result = peel(graph)
        assert result.core_fraction == result.core_edges.size / 70


@requires_numba
class TestNumbaSpecific:
    def test_numba_selected_is_not_numpy_path(self):
        # The driver must actually dispatch to the JIT kernel: its
        # metrics label the call under the numba backend.
        metrics = MetricsRegistry()
        graph = build_hypergraph(DoubleHashingChoices(128, 3), 90, seed=13)
        run_peeling_kernel(graph.edges, 128, backend="numba",
                           metrics=metrics)
        assert metrics.snapshot()["counters"]["kernel.calls.numba"] == 1
