"""Tests for the pluggable placement-kernel backends."""
