"""Seed-equivalence tests for the parallel-trials path.

The contract under test: `run_parallel_trials` results are a pure
function of `(root, global trial index, spec)` — independent of
chunking, shard count, backend, and host — and the fused fast path
matches a straight-line scalar oracle of the documented draw contract.
"""

import numpy as np
import pytest

from repro.core.runner import run_experiment
from repro.core.vectorized import simulate_batch
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentSpec
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.kernels import default_shards, run_parallel_trials
from repro.kernels.blockrng import splitmix64_block, trial_seed
from repro.kernels.parallel_trials import (
    PLACEMENT_TIE_BITS,
    _sharded_histogram,
    fused_parallel_supported,
)

N, D, M = 256, 3, 512


def _oracle_trial(key, n, d, n_balls):
    """Scalar re-implementation of the fused draw contract, from the spec:

    ball b consumes counter draws 2b and 2b+1; the first yields f
    (log2 n bits) and the odd stride g, the second d tie keys; placement
    minimizes load << key_shift | tie << cidx_bits | bin.
    """
    lb = n.bit_length() - 1
    cidx_bits = n.bit_length()
    key_shift = PLACEMENT_TIE_BITS + cidx_bits
    raws = splitmix64_block(int(key), 0, 2 * n_balls)
    loads = [0] * n
    for b in range(n_balls):
        ra = int(raws[2 * b])
        rb = int(raws[2 * b + 1])
        f = ra & (n - 1)
        g = 2 * ((ra >> lb) & (n // 2 - 1)) + 1
        best_key, best = None, None
        cur = f
        for j in range(d):
            if j:
                cur = (cur + g) & (n - 1)
            tie = (rb >> (j * PLACEMENT_TIE_BITS)) & ((1 << PLACEMENT_TIE_BITS) - 1)
            k = (loads[cur] << key_shift) | (tie << cidx_bits) | cur
            if best_key is None or k < best_key:
                best_key, best = k, cur
        loads[best] += 1
    return np.bincount(loads)


class TestFusedOracle:
    def test_matches_scalar_oracle(self):
        trials = 6
        got = run_parallel_trials(DoubleHashingChoices(N, D), M, trials, root=5)
        for i in range(trials):
            expected = _oracle_trial(trial_seed(5, i), N, D, M)
            row = got[i, : expected.size]
            assert np.array_equal(row, expected), f"trial {i} diverged"
            assert not got[i, expected.size :].any()

    def test_ball_conservation_and_width(self):
        got = run_parallel_trials(DoubleHashingChoices(N, D), M, 4, root=9)
        totals = (got * np.arange(got.shape[1])).sum(axis=1)
        assert (totals == M).all()
        assert got[:, -1].any()  # width is trimmed to max load + 1


class TestSeedEquivalence:
    def test_chunking_invariance(self):
        scheme = DoubleHashingChoices(N, D)
        whole = run_parallel_trials(scheme, M, 4, root=7)
        first = run_parallel_trials(scheme, M, 2, root=7)
        second = run_parallel_trials(scheme, M, 2, root=7, trial_offset=2)
        width = max(whole.shape[1], first.shape[1], second.shape[1])

        def pad(a):
            return np.pad(a, ((0, 0), (0, width - a.shape[1])))

        assert np.array_equal(pad(whole), np.vstack([pad(first), pad(second)]))

    def test_shard_invariance(self):
        scheme = DoubleHashingChoices(N, D)
        assert np.array_equal(
            run_parallel_trials(scheme, M, 3, root=11, shards=1),
            run_parallel_trials(scheme, M, 3, root=11, shards=5),
        )

    def test_generic_path_chunking_invariance(self):
        scheme = DoubleHashingChoices(97, D)  # non-pow2: generic path
        assert not fused_parallel_supported(scheme, "random")
        whole = run_parallel_trials(scheme, 200, 4, root=3)
        totals = (whole * np.arange(whole.shape[1])).sum(axis=1)
        assert (totals == 200).all()
        tail = run_parallel_trials(scheme, 200, 2, root=3, trial_offset=2)
        width = max(whole.shape[1], tail.shape[1])

        def pad(a):
            return np.pad(a, ((0, 0), (0, width - a.shape[1])))

        assert np.array_equal(pad(whole)[2:], pad(tail))

    def test_generic_path_matches_per_trial_simulate_batch(self):
        scheme = DoubleHashingChoices(97, D)
        got = run_parallel_trials(scheme, 200, 2, root=13)
        for i in range(2):
            ss = np.random.SeedSequence(entropy=13, spawn_key=(i,))
            batch = simulate_batch(
                scheme, 200, 1, seed=np.random.default_rng(ss)
            )
            expected = np.bincount(batch.loads[0])
            assert np.array_equal(got[i, : expected.size], expected)


class TestFusedDecision:
    def test_pure_geometry_predicate(self):
        assert fused_parallel_supported(DoubleHashingChoices(256, 3), "random")
        # Non power of two, left ties, tie-key overflow, other scheme:
        # each independently forces the generic path.
        assert not fused_parallel_supported(
            DoubleHashingChoices(100, 3), "random"
        )
        assert not fused_parallel_supported(DoubleHashingChoices(256, 3), "left")
        assert not fused_parallel_supported(DoubleHashingChoices(256, 7), "random")
        assert not fused_parallel_supported(FullyRandomChoices(256, 3), "random")

    def test_backend_does_not_change_results(self):
        # Explicit numpy vs auto-resolution (numba when installed) must
        # agree bit for bit — the decision is geometry, not availability.
        scheme = DoubleHashingChoices(N, D)
        assert np.array_equal(
            run_parallel_trials(scheme, M, 3, root=21, backend="numpy"),
            run_parallel_trials(scheme, M, 3, root=21),
        )


class TestShardHelpers:
    def test_default_shards_thresholds(self):
        assert default_shards(1 << 20, 3) == 1
        assert default_shards(1 << 23, 3) == 3
        assert default_shards(1 << 27, 3) == 48

    def test_sharded_histogram_matches_bincount(self):
        rng = np.random.default_rng(0)
        loads = rng.integers(0, 7, size=1000)
        expected = np.bincount(loads)
        for shards in (1, 3, 16, 1000, 5000):
            assert np.array_equal(_sharded_histogram(loads, shards), expected)


class TestValidation:
    def test_rejects_bad_arguments(self):
        scheme = DoubleHashingChoices(N, D)
        with pytest.raises(ConfigurationError):
            run_parallel_trials(scheme, M, 0, root=1)
        with pytest.raises(ConfigurationError):
            run_parallel_trials(scheme, -1, 1, root=1)
        with pytest.raises(ConfigurationError):
            run_parallel_trials(scheme, M, 1, root=1, trial_offset=-1)
        with pytest.raises(ConfigurationError):
            run_parallel_trials(scheme, M, 1, root=1, shards=0)
        with pytest.raises(ConfigurationError):
            run_parallel_trials(scheme, M, 1, root=1, tie_break="lowest")


class TestRunnerIntegration:
    def test_run_experiment_parallel_mode_matches_direct(self):
        spec = ExperimentSpec(
            n=N, d=D, n_balls=M, trials=8, seed=42, trials_mode="parallel"
        )
        res = run_experiment(DoubleHashingChoices(N, D), spec)
        direct = run_parallel_trials(DoubleHashingChoices(N, D), M, 8, root=42)
        assert np.array_equal(res.distribution.counts, direct.sum(axis=0))

    def test_chunk_count_does_not_change_results(self):
        base = ExperimentSpec(
            n=N, d=D, n_balls=M, trials=8, seed=42, trials_mode="parallel"
        )
        one = run_experiment(DoubleHashingChoices(N, D), base)
        many = run_experiment(DoubleHashingChoices(N, D), base.replace(chunks=3))
        assert np.array_equal(
            one.distribution.counts, many.distribution.counts
        )
        assert np.array_equal(
            one.distribution.max_load_per_trial,
            many.distribution.max_load_per_trial,
        )
