"""Cross-backend and cross-engine equivalence.

Two independent guarantees:

1. **Bit-level**: the numba backend consumes the same packed draws as the
   numpy backend, so for the same seed the two must produce *identical*
   load tables (skipped where numba is not installed — CI runs it).
2. **Distributional**: the vectorized engine's blocked RNG consumption
   differs from the scalar reference loop, so equality is statistical:
   ``simulate_batch`` output must be indistinguishable (chi-square + TV)
   from aggregated :func:`simulate_single_trial` runs, for both fully
   random and double hashing, both tie-break rules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.comparison import compare_distributions
from repro.core import simulate_batch, simulate_single_trial
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.kernels import choose_window, generate_packed, plan_layout
from repro.kernels.numba_backend import NUMBA_AVAILABLE
from repro.rng import default_generator

requires_numba = pytest.mark.skipif(
    not NUMBA_AVAILABLE, reason="numba not installed"
)


@requires_numba
class TestNumbaBitIdentical:
    GEOMETRIES = [
        (8, 3, 3, 32, "random"),
        (64, 4, 5, 200, "random"),
        (64, 4, 5, 200, "left"),
        (4, 4, 3, 64, "random"),
        (256, 3, 4, 512, "left"),
    ]

    @pytest.mark.parametrize("n,d,trials,steps,tie_break", GEOMETRIES)
    def test_backends_agree_on_packed_draws(self, n, d, trials, steps, tie_break):
        from repro.kernels import resolve_backend

        layout = plan_layout(n, d, tie_break, trials, steps)
        pc = generate_packed(
            FullyRandomChoices(n, d), trials, steps, default_generator(3), layout
        )
        results = {}
        for name in ("numpy", "numba"):
            impl = resolve_backend(name)
            work = np.zeros(trials * layout.bins_p, dtype=np.int32)
            ws = impl.make_workspace(
                d=d, trials=trials, window=choose_window(n, d),
                bins_p=layout.bins_p,
            )
            impl.place(work, pc, layout=layout, workspace=ws)
            results[name] = work.reshape(trials, layout.bins_p)[:, :n].copy()
        assert np.array_equal(results["numpy"], results["numba"])

    @pytest.mark.parametrize("scheme_cls", [FullyRandomChoices, DoubleHashingChoices])
    def test_simulate_batch_backend_invariant(self, scheme_cls):
        n, d, trials = 256, 3, 8
        a = simulate_batch(scheme_cls(n, d), n, trials, seed=17, backend="numpy")
        b = simulate_batch(scheme_cls(n, d), n, trials, seed=17, backend="numba")
        assert np.array_equal(a.loads, b.loads)


def _reference_distribution(scheme_factory, n, n_balls, trials, seed, tie_break):
    dist = None
    for t in range(trials):
        one = simulate_single_trial(
            scheme_factory(), n_balls, seed=seed + t, tie_break=tie_break
        )
        dist = one if dist is None else dist.merged_with(one)
    return dist


class TestScalarReferenceEquivalence:
    """simulate_batch vs the scalar loop, statistically."""

    N, BALLS, TRIALS = 512, 512, 60

    @pytest.mark.parametrize(
        "make,tie_break",
        [
            (lambda: FullyRandomChoices(512, 3), "random"),
            (lambda: DoubleHashingChoices(512, 3), "random"),
            (lambda: DoubleHashingChoices(512, 2), "left"),
        ],
        ids=["random-d3", "double-d3", "double-d2-left"],
    )
    def test_indistinguishable_from_scalar_loop(self, make, tie_break):
        batch = simulate_batch(
            make(), self.BALLS, self.TRIALS, seed=100, tie_break=tie_break
        ).distribution()
        ref = _reference_distribution(
            make, self.N, self.BALLS, self.TRIALS, seed=5000, tie_break=tie_break
        )
        report = compare_distributions(batch, ref)
        assert report.indistinguishable, report

    def test_mean_max_load_matches_scalar_loop(self):
        """Max load is tie-break sensitive: a kernel bug that conserved
        totals but misplaced ties would move this statistic."""
        n, trials = 256, 80
        batch = simulate_batch(DoubleHashingChoices(n, 2), n, trials, seed=21)
        batch_max = batch.loads.max(axis=1).astype(float)
        ref_max = [
            simulate_single_trial(
                DoubleHashingChoices(n, 2), n, seed=7000 + t, return_loads=True
            ).max()
            for t in range(trials)
        ]
        # Means within 3 pooled standard errors.
        se = np.sqrt(
            (batch_max.var() + np.var(ref_max)) / trials
        )
        assert abs(batch_max.mean() - np.mean(ref_max)) < 3 * max(se, 1e-9)
