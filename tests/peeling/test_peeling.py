"""Tests for the peeling subpackage (hypergraphs, decoder, density
evolution, and the duplicate-edge phenomenon)."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.certify.anchors import anchor_value
from repro.errors import ConfigurationError
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.peeling import (
    build_hypergraph,
    core_edge_fraction,
    peel,
    peeling_threshold,
    survival_fixed_point,
    threshold_experiment,
)
from repro.peeling.hypergraph import Hypergraph


class TestHypergraph:
    def test_shape_and_density(self):
        g = build_hypergraph(DoubleHashingChoices(128, 3), 64, seed=1)
        assert g.edges.shape == (64, 3)
        assert g.n_edges == 64 and g.d == 3
        assert g.density == pytest.approx(0.5)

    def test_degrees_sum(self):
        g = build_hypergraph(FullyRandomChoices(64, 4), 32, seed=2)
        assert g.vertex_degrees().sum() == 32 * 4

    def test_empty_graph(self):
        g = build_hypergraph(FullyRandomChoices(16, 2), 0, seed=3)
        assert g.n_edges == 0
        assert peel(g).success

    def test_negative_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            build_hypergraph(FullyRandomChoices(16, 2), -1)


class TestDecoder:
    def test_single_edge_peels(self):
        g = Hypergraph(n_vertices=5, edges=np.array([[0, 1, 2]]))
        r = peel(g)
        assert r.success
        assert r.peeled_order.tolist() == [0]
        assert r.rounds == 1

    def test_chain_peels_in_order(self):
        """Edges sharing vertices peel outside-in."""
        g = Hypergraph(
            n_vertices=4,
            edges=np.array([[0, 1], [1, 2], [2, 3]]),
        )
        r = peel(g)
        assert r.success
        assert set(r.peeled_order.tolist()) == {0, 1, 2}
        # Middle edge cannot peel first.
        assert r.peeled_order[0] in (0, 2)

    def test_duplicate_edges_form_core(self):
        """Two identical edges are an unpeelable 2-core — the double
        hashing failure mode."""
        g = Hypergraph(
            n_vertices=6, edges=np.array([[0, 1, 2], [0, 1, 2], [3, 4, 5]])
        )
        r = peel(g)
        assert not r.success
        assert set(r.core_edges.tolist()) == {0, 1}
        assert r.core_fraction == pytest.approx(2 / 3)

    def test_cycle_core(self):
        """A 2-regular cycle of 2-edges is exactly a 2-core."""
        g = Hypergraph(
            n_vertices=3, edges=np.array([[0, 1], [1, 2], [2, 0]])
        )
        r = peel(g)
        assert not r.success
        assert len(r.core_edges) == 3

    def test_repeated_vertex_within_edge(self):
        """An edge hitting the same vertex twice still peels via its other
        vertex (degree logic is multiplicity-aware)."""
        g = Hypergraph(n_vertices=4, edges=np.array([[0, 0, 1]]))
        r = peel(g)
        assert r.success

    def test_below_threshold_succeeds(self):
        n = 4096
        g = build_hypergraph(
            FullyRandomChoices(n, 3), int(0.7 * n), seed=4
        )
        assert peel(g).success

    def test_above_threshold_fails_with_big_core(self):
        n = 4096
        g = build_hypergraph(
            FullyRandomChoices(n, 3), int(0.9 * n), seed=5
        )
        r = peel(g)
        assert not r.success
        assert r.core_fraction > 0.4

    def test_rounds_grow_slowly(self):
        """Peeling depth is logarithmic below threshold."""
        rounds = []
        for n in (1024, 8192):
            g = build_hypergraph(
                FullyRandomChoices(n, 3), int(0.6 * n), seed=n
            )
            rounds.append(peel(g).rounds)
        assert rounds[1] <= rounds[0] + 6

    @given(
        n=st.integers(min_value=4, max_value=64),
        m_factor=st.floats(min_value=0.1, max_value=1.2),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_peeled_plus_core_is_everything(self, n, m_factor, seed):
        g = build_hypergraph(
            FullyRandomChoices(n, min(3, n)), int(m_factor * n), seed=seed
        )
        r = peel(g)
        assert len(r.peeled_order) + len(r.core_edges) == g.n_edges
        assert set(r.peeled_order.tolist()).isdisjoint(
            set(r.core_edges.tolist())
        )

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_property_core_is_2core(self, seed):
        """Every vertex of the residual core has degree != 1 (it is a
        genuine 2-core: peeling cannot continue)."""
        g = build_hypergraph(FullyRandomChoices(64, 3), 60, seed=seed)
        r = peel(g)
        core = g.edges[r.core_edges]
        if core.size:
            degrees = np.bincount(core.ravel(), minlength=64)
            assert not np.any(degrees == 1)


class TestDensityEvolution:
    @pytest.mark.parametrize("d", [3, 4, 5])
    def test_known_thresholds(self, d):
        expected = anchor_value(f"derived/peeling-threshold/d{d}")
        assert peeling_threshold(d) == pytest.approx(expected, abs=1e-5)

    def test_fixed_point_zero_below_threshold(self):
        assert survival_fixed_point(0.7, 3) == 0.0

    def test_fixed_point_positive_above_threshold(self):
        beta = survival_fixed_point(0.9, 3)
        assert 0 < beta < 1
        # Verify it is a fixed point.
        import math

        assert beta == pytest.approx(
            (1 - math.exp(-0.9 * 3 * beta)) ** 2, abs=1e-8
        )

    def test_core_fraction_monotone_in_density(self):
        fracs = [core_edge_fraction(c, 3) for c in (0.7, 0.85, 1.0, 1.2)]
        assert fracs[0] == 0.0
        assert fracs[1] < fracs[2] < fracs[3]

    def test_core_fraction_matches_simulation(self):
        n = 2**14
        g = build_hypergraph(
            FullyRandomChoices(n, 3), int(0.9 * n), seed=6
        )
        r = peel(g)
        assert r.core_fraction == pytest.approx(
            core_edge_fraction(0.9, 3), abs=0.03
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            survival_fixed_point(-0.1, 3)
        with pytest.raises(ConfigurationError):
            peeling_threshold(1)


class TestDuplicateEdgePhenomenon:
    """The one real double-hashing difference (paper footnote 1)."""

    def test_double_hashing_fails_complete_recovery_at_constant_rate(self):
        """Below threshold, double hashing still fails complete recovery
        in a constant fraction of trials (duplicate-edge cores)."""
        n, failures = 2048, 0
        for seed in range(15):
            g = build_hypergraph(
                DoubleHashingChoices(n, 3), int(0.75 * n), seed=seed
            )
            if not peel(g).success:
                failures += 1
        assert failures >= 3  # constant-probability failure floor

    def test_failures_are_exactly_duplicate_edge_cores(self):
        n = 2048
        for seed in range(15):
            g = build_hypergraph(
                DoubleHashingChoices(n, 3), int(0.75 * n), seed=seed
            )
            r = peel(g)
            if not r.success:
                core_sets = Counter(
                    tuple(sorted(e)) for e in g.edges[r.core_edges]
                )
                assert all(count >= 2 for count in core_sets.values())

    def test_core_fraction_still_vanishing_below_threshold(self):
        """The stuck cores are O(1) edges, so the *fraction* peeled matches
        fully random — the fluid-limit sense in which the schemes agree."""
        n = 4096
        fracs = []
        for seed in range(8):
            g = build_hypergraph(
                DoubleHashingChoices(n, 3), int(0.75 * n), seed=seed
            )
            fracs.append(peel(g).core_fraction)
        assert max(fracs) < 0.01

    def test_fully_random_has_no_failure_floor(self):
        n = 2048
        for seed in range(15):
            g = build_hypergraph(
                FullyRandomChoices(n, 3), int(0.75 * n), seed=seed
            )
            assert peel(g).success


class TestThresholdExperiment:
    def test_sweep_structure(self):
        exp = threshold_experiment(
            1024, 3, [0.6, 0.95], trials=5, seed=7
        )
        assert exp.success_random[0] == 1.0
        assert exp.success_random[1] == 0.0
        assert exp.core_fraction_double[1] > 0.3
        assert exp.asymptotic_threshold == pytest.approx(
            anchor_value("derived/peeling-threshold/d3"), abs=1e-4
        )

    def test_core_fractions_agree_between_schemes(self):
        """Above threshold both schemes leave the same (macroscopic) core."""
        exp = threshold_experiment(2048, 3, [0.9], trials=5, seed=8)
        assert exp.core_fraction_double[0] == pytest.approx(
            exp.core_fraction_random[0], abs=0.03
        )

    def test_empirical_threshold_interpolation(self):
        exp = threshold_experiment(
            1024, 3, [0.6, 0.7, 0.95, 1.0], trials=4, seed=9
        )
        c = exp.empirical_threshold("random")
        assert 0.6 <= c <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            threshold_experiment(64, 3, [], trials=2)
        with pytest.raises(ConfigurationError):
            threshold_experiment(64, 3, [0.5], trials=0)
