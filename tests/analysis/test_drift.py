"""Tests for the Lemma 5 drift measurement."""

from __future__ import annotations

import pytest

from repro.analysis.drift import measure_drift
from repro.errors import ConfigurationError
from repro.hashing import DoubleHashingChoices, FullyRandomChoices


class TestDriftMeasurement:
    @pytest.mark.parametrize("level", [1, 2])
    def test_double_hashing_matches_predicted_drift(self, level):
        """Lemma 5 at finite n: empirical drift within a few standard
        errors of x_{i-1}^d - x_i^d."""
        m = measure_drift(
            DoubleHashingChoices(2**13, 3), level, seed=level,
        )
        assert m.gap < 5 * m.standard_error + 0.01, (
            f"level {level}: emp {m.empirical_rate:.4f} vs "
            f"pred {m.predicted_rate:.4f}"
        )

    @pytest.mark.parametrize("level", [1, 2])
    def test_fully_random_matches_predicted_drift(self, level):
        m = measure_drift(
            FullyRandomChoices(2**13, 3), level, seed=10 + level,
        )
        assert m.gap < 5 * m.standard_error + 0.01

    def test_gap_shrinks_with_n(self):
        """The o(1) of Lemma 5: average drift gap decreases as n grows."""
        gaps = {}
        for n in (2**8, 2**13):
            total = 0.0
            for seed in range(6):
                m = measure_drift(DoubleHashingChoices(n, 3), 1, seed=seed)
                total += m.gap
            gaps[n] = total / 6
        assert gaps[2**13] < gaps[2**8] + 0.005

    def test_rates_in_unit_interval(self):
        m = measure_drift(DoubleHashingChoices(512, 3), 1, seed=3)
        assert 0.0 <= m.empirical_rate <= 1.0
        assert 0.0 <= m.predicted_rate <= 1.0

    def test_high_level_has_tiny_drift(self):
        """At level 4 the drift is essentially zero at T ~ 0.75."""
        m = measure_drift(DoubleHashingChoices(2048, 3), 4, seed=4)
        assert m.empirical_rate < 0.01
        assert m.predicted_rate < 0.01

    def test_custom_window(self):
        m = measure_drift(
            DoubleHashingChoices(256, 2), 1,
            warmup_balls=64, window_balls=32, seed=5,
        )
        assert m.window_balls == 32

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            measure_drift(FullyRandomChoices(64, 2), 0)
