"""Tests for Vöcking's φ_d and the d-left maximum-load coefficient."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    dleft_max_load_bound,
    phi_d,
    symmetric_max_load_coefficient,
)
from repro.errors import ConfigurationError


class TestPhiD:
    def test_phi_2_is_golden_ratio(self):
        assert phi_d(2) == pytest.approx((1 + math.sqrt(5)) / 2, abs=1e-10)

    def test_phi_3_known_value(self):
        # Tribonacci constant.
        assert phi_d(3) == pytest.approx(1.839286755, abs=1e-8)

    def test_phi_4_known_value(self):
        # Tetranacci constant.
        assert phi_d(4) == pytest.approx(1.927561975, abs=1e-8)

    def test_monotone_increasing_to_two(self):
        values = [phi_d(d) for d in range(2, 12)]
        assert values == sorted(values)
        assert values[-1] < 2.0
        assert phi_d(30) > 1.999999

    def test_root_property(self):
        for d in (2, 3, 5):
            x = phi_d(d)
            assert x**d == pytest.approx(
                sum(x**j for j in range(d)), rel=1e-10
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            phi_d(1)


class TestBounds:
    def test_dleft_beats_symmetric_constant(self):
        """d·ln φ_d > ln d — the whole point of asymmetry."""
        n = 2**20
        for d in (2, 3, 4, 8):
            assert dleft_max_load_bound(n, d) < symmetric_max_load_coefficient(
                n, d
            )

    def test_d2_improvement_factor(self):
        """For d = 2 the improvement over symmetric is ~1.39x
        (2 ln φ / ln 2)."""
        n = 2**20
        ratio = symmetric_max_load_coefficient(n, 2) / dleft_max_load_bound(n, 2)
        assert ratio == pytest.approx(2 * math.log(phi_d(2)) / math.log(2),
                                      rel=1e-9)
        assert ratio > 1.38

    def test_loglog_growth(self):
        small = dleft_max_load_bound(2**10, 3)
        large = dleft_max_load_bound(2**40, 3)
        assert large - small < 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            dleft_max_load_bound(2, 3)
        with pytest.raises(ConfigurationError):
            symmetric_max_load_coefficient(2**10, 1)
