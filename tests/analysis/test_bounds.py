"""Tests for the witness-tree and layered-induction bounds."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    layered_induction_bound,
    leaf_activation_bound,
    pair_collision_bound,
    witness_tree_bound,
)
from repro.analysis.layered_induction import beta_trajectory
from repro.analysis.witness_tree import empirical_max_load_check
from repro.core import simulate_batch
from repro.errors import ConfigurationError
from repro.hashing import DoubleHashingChoices


class TestWitnessTreeIngredients:
    def test_leaf_activation_below_one_third_for_d_ge_3(self):
        """The paper needs this probability < 1/3 for d >= 3."""
        for d in range(3, 10):
            assert leaf_activation_bound(d) < 1 / 3

    def test_leaf_activation_decreasing_in_d(self):
        values = [leaf_activation_bound(d) for d in range(3, 8)]
        assert values == sorted(values, reverse=True)

    def test_leaf_activation_below_e_over_4_power(self):
        """d^{4d}/(4d)! < (e/4)^d — the paper's chain of inequalities."""
        for d in range(3, 8):
            assert leaf_activation_bound(d) < (math.e / 4) ** d

    def test_pair_collision_scales_inverse_n(self):
        a = pair_collision_bound(10**4, 3)
        b = pair_collision_bound(10**6, 3)
        assert a / b == pytest.approx(100, rel=0.02)

    def test_pair_collision_d4_growth(self):
        """O(d^4/n): doubling d should scale by ~16."""
        a = pair_collision_bound(10**6, 4)
        b = pair_collision_bound(10**6, 8)
        assert b / a == pytest.approx(
            (8 * 7) ** 2 / (4 * 3) ** 2, rel=0.01
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            leaf_activation_bound(0)
        with pytest.raises(ConfigurationError):
            pair_collision_bound(1, 3)
        with pytest.raises(ConfigurationError):
            pair_collision_bound(100, 1)


class TestWitnessTreeBound:
    def test_structure(self):
        bound = witness_tree_bound(2**14, 3)
        assert bound.max_load_bound == bound.depth + 12
        assert 0 < bound.failure_probability < 1

    def test_grows_like_log_log(self):
        small = witness_tree_bound(2**10, 3).max_load_bound
        large = witness_tree_bound(2**40, 3).max_load_bound
        # log log growth: quadrupling the exponent adds at most ~2 levels.
        assert large - small <= 2

    def test_larger_alpha_smaller_failure(self):
        loose = witness_tree_bound(2**14, 3, alpha=0.5)
        tight = witness_tree_bound(2**14, 3, alpha=4.0)
        assert tight.failure_probability <= loose.failure_probability
        assert tight.max_load_bound >= loose.max_load_bound

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            witness_tree_bound(2, 3)
        with pytest.raises(ConfigurationError):
            witness_tree_bound(100, 1)
        with pytest.raises(ConfigurationError):
            witness_tree_bound(100, 3, alpha=0)

    def test_empirical_check_on_simulation(self):
        """Simulated max loads sit far below the Theorem 4 bound."""
        n = 2**12
        batch = simulate_batch(DoubleHashingChoices(n, 3), n, 20, seed=1)
        max_loads = batch.loads.max(axis=1).tolist()
        assert empirical_max_load_check(max_loads, n, 3)
        # And indeed far below: the bound has 4d of slack.
        assert max(max_loads) <= witness_tree_bound(n, 3).max_load_bound - 8


class TestLayeredInduction:
    def test_beta_start_value(self):
        traj = beta_trajectory(2**14, 3)
        assert traj.betas[0] == pytest.approx(2**14 / (2 * math.e))

    def test_beta_recursion_step(self):
        traj = beta_trajectory(2**40, 3)
        if len(traj.betas) > 1:
            n = float(2**40)
            expected = 4.0 * traj.betas[0] ** 3 / n**2
            assert traj.betas[1] == pytest.approx(expected, rel=1e-12)

    def test_beta_envelope_bound(self):
        """β_i <= n / e^{d^{i-6}} (the paper's induction)."""
        n, d = 2**40, 3
        traj = beta_trajectory(n, d)
        for level, beta in zip(traj.levels, traj.betas):
            assert beta <= n / math.exp(d ** (level - 6)) + 1e-6

    def test_envelope_at_accessor(self):
        traj = beta_trajectory(2**14, 3)
        assert traj.envelope_at(0) == 2**14
        assert traj.envelope_at(6) == traj.betas[0]
        assert traj.envelope_at(99) == traj.betas[-1]

    def test_bound_is_loglog(self):
        b14 = layered_induction_bound(2**14, 3)
        b64 = layered_induction_bound(2**64, 3)
        assert b64 - b14 <= 2
        assert b14 >= 10  # stop level >= 6, +4 finishing levels

    def test_simulated_loads_below_bound(self):
        n = 2**12
        batch = simulate_batch(DoubleHashingChoices(n, 3), n, 20, seed=2)
        assert batch.loads.max() <= layered_induction_bound(n, 3)

    def test_simulated_level_counts_below_envelope(self):
        """z_i (bins with load >= i) stays below the β_i envelope."""
        n = 2**12
        traj = beta_trajectory(n, 3)
        batch = simulate_batch(DoubleHashingChoices(n, 3), n, 20, seed=3)
        for level, beta in zip(traj.levels, traj.betas):
            z = (batch.loads >= level).sum(axis=1)
            assert (z <= beta).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            beta_trajectory(8, 3)
        with pytest.raises(ConfigurationError):
            beta_trajectory(2**14, 1)
