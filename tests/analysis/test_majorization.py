"""Tests for the Theorem 2 majorization coupling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import coupled_majorization_run, majorizes
from repro.errors import ConfigurationError


class TestMajorizes:
    def test_reflexive(self):
        assert majorizes([3, 2, 1], [3, 2, 1])

    def test_strict_example(self):
        assert majorizes([4, 0, 0], [2, 1, 1])
        assert not majorizes([2, 1, 1], [4, 0, 0])

    def test_different_sums_fail(self):
        assert not majorizes([3, 0], [1, 1])

    def test_order_irrelevant_in_input(self):
        assert majorizes([0, 0, 4], [1, 2, 1])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            majorizes([1, 2], [1, 2, 3])

    @given(
        x=st.lists(st.integers(min_value=0, max_value=10), min_size=2, max_size=8)
    )
    @settings(max_examples=50, deadline=None)
    def test_property_concentrated_vector_majorizes_everything(self, x):
        """Putting the whole mass in one coordinate majorizes any split."""
        total = sum(x)
        concentrated = [total] + [0] * (len(x) - 1)
        assert majorizes(concentrated, x)


class TestCoupledRun:
    def test_invariant_holds_theorem2(self):
        """Theorem 2: two random choices majorize d double-hashed choices,
        verified after every single ball."""
        trace = coupled_majorization_run(128, 512, 3, seed=1)
        assert trace.holds
        assert trace.first_violation == -1

    @pytest.mark.parametrize("d", [2, 3, 4, 6])
    def test_invariant_across_d(self, d):
        assert coupled_majorization_run(64, 256, d, seed=d).holds

    def test_max_load_dominance(self):
        """Corollary: X's maximum load >= Y's under the coupling."""
        for seed in range(5):
            trace = coupled_majorization_run(128, 384, 4, seed=seed)
            assert trace.final_max_x >= trace.final_max_y

    def test_zero_balls(self):
        trace = coupled_majorization_run(16, 0, 3, seed=1)
        assert trace.holds
        assert trace.final_max_x == 0 == trace.final_max_y

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            coupled_majorization_run(16, 16, 1)
        with pytest.raises(ConfigurationError):
            coupled_majorization_run(1, 16, 2)
        with pytest.raises(ConfigurationError):
            coupled_majorization_run(16, -1, 2)

    @given(
        n_exp=st.integers(min_value=3, max_value=7),
        d=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_coupling_always_majorizes(self, n_exp, d, seed):
        n = 2**n_exp
        trace = coupled_majorization_run(n, 2 * n, d, seed=seed)
        assert trace.holds, f"violated at ball {trace.first_violation}"
