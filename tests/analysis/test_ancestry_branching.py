"""Tests for ancestry lists (Lemmas 6–7) and the dominating branching process.

Scale note: the lemmas are asymptotic in n for *constant* T = (balls)/n.
The dominating mean is e^{T d(d−1)}, a constant that is enormous relative
to laptop-size n when T = 1 and d = 3 (e^6 ~ 403).  The tests therefore use
small T, where the constant is small and the O(log n) / disjointness
behaviour is visible at n in the thousands — same regime, honest scaling.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import expected_population, simulate_branching_population
from repro.analysis.ancestry import (
    ancestry_bins,
    ancestry_sizes_of_fresh_choices,
    disjointness_rate,
    record_history,
)
from repro.analysis.branching import empirical_tail_decay
from repro.errors import ConfigurationError
from repro.hashing import DoubleHashingChoices


class TestRecordHistory:
    def test_shapes(self):
        scheme = DoubleHashingChoices(64, 3)
        h = record_history(scheme, 100, seed=1)
        assert h.choices.shape == (100, 3)
        assert h.placements.shape == (100,)
        assert h.n_balls == 100

    def test_placements_among_choices(self):
        h = record_history(DoubleHashingChoices(64, 3), 200, seed=2)
        for j in range(200):
            assert h.placements[j] in h.choices[j]

    def test_placement_was_least_loaded(self):
        """Replay: the placed bin's load never exceeds the other choices'."""
        h = record_history(DoubleHashingChoices(32, 3), 150, seed=3)
        loads = np.zeros(32, dtype=int)
        for j in range(150):
            placed = h.placements[j]
            candidate_loads = loads[h.choices[j]]
            assert loads[placed] == candidate_loads.min()
            loads[placed] += 1


class TestAncestryConstruction:
    def test_untouched_bin_is_singleton(self):
        """A bin never chosen by any ball has an ancestry of itself only."""
        scheme = DoubleHashingChoices(512, 2)
        h = record_history(scheme, 20, seed=4)
        touched = set(h.choices.ravel().tolist())
        untouched = next(b for b in range(512) if b not in touched)
        assert ancestry_bins(h, untouched, 20) == {untouched}

    def test_time_zero_is_singleton(self):
        h = record_history(DoubleHashingChoices(32, 3), 50, seed=5)
        assert ancestry_bins(h, 7, 0) == {7}

    def test_contains_direct_choosers(self):
        """Every co-choice of every ball that picked b is in b's ancestry."""
        h = record_history(DoubleHashingChoices(64, 3), 80, seed=6)
        b = int(h.choices[0, 0])
        anc = ancestry_bins(h, b, 80)
        for j in range(80):
            if b in h.choices[j]:
                for other in h.choices[j]:
                    assert int(other) in anc

    def test_monotone_in_time(self):
        h = record_history(DoubleHashingChoices(64, 3), 100, seed=7)
        b = int(h.choices[50, 0])
        early = ancestry_bins(h, b, 30)
        late = ancestry_bins(h, b, 100)
        assert early <= late

    def test_recursive_closure(self):
        """Hand-built history: ball 0 chooses (a, b); ball 1 chooses (b, c).
        Ancestry of c at time 2 must include a via the recursion."""
        from repro.analysis.ancestry import AllocationHistory

        h = AllocationHistory(
            n_bins=5,
            choices=np.array([[0, 1], [1, 2]]),
            placements=np.array([0, 2]),
        )
        anc = ancestry_bins(h, 2, 2)
        assert anc == {0, 1, 2}

    def test_recursion_respects_time_bound(self):
        """Ball at time 1 choosing (b, c): balls choosing c *after* time 1
        do not enter b's recursion through that path."""
        from repro.analysis.ancestry import AllocationHistory

        h = AllocationHistory(
            n_bins=6,
            choices=np.array([[1, 2], [3, 4], [2, 5]]),
            placements=np.array([1, 3, 5]),
        )
        # Ancestry of 1 at time 3: ball0 (1,2) contributes 2 with bound 0;
        # ball2 (2,5) at time 2 must NOT be followed from that state.
        anc = ancestry_bins(h, 1, 3)
        assert 5 not in anc
        assert anc == {1, 2}

    def test_max_bins_guard(self):
        h = record_history(DoubleHashingChoices(64, 3), 200, seed=8)
        with pytest.raises(RuntimeError):
            ancestry_bins(h, int(h.choices[0, 0]), 200, max_bins=1)

    def test_invalid_bin_rejected(self):
        h = record_history(DoubleHashingChoices(16, 2), 10, seed=9)
        with pytest.raises(ConfigurationError):
            ancestry_bins(h, 99, 10)


class TestLemma6Sizes:
    def test_sizes_stay_logarithmic_at_small_t(self):
        """T = 0.15: dominating mean e^{0.15*6} ~ 2.5; lists should be tiny
        relative to n and grow (at most) logarithmically."""
        sizes_by_n = {}
        for n in (512, 2048, 8192):
            scheme = DoubleHashingChoices(n, 3)
            h = record_history(scheme, int(0.15 * n), seed=n)
            rng = np.random.default_rng(n + 1)
            fresh = scheme.single(rng)
            sizes = ancestry_sizes_of_fresh_choices(h, fresh)
            sizes_by_n[n] = max(sizes)
        for n, biggest in sizes_by_n.items():
            assert biggest <= 8 * math.log(n), (n, biggest)

    def test_sizes_grow_with_t(self):
        n = 2048
        scheme = DoubleHashingChoices(n, 3)
        rng = np.random.default_rng(0)
        fresh = scheme.single(rng)
        short = record_history(scheme, n // 10, seed=1)
        long = record_history(scheme, n, seed=1)
        s_short = sum(ancestry_sizes_of_fresh_choices(short, fresh))
        s_long = sum(ancestry_sizes_of_fresh_choices(long, fresh))
        assert s_long > s_short


class TestLemma7Disjointness:
    def test_disjointness_improves_with_n(self):
        """Lemma 7: non-disjointness is O(d^2 log^2 n / n) -> rate to 1."""
        rates = []
        for n in (256, 4096):
            scheme = DoubleHashingChoices(n, 3)
            h = record_history(scheme, int(0.15 * n), seed=n)
            rates.append(disjointness_rate(h, scheme, 60, seed=n + 1))
        assert rates[1] >= rates[0]
        assert rates[1] > 0.9

    def test_empty_samples_nan(self):
        scheme = DoubleHashingChoices(64, 2)
        h = record_history(scheme, 10, seed=1)
        assert math.isnan(disjointness_rate(h, scheme, 0, seed=2))


class TestBranchingProcess:
    def test_mean_matches_theory(self):
        """Simulated with d' = d, the discrete process mean approaches
        (1 + d(d-1)/n)^{Tn} ~ e^{T d(d-1)}."""
        pops = simulate_branching_population(
            4096, 3, 0.5, trials=800, seed=1, d_prime=3
        )
        expected = expected_population(3, 0.5)  # e^3 ~ 20.1
        assert pops.mean() == pytest.approx(expected, rel=0.2)

    def test_dominating_process_larger(self):
        """d' = d + 1 (the paper's domination) inflates the mean."""
        base = simulate_branching_population(
            2048, 3, 0.4, trials=400, seed=2, d_prime=3
        ).mean()
        dominating = simulate_branching_population(
            2048, 3, 0.4, trials=400, seed=2
        ).mean()
        assert dominating > base

    def test_karp_zhang_exponential_tail(self):
        pops = simulate_branching_population(
            2048, 3, 0.4, trials=2000, seed=3, d_prime=3
        )
        mean = expected_population(3, 0.4)
        tails = empirical_tail_decay(pops, mean, np.array([1.0, 2.0, 4.0, 8.0]))
        assert tails[0] > tails[1] > tails[2] > tails[3]
        assert tails[3] < 0.01

    def test_population_at_least_one(self):
        pops = simulate_branching_population(512, 3, 0.2, trials=100, seed=4)
        assert (pops >= 1).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_branching_population(0, 3, 1.0, 10)
        with pytest.raises(ConfigurationError):
            simulate_branching_population(64, 1, 1.0, 10)
        with pytest.raises(ConfigurationError):
            simulate_branching_population(64, 3, 1.0, 0)
        with pytest.raises(ConfigurationError):
            expected_population(1, 1.0)
