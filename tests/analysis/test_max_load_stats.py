"""Tests for max-load distribution statistics (Table 4's comparison)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.max_load_stats import (
    compare_max_loads,
    max_load_fraction_ci,
)
from repro.core import simulate_batch, simulate_one_choice
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.types import LoadDistribution


def _dist_with_max_loads(max_loads) -> LoadDistribution:
    max_loads = np.asarray(max_loads)
    return LoadDistribution(
        n_bins=10,
        n_balls=10,
        trials=len(max_loads),
        counts=np.array([len(max_loads) * 10]),
        max_load_per_trial=max_loads,
    )


class TestWilsonCI:
    def test_brackets_fraction(self):
        d = _dist_with_max_loads([2] * 30 + [3] * 70)
        p, low, high = max_load_fraction_ci(d, 3)
        assert p == pytest.approx(0.7)
        assert low < 0.7 < high

    def test_extreme_fractions_stay_in_unit_interval(self):
        d = _dist_with_max_loads([3] * 50)
        p, low, high = max_load_fraction_ci(d, 3)
        assert p == 1.0
        assert 0.0 <= low <= high <= 1.0
        p0, low0, high0 = max_load_fraction_ci(d, 2)
        assert p0 == 0.0 and low0 == 0.0

    def test_wider_at_smaller_samples(self):
        small = _dist_with_max_loads([2] * 5 + [3] * 5)
        large = _dist_with_max_loads([2] * 500 + [3] * 500)
        _, lo_s, hi_s = max_load_fraction_ci(small, 3)
        _, lo_l, hi_l = max_load_fraction_ci(large, 3)
        assert (hi_s - lo_s) > (hi_l - lo_l)


class TestCompareMaxLoads:
    def test_identical_samples_indistinguishable(self):
        d = _dist_with_max_loads([2] * 40 + [3] * 60)
        report = compare_max_loads(d, d)
        assert report.indistinguishable
        assert report.p_value == pytest.approx(1.0)

    def test_detects_gross_difference(self):
        a = _dist_with_max_loads([2] * 90 + [3] * 10)
        b = _dist_with_max_loads([2] * 10 + [3] * 90)
        report = compare_max_loads(a, b)
        assert not report.indistinguishable

    def test_fisher_path_for_small_2x2(self):
        a = _dist_with_max_loads([2] * 3 + [3] * 4)
        b = _dist_with_max_loads([2] * 4 + [3] * 3)
        report = compare_max_loads(a, b)
        assert report.indistinguishable  # tiny samples: no evidence

    def test_degenerate_single_value(self):
        a = _dist_with_max_loads([3] * 20)
        report = compare_max_loads(a, a)
        assert report.p_value == 1.0

    def test_counts_reported(self):
        a = _dist_with_max_loads([2, 2, 3])
        b = _dist_with_max_loads([3, 3, 4])
        report = compare_max_loads(a, b)
        assert report.table_values == (2, 3, 4)
        assert report.counts_a == (2, 1, 0)
        assert report.counts_b == (0, 2, 1)

    def test_paper_claim_on_simulated_max_loads(self):
        """Table 4's message: the two schemes' max-load distributions are
        statistically indistinguishable."""
        n = 2**12
        a = simulate_batch(FullyRandomChoices(n, 3), n, 80, seed=1).distribution()
        b = simulate_batch(
            DoubleHashingChoices(n, 3), n, 80, seed=2
        ).distribution()
        assert compare_max_loads(a, b).indistinguishable

    def test_power_check_one_vs_two_choice(self):
        n = 2**10
        a = simulate_one_choice(n, n, 80, seed=3).distribution()
        b = simulate_batch(FullyRandomChoices(n, 2), n, 80, seed=4).distribution()
        assert not compare_max_loads(a, b).indistinguishable


class TestBootstrapCI:
    def test_brackets_the_mean(self):
        from repro.analysis.max_load_stats import bootstrap_mean_ci

        values = np.array([2] * 30 + [3] * 70)
        mean, low, high = bootstrap_mean_ci(values, seed=1)
        assert mean == pytest.approx(2.7)
        assert low < 2.7 < high

    def test_deterministic_for_seed(self):
        from repro.analysis.max_load_stats import bootstrap_mean_ci

        values = np.array([2, 3, 3, 4, 2, 3])
        assert bootstrap_mean_ci(values, seed=7) == bootstrap_mean_ci(values, seed=7)
        # On a continuous sample different seeds give different resamples
        # (integer samples can quantize both intervals onto the same grid).
        smooth = np.array([2.1, 3.7, 3.2, 4.4, 2.9, 3.3, 2.2, 4.0])
        _, lo_a, hi_a = bootstrap_mean_ci(smooth, seed=7)
        _, lo_b, hi_b = bootstrap_mean_ci(smooth, seed=8)
        assert (lo_a, hi_a) != (lo_b, hi_b)

    def test_degenerate_sample_zero_width(self):
        from repro.analysis.max_load_stats import bootstrap_mean_ci

        mean, low, high = bootstrap_mean_ci(np.array([3, 3, 3, 3]))
        assert mean == low == high == 3.0

    def test_empty_sample_is_nan(self):
        from repro.analysis.max_load_stats import bootstrap_mean_ci

        mean, low, high = bootstrap_mean_ci(np.array([]))
        assert np.isnan(mean) and np.isnan(low) and np.isnan(high)

    def test_narrows_with_sample_size(self):
        from repro.analysis.max_load_stats import bootstrap_mean_ci

        small = np.tile([2, 3], 10)
        large = np.tile([2, 3], 1000)
        _, lo_s, hi_s = bootstrap_mean_ci(small, seed=2)
        _, lo_l, hi_l = bootstrap_mean_ci(large, seed=2)
        assert (hi_s - lo_s) > (hi_l - lo_l)

    def test_fraction_ci_matches_manual_hits(self):
        from repro.analysis.max_load_stats import (
            bootstrap_fraction_ci,
            bootstrap_mean_ci,
        )

        values = np.array([2] * 40 + [3] * 60)
        frac = bootstrap_fraction_ci(values, 3, seed=5)
        hits = (values == 3).astype(float)
        assert frac == bootstrap_mean_ci(hits, seed=5)
        assert frac[0] == pytest.approx(0.6)

    def test_fraction_ci_cross_checks_wilson(self):
        """Bootstrap and Wilson intervals for the same fraction overlap."""
        from repro.analysis.max_load_stats import bootstrap_fraction_ci

        d = _dist_with_max_loads([2] * 30 + [3] * 70)
        p_w, lo_w, hi_w = max_load_fraction_ci(d, 3)
        p_b, lo_b, hi_b = bootstrap_fraction_ci(d.max_load_per_trial, 3, seed=3)
        assert p_b == pytest.approx(p_w)
        assert max(lo_w, lo_b) < min(hi_w, hi_b)
