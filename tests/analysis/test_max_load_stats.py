"""Tests for max-load distribution statistics (Table 4's comparison)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.max_load_stats import (
    compare_max_loads,
    max_load_fraction_ci,
)
from repro.core import simulate_batch, simulate_one_choice
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.types import LoadDistribution


def _dist_with_max_loads(max_loads) -> LoadDistribution:
    max_loads = np.asarray(max_loads)
    return LoadDistribution(
        n_bins=10,
        n_balls=10,
        trials=len(max_loads),
        counts=np.array([len(max_loads) * 10]),
        max_load_per_trial=max_loads,
    )


class TestWilsonCI:
    def test_brackets_fraction(self):
        d = _dist_with_max_loads([2] * 30 + [3] * 70)
        p, low, high = max_load_fraction_ci(d, 3)
        assert p == pytest.approx(0.7)
        assert low < 0.7 < high

    def test_extreme_fractions_stay_in_unit_interval(self):
        d = _dist_with_max_loads([3] * 50)
        p, low, high = max_load_fraction_ci(d, 3)
        assert p == 1.0
        assert 0.0 <= low <= high <= 1.0
        p0, low0, high0 = max_load_fraction_ci(d, 2)
        assert p0 == 0.0 and low0 == 0.0

    def test_wider_at_smaller_samples(self):
        small = _dist_with_max_loads([2] * 5 + [3] * 5)
        large = _dist_with_max_loads([2] * 500 + [3] * 500)
        _, lo_s, hi_s = max_load_fraction_ci(small, 3)
        _, lo_l, hi_l = max_load_fraction_ci(large, 3)
        assert (hi_s - lo_s) > (hi_l - lo_l)


class TestCompareMaxLoads:
    def test_identical_samples_indistinguishable(self):
        d = _dist_with_max_loads([2] * 40 + [3] * 60)
        report = compare_max_loads(d, d)
        assert report.indistinguishable
        assert report.p_value == pytest.approx(1.0)

    def test_detects_gross_difference(self):
        a = _dist_with_max_loads([2] * 90 + [3] * 10)
        b = _dist_with_max_loads([2] * 10 + [3] * 90)
        report = compare_max_loads(a, b)
        assert not report.indistinguishable

    def test_fisher_path_for_small_2x2(self):
        a = _dist_with_max_loads([2] * 3 + [3] * 4)
        b = _dist_with_max_loads([2] * 4 + [3] * 3)
        report = compare_max_loads(a, b)
        assert report.indistinguishable  # tiny samples: no evidence

    def test_degenerate_single_value(self):
        a = _dist_with_max_loads([3] * 20)
        report = compare_max_loads(a, a)
        assert report.p_value == 1.0

    def test_counts_reported(self):
        a = _dist_with_max_loads([2, 2, 3])
        b = _dist_with_max_loads([3, 3, 4])
        report = compare_max_loads(a, b)
        assert report.table_values == (2, 3, 4)
        assert report.counts_a == (2, 1, 0)
        assert report.counts_b == (0, 2, 1)

    def test_paper_claim_on_simulated_max_loads(self):
        """Table 4's message: the two schemes' max-load distributions are
        statistically indistinguishable."""
        n = 2**12
        a = simulate_batch(FullyRandomChoices(n, 3), n, 80, seed=1).distribution()
        b = simulate_batch(
            DoubleHashingChoices(n, 3), n, 80, seed=2
        ).distribution()
        assert compare_max_loads(a, b).indistinguishable

    def test_power_check_one_vs_two_choice(self):
        n = 2**10
        a = simulate_one_choice(n, n, 80, seed=3).distribution()
        b = simulate_batch(FullyRandomChoices(n, 2), n, 80, seed=4).distribution()
        assert not compare_max_loads(a, b).indistinguishable
