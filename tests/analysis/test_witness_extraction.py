"""Tests for witness-tree extraction from recorded histories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ancestry import AllocationHistory, record_history
from repro.analysis.witness_extraction import extract_witness_tree
from repro.errors import ConfigurationError, SimulationError
from repro.hashing import DoubleHashingChoices, FullyRandomChoices


@pytest.fixture(scope="module")
def history():
    return record_history(DoubleHashingChoices(256, 3), 256, seed=11)


class TestExtraction:
    def test_depth_matches_target(self, history):
        tree = extract_witness_tree(history)
        max_load = int(
            np.bincount(history.placements, minlength=256).max()
        )
        assert tree.depth == max_load - 1
        assert tree.root.level == max_load

    def test_dary_fanout(self, history):
        tree = extract_witness_tree(history)
        for node in tree.root.iter_nodes():
            assert len(node.children) in (0, 3)
            if node.level > 1:
                assert len(node.children) == 3

    def test_children_precede_parents(self, history):
        tree = extract_witness_tree(history)
        for node in tree.root.iter_nodes():
            for child in node.children:
                assert child.ball < node.ball
                assert child.level == node.level - 1

    def test_node_count_for_full_dary(self, history):
        """With base 1, the tree is a complete d-ary tree of its depth
        (every internal node has exactly d children)."""
        tree = extract_witness_tree(history)
        d = 3
        expected = sum(d**k for k in range(tree.depth + 1))
        assert tree.n_nodes == expected

    def test_child_bins_are_parent_choices(self, history):
        tree = extract_witness_tree(history)
        for node in tree.root.iter_nodes():
            if node.children:
                child_bins = sorted(c.bin for c in node.children)
                assert child_bins == sorted(
                    int(x) for x in history.choices[node.ball]
                )

    def test_base_load_truncates(self, history):
        full = extract_witness_tree(history, base_load=1)
        if full.root.level >= 2:
            shallow = extract_witness_tree(history, base_load=2)
            assert shallow.depth == full.depth - 1
            assert shallow.n_nodes < full.n_nodes

    def test_every_engine_history_extracts(self):
        """Extraction succeeding is a proof the engine always placed balls
        least-loaded — run it over several fresh histories and schemes."""
        for seed in range(4):
            for scheme in (
                DoubleHashingChoices(128, 3),
                FullyRandomChoices(128, 4),
            ):
                h = record_history(scheme, 128, seed=seed)
                tree = extract_witness_tree(h)
                assert tree.n_nodes >= 1

    def test_repeated_balls_counted(self, history):
        tree = extract_witness_tree(history)
        assert 1 <= tree.n_distinct_balls <= tree.n_nodes


class TestValidation:
    def test_bad_bin(self, history):
        with pytest.raises(ConfigurationError):
            extract_witness_tree(history, bin_id=9999)

    def test_target_above_final_load(self, history):
        with pytest.raises(ConfigurationError):
            extract_witness_tree(history, target_load=50)

    def test_base_below_one(self, history):
        with pytest.raises(ConfigurationError):
            extract_witness_tree(history, base_load=0)

    def test_target_below_base(self, history):
        with pytest.raises(ConfigurationError):
            extract_witness_tree(history, target_load=1, base_load=2)

    def test_inconsistent_history_detected(self):
        """A hand-forged history violating least-loaded placement makes a
        required witness ball missing, which extraction must flag."""
        # Ball 0 and 1 both placed in bin 0 although bin 1 was empty —
        # ball 1's placement was not least-loaded.
        forged = AllocationHistory(
            n_bins=3,
            choices=np.array([[0, 1], [0, 1]]),
            placements=np.array([0, 0]),
        )
        with pytest.raises(SimulationError):
            extract_witness_tree(forged, bin_id=0, target_load=2)
