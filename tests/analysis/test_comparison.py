"""Tests for statistical indistinguishability tooling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    chi_square_comparison,
    compare_distributions,
    total_variation,
)
from repro.analysis.comparison import sampling_envelope
from repro.core import simulate_batch, simulate_one_choice
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.types import LoadDistribution


def _dist(counts, trials=10, n_bins=None, n_balls=100) -> LoadDistribution:
    counts = np.asarray(counts, dtype=np.int64)
    n_bins = n_bins or int(counts.sum() // trials)
    return LoadDistribution(
        n_bins=n_bins,
        n_balls=n_balls,
        trials=trials,
        counts=counts,
        max_load_per_trial=np.full(trials, len(counts) - 1),
    )


class TestTotalVariation:
    def test_identical_is_zero(self):
        d = _dist([50, 30, 20])
        assert total_variation(d, d) == 0.0

    def test_disjoint_is_one(self):
        a = _dist([100, 0])
        b = _dist([0, 100])
        assert total_variation(a, b) == pytest.approx(1.0)

    def test_symmetry(self):
        a = _dist([60, 40])
        b = _dist([40, 60])
        assert total_variation(a, b) == total_variation(b, a)

    def test_known_value(self):
        a = _dist([60, 40])
        b = _dist([40, 60])
        assert total_variation(a, b) == pytest.approx(0.2)

    def test_width_mismatch_handled(self):
        a = _dist([100])
        b = _dist([50, 50])
        assert total_variation(a, b) == pytest.approx(0.5)


class TestChiSquare:
    def test_identical_high_p(self):
        d = _dist([5000, 3000, 2000], trials=100)
        stat, p, dof = chi_square_comparison(d, d)
        assert p == pytest.approx(1.0)
        assert stat == pytest.approx(0.0)

    def test_detects_gross_difference(self):
        a = _dist([8000, 2000], trials=100)
        b = _dist([2000, 8000], trials=100)
        _, p, _ = chi_square_comparison(a, b)
        assert p < 1e-10

    def test_sparse_tail_merged(self):
        """A 1-count tail cell should be merged, not crash or distort."""
        a = _dist([5000, 4000, 999, 1], trials=100)
        b = _dist([5001, 3999, 1000, 0], trials=100)
        stat, p, dof = chi_square_comparison(a, b)
        assert p > 0.5

    def test_degenerate_single_cell(self):
        a = _dist([100])
        stat, p, dof = chi_square_comparison(a, a)
        assert p == 1.0


class TestSamplingEnvelope:
    def test_scales_inverse_sqrt_trials(self):
        a = _dist([500, 500], trials=10)
        b = _dist([50000, 50000], trials=1000)
        assert sampling_envelope(a, 0) == pytest.approx(
            10 * sampling_envelope(b, 0), rel=1e-6
        )

    def test_zero_fraction_has_tiny_envelope(self):
        d = _dist([900, 100])
        assert sampling_envelope(d, 5) < sampling_envelope(d, 1)


class TestCompareDistributions:
    def test_same_scheme_two_seeds_indistinguishable(self):
        n = 1024
        a = simulate_batch(FullyRandomChoices(n, 3), n, 50, seed=1).distribution()
        b = simulate_batch(FullyRandomChoices(n, 3), n, 50, seed=2).distribution()
        report = compare_distributions(a, b)
        assert report.indistinguishable
        assert report.tv_distance < 0.01

    def test_paper_claim_double_vs_random(self):
        """The headline claim at test scale: double hashing vs fully random
        is statistically indistinguishable."""
        n = 2048
        a = simulate_batch(FullyRandomChoices(n, 3), n, 50, seed=3).distribution()
        b = simulate_batch(
            DoubleHashingChoices(n, 3), n, 50, seed=4
        ).distribution()
        report = compare_distributions(a, b)
        assert report.indistinguishable, (
            f"p={report.p_value}, dev={report.max_deviation_sigmas} sigmas"
        )

    def test_one_choice_vs_two_choice_distinguishable(self):
        """Sanity: the test must have power — one-choice is very different."""
        n = 1024
        a = simulate_one_choice(n, n, 50, seed=5).distribution()
        b = simulate_batch(FullyRandomChoices(n, 2), n, 50, seed=6).distribution()
        report = compare_distributions(a, b)
        assert not report.indistinguishable
        assert report.p_value < 1e-10

    def test_report_fields_populated(self):
        d = _dist([500, 300, 200], trials=10)
        report = compare_distributions(d, d)
        assert report.max_deviation == 0.0
        assert report.max_deviation_sigmas == 0.0
        assert report.dof >= 1
