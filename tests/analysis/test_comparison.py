"""Tests for statistical indistinguishability tooling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    chi_square_comparison,
    compare_distributions,
    total_variation,
)
from repro.analysis.comparison import (
    cramers_v,
    holm_correction,
    sampling_envelope,
)
from repro.core import simulate_batch, simulate_one_choice
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.types import LoadDistribution


def _dist(counts, trials=10, n_bins=None, n_balls=100) -> LoadDistribution:
    counts = np.asarray(counts, dtype=np.int64)
    n_bins = n_bins or int(counts.sum() // trials)
    return LoadDistribution(
        n_bins=n_bins,
        n_balls=n_balls,
        trials=trials,
        counts=counts,
        max_load_per_trial=np.full(trials, len(counts) - 1),
    )


class TestTotalVariation:
    def test_identical_is_zero(self):
        d = _dist([50, 30, 20])
        assert total_variation(d, d) == 0.0

    def test_disjoint_is_one(self):
        a = _dist([100, 0])
        b = _dist([0, 100])
        assert total_variation(a, b) == pytest.approx(1.0)

    def test_symmetry(self):
        a = _dist([60, 40])
        b = _dist([40, 60])
        assert total_variation(a, b) == total_variation(b, a)

    def test_known_value(self):
        a = _dist([60, 40])
        b = _dist([40, 60])
        assert total_variation(a, b) == pytest.approx(0.2)

    def test_width_mismatch_handled(self):
        a = _dist([100])
        b = _dist([50, 50])
        assert total_variation(a, b) == pytest.approx(0.5)


class TestChiSquare:
    def test_identical_high_p(self):
        d = _dist([5000, 3000, 2000], trials=100)
        stat, p, dof = chi_square_comparison(d, d)
        assert p == pytest.approx(1.0)
        assert stat == pytest.approx(0.0)

    def test_detects_gross_difference(self):
        a = _dist([8000, 2000], trials=100)
        b = _dist([2000, 8000], trials=100)
        _, p, _ = chi_square_comparison(a, b)
        assert p < 1e-10

    def test_sparse_tail_merged(self):
        """A 1-count tail cell should be merged, not crash or distort."""
        a = _dist([5000, 4000, 999, 1], trials=100)
        b = _dist([5001, 3999, 1000, 0], trials=100)
        stat, p, dof = chi_square_comparison(a, b)
        assert p > 0.5

    def test_degenerate_single_cell(self):
        a = _dist([100])
        stat, p, dof = chi_square_comparison(a, a)
        assert p == 1.0

    def test_all_tail_cells_sparse_collapse_to_two(self):
        """Merging must stop at two cells even when every tail is sparse."""
        a = _dist([1000, 2, 1, 1, 1])
        b = _dist([1001, 1, 1, 1, 1])
        stat, p, dof = chi_square_comparison(a, b)
        assert dof == 1  # merged down to a 2x2 table
        assert p > 0.5

    def test_min_expected_zero_disables_merging(self):
        a = _dist([5000, 4000, 999, 1], trials=100)
        b = _dist([5001, 3999, 1000, 0], trials=100)
        _, _, dof_merged = chi_square_comparison(a, b)
        _, _, dof_raw = chi_square_comparison(a, b, min_expected=0.0)
        assert dof_raw == dof_merged + 1

    def test_merging_preserves_totals(self):
        """The merged statistic must still see every observation: a gross
        difference hidden in the sparse tail is still detected."""
        a = _dist([10000, 3, 0], trials=100)
        b = _dist([10000, 0, 3], trials=100)
        _, p, _ = chi_square_comparison(a, b)
        # Sparse tail cells merge into one (3 vs 3): the difference lives
        # below the merge resolution, so this must NOT reject...
        assert p > 0.9
        # ...while the same counts at a non-mergeable scale must reject.
        a = _dist([10000, 3000, 0], trials=100)
        b = _dist([10000, 0, 3000], trials=100)
        _, p, _ = chi_square_comparison(a, b)
        assert p < 1e-10


class TestSamplingEnvelope:
    def test_scales_inverse_sqrt_trials(self):
        a = _dist([500, 500], trials=10)
        b = _dist([50000, 50000], trials=1000)
        assert sampling_envelope(a, 0) == pytest.approx(
            10 * sampling_envelope(b, 0), rel=1e-6
        )

    def test_zero_fraction_has_tiny_envelope(self):
        d = _dist([900, 100])
        assert sampling_envelope(d, 5) < sampling_envelope(d, 1)


class TestCompareDistributions:
    def test_same_scheme_two_seeds_indistinguishable(self):
        n = 1024
        a = simulate_batch(FullyRandomChoices(n, 3), n, 50, seed=1).distribution()
        b = simulate_batch(FullyRandomChoices(n, 3), n, 50, seed=2).distribution()
        report = compare_distributions(a, b)
        assert report.indistinguishable
        assert report.tv_distance < 0.01

    def test_paper_claim_double_vs_random(self):
        """The headline claim at test scale: double hashing vs fully random
        is statistically indistinguishable."""
        n = 2048
        a = simulate_batch(FullyRandomChoices(n, 3), n, 50, seed=3).distribution()
        b = simulate_batch(
            DoubleHashingChoices(n, 3), n, 50, seed=4
        ).distribution()
        report = compare_distributions(a, b)
        assert report.indistinguishable, (
            f"p={report.p_value}, dev={report.max_deviation_sigmas} sigmas"
        )

    def test_one_choice_vs_two_choice_distinguishable(self):
        """Sanity: the test must have power — one-choice is very different."""
        n = 1024
        a = simulate_one_choice(n, n, 50, seed=5).distribution()
        b = simulate_batch(FullyRandomChoices(n, 2), n, 50, seed=6).distribution()
        report = compare_distributions(a, b)
        assert not report.indistinguishable
        assert report.p_value < 1e-10

    def test_report_fields_populated(self):
        d = _dist([500, 300, 200], trials=10)
        report = compare_distributions(d, d)
        assert report.max_deviation == 0.0
        assert report.max_deviation_sigmas == 0.0
        assert report.dof >= 1


class TestCramersV:
    def test_identical_is_zero(self):
        d = _dist([5000, 3000, 2000], trials=100)
        assert cramers_v(d, d) == pytest.approx(0.0, abs=1e-12)

    def test_degenerate_single_cell_is_zero(self):
        d = _dist([100])
        assert cramers_v(d, d) == 0.0

    def test_gross_difference_is_large(self):
        a = _dist([8000, 2000], trials=100)
        b = _dist([2000, 8000], trials=100)
        assert cramers_v(a, b) > 0.5

    def test_scale_free(self):
        """Same proportions at 100x the sample: V unchanged (unlike chi2)."""
        a1 = _dist([80, 20], trials=1)
        b1 = _dist([70, 30], trials=1)
        a2 = _dist([8000, 2000], trials=100)
        b2 = _dist([7000, 3000], trials=100)
        assert cramers_v(a1, b1) == pytest.approx(cramers_v(a2, b2), rel=0.15)

    def test_bounded_unit_interval(self):
        a = _dist([100, 0])
        b = _dist([0, 100])
        assert 0.0 <= cramers_v(a, b) <= 1.0


class TestHolmCorrection:
    def test_empty_family(self):
        result = holm_correction([])
        assert result.adjusted == ()
        assert result.reject == ()
        assert not result.any_rejected

    def test_single_p_value_unchanged(self):
        result = holm_correction([0.03], alpha=0.05)
        assert result.adjusted == (pytest.approx(0.03),)
        assert result.reject == (True,)

    def test_known_textbook_family(self):
        # m=3: adjusted = (3*0.01, max(3*0.01, 2*0.02), max(prev, 1*0.3))
        result = holm_correction([0.01, 0.02, 0.30], alpha=0.05)
        assert result.adjusted[0] == pytest.approx(0.03)
        assert result.adjusted[1] == pytest.approx(0.04)
        assert result.adjusted[2] == pytest.approx(0.30)
        assert result.reject == (True, True, False)

    def test_step_down_stops_at_first_acceptance(self):
        # Smallest p fails its threshold: nothing is rejected even though
        # a *larger* p would pass a smaller divisor.
        result = holm_correction([0.03, 0.04], alpha=0.05)
        assert result.reject == (False, False)

    def test_adjusted_monotone_and_order_preserved(self):
        raw = [0.2, 0.001, 0.04, 0.7]
        result = holm_correction(raw, alpha=0.05)
        # Results come back in input order...
        assert result.adjusted[1] == min(result.adjusted)
        # ...and sorting by raw p gives monotone adjusted values.
        paired = sorted(zip(raw, result.adjusted))
        adj_sorted = [a for _, a in paired]
        assert adj_sorted == sorted(adj_sorted)

    def test_adjusted_clipped_at_one(self):
        result = holm_correction([0.9, 0.95, 0.99])
        assert all(a <= 1.0 for a in result.adjusted)

    def test_rejection_consistent_with_adjusted(self):
        raw = [0.001, 0.004, 0.02, 0.5, 0.8]
        result = holm_correction(raw, alpha=0.01)
        for adj, rej in zip(result.adjusted, result.reject):
            assert rej == (adj <= result.alpha)

    def test_family_wise_control_vs_raw(self):
        """20 true-null p-values around 0.02: raw 5% testing would reject,
        Holm must not reject any."""
        raw = [0.02 + 0.001 * k for k in range(20)]
        result = holm_correction(raw, alpha=0.05)
        assert not result.any_rejected

    def test_invalid_p_values_raise(self):
        with pytest.raises(ValueError):
            holm_correction([0.5, 1.5])
        with pytest.raises(ValueError):
            holm_correction([-0.1])
        with pytest.raises(ValueError):
            holm_correction([float("nan")])
