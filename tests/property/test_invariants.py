"""Cross-module property-based tests of the library's core invariants.

These hypothesis suites randomize over geometry, scheme, and seed
simultaneously — the invariants here are the ones every module must
preserve regardless of configuration.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.majorization import majorizes
from repro.core import simulate_batch, simulate_single_trial
from repro.hashing import (
    BlockChoices,
    DoubleHashingChoices,
    FullyRandomChoices,
    PartitionedDoubleHashing,
    PartitionedFullyRandom,
)
from repro.types import TrialBatchResult

# -- scheme strategy ---------------------------------------------------------


def _make_scheme(kind: str, n: int, d: int):
    if kind == "random":
        return FullyRandomChoices(n, d)
    if kind == "random-replace":
        return FullyRandomChoices(n, d, replacement=True)
    if kind == "double":
        return DoubleHashingChoices(n, d)
    if kind == "blocks":
        return BlockChoices(n, d if d % 2 == 0 else d + 1)
    if kind == "dleft-random":
        return PartitionedFullyRandom(n - n % d, d)
    return PartitionedDoubleHashing(n - n % d, d)


scheme_kinds = st.sampled_from(
    ["random", "random-replace", "double", "blocks", "dleft-random",
     "dleft-double"]
)


@given(
    kind=scheme_kinds,
    n=st.integers(min_value=8, max_value=128),
    d=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=80, deadline=None)
def test_schemes_emit_valid_choices(kind, n, d, seed):
    """Every scheme: shape (trials, d), values in range, randomness seeded."""
    scheme = _make_scheme(kind, n, d)
    rng = np.random.default_rng(seed)
    out = scheme.batch(37, rng)
    assert out.shape == (37, scheme.d)
    assert out.min() >= 0
    assert out.max() < scheme.n_bins


@given(
    kind=scheme_kinds,
    n=st.integers(min_value=8, max_value=96),
    d=st.integers(min_value=2, max_value=4),
    m_factor=st.floats(min_value=0.2, max_value=2.5),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=50, deadline=None)
def test_engine_conservation_all_schemes(kind, n, d, m_factor, seed):
    """Ball conservation for every scheme / geometry / tie rule."""
    scheme = _make_scheme(kind, n, d)
    m = int(m_factor * scheme.n_bins)
    tie = "left" if kind.startswith("dleft") else "random"
    batch = simulate_batch(
        scheme, m, trials=3, seed=seed, tie_break=tie, check_invariants=True
    )
    assert (batch.loads.sum(axis=1) == m).all()
    assert (batch.loads >= 0).all()


@given(
    n=st.integers(min_value=8, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_reference_engine_max_load_monotone_in_d(n, seed):
    """More choices never hurt (in expectation); we check the weak sorted
    -vector form: the d=4 load vector is majorized by the d=2 vector when
    coupled through the same seed is too strong, so compare max loads
    statistically across several seeds inside one example."""
    maxes = {}
    for d in (1, 4):
        loads = simulate_single_trial(
            FullyRandomChoices(n, d), 3 * n, seed=seed, return_loads=True
        )
        maxes[d] = int(loads.max())
    # d=4 can tie but should never exceed d=1 by more than a small margin
    # (generous to keep the property deterministic-flake-free).
    assert maxes[4] <= maxes[1] + 2


@given(
    counts=st.lists(
        st.integers(min_value=0, max_value=50), min_size=2, max_size=6
    ),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=50, deadline=None)
def test_distribution_identities(counts, seed):
    """LoadDistribution: fractions sum to 1; tails are a valid survival
    function; fraction = tail difference."""
    assume(sum(counts) > 0)
    from repro.types import LoadDistribution

    dist = LoadDistribution(
        n_bins=sum(counts),
        n_balls=1,
        trials=1,
        counts=np.array(counts),
        max_load_per_trial=np.array([len(counts) - 1]),
    )
    fr = dist.fractions
    tails = dist.tail_fractions
    assert fr.sum() == pytest.approx(1.0)
    assert tails[0] == pytest.approx(1.0)
    assert (np.diff(tails) <= 1e-12).all()
    for i in range(len(fr) - 1):
        assert fr[i] == pytest.approx(tails[i] - tails[i + 1])


@given(
    x=st.lists(st.integers(min_value=0, max_value=9), min_size=2, max_size=7),
    moves=st.lists(st.integers(min_value=0, max_value=6), max_size=5),
)
@settings(max_examples=60, deadline=None)
def test_majorization_transfer_property(x, moves):
    """Robin-Hood transfers (move one unit from a max coordinate to a min
    coordinate) always produce a majorized vector — the defining property
    the coupling argument leans on (Lemma 1's contrapositive direction)."""
    y = list(x)
    for _ in moves:
        hi = y.index(max(y))
        lo = y.index(min(y))
        if y[hi] - y[lo] >= 2:
            y[hi] -= 1
            y[lo] += 1
    assert majorizes(x, y)


@given(
    loads=st.lists(
        st.lists(st.integers(min_value=0, max_value=6), min_size=4,
                 max_size=4),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=50, deadline=None)
def test_batch_result_histogram_consistency(loads):
    """TrialBatchResult: distribution counts equal per-trial bincounts."""
    arr = np.array(loads)
    batch = TrialBatchResult(
        n_bins=4, n_balls=int(arr[0].sum()), loads=arr
    )
    dist = batch.distribution()
    assert dist.counts.sum() == arr.size
    manual = np.bincount(arr.ravel())
    assert np.array_equal(dist.counts[: len(manual)], manual)
