"""Backend selection must reach supermarket workers and table runners.

Satellite of the supermarket-kernel PR: ``REPRO_BACKEND`` and explicit
``backend=`` arguments must propagate into ``simulate_supermarket`` —
in-process, through the pickled ``_QueueTask`` of
``run_queueing_experiment`` worker fan-out, and through
``ExperimentSpec.backend`` in the table/certify runners — including the
numba-absent graceful fallback event.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing import FullyRandomChoices
from repro.kernels import ENV_VAR
from repro.kernels.numba_backend import NUMBA_AVAILABLE
from repro.metrics import global_registry
from repro.queueing import run_queueing_experiment, simulate_supermarket
from repro.queueing.batch import _QueueTask


class TestEnvPropagation:
    def test_env_backend_used(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        res = simulate_supermarket(
            FullyRandomChoices(32, 2), 0.6, 30.0, seed=3
        )
        assert res.completed_jobs > 0

    def test_env_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "cuda")
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            simulate_supermarket(FullyRandomChoices(32, 2), 0.6, 30.0, seed=3)

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="needs numba to be absent")
    def test_env_numba_falls_back_with_event(self, monkeypatch):
        before = len(global_registry().events)
        monkeypatch.setenv(ENV_VAR, "numba")
        res = simulate_supermarket(
            FullyRandomChoices(32, 2), 0.6, 30.0, seed=3
        )
        monkeypatch.delenv(ENV_VAR)
        ref = simulate_supermarket(
            FullyRandomChoices(32, 2), 0.6, 30.0, seed=3, backend="numpy"
        )
        assert res.mean_sojourn_time == ref.mean_sojourn_time
        assert res.completed_jobs == ref.completed_jobs
        new = global_registry().events[before:]
        fallbacks = [e for e in new if e["kind"] == "backend-fallback"]
        assert fallbacks
        assert fallbacks[-1]["requested"] == "numba"
        assert fallbacks[-1]["using"] == "numpy"
        assert fallbacks[-1]["source"] == "env"


class TestWorkerPropagation:
    def test_task_carries_backend(self):
        task = _QueueTask(
            scheme=FullyRandomChoices(16, 2),
            lam=0.5,
            sim_time=10.0,
            burn_in=0.0,
            backend="numpy",
        )
        assert task.backend == "numpy"

    def test_explicit_backend_matches_default_serial(self):
        kwargs = dict(runs=3, sim_time=30.0, burn_in=5.0, seed=11)
        base = run_queueing_experiment(
            FullyRandomChoices(48, 2), 0.7, backend="numpy", **kwargs
        )
        again = run_queueing_experiment(
            FullyRandomChoices(48, 2), 0.7, backend="numpy", **kwargs
        )
        np.testing.assert_array_equal(base.per_run, again.per_run)

    def test_workers_bit_identical_with_backend(self):
        kwargs = dict(runs=4, sim_time=25.0, burn_in=5.0, seed=12)
        serial = run_queueing_experiment(
            FullyRandomChoices(32, 2), 0.8, workers=1, backend="numpy",
            **kwargs,
        )
        fanned = run_queueing_experiment(
            FullyRandomChoices(32, 2), 0.8, workers=2, backend="numpy",
            **kwargs,
        )
        np.testing.assert_array_equal(serial.per_run, fanned.per_run)

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="needs numba to be absent")
    def test_worker_numba_request_falls_back_in_process(self):
        """Serial fan-out (workers=1) runs in-process: a numba request
        without numba must degrade to numpy and log the event."""
        before = len(global_registry().events)
        kwargs = dict(runs=2, sim_time=20.0, burn_in=2.0, seed=13)
        with_numba = run_queueing_experiment(
            FullyRandomChoices(32, 2), 0.7, backend="numba", **kwargs
        )
        with_numpy = run_queueing_experiment(
            FullyRandomChoices(32, 2), 0.7, backend="numpy", **kwargs
        )
        np.testing.assert_array_equal(with_numba.per_run, with_numpy.per_run)
        new = global_registry().events[before:]
        assert any(
            e["kind"] == "backend-fallback" and e["requested"] == "numba"
            for e in new
        )

    def test_throughput_counters_published(self):
        before = global_registry().get_counter("queueing.events")
        run_queueing_experiment(
            FullyRandomChoices(32, 2), 0.7, runs=2, sim_time=20.0,
            burn_in=2.0, seed=14, backend="numpy",
        )
        assert global_registry().get_counter("queueing.events") > before


class TestSpecPropagation:
    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="needs numba to be absent")
    def test_table8_spec_backend_reaches_kernel(self):
        """table8 with spec.backend='numba' (numba absent) must complete
        and log the fallback, proving the spec value reaches the kernel."""
        from repro.experiments.config import ExperimentSpec
        from repro.experiments.tables import table8_queueing

        before = len(global_registry().events)
        table = table8_queueing(
            ExperimentSpec(
                n=32, d=2, seed=5, sim_time=20.0, burn_in=4.0,
                backend="numba",
            ),
            lambdas=(0.8,),
            d_values=(2,),
        )
        assert len(table.rows) == 1
        new = global_registry().events[before:]
        assert any(e["kind"] == "backend-fallback" for e in new)
