"""Tests for the multi-run queueing experiment protocol."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fluid import equilibrium_mean_sojourn_time
from repro.hashing import FullyRandomChoices
from repro.queueing import run_queueing_experiment


class TestRunQueueingExperiment:
    def test_aggregates_runs(self):
        exp = run_queueing_experiment(
            FullyRandomChoices(128, 2), 0.7,
            runs=4, sim_time=80.0, burn_in=20.0, seed=1,
        )
        assert exp.runs == 4
        assert len(exp.per_run) == 4
        assert exp.mean_sojourn_time == pytest.approx(
            float(exp.per_run.mean())
        )
        assert exp.std_between_runs > 0

    def test_ci_brackets_mean(self):
        exp = run_queueing_experiment(
            FullyRandomChoices(128, 2), 0.7,
            runs=4, sim_time=80.0, burn_in=20.0, seed=2,
        )
        low, high = exp.confidence_interval()
        assert low < exp.mean_sojourn_time < high

    def test_mean_near_equilibrium(self):
        exp = run_queueing_experiment(
            FullyRandomChoices(256, 3), 0.9,
            runs=3, sim_time=200.0, burn_in=40.0, seed=3,
        )
        assert exp.mean_sojourn_time == pytest.approx(
            equilibrium_mean_sojourn_time(0.9, 3), rel=0.08
        )

    def test_reproducible(self):
        kwargs = dict(runs=3, sim_time=50.0, burn_in=10.0, seed=4)
        a = run_queueing_experiment(FullyRandomChoices(64, 2), 0.6, **kwargs)
        b = run_queueing_experiment(FullyRandomChoices(64, 2), 0.6, **kwargs)
        assert (a.per_run == b.per_run).all()

    def test_parallel_matches_serial(self):
        kwargs = dict(runs=4, sim_time=40.0, burn_in=10.0, seed=5)
        serial = run_queueing_experiment(
            FullyRandomChoices(64, 2), 0.6, workers=1, **kwargs
        )
        parallel = run_queueing_experiment(
            FullyRandomChoices(64, 2), 0.6, workers=2, **kwargs
        )
        assert (serial.per_run == parallel.per_run).all()

    def test_single_run_zero_std(self):
        exp = run_queueing_experiment(
            FullyRandomChoices(64, 2), 0.5,
            runs=1, sim_time=30.0, burn_in=5.0, seed=6,
        )
        assert exp.std_between_runs == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_queueing_experiment(FullyRandomChoices(64, 2), 0.5, runs=0)
