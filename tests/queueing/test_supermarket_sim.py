"""Tests for the event-driven supermarket simulator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, StabilityError
from repro.fluid import equilibrium_mean_sojourn_time
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.queueing import simulate_supermarket


class TestBasics:
    def test_returns_sane_result(self):
        res = simulate_supermarket(
            FullyRandomChoices(64, 2), 0.5, 100.0, burn_in=20.0, seed=1
        )
        assert res.completed_jobs > 500
        assert res.mean_sojourn_time > 1.0  # at least one service time
        assert 0.0 < res.mean_queue_length < 5.0
        assert res.sim_time == 100.0

    def test_reproducible(self):
        a = simulate_supermarket(FullyRandomChoices(32, 2), 0.6, 50.0, seed=42)
        b = simulate_supermarket(FullyRandomChoices(32, 2), 0.6, 50.0, seed=42)
        assert a.mean_sojourn_time == b.mean_sojourn_time
        assert a.completed_jobs == b.completed_jobs

    def test_validation(self):
        scheme = FullyRandomChoices(16, 2)
        with pytest.raises(ConfigurationError):
            simulate_supermarket(scheme, 1.2, 10.0)
        with pytest.raises(ConfigurationError):
            simulate_supermarket(scheme, 0.5, -1.0)
        with pytest.raises(ConfigurationError):
            simulate_supermarket(scheme, 0.5, 10.0, burn_in=20.0)
        with pytest.raises(ConfigurationError):
            simulate_supermarket(scheme, 0.5, 10.0, backend="fortran")

    def test_backend_kwarg_accepted(self):
        res = simulate_supermarket(
            FullyRandomChoices(16, 2), 0.5, 20.0, seed=4, backend="numpy"
        )
        assert res.completed_jobs > 0

    def test_stability_guard_trips_on_tiny_budget(self):
        with pytest.raises(StabilityError):
            simulate_supermarket(
                FullyRandomChoices(64, 2), 0.9, 200.0, seed=2,
                max_total_jobs=3,
            )


class TestAgainstTheory:
    def test_d1_matches_mm1(self):
        """One choice = n independent M/M/1 queues: mean sojourn 1/(1−λ)."""
        res = simulate_supermarket(
            FullyRandomChoices(256, 1), 0.5, 600.0, burn_in=100.0, seed=3
        )
        assert res.mean_sojourn_time == pytest.approx(2.0, rel=0.08)

    def test_matches_fluid_equilibrium_d2(self):
        res = simulate_supermarket(
            FullyRandomChoices(512, 2), 0.7, 400.0, burn_in=100.0, seed=4
        )
        expected = equilibrium_mean_sojourn_time(0.7, 2)
        assert res.mean_sojourn_time == pytest.approx(expected, rel=0.05)

    def test_double_hashing_matches_fluid_equilibrium(self):
        res = simulate_supermarket(
            DoubleHashingChoices(512, 3), 0.9, 400.0, burn_in=100.0, seed=5
        )
        expected = equilibrium_mean_sojourn_time(0.9, 3)
        assert res.mean_sojourn_time == pytest.approx(expected, rel=0.06)

    def test_double_vs_random_close(self):
        """The paper's Table 8 claim at reduced scale: the two schemes'
        sojourn times differ by far less than their distance to M/M/1."""
        kwargs = dict(lam=0.9, sim_time=300.0, burn_in=60.0)
        a = simulate_supermarket(
            FullyRandomChoices(256, 3), seed=6, **kwargs
        ).mean_sojourn_time
        b = simulate_supermarket(
            DoubleHashingChoices(256, 3), seed=7, **kwargs
        ).mean_sojourn_time
        mm1 = 1.0 / (1.0 - 0.9)
        assert abs(a - b) < 0.15
        assert abs(a - b) < 0.05 * (mm1 - max(a, b))

    def test_more_choices_shorter_sojourn(self):
        results = [
            simulate_supermarket(
                FullyRandomChoices(256, d), 0.9, 200.0, burn_in=50.0,
                seed=10 + d,
            ).mean_sojourn_time
            for d in (1, 2, 4)
        ]
        assert results[0] > results[1] > results[2]

    def test_littles_law_cross_check(self):
        """Mean queue length ~ λ · mean sojourn (Little's law)."""
        res = simulate_supermarket(
            FullyRandomChoices(256, 2), 0.8, 400.0, burn_in=100.0, seed=8
        )
        assert res.mean_queue_length == pytest.approx(
            0.8 * res.mean_sojourn_time, rel=0.06
        )
