"""Tests for the queueing support structures (IndexedSet, accumulators)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.events import IndexedSet
from repro.queueing.measures import SojournAccumulator


class TestIndexedSet:
    def test_add_contains_len(self):
        s = IndexedSet(10)
        s.add(3)
        s.add(7)
        assert len(s) == 2
        assert 3 in s and 7 in s and 5 not in s

    def test_add_idempotent(self):
        s = IndexedSet(10)
        s.add(4)
        s.add(4)
        assert len(s) == 1

    def test_remove(self):
        s = IndexedSet(10)
        for x in (1, 2, 3):
            s.add(x)
        s.remove(2)
        assert len(s) == 2
        assert 2 not in s and 1 in s and 3 in s

    def test_remove_absent_raises(self):
        s = IndexedSet(10)
        with pytest.raises(KeyError):
            s.remove(5)

    def test_swap_remove_keeps_members(self):
        s = IndexedSet(10)
        for x in range(8):
            s.add(x)
        s.remove(0)  # forces a swap with the last element
        assert sorted(s.to_array().tolist()) == list(range(1, 8))

    def test_sample_uniform(self, rng):
        s = IndexedSet(8)
        for x in (0, 3, 6):
            s.add(x)
        counts = {0: 0, 3: 0, 6: 0}
        for _ in range(6000):
            counts[s.sample(rng)] += 1
        for c in counts.values():
            assert 1700 < c < 2300

    def test_sample_empty_raises(self, rng):
        with pytest.raises(IndexError):
            IndexedSet(4).sample(rng)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            IndexedSet(-1)

    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=19)),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_matches_python_set(self, ops):
        s = IndexedSet(20)
        model: set[int] = set()
        for is_add, x in ops:
            if is_add:
                s.add(x)
                model.add(x)
            elif x in model:
                s.remove(x)
                model.remove(x)
        assert len(s) == len(model)
        assert set(s.to_array().tolist()) == model


class TestSojournAccumulator:
    def test_mean_of_known_values(self):
        acc = SojournAccumulator()
        acc.observe_sojourn(0.0, 2.0)
        acc.observe_sojourn(1.0, 2.0)
        acc.observe_sojourn(2.0, 5.0)
        assert acc.mean == pytest.approx(2.0)
        assert acc.count == 3

    def test_burn_in_excludes_early_arrivals(self):
        acc = SojournAccumulator(burn_in=10.0)
        acc.observe_sojourn(5.0, 50.0)  # arrived during burn-in: ignored
        acc.observe_sojourn(11.0, 12.0)
        assert acc.count == 1
        assert acc.mean == pytest.approx(1.0)

    def test_negative_sojourn_rejected(self):
        with pytest.raises(ValueError):
            SojournAccumulator().observe_sojourn(5.0, 4.0)

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            _ = SojournAccumulator().mean

    def test_variance_matches_numpy(self):
        values = [1.0, 4.0, 4.0, 9.0, 2.5]
        acc = SojournAccumulator()
        for v in values:
            acc.observe_sojourn(0.0, v)
        assert acc.variance == pytest.approx(float(np.var(values, ddof=1)))

    def test_confidence_interval_brackets_mean(self):
        acc = SojournAccumulator()
        gen = np.random.default_rng(1)
        for v in gen.exponential(2.0, 500):
            acc.observe_sojourn(0.0, float(v))
        low, high = acc.confidence_interval()
        assert low < acc.mean < high
        assert low < 2.0 < high  # true mean within the CI (w.h.p.)

    def test_population_time_average(self):
        acc = SojournAccumulator(burn_in=0.0)
        acc.observe_population(1.0, 2)   # 2 jobs on [1, 3)
        acc.observe_population(3.0, 4)   # 4 jobs on [3, 5)
        # [0,1): 0 jobs, then as above; query at t=5.
        avg = acc.mean_total_jobs(5.0)
        assert avg == pytest.approx((0 * 1 + 2 * 2 + 4 * 2) / 5.0)

    def test_population_burn_in_window(self):
        acc = SojournAccumulator(burn_in=2.0)
        acc.observe_population(1.0, 10)  # partially inside burn-in
        acc.observe_population(3.0, 0)   # 10 jobs counted only on [2, 3)
        avg = acc.mean_total_jobs(4.0)
        assert avg == pytest.approx(10 * 1.0 / 2.0)

    def test_population_final_time_validation(self):
        acc = SojournAccumulator(burn_in=5.0)
        with pytest.raises(ValueError):
            acc.mean_total_jobs(4.0)
