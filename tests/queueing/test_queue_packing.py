"""Queue-length packing guard and the blockrng deprecation shim.

Regression for the latent overflow: the supermarket kernels pack
``queue_len << TIE_BITS | tie_key`` into int64, so a queue length that
needs more than 43 bits corrupts the arrival argmin.  The packing module
now rejects such configurations up front; the boundary sits exactly at
``max_total_jobs = 2**43``.
"""

import warnings

import pytest

from repro.errors import ConfigurationError
from repro.hashing import DoubleHashingChoices
from repro.kernels import run_supermarket_kernel
from repro.kernels.blockrng import CHOICE_BLOCK, EVENT_BLOCK, TIE_BITS
from repro.kernels.supermarket import check_queue_packing


class TestCheckQueuePacking:
    def test_boundary(self):
        # queue_len can reach max_total_jobs, needing
        # field_width(max_total_jobs + 1) bits next to the 20 tie bits
        # in 63 value bits: 2**43 - 1 is the last admissible value.
        check_queue_packing((1 << 43) - 1)
        with pytest.raises(ConfigurationError, match="tie"):
            check_queue_packing(1 << 43)

    def test_kernel_entry_point_rejects_overflow(self):
        with pytest.raises(ConfigurationError):
            run_supermarket_kernel(
                DoubleHashingChoices(8, 2),
                0.5,
                1.0,
                burn_in=0.0,
                seed=1,
                max_total_jobs=1 << 43,
            )

    def test_paper_scale_defaults_pass(self):
        # The default cap (50 n) is nowhere near the boundary.
        check_queue_packing(50 * (1 << 20))


class TestDeprecationShim:
    @pytest.mark.parametrize(
        "name, value",
        [
            ("EVENT_BLOCK", EVENT_BLOCK),
            ("CHOICE_BLOCK", CHOICE_BLOCK),
            ("TIE_BITS", TIE_BITS),
        ],
    )
    def test_old_constants_importable_with_warning(self, name, value):
        import repro.kernels.supermarket as sm

        with pytest.warns(DeprecationWarning, match="blockrng"):
            assert getattr(sm, name) == value

    def test_unknown_attribute_still_raises(self):
        import repro.kernels.supermarket as sm

        with pytest.raises(AttributeError):
            sm.NO_SUCH_CONSTANT

    def test_canonical_home_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro.kernels import blockrng

            assert blockrng.TIE_BITS == 20
