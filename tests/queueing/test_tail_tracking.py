"""Tests for queue-length tail tracking and left tie-breaking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fluid import equilibrium_tail
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.queueing import simulate_supermarket


class TestTailTracking:
    def test_disabled_by_default(self):
        res = simulate_supermarket(
            FullyRandomChoices(64, 2), 0.5, 50.0, seed=1
        )
        assert res.tail_fractions is None

    def test_tails_structure(self):
        res = simulate_supermarket(
            FullyRandomChoices(128, 2), 0.7, 150.0, burn_in=30.0, seed=2,
            track_tails=True,
        )
        tails = res.tail_fractions
        assert tails is not None
        assert tails[0] == pytest.approx(1.0)
        assert (np.diff(tails) <= 1e-9).all()
        assert (tails >= 0).all()

    def test_tails_match_fluid_equilibrium(self):
        """Time-averaged >= i fractions converge to π_i = λ^((d^i−1)/(d−1))."""
        res = simulate_supermarket(
            DoubleHashingChoices(512, 3), 0.9, 400.0, burn_in=100.0, seed=3,
            track_tails=True,
        )
        eq = equilibrium_tail(0.9, 3, 6)
        for i in range(1, 4):
            assert res.tail_fractions[i] == pytest.approx(eq[i], abs=0.03)

    def test_tail1_is_utilization(self):
        """Fraction of busy queues ~ λ (work conservation)."""
        res = simulate_supermarket(
            FullyRandomChoices(256, 2), 0.6, 300.0, burn_in=60.0, seed=4,
            track_tails=True,
        )
        assert res.tail_fractions[1] == pytest.approx(0.6, abs=0.03)

    def test_mean_queue_consistency(self):
        """Sum of tail fractions (i >= 1) equals the mean queue length."""
        res = simulate_supermarket(
            FullyRandomChoices(256, 2), 0.7, 300.0, burn_in=60.0, seed=5,
            track_tails=True,
        )
        assert res.tail_fractions[1:].sum() == pytest.approx(
            res.mean_queue_length, rel=0.02
        )


class TestLeftTieBreak:
    def test_runs_and_matches_random_tie_break_in_law(self):
        """With unpartitioned uniform choices, left vs random tie-breaking
        barely shifts the mean sojourn (ties are rare at moderate load)."""
        kwargs = dict(lam=0.8, sim_time=200.0, burn_in=40.0)
        a = simulate_supermarket(
            FullyRandomChoices(256, 2), seed=6, tie_break="random", **kwargs
        ).mean_sojourn_time
        b = simulate_supermarket(
            FullyRandomChoices(256, 2), seed=7, tie_break="left", **kwargs
        ).mean_sojourn_time
        assert a == pytest.approx(b, rel=0.15)

    def test_invalid_tie_break(self):
        with pytest.raises(ConfigurationError):
            simulate_supermarket(
                FullyRandomChoices(64, 2), 0.5, 10.0, tie_break="middle"
            )
