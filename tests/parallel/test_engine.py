"""Tests for the resilient execution engine: retries, checkpoints, metrics."""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core import run_experiment
from repro.core.runner import _ChunkTask, _run_chunk
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.config import ExperimentSpec
from repro.hashing import DoubleHashingChoices
from repro.metrics import MetricsRegistry
from repro.parallel import EngineConfig, ExecutionEngine


def _echo_chunk(task, chunk_trials, seed_seq):
    """Top-level worker: (task, chunk size, first random draw)."""
    rng = np.random.default_rng(seed_seq)
    return (task, chunk_trials, int(rng.integers(0, 2**31)))


def _histogram_chunk(task, chunk_trials, seed_seq):
    """Worker returning a numpy array (checkpoint codec path)."""
    rng = np.random.default_rng(seed_seq)
    return rng.integers(0, 100, size=(chunk_trials, 4))


def _flaky_chunk(task, chunk_trials, seed_seq):
    """Fails the first time each chunk runs (marker files track calls),
    succeeds on retry with the same seed stream."""
    marker = os.path.join(task["dir"], "-".join(map(str, seed_seq.spawn_key)))
    if not os.path.exists(marker):
        open(marker, "w").close()
        raise RuntimeError("injected first-call failure")
    return _echo_chunk(task["inner"], chunk_trials, seed_seq)


def _always_fails(task, chunk_trials, seed_seq):
    raise RuntimeError("permanent failure")


def _fails_from_index(task, chunk_trials, seed_seq):
    """Succeeds for chunks whose marker says "done already", fails for the
    rest — used to interrupt a checkpointed sweep partway."""
    key = "-".join(map(str, seed_seq.spawn_key))
    if key in task["ok"]:
        return _echo_chunk("x", chunk_trials, seed_seq)
    raise RuntimeError(f"injected failure for {key}")


def _sleepy_chunk(task, chunk_trials, seed_seq):
    """Sleeps well past the timeout on its first execution only."""
    flag = task["flag"]
    if not os.path.exists(flag):
        open(flag, "w").close()
        time.sleep(10)
    return _echo_chunk("x", chunk_trials, seed_seq)


def _flaky_experiment_chunk(task, chunk_trials, seed_seq):
    """run_experiment's real chunk body wrapped with one injected failure."""
    inner, fail_dir = task
    marker = os.path.join(fail_dir, "-".join(map(str, seed_seq.spawn_key)))
    if not os.path.exists(marker):
        open(marker, "w").close()
        raise RuntimeError("injected failure")
    return _run_chunk(inner, chunk_trials, seed_seq)


class TestEdgeCases:
    def test_zero_trials_returns_empty(self):
        engine = ExecutionEngine(EngineConfig(workers=1, chunks=4))
        assert engine.map_chunks(_echo_chunk, None, 0, seed=1) == []

    def test_more_chunks_than_trials(self):
        engine = ExecutionEngine(EngineConfig(workers=1, chunks=10))
        results = engine.map_chunks(_echo_chunk, None, 3, seed=1)
        assert len(results) == 3  # empty chunks are dropped
        assert sum(r[1] for r in results) == 3

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(max_retries=-1)
        with pytest.raises(ConfigurationError):
            EngineConfig(chunk_timeout=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(retry_backoff=-0.1)
        with pytest.raises(ConfigurationError):
            EngineConfig(chunks=0)

    def test_matches_plain_pool(self):
        from repro.parallel import map_trial_chunks

        a = map_trial_chunks(_echo_chunk, "t", 10, seed=3, workers=1, chunks=4)
        engine = ExecutionEngine(EngineConfig(workers=1, chunks=4))
        assert engine.map_chunks(_echo_chunk, "t", 10, seed=3) == a


class TestRetries:
    def test_serial_retry_bit_identical(self, tmp_path):
        clean = ExecutionEngine(EngineConfig(workers=1, chunks=4)).map_chunks(
            _echo_chunk, "inner", 10, seed=7
        )
        engine = ExecutionEngine(
            EngineConfig(workers=1, chunks=4, retry_backoff=0.0)
        )
        flaky = engine.map_chunks(
            _flaky_chunk, {"dir": str(tmp_path), "inner": "inner"}, 10, seed=7
        )
        assert flaky == clean
        assert engine.metrics.get_counter("engine.retries") == 4
        assert all(c["attempts"] == 2 for c in engine.metrics.chunks)

    def test_pooled_retry_bit_identical(self, tmp_path):
        clean = ExecutionEngine(EngineConfig(workers=1, chunks=4)).map_chunks(
            _echo_chunk, "inner", 8, seed=11
        )
        engine = ExecutionEngine(
            EngineConfig(workers=2, chunks=4, retry_backoff=0.0)
        )
        flaky = engine.map_chunks(
            _flaky_chunk, {"dir": str(tmp_path), "inner": "inner"}, 8, seed=11
        )
        assert flaky == clean
        assert engine.metrics.get_counter("engine.retries") == 4

    def test_retry_budget_exhausted_raises(self):
        engine = ExecutionEngine(
            EngineConfig(workers=1, chunks=2, max_retries=1, retry_backoff=0.0)
        )
        with pytest.raises(SimulationError, match="after 2 attempt"):
            engine.map_chunks(_always_fails, None, 4, seed=1)
        assert engine.metrics.get_counter("engine.retries") == 1
        assert len(engine.metrics.events) >= 2

    def test_experiment_with_injected_failure_bit_identical(self, tmp_path):
        """Acceptance: a chunk failing mid-run retries on its original seed
        child and the final distribution is bit-identical to a clean run."""
        spec = ExperimentSpec(n=256, d=3, trials=20, seed=5, chunks=4)
        clean = run_experiment(DoubleHashingChoices(256, 3), spec)

        inner = _ChunkTask(
            scheme=DoubleHashingChoices(256, 3),
            n_balls=256,
            tie_break="random",
            block=spec.block,
        )
        engine = ExecutionEngine(
            EngineConfig(workers=1, chunks=4, retry_backoff=0.0)
        )
        histograms = engine.map_chunks(
            _flaky_experiment_chunk, (inner, str(tmp_path)), 20, seed=5
        )
        from repro.core.stats import StreamingLoadAggregator

        agg = StreamingLoadAggregator(n_bins=256, n_balls=256)
        for hist in histograms:
            agg.update_histograms(hist)
        assert engine.metrics.get_counter("engine.retries") == 4
        assert np.array_equal(
            agg.distribution().counts, clean.distribution.counts
        )


class TestTimeout:
    def test_timeout_degrades_to_serial_and_matches(self, tmp_path):
        clean = ExecutionEngine(EngineConfig(workers=1, chunks=4)).map_chunks(
            _echo_chunk, "x", 8, seed=13
        )
        engine = ExecutionEngine(
            EngineConfig(
                workers=2, chunks=4, chunk_timeout=0.5, retry_backoff=0.0
            )
        )
        got = engine.map_chunks(
            _sleepy_chunk, {"flag": str(tmp_path / "flag")}, 8, seed=13
        )
        assert got == clean
        assert engine.metrics.get_counter("engine.timeouts") == 1
        assert engine.metrics.get_counter("engine.serial_fallbacks") == 1
        assert any(
            e["kind"] == "degraded-to-serial" for e in engine.metrics.events
        )


class TestCheckpoint:
    def test_full_resume_skips_all_chunks(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        cfg = EngineConfig(workers=1, chunks=4, checkpoint_path=path)
        first = ExecutionEngine(cfg).map_chunks(_echo_chunk, "t", 10, seed=2)
        engine = ExecutionEngine(cfg)
        second = engine.map_chunks(_echo_chunk, "t", 10, seed=2)
        assert second == first
        assert engine.metrics.get_counter("engine.chunks_resumed") == 4
        assert all(c["source"] == "checkpoint" for c in engine.metrics.chunks)

    def test_partial_resume_after_interrupt(self, tmp_path):
        """Interrupt a sweep after two chunks; the re-run must skip them
        and produce the clean-run result."""
        path = tmp_path / "ck.jsonl"
        clean = ExecutionEngine(EngineConfig(workers=1, chunks=4)).map_chunks(
            _echo_chunk, "x", 12, seed=4
        )
        # Chunks 0 and 1 succeed, the rest fail => run dies with a partial
        # checkpoint on disk.
        from repro.rng import spawn_seeds

        keys = [
            "-".join(map(str, s.spawn_key)) for s in spawn_seeds(4, 4)
        ]
        broken = ExecutionEngine(
            EngineConfig(
                workers=1, chunks=4, max_retries=0, retry_backoff=0.0,
                checkpoint_path=path,
            )
        )
        with pytest.raises(SimulationError):
            broken.map_chunks(
                _fails_from_index, {"ok": keys[:2]}, 12, seed=4
            )
        assert path.exists()
        completed = [json.loads(line) for line in path.read_text().splitlines()]
        assert [rec["index"] for rec in completed[1:]] == [0, 1]

        engine = ExecutionEngine(
            EngineConfig(workers=1, chunks=4, checkpoint_path=path)
        )
        resumed = engine.map_chunks(_echo_chunk, "x", 12, seed=4)
        assert resumed == clean
        assert engine.metrics.get_counter("engine.chunks_resumed") == 2

    def test_numpy_results_roundtrip_exactly(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        cfg = EngineConfig(workers=1, chunks=3, checkpoint_path=path)
        first = ExecutionEngine(cfg).map_chunks(_histogram_chunk, None, 9, seed=6)
        resumed = ExecutionEngine(cfg).map_chunks(_histogram_chunk, None, 9, seed=6)
        for a, b in zip(first, resumed):
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)

    def test_mismatched_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        cfg = EngineConfig(workers=1, chunks=4, checkpoint_path=path)
        ExecutionEngine(cfg).map_chunks(_echo_chunk, "t", 10, seed=2)
        other = ExecutionEngine(cfg)
        with pytest.raises(ConfigurationError, match="different run"):
            other.map_chunks(_echo_chunk, "t", 10, seed=3)

    def test_torn_tail_line_tolerated(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        cfg = EngineConfig(workers=1, chunks=4, checkpoint_path=path)
        ExecutionEngine(cfg).map_chunks(_echo_chunk, "t", 10, seed=2)
        with path.open("a") as fh:
            fh.write('{"index": 99, "trunc')  # simulated crash mid-append
        engine = ExecutionEngine(cfg)
        result = engine.map_chunks(_echo_chunk, "t", 10, seed=2)
        assert len(result) == 4
        assert engine.metrics.get_counter("engine.chunks_resumed") == 4


class TestObservability:
    def test_progress_callback_sees_every_chunk(self):
        seen = []
        engine = ExecutionEngine(
            EngineConfig(workers=1, chunks=4), progress=seen.append
        )
        engine.map_chunks(_echo_chunk, "t", 10, seed=1)
        assert [p.done for p in seen] == [1, 2, 3, 4]
        assert all(p.total == 4 for p in seen)
        assert sum(p.trials for p in seen) == 10

    def test_shared_registry(self):
        registry = MetricsRegistry()
        engine = ExecutionEngine(EngineConfig(workers=1, chunks=2), metrics=registry)
        engine.map_chunks(_echo_chunk, "t", 4, seed=1)
        snap = registry.snapshot()
        assert snap["counters"]["engine.chunks_total"] == 2
        assert snap["timers"]["engine.chunk_seconds"]["count"] == 2
        assert len(snap["chunks"]) == 2
