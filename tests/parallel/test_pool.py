"""Tests for the trial-chunk process pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import map_trial_chunks, partition_trials
from repro.parallel.pool import default_workers


def _echo_chunk(task, chunk_trials, seed_seq):
    """Top-level worker: returns (task, chunk size, first random draw)."""
    rng = np.random.default_rng(seed_seq)
    return (task, chunk_trials, int(rng.integers(0, 2**31)))


class TestPartition:
    def test_even_split(self):
        assert partition_trials(12, 4) == [3, 3, 3, 3]

    def test_uneven_split(self):
        assert partition_trials(10, 4) == [3, 3, 2, 2]

    def test_more_chunks_than_trials(self):
        parts = partition_trials(3, 10)
        assert sum(parts) == 3
        assert all(p > 0 for p in parts)

    def test_zero_trials(self):
        assert sum(partition_trials(0, 4)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_trials(-1, 2)
        with pytest.raises(ValueError):
            partition_trials(5, 0)

    def test_partition_conserves_total(self):
        for trials in (1, 7, 100, 1001):
            for chunks in (1, 3, 8):
                assert sum(partition_trials(trials, chunks)) == trials


class TestMapTrialChunks:
    def test_serial_execution(self):
        results = map_trial_chunks(
            _echo_chunk, "task", 10, seed=1, workers=1, chunks=4
        )
        assert len(results) == 4
        assert sum(r[1] for r in results) == 10

    def test_deterministic_across_runs(self):
        a = map_trial_chunks(_echo_chunk, None, 8, seed=5, workers=1, chunks=4)
        b = map_trial_chunks(_echo_chunk, None, 8, seed=5, workers=1, chunks=4)
        assert a == b

    def test_chunks_get_distinct_streams(self):
        results = map_trial_chunks(
            _echo_chunk, None, 8, seed=5, workers=1, chunks=4
        )
        draws = [r[2] for r in results]
        assert len(set(draws)) == 4

    def test_parallel_matches_serial(self):
        serial = map_trial_chunks(_echo_chunk, "x", 8, seed=9, workers=1, chunks=4)
        parallel = map_trial_chunks(_echo_chunk, "x", 8, seed=9, workers=2, chunks=4)
        assert serial == parallel

    def test_task_passed_through(self):
        results = map_trial_chunks(
            _echo_chunk, {"n": 3}, 4, seed=1, workers=1, chunks=2
        )
        assert all(r[0] == {"n": 3} for r in results)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestDefaultWorkers:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_env_override_beats_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "32")
        assert default_workers() == 32

    def test_env_unset_caps_at_eight(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert 1 <= default_workers() <= 8

    def test_env_blank_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "  ")
        assert 1 <= default_workers() <= 8

    @pytest.mark.parametrize("bad", ["zero", "0", "-2", "1.5"])
    def test_env_invalid_rejected(self, monkeypatch, bad):
        from repro.errors import ConfigurationError

        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ConfigurationError):
            default_workers()
