"""Tests for the metrics/tracing layer."""

from __future__ import annotations

import json
import time

from repro.metrics import MetricsRegistry, TimerStats


class TestCounters:
    def test_increment_and_read(self):
        m = MetricsRegistry()
        m.increment("a")
        m.increment("a", 2)
        assert m.get_counter("a") == 3
        assert m.get_counter("missing") == 0

    def test_zero_increment_registers(self):
        m = MetricsRegistry()
        m.increment("a", 0)
        assert "a" in m.snapshot()["counters"]


class TestTimers:
    def test_observe_aggregates(self):
        m = MetricsRegistry()
        for s in (0.1, 0.3, 0.2):
            m.observe("t", s)
        stats = m.snapshot()["timers"]["t"]
        assert stats["count"] == 3
        assert stats["total"] == 0.6000000000000001
        assert stats["min"] == 0.1
        assert stats["max"] == 0.3
        assert abs(stats["mean"] - 0.2) < 1e-12

    def test_context_manager_records_elapsed(self):
        m = MetricsRegistry()
        with m.timer("work"):
            time.sleep(0.01)
        stats = m.snapshot()["timers"]["work"]
        assert stats["count"] == 1
        assert stats["total"] >= 0.01

    def test_timer_records_on_exception(self):
        m = MetricsRegistry()
        try:
            with m.timer("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert m.snapshot()["timers"]["boom"]["count"] == 1

    def test_empty_timer_stats(self):
        assert TimerStats().mean == 0.0
        assert TimerStats().to_dict()["min"] == 0.0


class TestEventsAndChunks:
    def test_event_fields_preserved(self):
        m = MetricsRegistry()
        m.event("retry", chunk=3, error="boom")
        (event,) = m.events
        assert event["kind"] == "retry"
        assert event["chunk"] == 3
        assert "time" in event

    def test_chunk_records(self):
        m = MetricsRegistry()
        m.record_chunk(index=0, trials=5, attempts=1, seconds=0.5, source="pool")
        (chunk,) = m.chunks
        assert chunk == {
            "index": 0, "trials": 5, "attempts": 1,
            "seconds": 0.5, "source": "pool",
        }

    def test_reads_return_copies(self):
        m = MetricsRegistry()
        m.event("x")
        m.events[0]["kind"] = "mutated"
        assert m.events[0]["kind"] == "x"


class TestExport:
    def test_save_round_trips(self, tmp_path):
        m = MetricsRegistry()
        m.increment("runs")
        m.observe("t", 1.5)
        m.event("done")
        path = tmp_path / "metrics.json"
        m.save(path)
        data = json.loads(path.read_text())
        assert data["counters"]["runs"] == 1
        assert data["timers"]["t"]["count"] == 1
        assert data["events"][0]["kind"] == "done"
        assert data["chunks"] == []
