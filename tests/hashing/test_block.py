"""Tests for the Kenthapadi–Panigrahy block-choice scheme."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import simulate_batch
from repro.errors import ConfigurationError
from repro.hashing import BlockChoices, FullyRandomChoices, make_scheme


class TestStructure:
    def test_batch_shape(self, rng):
        out = BlockChoices(64, 6).batch(100, rng)
        assert out.shape == (100, 6)
        assert out.min() >= 0 and out.max() < 64

    def test_two_contiguous_runs(self, rng):
        out = BlockChoices(64, 6).batch(500, rng)
        left, right = out[:, :3], out[:, 3:]
        assert ((left[:, 1:] - left[:, :-1]) % 64 == 1).all()
        assert ((right[:, 1:] - right[:, :-1]) % 64 == 1).all()

    def test_blocks_wrap_modulo_n(self, rng):
        # Tiny table forces wrap-around; values must stay in range.
        out = BlockChoices(5, 4).batch(300, rng)
        assert out.max() < 5

    def test_only_two_random_starts(self, rng):
        """Within a row, the whole vector is determined by two starts."""
        scheme = BlockChoices(64, 8)
        out = scheme.batch(200, rng)
        for row in out:
            assert row[0] == (row[3] - 3) % 64
            assert row[4] == (row[7] - 3) % 64

    def test_not_marked_distinct(self):
        assert not BlockChoices(64, 4).distinct

    def test_registry_name(self):
        assert isinstance(make_scheme("blocks", 64, 4), BlockChoices)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BlockChoices(64, 3)  # odd d
        with pytest.raises(ConfigurationError):
            BlockChoices(2, 6)  # block bigger than table

    def test_marginal_uniform(self, rng):
        scheme = BlockChoices(16, 4)
        out = scheme.batch(20000, rng)
        counts = np.bincount(out.ravel(), minlength=16)
        expected = 20000 * 4 / 16
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 55


class TestBehaviour:
    def test_kp_close_to_but_distinct_from_fully_random(self):
        """The contrast that makes double hashing special: KP blocks keep
        the max load small, but their *load distribution* visibly deviates
        from d independent choices (adjacent in-block bins are correlated) —
        whereas double hashing matches exactly.  Measured gap at load 0 is
        ~0.009 for d = 4."""
        n, trials = 2048, 50
        kp = simulate_batch(BlockChoices(n, 4), n, trials, seed=1).distribution()
        rnd = simulate_batch(
            FullyRandomChoices(n, 4), n, trials, seed=2
        ).distribution()
        gap = abs(kp.fraction_at(0) - rnd.fraction_at(0))
        assert 0.004 < gap < 0.02  # real, but small
        # Between one-choice (~0.368 empty) and d-choice (~0.141 empty).
        assert 0.141 < kp.fraction_at(0) < 0.2

    def test_kp_max_load_small(self):
        """KP's theorem: O(log log n) max load survives the block structure."""
        n = 4096
        batch = simulate_batch(BlockChoices(n, 4), n, 20, seed=3)
        assert batch.loads.max() <= 5
