"""Tests for graph-constrained choices (Kenthapadi–Panigrahy model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import simulate_batch
from repro.errors import ConfigurationError
from repro.hashing import FullyRandomChoices
from repro.hashing.graph_choices import GraphChoices


class TestStructure:
    def test_choices_are_graph_edges(self, rng):
        scheme = GraphChoices(64, 200, seed=1)
        edge_set = {tuple(e) for e in scheme.edges.tolist()}
        out = scheme.batch(500, rng)
        for row in out:
            assert tuple(row.tolist()) in edge_set

    def test_endpoints_distinct(self, rng):
        scheme = GraphChoices(32, 500, seed=2)
        assert (scheme.edges[:, 0] != scheme.edges[:, 1]).all()

    def test_d_is_two(self):
        assert GraphChoices(16, 20, seed=3).d == 2

    def test_mean_degree(self):
        scheme = GraphChoices(100, 300, seed=4)
        assert scheme.mean_degree == pytest.approx(6.0)

    def test_graph_fixed_across_batches(self, rng, rng2):
        scheme = GraphChoices(32, 50, seed=5)
        a = {tuple(r) for r in scheme.batch(400, rng).tolist()}
        b = {tuple(r) for r in scheme.batch(400, rng2).tolist()}
        edge_set = {tuple(e) for e in scheme.edges.tolist()}
        assert a <= edge_set and b <= edge_set

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GraphChoices(64, 0)
        with pytest.raises(ConfigurationError):
            GraphChoices(1, 10)


class TestAllocationBehaviour:
    def test_dense_graph_matches_free_two_choice(self):
        """With degree ~ n the constraint is immaterial: load fractions
        approach unconstrained two-choice (the [19] dense regime).  At
        mean degree 32 the residual gap converges to ~0.012 at load 1
        (measured at 1500 trials), so the tolerance reflects the scheme's
        true asymptote rather than small-sample noise."""
        n, trials = 1024, 40
        dense = GraphChoices(n, 16 * n, seed=6)
        constrained = simulate_batch(dense, n, trials, seed=7).distribution()
        free = simulate_batch(
            FullyRandomChoices(n, 2), n, trials, seed=8
        ).distribution()
        for load in range(3):
            assert constrained.fraction_at(load) == pytest.approx(
                free.fraction_at(load), abs=0.02
            )

    def test_sparse_graph_degrades(self):
        """With constant degree the max load grows beyond the free
        two-choice level — the [19] lower-bound phenomenon."""
        n, trials = 1024, 20
        sparse = GraphChoices(n, 2 * n, seed=9)  # mean degree 4
        constrained = simulate_batch(sparse, n, trials, seed=10)
        free = simulate_batch(FullyRandomChoices(n, 2), n, trials, seed=11)
        assert (
            constrained.loads.max(axis=1).mean()
            >= free.loads.max(axis=1).mean()
        )

    def test_still_beats_one_choice(self):
        """Even a sparse edge-constrained process balances far better than
        one choice."""
        from repro.core import simulate_one_choice

        n, trials = 1024, 20
        sparse = GraphChoices(n, 4 * n, seed=12)
        constrained = simulate_batch(sparse, n, trials, seed=13)
        one = simulate_one_choice(n, n, trials, seed=14)
        assert (
            constrained.loads.max(axis=1).mean()
            < one.loads.max(axis=1).mean()
        )
