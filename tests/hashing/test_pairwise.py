"""Tests for pairwise-uniformity verification (paper Section 1, final remark)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import (
    DoubleHashingChoices,
    FullyRandomChoices,
    empirical_pairwise_stats,
    is_pairwise_uniform,
)
from repro.hashing.base import ChoiceScheme


class _BrokenScheme(ChoiceScheme):
    """Deliberately non-uniform: always an adjacent pair starting at f.

    Marginals are uniform but pairs are perfectly correlated (stride fixed
    at 1), so the pairwise check must reject it.
    """

    def batch(self, trials, rng):
        f = rng.integers(0, self.n_bins, size=trials, dtype=np.int64)
        ks = np.arange(self.d, dtype=np.int64)
        return (f[:, None] + ks) % self.n_bins


class TestExactEnumeration:
    def test_double_hashing_pairs_exactly_uniform_prime_modulus(self):
        """Enumerate all (f, g) for prime n: every ordered distinct pair of
        bins appears equally often among (h_i, h_j), the defining property."""
        n, d = 7, 3
        counts = np.zeros((n, n), dtype=int)
        for f in range(n):
            for g in range(1, n):
                h = [(f + k * g) % n for k in range(d)]
                for i in range(d):
                    for j in range(d):
                        if i != j:
                            counts[h[i], h[j]] += 1
        off_diagonal = counts[~np.eye(n, dtype=bool)]
        assert np.all(off_diagonal == off_diagonal[0])
        assert np.all(np.diag(counts) == 0)

    def test_double_hashing_marginals_exactly_uniform(self):
        n, d = 8, 3  # power of two: strides are odd
        counts = np.zeros((d, n), dtype=int)
        for f in range(n):
            for g in range(1, n, 2):
                for k in range(d):
                    counts[k, (f + k * g) % n] += 1
        assert np.all(counts == counts[0, 0])


class TestEmpirical:
    def test_double_hashing_passes_prime_modulus(self, rng):
        scheme = DoubleHashingChoices(17, 3)
        assert is_pairwise_uniform(scheme, 60000, rng)

    def test_double_hashing_power_of_two_fails_strict_pairwise(self, rng):
        """With n = 2^k the difference of choices two apart is always even,
        so *strict* pairwise uniformity fails (paper footnote 5: composite
        moduli give uniformity over phi(n)-many admissible pairs instead)."""
        scheme = DoubleHashingChoices(16, 3)
        assert not is_pairwise_uniform(scheme, 60000, rng)

    def test_fully_random_without_replacement_passes(self, rng):
        scheme = FullyRandomChoices(17, 3)
        assert is_pairwise_uniform(scheme, 60000, rng)

    def test_broken_scheme_fails(self, rng):
        scheme = _BrokenScheme(17, 3)
        assert not is_pairwise_uniform(scheme, 60000, rng)

    def test_stats_shapes(self, rng):
        stats = empirical_pairwise_stats(DoubleHashingChoices(8, 3), 5000, rng)
        assert stats.marginal.shape == (3, 8)
        assert stats.pair_counts.shape == (8, 8)
        assert stats.samples == 5000

    def test_distinct_scheme_has_empty_diagonal(self, rng):
        stats = empirical_pairwise_stats(DoubleHashingChoices(8, 3), 3000, rng)
        assert np.all(np.diag(stats.pair_counts) == 0)

    def test_with_replacement_has_diagonal_mass(self, rng):
        stats = empirical_pairwise_stats(
            FullyRandomChoices(4, 3, replacement=True), 3000, rng
        )
        assert np.diag(stats.pair_counts).sum() > 0

    def test_marginal_error_decreases_with_samples(self, rng):
        scheme = DoubleHashingChoices(8, 2)
        small = empirical_pairwise_stats(scheme, 500, rng).max_marginal_error
        large = empirical_pairwise_stats(scheme, 50000, rng).max_marginal_error
        assert large < small
