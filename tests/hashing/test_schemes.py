"""Tests for the choice schemes: interface, geometry, distributions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SchemeError
from repro.hashing import (
    DoubleHashingChoices,
    FullyRandomChoices,
    PartitionedDoubleHashing,
    PartitionedFullyRandom,
    make_scheme,
)

ALL_SCHEMES = [
    lambda n, d: FullyRandomChoices(n, d),
    lambda n, d: FullyRandomChoices(n, d, replacement=True),
    lambda n, d: DoubleHashingChoices(n, d),
    lambda n, d: PartitionedFullyRandom(n, d),
    lambda n, d: PartitionedDoubleHashing(n, d),
]
SCHEME_IDS = ["random", "random-replace", "double", "dleft-random", "dleft-double"]


@pytest.mark.parametrize("factory", ALL_SCHEMES, ids=SCHEME_IDS)
class TestCommonInterface:
    def test_batch_shape_and_range(self, factory, rng):
        scheme = factory(64, 4)
        out = scheme.batch(100, rng)
        assert out.shape == (100, 4)
        assert out.dtype == np.int64
        assert out.min() >= 0 and out.max() < 64

    def test_single_shape(self, factory, rng):
        scheme = factory(64, 4)
        assert factory(64, 4).single(rng).shape == (4,)

    def test_marginals_cover_all_bins(self, factory, rng):
        scheme = factory(16, 4)
        out = scheme.batch(4000, rng)
        assert set(np.unique(out)) == set(range(16))

    def test_describe_is_string(self, factory, rng):
        assert isinstance(factory(64, 4).describe(), str)

    def test_batches_are_random(self, factory, rng):
        scheme = factory(256, 4)
        a = scheme.batch(50, rng)
        b = scheme.batch(50, rng)
        assert not np.array_equal(a, b)


class TestValidation:
    def test_rejects_zero_bins(self):
        with pytest.raises(ConfigurationError):
            FullyRandomChoices(0, 2)

    def test_rejects_zero_choices(self):
        with pytest.raises(ConfigurationError):
            FullyRandomChoices(8, 0)

    def test_rejects_d_above_n(self):
        with pytest.raises(ConfigurationError):
            DoubleHashingChoices(4, 5)

    def test_partitioned_needs_divisibility(self):
        with pytest.raises(SchemeError):
            PartitionedFullyRandom(10, 4)

    def test_make_scheme_registry(self):
        assert isinstance(make_scheme("random", 16, 2), FullyRandomChoices)
        assert isinstance(make_scheme("double", 16, 2), DoubleHashingChoices)
        assert isinstance(
            make_scheme("double-left", 16, 4), PartitionedDoubleHashing
        )

    def test_make_scheme_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            make_scheme("nope", 16, 2)


class TestDistinctness:
    @pytest.mark.parametrize("n", [16, 17, 64, 97])
    def test_double_hashing_rows_distinct(self, n, rng):
        scheme = DoubleHashingChoices(n, min(5, n))
        out = scheme.batch(2000, rng)
        for row in out:
            assert len(set(row.tolist())) == scheme.d

    def test_fully_random_without_replacement_distinct(self, rng):
        out = FullyRandomChoices(8, 5).batch(3000, rng)
        for row in out:
            assert len(set(row.tolist())) == 5

    def test_with_replacement_allows_repeats(self, rng):
        out = FullyRandomChoices(4, 3, replacement=True).batch(2000, rng)
        has_repeat = any(len(set(r.tolist())) < 3 for r in out)
        assert has_repeat

    def test_distinct_flags(self):
        assert DoubleHashingChoices(16, 3).distinct
        assert FullyRandomChoices(16, 3).distinct
        assert not FullyRandomChoices(16, 3, replacement=True).distinct
        assert PartitionedDoubleHashing(16, 4).distinct


class TestDoubleHashingStructure:
    def test_choices_form_arithmetic_progression(self, rng):
        scheme = DoubleHashingChoices(97, 5)
        out = scheme.batch(500, rng)
        gaps = (out[:, 1:] - out[:, :-1]) % 97
        # All consecutive gaps within a row equal the stride g.
        assert (gaps == gaps[:, :1]).all()

    def test_stride_is_unit(self, rng):
        scheme = DoubleHashingChoices(24, 4)
        _, _, g = scheme.batch_with_hashes(800, rng)
        assert np.all(np.gcd(g, 24) == 1)

    def test_power_of_two_strides_odd(self, rng):
        scheme = DoubleHashingChoices(64, 4)
        _, _, g = scheme.batch_with_hashes(800, rng)
        assert (g % 2 == 1).all()

    def test_batch_with_hashes_consistent(self, rng):
        scheme = DoubleHashingChoices(31, 4)
        choices, f, g = scheme.batch_with_hashes(200, rng)
        ks = np.arange(4)
        assert np.array_equal(choices, (f[:, None] + g[:, None] * ks) % 31)

    def test_single_bin_table(self, rng):
        scheme = DoubleHashingChoices(1, 1)
        assert (scheme.batch(10, rng) == 0).all()

    def test_batch_with_hashes_single_bin(self):
        """Regression: with n == 1, ``batch_with_hashes`` must share
        ``batch``'s early return — all-zero choices, f = 0, g = 1, and
        crucially *no RNG consumption* (the old code drew f and g anyway,
        desynchronizing it from ``batch``)."""
        scheme = DoubleHashingChoices(1, 1)
        rng = np.random.default_rng(123)
        state_before = rng.bit_generator.state
        choices, f, g = scheme.batch_with_hashes(50, rng)
        assert rng.bit_generator.state == state_before
        assert choices.shape == (50, 1) and (choices == 0).all()
        assert (f == 0).all() and (g == 1).all()
        assert np.array_equal(
            choices, scheme.batch(50, np.random.default_rng(123))
        )

    def test_batch_with_hashes_two_bins(self, rng):
        """n == 2 is the smallest table with a real stride: the only unit
        mod 2 is 1, so d = 2 choices must alternate."""
        scheme = DoubleHashingChoices(2, 2)
        choices, f, g = scheme.batch_with_hashes(400, rng)
        assert (g == 1).all()
        assert np.array_equal(choices[:, 0], f % 2)
        assert (choices[:, 0] != choices[:, 1]).all()

    def test_batch_planar_matches_batch(self):
        """The planar (d, trials) layout is the transposed row layout for
        the same generator state."""
        for n, d in ((2, 2), (31, 3), (64, 3)):
            scheme = DoubleHashingChoices(n, d)
            rows = scheme.batch(300, np.random.default_rng(7))
            planes = scheme.batch_planar(300, np.random.default_rng(7))
            assert planes.shape == (d, 300)
            assert np.array_equal(planes, rows.T)


class TestPartitionedStructure:
    @pytest.mark.parametrize("cls", [PartitionedFullyRandom, PartitionedDoubleHashing])
    def test_column_k_in_subtable_k(self, cls, rng):
        scheme = cls(64, 4)
        out = scheme.batch(1000, rng)
        for k in range(4):
            assert (out[:, k] >= 16 * k).all()
            assert (out[:, k] < 16 * (k + 1)).all()

    def test_subtable_size_one(self, rng):
        scheme = PartitionedDoubleHashing(4, 4)
        out = scheme.batch(10, rng)
        assert np.array_equal(out, np.tile([0, 1, 2, 3], (10, 1)))

    def test_partitioned_double_progression_within_subtables(self, rng):
        scheme = PartitionedDoubleHashing(40, 4)  # subtables of 10
        out = scheme.batch(500, rng)
        local = out - np.arange(4) * 10
        gaps = (local[:, 1:] - local[:, :-1]) % 10
        assert (gaps == gaps[:, :1]).all()


class TestUniformityStatistics:
    @pytest.mark.parametrize("factory", ALL_SCHEMES, ids=SCHEME_IDS)
    def test_overall_marginal_uniform(self, factory, rng):
        n, d, samples = 20, 4, 30000
        scheme = factory(n, d)
        out = scheme.batch(samples, rng)
        counts = np.bincount(out.ravel(), minlength=n)
        expected = samples * d / n
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # chi2_{0.9995, df=19} ~ 46; generous to keep flake rate ~0.
        assert chi2 < 55, f"chi2={chi2}, counts={counts}"


@given(
    n_exp=st.integers(min_value=2, max_value=8),
    d=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=60, deadline=None)
def test_property_double_hashing_rows_distinct_any_geometry(n_exp, d, seed):
    """Double-hashed choices are distinct for every n, d <= n (unit stride)."""
    n = 2**n_exp
    if d > n:
        return
    scheme = DoubleHashingChoices(n, d)
    out = scheme.batch(50, np.random.default_rng(seed))
    for row in out:
        assert len(set(row.tolist())) == d


@given(
    n=st.integers(min_value=3, max_value=300),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=60, deadline=None)
def test_property_arbitrary_modulus_strides_are_units(n, seed):
    """For arbitrary (possibly composite) n, sampled strides are coprime."""
    scheme = DoubleHashingChoices(n, min(3, n))
    _, _, g = scheme.batch_with_hashes(40, np.random.default_rng(seed))
    assert np.all(np.gcd(g, n) == 1)
