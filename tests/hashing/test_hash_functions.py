"""Tests for the keyed hash families."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hashing import MultiplyShiftHash, TabulationHash, UniversalModPrimeHash

FAMILIES = [
    lambda n, rng: UniversalModPrimeHash(n, rng),
    lambda n, rng: MultiplyShiftHash(n, rng),
    lambda n, rng: TabulationHash(n, rng),
]
FAMILY_IDS = ["universal", "multiply-shift", "tabulation"]


@pytest.mark.parametrize("factory", FAMILIES, ids=FAMILY_IDS)
class TestCommonBehaviour:
    def test_scalar_in_range(self, factory, rng):
        h = factory(64, rng)
        for key in (0, 1, 12345, 2**31, 2**62):
            assert 0 <= h(key) < 64

    def test_vector_matches_scalar(self, factory, rng):
        h = factory(64, rng)
        keys = np.array([0, 1, 7, 99, 2**40 + 3], dtype=np.int64)
        vec = h(keys)
        assert list(vec) == [h(int(k)) for k in keys]

    def test_deterministic(self, factory, rng):
        h = factory(128, rng)
        keys = np.arange(100, dtype=np.int64)
        assert np.array_equal(h(keys), h(keys))

    def test_different_instances_differ(self, factory):
        h1 = factory(1024, np.random.default_rng(1))
        h2 = factory(1024, np.random.default_rng(2))
        keys = np.arange(200, dtype=np.int64)
        assert not np.array_equal(h1(keys), h2(keys))

    def test_output_distribution_roughly_uniform(self, factory, rng):
        h = factory(16, rng)
        keys = np.arange(32000, dtype=np.int64)
        counts = np.bincount(np.asarray(h(keys)), minlength=16)
        expected = 32000 / 16
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 80, f"chi2={chi2}"


class TestMultiplyShift:
    def test_requires_power_of_two(self, rng):
        with pytest.raises(ConfigurationError):
            MultiplyShiftHash(100, rng)

    def test_multiplier_is_odd(self, rng):
        assert MultiplyShiftHash(64, rng).a % 2 == 1

    def test_range_one(self, rng):
        h = MultiplyShiftHash(1, rng)
        assert h(12345) == 0
        assert (np.asarray(h(np.arange(10))) == 0).all()


class TestUniversalModPrime:
    def test_prime_exceeds_key_space(self, rng):
        h = UniversalModPrimeHash(100, rng, key_bits=16)
        assert h.p > 2**16

    def test_collision_probability_universal(self, rng):
        """2-universality: over random (a, b), Pr[h(x) = h(y)] <~ 1/n."""
        n, pairs = 32, 400
        collisions = 0
        for i in range(pairs):
            h = UniversalModPrimeHash(n, np.random.default_rng(i), key_bits=16)
            if h(12345) == h(54321):
                collisions += 1
        # Expected ~ pairs / n = 12.5; allow a wide band.
        assert collisions < 40

    def test_rejects_empty_range(self, rng):
        with pytest.raises(ConfigurationError):
            UniversalModPrimeHash(0, rng)


class TestTabulation:
    def test_non_power_of_two_range(self, rng):
        h = TabulationHash(100, rng)
        keys = np.arange(5000, dtype=np.int64)
        out = np.asarray(h(keys))
        assert out.min() >= 0 and out.max() < 100

    def test_xor_structure_three_independence_spot_check(self, rng):
        """Keys differing in one byte land independently (spot check that
        tabulation output changes when any single byte changes)."""
        h = TabulationHash(2**16, rng)
        base = 0x0102030405060708
        outputs = {h(base)}
        for byte in range(8):
            outputs.add(h(base ^ (0xFF << (8 * byte))))
        assert len(outputs) > 1

    @given(key=st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=100, deadline=None)
    def test_property_range(self, key):
        h = TabulationHash(77, np.random.default_rng(3))
        assert 0 <= h(key % 2**63) < 77
