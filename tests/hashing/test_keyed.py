"""Tests for keyed choice schemes and the unified scheme registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing import (
    DoubleHashedKeyed,
    DoubleHashingChoices,
    IndependentKeyed,
    KeyedStreamScheme,
    keyed_scheme_names,
    make_keyed_scheme,
    make_scheme,
    resolve_scheme_name,
    scheme_names,
)
from repro.hashing.base import ChoiceScheme


class TestKeyedChoices:
    @pytest.mark.parametrize("family", ["multiply-shift", "tabulation",
                                        "universal"])
    def test_same_key_same_choices(self, family):
        keyed = DoubleHashedKeyed(1 << 10, 3, family=family,
                                  rng=np.random.default_rng(1))
        keys = np.arange(1, 501, dtype=np.int64)
        a = keyed.choices(keys)
        b = keyed.choices(keys)
        assert (a == b).all()
        assert a.shape == (500, 3)
        assert (0 <= a).all() and (a < 1 << 10).all()

    def test_double_hashed_choices_are_distinct(self):
        keyed = DoubleHashedKeyed(1 << 8, 4, rng=np.random.default_rng(2))
        ch = keyed.choices(np.arange(1, 2001, dtype=np.int64))
        for col in range(4):
            for other in range(col + 1, 4):
                assert (ch[:, col] != ch[:, other]).all()

    def test_prime_n_double_hashing(self):
        keyed = DoubleHashedKeyed(257, 3, family="universal",
                                  rng=np.random.default_rng(3))
        ch = keyed.choices(np.arange(1, 1001, dtype=np.int64))
        assert (ch[:, 0] != ch[:, 1]).all()
        assert (ch < 257).all()

    def test_composite_n_rejected(self):
        with pytest.raises(ConfigurationError):
            DoubleHashedKeyed(100, 2, rng=np.random.default_rng(4))

    def test_independent_keyed_shape(self):
        keyed = IndependentKeyed(1 << 8, 3, family="tabulation",
                                 rng=np.random.default_rng(5))
        ch = keyed.choices(np.arange(1, 101, dtype=np.int64))
        assert ch.shape == (100, 3)
        assert (keyed.choices(np.arange(1, 101, dtype=np.int64)) == ch).all()

    def test_fingerprints_identify_hash_functions(self):
        a = DoubleHashedKeyed(1 << 8, 2, rng=np.random.default_rng(6))
        b = DoubleHashedKeyed(1 << 8, 2, rng=np.random.default_rng(6))
        c = DoubleHashedKeyed(1 << 8, 2, rng=np.random.default_rng(7))
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_stream_scheme_is_engine_compatible(self):
        keyed = DoubleHashedKeyed(1 << 8, 2, rng=np.random.default_rng(8))
        stream = KeyedStreamScheme(keyed)
        assert isinstance(stream, ChoiceScheme)
        out = stream.batch(1000, np.random.default_rng(9))
        assert out.shape == (1000, 2)
        assert (out[:, 0] != out[:, 1]).all()


class TestRegistry:
    def test_engine_names_build_engine_schemes(self):
        scheme = make_scheme("double", 1 << 8, 3)
        assert isinstance(scheme, DoubleHashingChoices)

    def test_keyed_names_wrap_in_stream_scheme(self):
        scheme = make_scheme("tabulation", 1 << 8, 2, seed=1)
        assert isinstance(scheme, KeyedStreamScheme)

    def test_unknown_name_raises_valueerror(self):
        with pytest.raises(ValueError):
            make_scheme("nope", 1 << 8, 2)

    def test_scheme_names_cover_both_registries(self):
        names = scheme_names()
        assert "double" in names and "tabulation" in names
        assert set(keyed_scheme_names()) <= set(names) | {"double", "random"}

    def test_resolution_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEME", "tabulation")
        assert resolve_scheme_name("double") == "double"
        assert resolve_scheme_name(None) == "tabulation"
        monkeypatch.delenv("REPRO_SCHEME")
        assert resolve_scheme_name(None) == "double"

    def test_env_resolution_in_make_scheme(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEME", "tabulation")
        scheme = make_scheme(None, 1 << 8, 2, seed=1)
        assert isinstance(scheme, KeyedStreamScheme)

    def test_invalid_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEME", "bogus")
        with pytest.raises(ConfigurationError):
            resolve_scheme_name(None)

    def test_make_keyed_scheme_rejects_engine_only_names(self):
        with pytest.raises(ConfigurationError):
            make_keyed_scheme("blocks", 1 << 8, 2)

    def test_seed_reproducibility(self):
        keys = np.arange(1, 101, dtype=np.int64)
        a = make_keyed_scheme("double", 1 << 8, 2, seed=3).choices(keys)
        b = make_keyed_scheme("double", 1 << 8, 2, seed=3).choices(keys)
        assert (a == b).all()


class TestDeprecationShims:
    def test_n_bins_kwarg_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="n_bins"):
            scheme = make_scheme("double", n_bins=1 << 8, d=3)
        assert isinstance(scheme, DoubleHashingChoices)
        assert scheme.n_bins == 1 << 8

    def test_n_and_n_bins_together_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scheme("double", 1 << 8, 2, n_bins=1 << 8)


class TestPairwiseRegistryEntries:
    """The pairwise family rides the same registry paths as the others."""

    def test_pairwise_names_registered(self):
        names = keyed_scheme_names()
        assert "pairwise" in names and "pairwise-double" in names

    def test_pairwise_wraps_independent_keyed(self):
        scheme = make_scheme("pairwise", 1 << 8, 3, seed=1)
        assert isinstance(scheme, KeyedStreamScheme)
        assert isinstance(scheme.keyed, IndependentKeyed)
        assert scheme.keyed.family == "pairwise"

    def test_pairwise_double_rows_distinct_at_prime_n(self):
        scheme = make_scheme("pairwise-double", 65537, 4, seed=2)
        out = scheme.batch(500, np.random.default_rng(3))
        srt = np.sort(out, axis=1)
        assert not (srt[:, 1:] == srt[:, :-1]).any()

    def test_env_resolution_reaches_pairwise(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEME", "pairwise")
        assert resolve_scheme_name(None) == "pairwise"
        assert resolve_scheme_name("double") == "double"
        scheme = make_scheme(None, 1 << 8, 2, seed=4)
        assert isinstance(scheme, KeyedStreamScheme)


class TestSchemeInfo:
    """SCHEME_INFO is the single transcription of the zoo's theory columns."""

    def test_covers_every_registered_name(self):
        from repro.hashing import SCHEME_INFO

        assert set(SCHEME_INFO) == set(scheme_names())

    def test_rows_are_complete(self):
        from repro.hashing import SCHEME_INFO

        for name, info in SCHEME_INFO.items():
            assert info.name == name
            assert info.constructor and info.guarantee and info.citation

    def test_lookup_follows_name_resolution(self, monkeypatch):
        from repro.hashing import scheme_info

        assert scheme_info("pairwise").citation.startswith("Carter-Wegman")
        monkeypatch.setenv("REPRO_SCHEME", "tabulation")
        assert scheme_info(None).name == "tabulation"
        monkeypatch.delenv("REPRO_SCHEME")
        assert scheme_info(None).name == "double"
