"""Property tests: vectorized hash families match their scalar oracles.

Every family exposing a ``scalar`` method must agree with its batched
``__call__`` bit for bit — for random keys, the boundary keys 0 and
2^64 - 1, and both power-of-two and prime table sizes.  This is the
contract that lets the fused kernels trust the vectorized paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (
    PairwiseAffineHash,
    TabulationHash,
    UniversalModPrimeHash,
)
from repro.hashing.keyed import (
    DoubleHashedKeyed,
    IndependentKeyed,
    KeyedStreamScheme,
)

FAMILIES = [PairwiseAffineHash, TabulationHash, UniversalModPrimeHash]
FAMILY_IDS = ["pairwise", "tabulation", "universal"]
# One pow2 size, one prime size; both exercised for every family.
SIZES = [1 << 10, 65537]

BOUNDARY_KEYS = [0, 1, 255, 256, (1 << 32) - 1, 1 << 32,
                 (1 << 63) - 1, (1 << 64) - 1]


@pytest.mark.parametrize("cls", FAMILIES, ids=FAMILY_IDS)
@pytest.mark.parametrize("n", SIZES, ids=["pow2", "prime"])
class TestVectorizedMatchesScalar:
    def test_boundary_keys(self, cls, n):
        h = cls(n, np.random.default_rng(5))
        keys = np.array(BOUNDARY_KEYS, dtype=np.uint64)
        out = np.asarray(h(keys))
        for i, k in enumerate(BOUNDARY_KEYS):
            assert int(out[i]) == h.scalar(k), hex(k)

    def test_random_key_block(self, cls, n):
        rng = np.random.default_rng(6)
        h = cls(n, rng)
        keys = rng.integers(0, 1 << 63, size=20_000, dtype=np.int64)
        out = np.asarray(h(keys))
        assert out.min() >= 0 and out.max() < n
        for i in rng.integers(0, keys.size, size=100):
            assert int(out[i]) == h.scalar(int(keys[i]))

    @settings(max_examples=40, deadline=None)
    @given(key=st.integers(0, (1 << 64) - 1), seed=st.integers(0, 1 << 20))
    def test_property_any_key_any_draw(self, cls, n, key, seed):
        h = cls(n, np.random.default_rng(seed))
        out = np.asarray(h(np.array([key], dtype=np.uint64)))
        assert int(out[0]) == h.scalar(key)


class TestPlanarIdentity:
    """``choices_planar`` is exactly ``choices(keys).T`` for every scheme."""

    @pytest.mark.parametrize("family", ["multiply-shift", "tabulation",
                                        "pairwise", "universal"])
    @pytest.mark.parametrize("n", SIZES, ids=["pow2", "prime"])
    def test_independent_keyed(self, family, n):
        if family == "multiply-shift" and n != 1 << 10:
            pytest.skip("multiply-shift needs power-of-two n")
        keyed = IndependentKeyed(
            n, 3, family=family, rng=np.random.default_rng(8)
        )
        keys = np.random.default_rng(9).integers(
            0, 1 << 63, size=5000, dtype=np.int64
        )
        assert np.array_equal(
            keyed.choices_planar(keys), keyed.choices(keys).T
        )

    @pytest.mark.parametrize("family", ["multiply-shift", "tabulation",
                                        "pairwise"])
    @pytest.mark.parametrize("n", SIZES, ids=["pow2", "prime"])
    def test_double_hashed_keyed(self, family, n):
        if family == "multiply-shift" and n != 1 << 10:
            pytest.skip("multiply-shift needs power-of-two n")
        keyed = DoubleHashedKeyed(
            n, 4, family=family, rng=np.random.default_rng(10)
        )
        keys = np.random.default_rng(11).integers(
            0, 1 << 63, size=5000, dtype=np.int64
        )
        assert np.array_equal(
            keyed.choices_planar(keys), keyed.choices(keys).T
        )

    def test_stream_scheme_planar_same_key_draw(self):
        keyed = IndependentKeyed(
            1 << 10, 3, family="pairwise", rng=np.random.default_rng(12)
        )
        scheme = KeyedStreamScheme(keyed)
        a = scheme.batch(2000, np.random.default_rng(13))
        b = scheme.batch_planar(2000, np.random.default_rng(13))
        assert np.array_equal(b, a.T)

    @settings(max_examples=25, deadline=None)
    @given(
        n_exp=st.integers(4, 12),
        d=st.integers(2, 5),
        seed=st.integers(0, 1 << 16),
    )
    def test_property_double_hashed_planar_any_geometry(self, n_exp, d, seed):
        keyed = DoubleHashedKeyed(
            1 << n_exp, d, family="tabulation",
            rng=np.random.default_rng(seed),
        )
        keys = np.random.default_rng(seed + 1).integers(
            0, 1 << 63, size=500, dtype=np.int64
        )
        assert np.array_equal(
            keyed.choices_planar(keys), keyed.choices(keys).T
        )
