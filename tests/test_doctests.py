"""Run the library's module doctests.

The docstring examples double as documentation; this keeps them honest.
Modules with expensive or stochastic examples are exercised elsewhere —
the list here is the set of modules whose doctests are deterministic.
"""

from __future__ import annotations

import doctest

import pytest

import repro.analysis.dleft_bound
import repro.analysis.layered_induction
import repro.analysis.witness_tree
import repro.fluid.supermarket
import repro.numtheory.primes
import repro.numtheory.totient
import repro.parallel.pool
import repro.peeling.density_evolution
import repro.rng.drand48

DOCTEST_MODULES = [
    repro.analysis.dleft_bound,
    repro.analysis.layered_induction,
    repro.analysis.witness_tree,
    repro.fluid.supermarket,
    repro.numtheory.primes,
    repro.numtheory.totient,
    repro.parallel.pool,
    repro.peeling.density_evolution,
    repro.rng.drand48,
]


@pytest.mark.parametrize(
    "module", DOCTEST_MODULES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    # Every listed module should actually contain at least one example.
    assert results.attempted > 0, f"{module.__name__} has no doctests"
