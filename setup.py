"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that
``python setup.py develop`` works on offline machines whose environment
lacks the ``wheel`` package (pip's PEP 660 editable path requires it,
the classic develop path does not).
"""

from setuptools import setup

setup()
