"""Shared result dataclasses used across the :mod:`repro` library.

The simulation engines return :class:`LoadDistribution` objects (aggregated
across trials) rather than raw per-trial arrays, so that experiment code and
tests speak one vocabulary: *fraction of bins with load exactly i*, *fraction
with load at least i*, *maximum load*, and per-level sample statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "LoadDistribution",
    "LevelStats",
    "TrialBatchResult",
    "QueueingResult",
]


@dataclass(frozen=True)
class LevelStats:
    """Per-load-level sample statistics across trials (paper Table 5 format).

    Attributes
    ----------
    load:
        The load level these statistics describe.
    minimum, maximum:
        Extremes of the *count of bins at this load* across trials.
    mean:
        Mean count of bins at this load across trials.
    std:
        Sample standard deviation (ddof=1) of the count across trials.
    """

    load: int
    minimum: int
    maximum: int
    mean: float
    std: float


@dataclass(frozen=True)
class LoadDistribution:
    """Aggregated bin-load distribution over one or more trials.

    Attributes
    ----------
    n_bins:
        Number of bins per trial.
    n_balls:
        Number of balls thrown per trial.
    trials:
        Number of independent trials aggregated.
    counts:
        ``counts[i]`` is the total number of bins (summed over all trials)
        that ended with load exactly ``i``.  ``counts.sum() == trials * n_bins``.
    max_load_per_trial:
        Integer array of length ``trials`` with each trial's maximum load.
    """

    n_bins: int
    n_balls: int
    trials: int
    counts: np.ndarray
    max_load_per_trial: np.ndarray

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=np.int64)
        object.__setattr__(self, "counts", counts)
        object.__setattr__(
            self,
            "max_load_per_trial",
            np.asarray(self.max_load_per_trial, dtype=np.int64),
        )

    # -- derived quantities -------------------------------------------------

    @property
    def fractions(self) -> np.ndarray:
        """Fraction of bins with load exactly ``i`` (averaged over trials)."""
        return self.counts / float(self.trials * self.n_bins)

    @property
    def tail_fractions(self) -> np.ndarray:
        """Fraction of bins with load **at least** ``i``.

        Index 0 is always 1.0; this matches the ``x_i`` variables of the
        paper's fluid-limit analysis (Section 3).
        """
        frac = self.fractions
        return np.cumsum(frac[::-1])[::-1]

    @property
    def max_load(self) -> int:
        """Largest load observed in any trial."""
        return int(self.max_load_per_trial.max())

    def fraction_at(self, load: int) -> float:
        """Fraction of bins with load exactly ``load`` (0.0 if beyond range)."""
        if load < 0:
            raise ValueError(f"load must be non-negative, got {load}")
        if load >= len(self.counts):
            return 0.0
        return float(self.counts[load]) / float(self.trials * self.n_bins)

    def tail_at(self, load: int) -> float:
        """Fraction of bins with load at least ``load``."""
        if load < 0:
            raise ValueError(f"load must be non-negative, got {load}")
        if load >= len(self.counts):
            return 0.0
        return float(self.counts[load:].sum()) / float(self.trials * self.n_bins)

    def fraction_trials_max_load(self, load: int) -> float:
        """Fraction of trials whose maximum load equals ``load`` (Table 4)."""
        return float(np.mean(self.max_load_per_trial == load))

    def merged_with(self, other: "LoadDistribution") -> "LoadDistribution":
        """Combine two aggregates over the same (n_bins, n_balls) geometry."""
        if (self.n_bins, self.n_balls) != (other.n_bins, other.n_balls):
            raise ValueError(
                "cannot merge distributions with different geometry: "
                f"({self.n_bins}, {self.n_balls}) vs "
                f"({other.n_bins}, {other.n_balls})"
            )
        width = max(len(self.counts), len(other.counts))
        counts = np.zeros(width, dtype=np.int64)
        counts[: len(self.counts)] += self.counts
        counts[: len(other.counts)] += other.counts
        return LoadDistribution(
            n_bins=self.n_bins,
            n_balls=self.n_balls,
            trials=self.trials + other.trials,
            counts=counts,
            max_load_per_trial=np.concatenate(
                [self.max_load_per_trial, other.max_load_per_trial]
            ),
        )


@dataclass(frozen=True)
class TrialBatchResult:
    """Raw per-trial output of the vectorized engine.

    Attributes
    ----------
    loads:
        ``(trials, n_bins)`` integer array of final bin loads.
    """

    n_bins: int
    n_balls: int
    loads: np.ndarray = field(repr=False)

    def distribution(self) -> LoadDistribution:
        """Aggregate the raw loads into a :class:`LoadDistribution`."""
        loads = self.loads
        max_load = int(loads.max(initial=0))
        counts = np.bincount(loads.ravel(), minlength=max_load + 1)
        return LoadDistribution(
            n_bins=self.n_bins,
            n_balls=self.n_balls,
            trials=loads.shape[0],
            counts=counts.astype(np.int64),
            max_load_per_trial=loads.max(axis=1),
        )

    def level_stats(self, load: int) -> LevelStats:
        """Sample statistics for the per-trial count of bins at ``load``."""
        per_trial = (self.loads == load).sum(axis=1)
        std = float(per_trial.std(ddof=1)) if len(per_trial) > 1 else 0.0
        return LevelStats(
            load=load,
            minimum=int(per_trial.min()),
            maximum=int(per_trial.max()),
            mean=float(per_trial.mean()),
            std=std,
        )


@dataclass(frozen=True)
class QueueingResult:
    """Output of a supermarket-model simulation run.

    Attributes
    ----------
    mean_sojourn_time:
        Average time in system (waiting + service) over all departures after
        burn-in; the quantity reported in the paper's Table 8.
    completed_jobs:
        Number of departures contributing to the mean.
    mean_queue_length:
        Time-average number of jobs per queue (after burn-in).
    sim_time:
        Total simulated time, including burn-in.
    """

    mean_sojourn_time: float
    completed_jobs: int
    mean_queue_length: float
    sim_time: float
    tail_fractions: np.ndarray | None = None
    """Optional time-averaged fraction of queues with at least ``i`` jobs
    (index 0 is 1.0) — comparable to the fluid equilibrium
    ``π_i = λ^((d^i−1)/(d−1))``.  Populated when the simulator is asked to
    track queue lengths."""
    n_arrivals: int | None = None
    """Total arrival events over the whole run (burn-in included) — the
    event-throughput numerator for the metrics layer.  ``None`` on results
    from producers that never counted events."""
    n_departures: int | None = None
    """Total departure events over the whole run (burn-in included)."""
    busy_fraction: float | None = None
    """Time-averaged fraction of queues busy (serving at least one job)
    over ``[burn_in, sim_time]``.  Equals ``λ`` in steady state — a useful
    built-in sanity check on simulator output."""

    @property
    def n_events(self) -> int | None:
        """Total committed events (arrivals + departures), if counted."""
        if self.n_arrivals is None or self.n_departures is None:
            return None
        return self.n_arrivals + self.n_departures

    @property
    def events_per_time(self) -> float | None:
        """Committed events per simulated time unit, if counted."""
        events = self.n_events
        return None if events is None else events / self.sim_time
