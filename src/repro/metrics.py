"""Lightweight metrics and tracing for experiment runs.

The resilient execution engine (:mod:`repro.parallel.engine`) and the
experiment runner publish what they do — chunk wall-clocks, retry and
timeout events, counter totals — into a :class:`MetricsRegistry`.  The
registry is deliberately tiny: plain dicts and lists, a context-manager
timer, and a JSON snapshot, so a 10^4-trial sweep can be observed
mid-flight without pulling in an external telemetry stack.

Schema of :meth:`MetricsRegistry.snapshot` (also what ``--metrics-out``
writes; see ``docs/engine.md`` for the field-by-field reference)::

    {
      "counters": {name: number, ...},
      "timers":   {name: {"count", "total", "min", "max", "mean"}, ...},
      "chunks":   [{"index", "trials", "attempts", "seconds", "source"}, ...],
      "events":   [{"kind", "time", ...extra fields}, ...],
      "series":   {name: [{"time", ...sample fields}, ...], ...}
    }

``series`` is the time-series sink: ordered samples of evolving state
(e.g. the service layer's p99/p999/max-load-over-time SLO records),
appended via :meth:`MetricsRegistry.sample`.  Unlike ``events`` — a single
interleaved trace log — each series is its own ordered list, so consumers
can plot one without filtering.
"""

from __future__ import annotations

import json
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

__all__ = ["MetricsRegistry", "TimerStats", "global_registry"]


@dataclass
class TimerStats:
    """Streaming summary of one named timer: count / total / min / max."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.minimum = min(self.minimum, seconds)
        self.maximum = max(self.maximum, seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Counters, timers, per-chunk records, and a trace-event log.

    Thread-safe (a single lock guards every mutation) so a progress
    callback or a future threaded backend can share one registry with
    the engine.  All reads return copies.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._timers: dict[str, TimerStats] = {}
        self._events: list[dict] = []
        self._chunks: list[dict] = []
        self._series: dict[str, list[dict]] = {}

    # -- counters ---------------------------------------------------------

    def increment(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named counter (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def get_counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    # -- timers -----------------------------------------------------------

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration sample under the named timer."""
        with self._lock:
            self._timers.setdefault(name, TimerStats()).observe(seconds)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager tracing the wall-clock of its body.

        >>> registry = MetricsRegistry()
        >>> with registry.timer("work"):
        ...     pass
        >>> registry.snapshot()["timers"]["work"]["count"]
        1
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- events and chunk records ----------------------------------------

    def event(self, kind: str, **fields) -> None:
        """Append a trace event (retry, timeout, degradation, ...)."""
        with self._lock:
            self._events.append({"kind": kind, "time": time.time(), **fields})

    def record_chunk(
        self,
        *,
        index: int,
        trials: int,
        attempts: int,
        seconds: float,
        source: str,
    ) -> None:
        """Record the completion of one engine chunk.

        ``source`` is ``"pool"``, ``"serial"``, or ``"checkpoint"``.
        """
        with self._lock:
            self._chunks.append(
                {
                    "index": index,
                    "trials": trials,
                    "attempts": attempts,
                    "seconds": seconds,
                    "source": source,
                }
            )

    # -- time series ------------------------------------------------------

    def sample(self, series: str, **fields) -> None:
        """Append one sample to the named time series.

        Samples are stamped with wall-clock ``time`` and kept in append
        order; a series is the right sink for evolving state observed at
        intervals (tail-load SLO samples, queue depths), where ``event``
        is for one-off occurrences.

        >>> registry = MetricsRegistry()
        >>> registry.sample("slo", ops=1000, max_load=3)
        >>> registry.snapshot()["series"]["slo"][0]["max_load"]
        3
        """
        with self._lock:
            self._series.setdefault(series, []).append(
                {"time": time.time(), **fields}
            )

    def get_series(self, series: str) -> list[dict]:
        """Samples of one series, in append order (copies; [] if absent)."""
        with self._lock:
            return [dict(s) for s in self._series.get(series, [])]

    @property
    def events(self) -> list[dict]:
        with self._lock:
            return [dict(e) for e in self._events]

    @property
    def chunks(self) -> list[dict]:
        with self._lock:
            return [dict(c) for c in self._chunks]

    # -- export -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Full JSON-ready snapshot of every counter, timer, and record."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timers": {k: t.to_dict() for k, t in self._timers.items()},
                "chunks": [dict(c) for c in self._chunks],
                "events": [dict(e) for e in self._events],
                "series": {
                    k: [dict(s) for s in v] for k, v in self._series.items()
                },
            }

    def save(self, path: str | Path) -> None:
        """Write the snapshot as pretty-printed JSON."""
        Path(path).write_text(json.dumps(self.snapshot(), indent=2, sort_keys=True))


_global_registry: MetricsRegistry | None = None
_global_lock = threading.Lock()


def global_registry() -> MetricsRegistry:
    """The process-wide default registry (created on first use).

    Library layers that have no caller-supplied registry — most notably
    the kernel backends in :mod:`repro.kernels`, whose backend-fallback
    events must be observable even from code that never constructs a
    registry — publish here.  Runs that pass an explicit registry are
    unaffected.
    """
    global _global_registry
    with _global_lock:
        if _global_registry is None:
            _global_registry = MetricsRegistry()
        return _global_registry
