"""Choice-generation schemes: how a ball obtains its ``d`` candidate bins.

This package isolates the paper's central variable.  Every scheme implements
:class:`~repro.hashing.base.ChoiceScheme` — a vectorized "give me the next
``(trials, d)`` block of choices" interface — so the simulation engines in
:mod:`repro.core` are completely agnostic to *how* choices are produced:

- :class:`~repro.hashing.fully_random.FullyRandomChoices` — ``d`` independent
  uniform choices (with or without replacement), the paper's baseline;
- :class:`~repro.hashing.double_hashing.DoubleHashingChoices` — choices
  ``(f + k·g) mod n`` from two hash values, the paper's subject;
- :class:`~repro.hashing.partitioned.PartitionedFullyRandom` /
  :class:`~repro.hashing.partitioned.PartitionedDoubleHashing` — the d-left
  variants (one choice per subtable) used with Vöcking's scheme (Table 7);
- :mod:`~repro.hashing.pairwise` — the pairwise-uniformity property the
  paper identifies as sufficient, with an empirical verifier;
- :mod:`~repro.hashing.hash_functions` — concrete keyed hash families
  (multiply-shift, universal mod-prime, simple tabulation) for structures
  that hash real keys (Bloom filters, cuckoo tables) rather than drawing
  fresh randomness per ball;
- :mod:`~repro.hashing.keyed` — keyed *choice* schemes built from those
  families (:class:`~repro.hashing.keyed.DoubleHashedKeyed`,
  :class:`~repro.hashing.keyed.IndependentKeyed`), plus the
  :class:`~repro.hashing.keyed.KeyedStreamScheme` adapter that lets every
  engine and kernel consume them;
- :mod:`~repro.hashing.registry` — the unified string-keyed scheme
  registry behind :func:`make_scheme` / :func:`make_keyed_scheme`, with
  explicit > ``REPRO_SCHEME`` env > default name resolution;
- :mod:`~repro.hashing.probe` — splitmix64-based start/stride probe
  hashes for the open-addressed assignment-map kernel
  (:mod:`repro.kernels.keymap`), scalar oracles included.
"""

from repro.hashing.base import ChoiceScheme
from repro.hashing.block import BlockChoices
from repro.hashing.double_hashing import DoubleHashingChoices
from repro.hashing.fully_random import FullyRandomChoices
from repro.hashing.hash_functions import (
    MultiplyShiftHash,
    PairwiseAffineHash,
    TabulationHash,
    UniversalModPrimeHash,
)
from repro.hashing.keyed import (
    HASH_FAMILIES,
    DoubleHashedKeyed,
    IndependentKeyed,
    KeyedChoices,
    KeyedStreamScheme,
    make_hash_family,
)
from repro.hashing.pairwise import empirical_pairwise_stats, is_pairwise_uniform
from repro.hashing.probe import (
    DEFAULT_PROBE_SEED,
    probe_start_stride,
    probe_start_stride_scalar,
    splitmix64,
    splitmix64_scalar,
)
from repro.hashing.partitioned import (
    PartitionedDoubleHashing,
    PartitionedFullyRandom,
)
from repro.hashing.registry import (
    SCHEME_INFO,
    SchemeInfo,
    keyed_scheme_names,
    make_keyed_scheme,
    make_scheme,
    resolve_scheme_name,
    scheme_info,
    scheme_names,
)

__all__ = [
    "DEFAULT_PROBE_SEED",
    "HASH_FAMILIES",
    "SCHEME_INFO",
    "BlockChoices",
    "ChoiceScheme",
    "DoubleHashedKeyed",
    "DoubleHashingChoices",
    "FullyRandomChoices",
    "IndependentKeyed",
    "KeyedChoices",
    "KeyedStreamScheme",
    "MultiplyShiftHash",
    "PairwiseAffineHash",
    "PartitionedDoubleHashing",
    "PartitionedFullyRandom",
    "SchemeInfo",
    "TabulationHash",
    "UniversalModPrimeHash",
    "empirical_pairwise_stats",
    "is_pairwise_uniform",
    "keyed_scheme_names",
    "make_hash_family",
    "make_keyed_scheme",
    "make_scheme",
    "probe_start_stride",
    "probe_start_stride_scalar",
    "resolve_scheme_name",
    "scheme_info",
    "scheme_names",
    "splitmix64",
    "splitmix64_scalar",
]
