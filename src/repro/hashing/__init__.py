"""Choice-generation schemes: how a ball obtains its ``d`` candidate bins.

This package isolates the paper's central variable.  Every scheme implements
:class:`~repro.hashing.base.ChoiceScheme` — a vectorized "give me the next
``(trials, d)`` block of choices" interface — so the simulation engines in
:mod:`repro.core` are completely agnostic to *how* choices are produced:

- :class:`~repro.hashing.fully_random.FullyRandomChoices` — ``d`` independent
  uniform choices (with or without replacement), the paper's baseline;
- :class:`~repro.hashing.double_hashing.DoubleHashingChoices` — choices
  ``(f + k·g) mod n`` from two hash values, the paper's subject;
- :class:`~repro.hashing.partitioned.PartitionedFullyRandom` /
  :class:`~repro.hashing.partitioned.PartitionedDoubleHashing` — the d-left
  variants (one choice per subtable) used with Vöcking's scheme (Table 7);
- :mod:`~repro.hashing.pairwise` — the pairwise-uniformity property the
  paper identifies as sufficient, with an empirical verifier;
- :mod:`~repro.hashing.hash_functions` — concrete keyed hash families
  (multiply-shift, universal mod-prime, simple tabulation) for structures
  that hash real keys (Bloom filters, cuckoo tables) rather than drawing
  fresh randomness per ball.
"""

from repro.hashing.base import ChoiceScheme
from repro.hashing.block import BlockChoices
from repro.hashing.double_hashing import DoubleHashingChoices
from repro.hashing.fully_random import FullyRandomChoices
from repro.hashing.hash_functions import (
    MultiplyShiftHash,
    TabulationHash,
    UniversalModPrimeHash,
)
from repro.hashing.pairwise import empirical_pairwise_stats, is_pairwise_uniform
from repro.hashing.partitioned import (
    PartitionedDoubleHashing,
    PartitionedFullyRandom,
)

__all__ = [
    "BlockChoices",
    "ChoiceScheme",
    "DoubleHashingChoices",
    "FullyRandomChoices",
    "MultiplyShiftHash",
    "PartitionedDoubleHashing",
    "PartitionedFullyRandom",
    "TabulationHash",
    "UniversalModPrimeHash",
    "empirical_pairwise_stats",
    "is_pairwise_uniform",
]


def make_scheme(name: str, n_bins: int, d: int) -> ChoiceScheme:
    """Build a scheme by short name: ``"random"``, ``"double"``,
    ``"random-left"``, or ``"double-left"``.

    Convenience for experiment configuration files and CLI-style examples.
    """
    registry = {
        "random": lambda: FullyRandomChoices(n_bins, d, replacement=False),
        "random-replace": lambda: FullyRandomChoices(n_bins, d, replacement=True),
        "double": lambda: DoubleHashingChoices(n_bins, d),
        "random-left": lambda: PartitionedFullyRandom(n_bins, d),
        "double-left": lambda: PartitionedDoubleHashing(n_bins, d),
        "blocks": lambda: BlockChoices(n_bins, d),
    }
    try:
        return registry[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; expected one of {sorted(registry)}"
        ) from None
