"""Concrete keyed hash families.

The balls-and-bins engines draw fresh randomness per ball, but the hash-table
structures in :mod:`repro.extensions` (Bloom filters, cuckoo tables, open
addressing) hash *keys*: the same key must always map to the same choices.
These families provide that, each with the standard universality guarantee:

- :class:`UniversalModPrimeHash` — Carter–Wegman ``((a·x + b) mod p) mod n``,
  2-universal (Carter–Wegman, JCSS 1979);
- :class:`PairwiseAffineHash` — the same degree-1 construction over the
  Mersenne prime ``2^61 - 1``, exactly pairwise independent with a
  division-free reduction — the minimal guarantee the paper's closing
  remark identifies as sufficient for double-hashing equivalence;
- :class:`MultiplyShiftHash` — Dietzfelbinger's multiply-shift for
  power-of-two ranges, 2-universal (up to a factor 2; Dietzfelbinger et
  al., J. Algorithms 1997);
- :class:`TabulationHash` — Patrascu–Thorup simple tabulation
  (JACM 2012), 3-independent and "behaves like full randomness" for many
  applications; the balanced-allocation follow-ups (arXiv:1804.09684,
  arXiv:1407.6846) prove d-choice max-load guarantees for exactly this
  family.

All families hash 64-bit integer keys and are vectorized over numpy arrays;
:class:`TabulationHash` and :class:`PairwiseAffineHash` delegate their batch
paths to the kernel tier (:mod:`repro.kernels.hash_schemes`, numpy gather /
Mersenne limb arithmetic with an optional numba ``@njit`` tier) and expose
:meth:`TabulationHash.scalar` / :meth:`PairwiseAffineHash.scalar`
pure-Python oracles the bit-identity suites check the kernels against.
Construction draws the family's random parameters from ``rng`` (``None``
draws fresh OS entropy via :func:`repro.rng.default_generator`, so pass a
seeded generator for reproducible tables).  Every family exposes a stable
:meth:`fingerprint` over its drawn parameters; two instances with equal
fingerprints hash identically, which the service layer
(:mod:`repro.service`) uses to check shard-merge compatibility.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigurationError
from repro.numtheory import next_prime
from repro.rng import default_generator

__all__ = [
    "MultiplyShiftHash",
    "PairwiseAffineHash",
    "TabulationHash",
    "UniversalModPrimeHash",
]

_U64 = np.uint64


def _kernels():
    """The hash-scheme kernel module, imported lazily (import-cycle free)."""
    from repro.kernels import hash_schemes

    return hash_schemes


def _digest(*parts: object) -> str:
    """Short stable digest of a family's drawn parameters."""
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        if isinstance(part, np.ndarray):
            h.update(np.ascontiguousarray(part).tobytes())
        else:
            h.update(repr(part).encode())
    return h.hexdigest()


class UniversalModPrimeHash:
    """Carter–Wegman universal hashing: ``((a·x + b) mod p) mod n``.

    2-universal over keys in ``[0, 2^key_bits)`` (Carter–Wegman, JCSS
    1979): for distinct keys the collision probability is at most
    ``1/n``.  The batch path runs in exact uint64 limb arithmetic when
    ``p < 2^40`` (the default 32-bit key space) and falls back to
    Python-int arithmetic for wider primes.

    Parameters
    ----------
    n:
        Output range ``[0, n)``.
    rng:
        Used to draw ``a`` (nonzero) and ``b`` uniformly mod ``p``.
    key_bits:
        Maximum key width; ``p`` is chosen as the first prime above
        ``2^key_bits`` so every key is a distinct residue.
    """

    def __init__(
        self, n: int, rng: np.random.Generator | None = None, *, key_bits: int = 32
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"range must be positive, got {n}")
        rng = default_generator(rng)
        self.n = int(n)
        self.p = next_prime(1 << key_bits)
        self.a = int(rng.integers(1, self.p))
        self.b = int(rng.integers(0, self.p))

    def fingerprint(self) -> str:
        """Stable digest of ``(n, p, a, b)``."""
        return _digest("universal", self.n, self.p, self.a, self.b)

    def scalar(self, key: int) -> int:
        """Pure-Python-int oracle; the batch path must match it exactly."""
        return ((self.a * int(key) + self.b) % self.p) % self.n

    def __call__(self, keys: np.ndarray | int) -> np.ndarray | int:
        """Hash one key (Python int in, int out) or a batch (array in/out)."""
        if np.isscalar(keys):
            return self.scalar(keys)
        keys = np.asarray(keys, dtype=np.int64)
        if self.p >= 1 << 40:
            # Wide primes would overflow the uint64 limb split below;
            # go through Python ints per element (exact, slow).
            out = (self.a * keys.astype(object) + self.b) % self.p % self.n
            return out.astype(np.int64)
        # Exact uint64 path: reduce keys mod p, then split the residue at
        # 16 bits so a·x_hi < p^2 / 2^16 < 2^64 never wraps.
        p = _U64(self.p)
        x = keys.view(_U64) % p
        hi = (_U64(self.a) * (x >> _U64(16))) % p
        lo = _U64(self.a) * (x & _U64(0xFFFF))
        out = ((hi << _U64(16)) + lo + _U64(self.b)) % p % _U64(self.n)
        return out.astype(np.int64)


class PairwiseAffineHash:
    """Pairwise-independent hashing over the Mersenne prime ``2^61 - 1``.

    The degree-1 Carter–Wegman family ``((a·x + b) mod p) mod n`` with
    ``p = 2^61 - 1``: **exactly pairwise independent** on keys in
    ``[0, p)`` (Carter–Wegman, JCSS 1979) — the weakest guarantee in the
    zoo, and precisely the "pairwise uniformity" the paper's concluding
    remark singles out as sufficient for double hashing to match fully
    random d-choice allocation.  Certifying this family against the
    fully-random baseline therefore probes the paper's sufficiency claim
    directly.

    Compared to :class:`UniversalModPrimeHash` the Mersenne modulus
    buys a division-free reduction (fold the top 3 bits back with
    shift + mask), a 61-bit key space, and a kernel-grade batch path
    (:func:`repro.kernels.hash_schemes.pairwise_affine_u64`, exact
    uint64 limb arithmetic, optional numba tier).  Keys at or above
    ``p`` are reduced mod ``p`` first.

    Parameters
    ----------
    n:
        Output range ``[0, n)``; a power of two is reduced by mask,
        anything else by modulo.
    rng:
        Used to draw ``a`` (nonzero) and ``b`` uniformly mod ``p``.
    """

    #: The family's modulus, shared with the kernel tier.
    P = (1 << 61) - 1

    def __init__(self, n: int, rng: np.random.Generator | None = None) -> None:
        if n < 1:
            raise ConfigurationError(f"range must be positive, got {n}")
        rng = default_generator(rng)
        self.n = int(n)
        self.a = int(rng.integers(1, self.P))
        self.b = int(rng.integers(0, self.P))
        self._pow2 = (self.n & (self.n - 1)) == 0

    def fingerprint(self) -> str:
        """Stable digest of ``(n, a, b)``."""
        return _digest("pairwise", self.n, self.a, self.b)

    def scalar(self, key: int) -> int:
        """Pure-Python-int oracle; the kernel tiers must match it exactly."""
        h = _kernels().pairwise_affine_scalar(int(key), self.a, self.b)
        return h & (self.n - 1) if self._pow2 else h % self.n

    def __call__(self, keys: np.ndarray | int) -> np.ndarray | int:
        """Hash one key (Python int in, int out) or a batch (array in/out)."""
        if np.isscalar(keys):
            return self.scalar(keys)
        h = _kernels().pairwise_affine_u64(np.asarray(keys), self.a, self.b)
        if self._pow2:
            return (h & _U64(self.n - 1)).astype(np.int64)
        return (h % _U64(self.n)).astype(np.int64)


class MultiplyShiftHash:
    """Dietzfelbinger multiply-shift: ``(a * x) >> (64 - log2(n))``.

    2-universal up to a factor 2 (Dietzfelbinger et al., *A Reliable
    Randomized Algorithm for the Closest-Pair Problem*, J. Algorithms
    1997).  Requires ``n`` to be a power of two.  ``a`` is a random odd
    64-bit multiplier.  This is the family deployed hardware
    implementations favor (single multiply, no division), matching the
    paper's motivation that double hashing suits hardware.
    """

    def __init__(self, n: int, rng: np.random.Generator | None = None) -> None:
        if n < 1 or (n & (n - 1)) != 0:
            raise ConfigurationError(
                f"multiply-shift needs a power-of-two range, got {n}"
            )
        rng = default_generator(rng)
        self.n = int(n)
        self.shift = 64 - (n.bit_length() - 1) if n > 1 else 64
        self.a = int(rng.integers(0, 1 << 63, dtype=np.int64)) * 2 + 1

    def fingerprint(self) -> str:
        """Stable digest of ``(n, a)``."""
        return _digest("multiply-shift", self.n, self.a)

    def __call__(self, keys: np.ndarray | int) -> np.ndarray | int:
        """Hash one key (Python int in, int out) or a batch (array in/out)."""
        if self.n == 1:
            return 0 if np.isscalar(keys) else np.zeros(len(keys), np.int64)
        if np.isscalar(keys):
            return ((self.a * int(keys)) & ((1 << 64) - 1)) >> self.shift
        keys = np.asarray(keys)
        if keys.dtype == np.int64 or keys.dtype == _U64:
            # Two's-complement bits are what get multiplied mod 2^64, so
            # a reinterpreting view is value-identical to the astype copy.
            keys = keys.view(_U64)
        else:
            keys = keys.astype(_U64)
        with np.errstate(over="ignore"):
            prod = keys * _U64(self.a & ((1 << 64) - 1))
        prod >>= _U64(self.shift)
        return prod.view(np.int64)


class TabulationHash:
    """Simple tabulation hashing over 64-bit keys split into 8-bit chars.

    Eight lookup tables of 256 random words are XOR-combined
    (Patrascu–Thorup, *The Power of Simple Tabulation Hashing*, JACM
    2012): 3-independent, not 4-independent, yet strong enough that the
    follow-up papers prove d-choice balanced-allocation max-load bounds
    for it (*Power of d Choices with Simple Tabulation*,
    arXiv:1804.09684; *The Power of Two Choices with Simple Tabulation*,
    arXiv:1407.6846).  The result is reduced to ``[0, n)``: for
    power-of-two ``n`` the reduction is a mask (preserving full
    independence properties); otherwise a modulo.

    The batch path runs through the kernel tier
    (:func:`repro.kernels.hash_schemes.tabulation_hash_u64`): the eight
    tables flatten into one contiguous 16 KiB gather array consumed by
    blocked ``np.take`` (or the numba loop); :meth:`scalar` is the
    pure-Python oracle the tiers are certified bit-identical against.
    """

    CHARS = 8
    TABLE_SIZE = 256

    def __init__(self, n: int, rng: np.random.Generator | None = None) -> None:
        if n < 1:
            raise ConfigurationError(f"range must be positive, got {n}")
        rng = default_generator(rng)
        self.n = int(n)
        self.tables = rng.integers(
            0, 1 << 63, size=(self.CHARS, self.TABLE_SIZE), dtype=np.int64
        ).astype(_U64) << _U64(1)
        self.tables |= rng.integers(
            0, 2, size=(self.CHARS, self.TABLE_SIZE), dtype=np.int64
        ).astype(_U64)
        self._pow2 = (self.n & (self.n - 1)) == 0
        self._flat = _kernels().flatten_tables(self.tables)

    def fingerprint(self) -> str:
        """Stable digest of ``(n, tables)``."""
        return _digest("tabulation", self.n, self.tables)

    def scalar(self, key: int) -> int:
        """Pure-Python-int oracle; the kernel tiers must match it exactly."""
        h = _kernels().tabulation_hash_scalar(int(key), self.tables)
        return h & (self.n - 1) if self._pow2 else h % self.n

    def __call__(self, keys: np.ndarray | int) -> np.ndarray | int:
        """Hash one key (Python int in, int out) or a batch (array in/out)."""
        if np.isscalar(keys):
            return self.scalar(keys)
        acc = _kernels().tabulation_hash_u64(np.asarray(keys), self._flat)
        if self._pow2:
            return (acc & _U64(self.n - 1)).astype(np.int64)
        return (acc % _U64(self.n)).astype(np.int64)
