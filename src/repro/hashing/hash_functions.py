"""Concrete keyed hash families.

The balls-and-bins engines draw fresh randomness per ball, but the hash-table
structures in :mod:`repro.extensions` (Bloom filters, cuckoo tables, open
addressing) hash *keys*: the same key must always map to the same choices.
These families provide that, each with the standard universality guarantee:

- :class:`UniversalModPrimeHash` — Carter–Wegman ``((a·x + b) mod p) mod n``,
  2-universal;
- :class:`MultiplyShiftHash` — Dietzfelbinger's multiply-shift for
  power-of-two ranges, 2-universal (up to a factor 2);
- :class:`TabulationHash` — Patrascu–Thorup simple tabulation,
  3-independent and "behaves like full randomness" for many applications
  (cited as related work in the paper).

All families hash 64-bit integer keys and are vectorized over numpy arrays.
Construction draws the family's random parameters from ``rng`` (``None``
draws fresh OS entropy via :func:`repro.rng.default_generator`, so pass a
seeded generator for reproducible tables).  Every family exposes a stable
:meth:`fingerprint` over its drawn parameters; two instances with equal
fingerprints hash identically, which the service layer
(:mod:`repro.service`) uses to check shard-merge compatibility.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigurationError
from repro.numtheory import next_prime
from repro.rng import default_generator

__all__ = ["UniversalModPrimeHash", "MultiplyShiftHash", "TabulationHash"]

_U64 = np.uint64


def _digest(*parts: object) -> str:
    """Short stable digest of a family's drawn parameters."""
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        if isinstance(part, np.ndarray):
            h.update(np.ascontiguousarray(part).tobytes())
        else:
            h.update(repr(part).encode())
    return h.hexdigest()


class UniversalModPrimeHash:
    """Carter–Wegman universal hashing: ``((a·x + b) mod p) mod n``.

    Parameters
    ----------
    n:
        Output range ``[0, n)``.
    rng:
        Used to draw ``a`` (nonzero) and ``b`` uniformly mod ``p``.
    key_bits:
        Maximum key width; ``p`` is chosen as the first prime above
        ``2^key_bits`` so every key is a distinct residue.
    """

    def __init__(
        self, n: int, rng: np.random.Generator | None = None, *, key_bits: int = 32
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"range must be positive, got {n}")
        rng = default_generator(rng)
        self.n = int(n)
        self.p = next_prime(1 << key_bits)
        self.a = int(rng.integers(1, self.p))
        self.b = int(rng.integers(0, self.p))

    def fingerprint(self) -> str:
        """Stable digest of ``(n, p, a, b)``."""
        return _digest("universal", self.n, self.p, self.a, self.b)

    def __call__(self, keys: np.ndarray | int) -> np.ndarray | int:
        if np.isscalar(keys):
            return ((self.a * int(keys) + self.b) % self.p) % self.n
        keys = np.asarray(keys, dtype=np.int64)
        # Go through Python ints per element only when p exceeds 63 bits;
        # for the default 32-bit key space everything fits in int64 via
        # object-free modular arithmetic on uint64.
        out = (self.a * keys.astype(object) + self.b) % self.p % self.n
        return out.astype(np.int64)


class MultiplyShiftHash:
    """Dietzfelbinger multiply-shift: ``(a * x) >> (64 - log2(n))``.

    Requires ``n`` to be a power of two.  ``a`` is a random odd 64-bit
    multiplier.  This is the family deployed hardware implementations favor
    (single multiply, no division), matching the paper's motivation that
    double hashing suits hardware.
    """

    def __init__(self, n: int, rng: np.random.Generator | None = None) -> None:
        if n < 1 or (n & (n - 1)) != 0:
            raise ConfigurationError(
                f"multiply-shift needs a power-of-two range, got {n}"
            )
        rng = default_generator(rng)
        self.n = int(n)
        self.shift = 64 - (n.bit_length() - 1) if n > 1 else 64
        self.a = int(rng.integers(0, 1 << 63, dtype=np.int64)) * 2 + 1

    def fingerprint(self) -> str:
        """Stable digest of ``(n, a)``."""
        return _digest("multiply-shift", self.n, self.a)

    def __call__(self, keys: np.ndarray | int) -> np.ndarray | int:
        if self.n == 1:
            return 0 if np.isscalar(keys) else np.zeros(len(keys), np.int64)
        if np.isscalar(keys):
            return ((self.a * int(keys)) & ((1 << 64) - 1)) >> self.shift
        keys = np.asarray(keys).astype(_U64)
        with np.errstate(over="ignore"):
            prod = keys * _U64(self.a & ((1 << 64) - 1))
        return (prod >> _U64(self.shift)).astype(np.int64)


class TabulationHash:
    """Simple tabulation hashing over 64-bit keys split into 8-bit chars.

    Eight lookup tables of 256 random words are XOR-combined; the result is
    reduced to ``[0, n)``.  For power-of-two ``n`` the reduction is a mask
    (preserving full independence properties); otherwise a modulo.
    """

    CHARS = 8
    TABLE_SIZE = 256

    def __init__(self, n: int, rng: np.random.Generator | None = None) -> None:
        if n < 1:
            raise ConfigurationError(f"range must be positive, got {n}")
        rng = default_generator(rng)
        self.n = int(n)
        self.tables = rng.integers(
            0, 1 << 63, size=(self.CHARS, self.TABLE_SIZE), dtype=np.int64
        ).astype(_U64) << _U64(1)
        self.tables |= rng.integers(
            0, 2, size=(self.CHARS, self.TABLE_SIZE), dtype=np.int64
        ).astype(_U64)
        self._pow2 = (self.n & (self.n - 1)) == 0

    def fingerprint(self) -> str:
        """Stable digest of ``(n, tables)``."""
        return _digest("tabulation", self.n, self.tables)

    def __call__(self, keys: np.ndarray | int) -> np.ndarray | int:
        scalar = np.isscalar(keys)
        arr = np.atleast_1d(np.asarray(keys)).astype(_U64)
        acc = np.zeros(arr.shape, dtype=_U64)
        for c in range(self.CHARS):
            byte = (arr >> _U64(8 * c)) & _U64(0xFF)
            acc ^= self.tables[c][byte.astype(np.int64)]
        if self._pow2:
            out = (acc & _U64(self.n - 1)).astype(np.int64)
        else:
            out = (acc % _U64(self.n)).astype(np.int64)
        return int(out[0]) if scalar else out
