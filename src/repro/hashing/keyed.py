"""Keyed choice generation: from *keys* to double-hashing choice vectors.

The balls-and-bins engines draw fresh randomness per ball, but production
systems hash **keys**: the same key must always map to the same ``d``
candidate bins.  This is the paper's practical pitch — double hashing gives
multiple-choice placement from only *two* hash computations per key — and
the regime studied by the follow-ups (*More Analysis of Double Hashing for
Balanced Allocations*, arXiv:1503.00658; *Power of d Choices with Simple
Tabulation*, arXiv:1804.09684).  This module makes it a first-class API:

- :class:`KeyedChoices` — the interface: a batched, vectorized
  ``choices(keys) -> (len(keys), d)`` map, deterministic per instance;
- :class:`DoubleHashedKeyed` — choices ``(f(x) + j·g(x)) mod n`` from two
  hash values drawn from a concrete family (multiply-shift, tabulation,
  universal), with the stride forced to a unit so choices are distinct;
- :class:`IndependentKeyed` — ``d`` independent hash functions, the keyed
  stand-in for the paper's fully-random baseline (exactly the scheme the
  simple-tabulation follow-up analyzes);
- :class:`KeyedStreamScheme` — a :class:`~repro.hashing.base.ChoiceScheme`
  adapter that feeds a uniform random key stream through a keyed scheme,
  so every engine and placement kernel in the repo can run on realistic
  hash families (the generic kernel path consumes ``batch_planar``).

All keyed schemes hash 64-bit integer keys, are vectorized over numpy
arrays, and expose a stable :meth:`KeyedChoices.fingerprint` so sharded
state built from the *same* hash functions can be merged safely.
"""

from __future__ import annotations

import abc
import hashlib

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.hashing.hash_functions import (
    MultiplyShiftHash,
    PairwiseAffineHash,
    TabulationHash,
    UniversalModPrimeHash,
)
from repro.numtheory import is_prime
from repro.rng import default_generator

__all__ = [
    "HASH_FAMILIES",
    "DoubleHashedKeyed",
    "IndependentKeyed",
    "KeyedChoices",
    "KeyedStreamScheme",
    "make_hash_family",
]

#: Concrete keyed hash families by short name.  ``multiply-shift`` needs a
#: power-of-two range; the other three accept any positive range.
HASH_FAMILIES = {
    "multiply-shift": MultiplyShiftHash,
    "pairwise": PairwiseAffineHash,
    "tabulation": TabulationHash,
    "universal": UniversalModPrimeHash,
}


def make_hash_family(name: str, n: int, rng: np.random.Generator | None = None):
    """Instantiate a hash family by short name with range ``[0, n)``."""
    try:
        cls = HASH_FAMILIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown hash family {name!r}; known: {', '.join(sorted(HASH_FAMILIES))}"
        ) from None
    return cls(n, default_generator(rng))


def _as_key_array(keys) -> np.ndarray:
    """Normalize a key batch to a 1-D int64 array (no copy when possible)."""
    arr = np.asarray(keys)
    if arr.ndim != 1:
        raise ConfigurationError(
            f"keys must be a 1-D array, got shape {arr.shape}"
        )
    if arr.dtype != np.int64:
        arr = arr.astype(np.int64)
    return arr


class KeyedChoices(abc.ABC):
    """Deterministic map from keys to ``d`` candidate bins.

    Unlike :class:`~repro.hashing.base.ChoiceScheme`, which consumes an
    ``rng`` per batch, a keyed scheme is a *function*: its randomness was
    drawn once at construction (the hash-family parameters) and the same
    key always yields the same choice row.

    Parameters
    ----------
    n_bins:
        Number of bins (table size), at least 1.
    d:
        Number of choices per key, at least 1.
    """

    def __init__(self, n_bins: int, d: int) -> None:
        if n_bins < 1:
            raise ConfigurationError(f"n_bins must be positive, got {n_bins}")
        if d < 1:
            raise ConfigurationError(f"d must be positive, got {d}")
        if d > n_bins:
            raise ConfigurationError(
                f"cannot make {d} distinct choices from {n_bins} bins"
            )
        self.n_bins = int(n_bins)
        self.d = int(d)

    @abc.abstractmethod
    def choices(self, keys) -> np.ndarray:
        """Return a ``(len(keys), d)`` int64 array of bin indices.

        Row ``i`` holds the candidate bins of ``keys[i]``; equal keys get
        equal rows (within and across calls on the same instance).
        """

    def choices_planar(self, keys) -> np.ndarray:
        """Like :meth:`choices` but transposed: a ``(d, len(keys))`` array.

        Plane ``j`` holds the ``j``-th choice of every key — the layout
        the placement-kernel generation path consumes so each flat
        gather walks one contiguous plane.  The default transposes
        :meth:`choices`; subclasses with a natural per-plane fill
        (:class:`IndependentKeyed`) or a per-plane stride recurrence
        (:class:`DoubleHashedKeyed`) override it, bit-identically.
        """
        return np.ascontiguousarray(self.choices(keys).T)

    @abc.abstractmethod
    def fingerprint(self) -> str:
        """Stable digest of the underlying hash-function parameters.

        Two instances with equal fingerprints produce identical choices
        for every key; the service layer requires equal fingerprints
        before merging shards.
        """

    @property
    def distinct(self) -> bool:
        """Whether the ``d`` choices of one key are guaranteed distinct."""
        return False

    def describe(self) -> str:
        """Human-readable one-line description used in reports."""
        return f"{type(self).__name__}(n_bins={self.n_bins}, d={self.d})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


class DoubleHashedKeyed(KeyedChoices):
    """Keyed double hashing: choices ``(f(x) + j·g(x)) mod n``.

    Two hash computations per key, ``d`` choices — the paper's pitch made
    keyed.  ``f`` hashes into ``[0, n)``; ``g`` is mapped onto the units
    mod ``n`` so the ``d`` choices of a key are always distinct:

    - power-of-two ``n``: ``g`` hashes into ``[0, n/2)`` and the stride is
      ``2·g + 1`` (uniform over the odd residues, all units);
    - prime ``n``: ``g`` hashes into ``[0, n-1)`` and the stride is
      ``g + 1`` (uniform over the nonzero residues, all units).

    Other moduli would need keyed rejection sampling of strides and are
    rejected up front; the paper itself works with prime or power-of-two
    table sizes for exactly this reason.

    Parameters
    ----------
    n_bins, d:
        Table geometry; ``n_bins`` must be a power of two or a prime.
    family:
        Hash-family name for both ``f`` and ``g`` (see
        :data:`HASH_FAMILIES`).  ``multiply-shift`` (the default) requires
        power-of-two ``n_bins``.
    rng:
        Drives the family-parameter draws (``None``: fresh OS entropy).
    """

    def __init__(
        self,
        n_bins: int,
        d: int,
        *,
        family: str = "multiply-shift",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_bins, d)
        rng = default_generator(rng)
        n = self.n_bins
        self.family = family
        self._pow2 = n & (n - 1) == 0
        if self._pow2:
            stride_range = max(n >> 1, 1)
        elif is_prime(n):
            stride_range = n - 1
        else:
            raise ConfigurationError(
                f"keyed double hashing needs a power-of-two or prime table "
                f"size so strides are units; got n_bins={n}"
            )
        self._f = make_hash_family(family, n, rng)
        self._g = make_hash_family(family, stride_range, rng)
        self._ks = np.arange(self.d, dtype=np.int64)

    @property
    def distinct(self) -> bool:
        """True: the stride is a unit, so the ``d`` probes never collide."""
        return True

    def choices(self, keys) -> np.ndarray:
        """Row-major ``(len(keys), d)`` arithmetic progressions mod ``n``."""
        keys = _as_key_array(keys)
        n = self.n_bins
        if n == 1:
            return np.zeros((keys.size, self.d), dtype=np.int64)
        f = np.asarray(self._f(keys), dtype=np.int64)
        g = np.asarray(self._g(keys), dtype=np.int64)
        if self._pow2:
            stride = (g << 1) | 1
            return (f[:, None] + stride[:, None] * self._ks) & (n - 1)
        stride = g + 1
        return (f[:, None] + stride[:, None] * self._ks) % n

    def choices_planar(self, keys) -> np.ndarray:
        """Planar choices via the stride recurrence (no transpose, no mul).

        Plane ``j`` is plane ``j-1`` plus the stride, wrapped — a mask
        for power-of-two ``n``, one conditional subtract for prime ``n``
        (the stride is below ``n``, so a single correction suffices).
        Bit-identical to ``choices(keys).T``.
        """
        keys = _as_key_array(keys)
        n = self.n_bins
        out = np.empty((self.d, keys.size), dtype=np.int64)
        if n == 1:
            out.fill(0)
            return out
        f = np.asarray(self._f(keys), dtype=np.int64)
        g = np.asarray(self._g(keys), dtype=np.int64)
        stride = ((g << 1) | 1) if self._pow2 else g + 1
        out[0] = f
        for j in range(1, self.d):
            plane = out[j]
            np.add(out[j - 1], stride, out=plane)
            if self._pow2:
                plane &= n - 1
            else:
                plane[plane >= n] -= n
        return out

    def fingerprint(self) -> str:
        """Digest of ``d`` plus both drawn hash functions' fingerprints."""
        h = hashlib.blake2b(digest_size=8)
        h.update(
            f"double:{self.d}:{self._f.fingerprint()}:{self._g.fingerprint()}".encode()
        )
        return h.hexdigest()

    def describe(self) -> str:
        """Short human-readable label including family and geometry."""
        return (
            f"keyed-double({self.family}, n_bins={self.n_bins}, d={self.d})"
        )


class IndependentKeyed(KeyedChoices):
    """``d`` independent keyed hash functions — the fully-random stand-in.

    One hash computation per choice (``d`` per key), the cost the paper
    contrasts double hashing against.  Choices within a row may collide
    (hash functions are independent), matching the with-replacement
    baseline; the collision probability per pair is ``1/n``.

    Parameters
    ----------
    n_bins, d:
        Table geometry (``multiply-shift`` requires power-of-two ``n_bins``).
    family:
        Hash-family name shared by the ``d`` functions.
    rng:
        Drives the family-parameter draws (``None``: fresh OS entropy).
    """

    def __init__(
        self,
        n_bins: int,
        d: int,
        *,
        family: str = "multiply-shift",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_bins, d)
        rng = default_generator(rng)
        self.family = family
        self._hashes = [make_hash_family(family, self.n_bins, rng) for _ in range(d)]

    def choices(self, keys) -> np.ndarray:
        """Row-major ``(len(keys), d)`` table: column ``j`` is hash ``j``."""
        keys = _as_key_array(keys)
        if self.n_bins == 1:
            return np.zeros((keys.size, self.d), dtype=np.int64)
        out = np.empty((keys.size, self.d), dtype=np.int64)
        for j, h in enumerate(self._hashes):
            out[:, j] = h(keys)
        return out

    def choices_planar(self, keys) -> np.ndarray:
        """Planar choices filled one contiguous hash plane at a time."""
        keys = _as_key_array(keys)
        out = np.empty((self.d, keys.size), dtype=np.int64)
        if self.n_bins == 1:
            out.fill(0)
            return out
        for j, h in enumerate(self._hashes):
            out[j] = h(keys)
        return out

    def fingerprint(self) -> str:
        """Digest of the ``d`` drawn hash functions' fingerprints."""
        h = hashlib.blake2b(digest_size=8)
        h.update(
            ("independent:" + ":".join(f.fingerprint() for f in self._hashes)).encode()
        )
        return h.hexdigest()

    def describe(self) -> str:
        """Short human-readable label including family and geometry."""
        return (
            f"keyed-independent({self.family}, n_bins={self.n_bins}, d={self.d})"
        )


class KeyedStreamScheme(ChoiceScheme):
    """Adapter: a keyed scheme driven by a uniform random key stream.

    Implements the engine-facing :class:`~repro.hashing.base.ChoiceScheme`
    interface by drawing one fresh uniform 63-bit key per ball and hashing
    it through ``keyed`` — so ``simulate_batch``, ``simulate_churn``, the
    supermarket simulator, and the placement kernels (via the generic
    ``batch_planar`` generation path) all run unchanged on realistic hash
    families.  This is the bridge the hash-family-zoo experiments use.

    Parameters
    ----------
    keyed:
        The keyed scheme to adapt.
    key_bits:
        Width of the random keys drawn per ball (defaults to 63 so keys
        stay non-negative int64).
    """

    def __init__(self, keyed: KeyedChoices, *, key_bits: int = 63) -> None:
        super().__init__(keyed.n_bins, keyed.d)
        if not 1 <= key_bits <= 63:
            raise ConfigurationError(
                f"key_bits must be in [1, 63], got {key_bits}"
            )
        self.keyed = keyed
        self._key_high = 1 << key_bits

    @property
    def distinct(self) -> bool:
        """Delegates to the wrapped keyed scheme."""
        return self.keyed.distinct

    def batch(self, trials: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``trials`` fresh keys and hash them to ``(trials, d)`` rows."""
        keys = rng.integers(0, self._key_high, size=trials, dtype=np.int64)
        return self.keyed.choices(keys)

    def batch_planar(self, trials: int, rng: np.random.Generator) -> np.ndarray:
        """Planar batch for the kernel generation path (same key stream).

        Draws the identical key stream as :meth:`batch` and routes it
        through :meth:`KeyedChoices.choices_planar`, so the fused
        placement kernel consumes keyed families without the transpose —
        and with the exact same choices as the row-major path.
        """
        keys = rng.integers(0, self._key_high, size=trials, dtype=np.int64)
        return self.keyed.choices_planar(keys)

    def describe(self) -> str:
        """Label wrapping the adapted keyed scheme's own description."""
        return f"keyed-stream({self.keyed.describe()})"
