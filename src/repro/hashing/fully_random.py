"""Fully random choices — the paper's baseline scheme.

Each ball receives ``d`` independent uniform bin choices.  The paper's main
experiments use choices *without replacement* (footnote 7: "We first consider
n balls and bins using d choices without replacement"); with-replacement is
provided for the ablation bench, since the paper notes the difference only
shows for very small ``n``.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import ChoiceScheme

__all__ = ["FullyRandomChoices"]


class FullyRandomChoices(ChoiceScheme):
    """``d`` independent uniform choices per ball.

    Parameters
    ----------
    n_bins, d:
        Table geometry (see :class:`~repro.hashing.base.ChoiceScheme`).
    replacement:
        If False (default, matching the paper's experiments), the ``d``
        choices within a ball are distinct, produced by rejection
        resampling: draw all rows i.i.d., then re-draw only rows containing
        a duplicate.  For ``d`` small relative to ``n`` the expected number
        of rounds is ``1 + O(d^2 / n)``.
    """

    def __init__(self, n_bins: int, d: int, *, replacement: bool = False) -> None:
        super().__init__(n_bins, d)
        self.replacement = bool(replacement)

    @property
    def distinct(self) -> bool:
        """True only in without-replacement mode (duplicates rejected)."""
        return not self.replacement

    def batch(self, trials: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform ``(trials, d)`` rows, rejection-resampled if distinct."""
        choices = rng.integers(0, self.n_bins, size=(trials, self.d), dtype=np.int64)
        if self.replacement or self.d == 1:
            return choices
        bad = self._rows_with_duplicates(choices)
        # Rejection loop: geometric tail, so this terminates fast even for
        # adversarial geometry (d close to n_bins degrades gracefully).
        while bad.size:
            choices[bad] = rng.integers(
                0, self.n_bins, size=(bad.size, self.d), dtype=np.int64
            )
            bad = bad[self._rows_with_duplicates(choices[bad], local=True)]
        return choices

    @staticmethod
    def _rows_with_duplicates(
        choices: np.ndarray, *, local: bool = False
    ) -> np.ndarray:
        """Indices of rows containing a repeated bin.

        Sorting each row and comparing neighbours is O(d log d) per row but
        fully vectorized, which beats per-row ``np.unique`` by a wide margin.
        When ``local`` is True the returned indices are relative to the
        passed sub-array (used inside the rejection loop).
        """
        if choices.shape[1] == 1:
            return np.empty(0, dtype=np.int64)
        ordered = np.sort(choices, axis=1)
        dup = (ordered[:, 1:] == ordered[:, :-1]).any(axis=1)
        idx = np.flatnonzero(dup)
        return idx if local or idx.size else idx

    def describe(self) -> str:
        """Short human-readable label including mode and geometry."""
        mode = "with" if self.replacement else "without"
        return (
            f"fully-random({mode} replacement, n_bins={self.n_bins}, d={self.d})"
        )
