"""Pairwise-uniformity verification.

The paper's closing remark in Section 1: every result holds for *any* scheme
whose ``d`` choices are pairwise uniform over distinct bins —

    ``Pr(h_i = b1) = 1/n``  and  ``Pr(h_i = b1 and h_j = b2) = 1/(n(n-1))``
    for all ``i ≠ j`` and distinct bins ``b1, b2``

(the second probability is per *ordered* pair; the paper writes the
unordered form ``1/C(n,2)`` for the unordered event).  This module provides
an empirical verifier used by the test suite to certify that
:class:`~repro.hashing.double_hashing.DoubleHashingChoices` has the property
and that intentionally-broken schemes do not.

Scope note: exact pairwise uniformity holds for **prime** table sizes,
where ``(j−i)·g`` ranges uniformly over all nonzero differences.  For
composite ``n`` (including powers of two) the pair difference is confined
to multiples of units — e.g. with ``n = 2^k`` the difference of choices two
apart is always even — which is the situation the paper's footnote 5
handles via the totient: each admissible pair is uniform over its Ω(n)
possibilities, which suffices for every asymptotic argument.  Run the
verifier on prime geometries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hashing.base import ChoiceScheme

__all__ = ["PairwiseStats", "empirical_pairwise_stats", "is_pairwise_uniform"]


@dataclass(frozen=True)
class PairwiseStats:
    """Empirical marginal/pair frequencies for a choice scheme.

    Attributes
    ----------
    marginal:
        ``(d, n)`` array: ``marginal[i, b]`` estimates ``Pr(h_i = b)``.
    pair_counts:
        ``(n, n)`` array pooled over all ordered position pairs ``(i, j)``,
        ``i ≠ j``: entry ``(b1, b2)`` counts occurrences of
        ``h_i = b1, h_j = b2``.  The diagonal counts collisions within a
        ball (zero for distinct schemes).
    samples:
        Number of balls drawn.
    """

    marginal: np.ndarray
    pair_counts: np.ndarray
    samples: int

    @property
    def max_marginal_error(self) -> float:
        """Largest absolute deviation of any marginal from 1/n."""
        n = self.marginal.shape[1]
        return float(np.abs(self.marginal - 1.0 / n).max())

    @property
    def max_pair_error(self) -> float:
        """Largest off-diagonal ordered-pair frequency deviation.

        Deviation is measured against the exactly-uniform value
        ``1/(n(n-1))``.
        """
        n = self.pair_counts.shape[0]
        d = self.marginal.shape[0]
        total_pairs = self.samples * d * (d - 1)
        freq = self.pair_counts / max(total_pairs, 1)
        off = freq[~np.eye(n, dtype=bool)]
        return float(np.abs(off - 1.0 / (n * (n - 1))).max())


def empirical_pairwise_stats(
    scheme: ChoiceScheme,
    samples: int,
    rng: np.random.Generator,
    *,
    batch_size: int = 8192,
) -> PairwiseStats:
    """Estimate the marginal and pairwise choice distributions of ``scheme``.

    Memory is O(n^2) for the pair table, so keep ``scheme.n_bins`` modest
    (this is a verification tool for small geometries, not a hot path).
    """
    n, d = scheme.n_bins, scheme.d
    marginal_counts = np.zeros((d, n), dtype=np.int64)
    pair_counts = np.zeros((n, n), dtype=np.int64)
    remaining = samples
    while remaining > 0:
        block = min(batch_size, remaining)
        choices = scheme.batch(block, rng)
        for i in range(d):
            marginal_counts[i] += np.bincount(choices[:, i], minlength=n)
        # Pool every ordered position pair into the (b1, b2) table.
        for i in range(d):
            for j in range(d):
                if i == j:
                    continue
                flat = choices[:, i] * n + choices[:, j]
                pair_counts += np.bincount(flat, minlength=n * n).reshape(n, n)
        remaining -= block
    return PairwiseStats(
        marginal=marginal_counts / samples,
        pair_counts=pair_counts,
        samples=samples,
    )


def is_pairwise_uniform(
    scheme: ChoiceScheme,
    samples: int,
    rng: np.random.Generator,
    *,
    tolerance_sigmas: float = 6.0,
) -> bool:
    """Empirically accept/reject pairwise uniformity of ``scheme``.

    Compares the worst-case marginal and pair deviations against a normal
    sampling envelope of ``tolerance_sigmas`` standard errors.  This is a
    screening test (not a formal hypothesis test across all cells); the unit
    tests pair it with exact enumeration on tiny geometries.
    """
    stats = empirical_pairwise_stats(scheme, samples, rng)
    n, d = scheme.n_bins, scheme.d
    p_marg = 1.0 / n
    se_marg = np.sqrt(p_marg * (1 - p_marg) / samples)
    if stats.max_marginal_error > tolerance_sigmas * se_marg:
        return False
    pair_samples = samples * d * (d - 1)
    p_pair = 1.0 / (n * (n - 1))
    se_pair = np.sqrt(p_pair * (1 - p_pair) / max(pair_samples, 1))
    return stats.max_pair_error <= tolerance_sigmas * se_pair
