"""Unified string-keyed scheme registry: one factory for every scheme.

Historically the scheme constructors were inconsistent — engine schemes
take ``(n_bins, d)`` while the keyed hash families take ``(n, rng)`` — and
``make_scheme`` covered only the engine schemes.  This module is the one
place a scheme name resolves to a constructor:

- :func:`make_scheme` builds an engine-facing
  :class:`~repro.hashing.base.ChoiceScheme` for *any* registered name.
  Keyed hash-family names (``"multiply-shift"``, ``"tabulation"``, …) are
  wrapped in a :class:`~repro.hashing.keyed.KeyedStreamScheme` so every
  engine and kernel can consume them unchanged.
- :func:`make_keyed_scheme` builds the keyed
  :class:`~repro.hashing.keyed.KeyedChoices` form for the service layer
  (:mod:`repro.service`), where keys are supplied by the caller.
- :func:`resolve_scheme_name` mirrors the :mod:`repro.kernels` selection
  idiom: explicit name > ``REPRO_SCHEME`` environment variable > default
  (``"double"``).

Deprecations
------------
The pre-registry call form ``make_scheme(name, n_bins=..., d=...)`` (the
old parameter was named ``n_bins``) still works but emits a
``DeprecationWarning``; it will be removed two releases after 1.1 (see
``docs/service.md`` for the timeline).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.hashing.block import BlockChoices
from repro.hashing.double_hashing import DoubleHashingChoices
from repro.hashing.fully_random import FullyRandomChoices
from repro.hashing.keyed import (
    DoubleHashedKeyed,
    IndependentKeyed,
    KeyedChoices,
    KeyedStreamScheme,
)
from repro.hashing.partitioned import (
    PartitionedDoubleHashing,
    PartitionedFullyRandom,
)
from repro.rng import default_generator

__all__ = [
    "SCHEME_ENV_VAR",
    "DEFAULT_SCHEME",
    "SCHEME_INFO",
    "SchemeInfo",
    "keyed_scheme_names",
    "make_keyed_scheme",
    "make_scheme",
    "resolve_scheme_name",
    "scheme_info",
    "scheme_names",
]

SCHEME_ENV_VAR = "REPRO_SCHEME"
DEFAULT_SCHEME = "double"

# Engine-facing constructors: name -> f(n, d, rng) -> ChoiceScheme.  The
# rng argument seeds *construction* (hash-family parameter draws); the
# stateless schemes ignore it — their randomness arrives per batch.
_ENGINE_BUILDERS: dict = {
    "random": lambda n, d, rng: FullyRandomChoices(n, d, replacement=False),
    "random-replace": lambda n, d, rng: FullyRandomChoices(n, d, replacement=True),
    "double": lambda n, d, rng: DoubleHashingChoices(n, d),
    "random-left": lambda n, d, rng: PartitionedFullyRandom(n, d),
    "double-left": lambda n, d, rng: PartitionedDoubleHashing(n, d),
    "blocks": lambda n, d, rng: BlockChoices(n, d),
}

# Keyed constructors: name -> f(n, d, rng) -> KeyedChoices.  The names
# "double" and "random" deliberately exist in both tables: in a keyed
# context they mean the keyed analogue of the same process (two
# multiply-shift hashes double-hashed, resp. d independent hashes).
_KEYED_BUILDERS: dict = {
    "double": lambda n, d, rng: DoubleHashedKeyed(
        n, d, family="multiply-shift", rng=rng
    ),
    "random": lambda n, d, rng: IndependentKeyed(
        n, d, family="multiply-shift", rng=rng
    ),
    "multiply-shift": lambda n, d, rng: DoubleHashedKeyed(
        n, d, family="multiply-shift", rng=rng
    ),
    "tabulation": lambda n, d, rng: IndependentKeyed(
        n, d, family="tabulation", rng=rng
    ),
    "tabulation-double": lambda n, d, rng: DoubleHashedKeyed(
        n, d, family="tabulation", rng=rng
    ),
    "universal": lambda n, d, rng: IndependentKeyed(
        n, d, family="universal", rng=rng
    ),
    "pairwise": lambda n, d, rng: IndependentKeyed(
        n, d, family="pairwise", rng=rng
    ),
    "pairwise-double": lambda n, d, rng: DoubleHashedKeyed(
        n, d, family="pairwise", rng=rng
    ),
}


@dataclass(frozen=True)
class SchemeInfo:
    """One registry row of the hash-family zoo's empirical map.

    The single transcription point for each scheme's theory pedigree:
    ``docs/hash-families.md``, the EXPERIMENTS.md scheme-sweep section,
    and the drift check all render from this table, never from copied
    literals.

    Attributes
    ----------
    name:
        Registry name (a :func:`make_scheme` key).
    constructor:
        The class (and wiring) the name resolves to, human-readable.
    guarantee:
        The independence/uniformity guarantee the construction carries.
    citation:
        Where the guarantee (or the scheme) is proved or defined.
    """

    name: str
    constructor: str
    guarantee: str
    citation: str


#: Theory metadata for every registry name, keyed by name.
SCHEME_INFO: dict[str, SchemeInfo] = {
    info.name: info
    for info in (
        SchemeInfo(
            "random", "FullyRandomChoices (distinct)",
            "d fully random distinct bins per ball",
            "Mitzenmacher, SPAA 2014 (baseline)",
        ),
        SchemeInfo(
            "random-replace", "FullyRandomChoices (replacement)",
            "d fully random bins per ball, with replacement",
            "Mitzenmacher, SPAA 2014 (Sec. 2)",
        ),
        SchemeInfo(
            "double", "DoubleHashingChoices",
            "pairwise-uniform (f, g) drawn fresh per ball",
            "Mitzenmacher, SPAA 2014 (subject)",
        ),
        SchemeInfo(
            "random-left", "PartitionedFullyRandom",
            "one fully random choice per d-left subtable",
            "Voecking, JACM 2003",
        ),
        SchemeInfo(
            "double-left", "PartitionedDoubleHashing",
            "double-hashed choices over d-left subtables",
            "Mitzenmacher, SPAA 2014 (Table 7)",
        ),
        SchemeInfo(
            "blocks", "BlockChoices",
            "two values address d contiguous-block choices",
            "Kenthapadi-Panigrahy, SODA 2006",
        ),
        SchemeInfo(
            "multiply-shift", "DoubleHashedKeyed(multiply-shift)",
            "keyed double hashing; f, g 2-universal up to a factor 2",
            "Dietzfelbinger et al., J. Algorithms 1997",
        ),
        SchemeInfo(
            "tabulation", "IndependentKeyed(tabulation)",
            "d independent simple-tabulation hashes, 3-independent",
            "Patrascu-Thorup, JACM 2012; arXiv:1804.09684",
        ),
        SchemeInfo(
            "tabulation-double", "DoubleHashedKeyed(tabulation)",
            "keyed double hashing; f, g simple tabulation",
            "Patrascu-Thorup, JACM 2012; arXiv:1407.6846",
        ),
        SchemeInfo(
            "universal", "IndependentKeyed(universal)",
            "d independent Carter-Wegman mod-prime hashes, 2-universal",
            "Carter-Wegman, JCSS 1979",
        ),
        SchemeInfo(
            "pairwise", "IndependentKeyed(pairwise)",
            "d independent affine hashes mod 2^61-1, exactly pairwise independent",
            "Carter-Wegman, JCSS 1979; paper's closing remark",
        ),
        SchemeInfo(
            "pairwise-double", "DoubleHashedKeyed(pairwise)",
            "keyed double hashing; f, g exactly pairwise independent",
            "Carter-Wegman, JCSS 1979; paper's closing remark",
        ),
    )
}


def scheme_info(name: str) -> SchemeInfo:
    """Look up a scheme's theory metadata by registry name."""
    key = resolve_scheme_name(name)
    return SCHEME_INFO[key]


def scheme_names() -> tuple[str, ...]:
    """All names :func:`make_scheme` accepts, sorted."""
    return tuple(sorted(set(_ENGINE_BUILDERS) | set(_KEYED_BUILDERS)))


def keyed_scheme_names() -> tuple[str, ...]:
    """All names :func:`make_keyed_scheme` accepts, sorted."""
    return tuple(sorted(_KEYED_BUILDERS))


def resolve_scheme_name(name: str | None = None) -> str:
    """Resolve a scheme name: explicit > ``REPRO_SCHEME`` env > default.

    Mirrors :func:`repro.kernels.resolve_backend`.  The resolved name is
    validated against the registry.
    """
    if name is None:
        name = os.environ.get(SCHEME_ENV_VAR) or None
    if name is None:
        name = DEFAULT_SCHEME
    name = name.strip().lower()
    if name not in set(_ENGINE_BUILDERS) | set(_KEYED_BUILDERS):
        raise ConfigurationError(
            f"unknown scheme {name!r}; expected one of {list(scheme_names())}"
        )
    return name


def make_scheme(
    name: str | None,
    n: int | None = None,
    d: int = 2,
    *,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    n_bins: int | None = None,
) -> ChoiceScheme:
    """Build an engine-facing scheme by registry name.

    Parameters
    ----------
    name:
        Registry name (see :func:`scheme_names`): the engine schemes
        (``"random"``, ``"double"``, ``"random-left"``, ``"double-left"``,
        ``"random-replace"``, ``"blocks"``) plus the keyed hash families
        (``"multiply-shift"``, ``"tabulation"``, ``"tabulation-double"``,
        ``"universal"``, ``"pairwise"``, ``"pairwise-double"``), which
        are wrapped in a
        :class:`~repro.hashing.keyed.KeyedStreamScheme`.  ``None``
        resolves via :func:`resolve_scheme_name` (``REPRO_SCHEME`` env,
        then ``"double"``).
    n:
        Number of bins.
    d:
        Choices per ball (default 2, the paper's headline case).
    rng, seed:
        Construction-time randomness for the keyed families (hash-table
        parameter draws); at most one may be given.  Stateless engine
        schemes ignore both.
    n_bins:
        .. deprecated:: 1.1
            Old name for ``n``; emits ``DeprecationWarning``.

    Raises
    ------
    ValueError
        For an unknown name (kept for backward compatibility with the
        pre-registry factory).
    """
    if n_bins is not None:
        if n is not None:
            raise ConfigurationError("pass n or n_bins, not both")
        warnings.warn(
            "make_scheme(..., n_bins=...) is deprecated; use the n "
            "parameter (removal two releases after 1.1)",
            DeprecationWarning,
            stacklevel=2,
        )
        n = n_bins
    if n is None:
        raise ConfigurationError("make_scheme requires the table size n")
    if rng is not None and seed is not None:
        raise ConfigurationError("pass rng or seed, not both")
    key = resolve_scheme_name(None) if name is None else name.strip().lower()
    if key in _ENGINE_BUILDERS:
        return _ENGINE_BUILDERS[key](n, d, None)
    if key in _KEYED_BUILDERS:
        gen = rng if rng is not None else default_generator(seed)
        return KeyedStreamScheme(_KEYED_BUILDERS[key](n, d, gen))
    raise ValueError(
        f"unknown scheme {name!r}; expected one of {list(scheme_names())}"
    )


def make_keyed_scheme(
    name: str | None,
    n: int,
    d: int = 2,
    *,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> KeyedChoices:
    """Build the keyed form of a scheme for key-addressed consumers.

    ``name=None`` resolves through :func:`resolve_scheme_name` (explicit >
    ``REPRO_SCHEME`` env > ``"double"``).  Only keyed-capable names are
    accepted — the purely per-ball engine schemes have no keyed form.
    """
    name = resolve_scheme_name(name)
    if name not in _KEYED_BUILDERS:
        raise ConfigurationError(
            f"scheme {name!r} has no keyed form; keyed schemes: "
            f"{list(keyed_scheme_names())}"
        )
    if rng is not None and seed is not None:
        raise ConfigurationError("pass rng or seed, not both")
    gen = rng if rng is not None else default_generator(seed)
    return _KEYED_BUILDERS[name](n, d, gen)
