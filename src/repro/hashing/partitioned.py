"""Partitioned (d-left) choice schemes for Vöcking's scheme (paper Table 7).

In Vöcking's scheme the ``n`` bins are split into ``d`` subtables of size
``n/d`` laid out left to right, and each ball gets exactly one candidate in
each subtable.  These schemes produce choices whose ``k``-th column lies in
subtable ``k``; the d-left *engine* (ties to the left) lives in
:mod:`repro.core.dleft` — the schemes here only control where candidates
fall, preserving the scheme/engine separation.

Double-hashing variant: a ball draws ``f`` uniform on ``[0, n/d)`` and a
stride ``g`` that is a unit mod ``n/d``; its candidate in subtable ``k`` is
``(f + k·g) mod (n/d)`` offset into that subtable.  This is the natural
translation of the paper's ``h(j,k) = f(j) + k·g(j)`` to the partitioned
layout: two hash values drive all ``d`` subtable positions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchemeError
from repro.hashing.base import ChoiceScheme
from repro.numtheory import sample_units

__all__ = ["PartitionedFullyRandom", "PartitionedDoubleHashing"]


class _PartitionedScheme(ChoiceScheme):
    """Shared geometry handling for the partitioned schemes."""

    def __init__(self, n_bins: int, d: int) -> None:
        super().__init__(n_bins, d)
        if n_bins % d != 0:
            raise SchemeError(
                f"d-left layout needs d | n_bins; got n_bins={n_bins}, d={d}"
            )
        self.subtable_size = n_bins // d
        # Column k of every row is offset into subtable k.
        self._offsets = (
            np.arange(d, dtype=np.int64) * self.subtable_size
        )

    @property
    def distinct(self) -> bool:
        """True: candidates live in disjoint subtables."""
        return True


class PartitionedFullyRandom(_PartitionedScheme):
    """One independent uniform choice per subtable (Vöcking baseline)."""

    def batch(self, trials: int, rng: np.random.Generator) -> np.ndarray:
        """One independent uniform local slot per subtable, offset-shifted."""
        local = rng.integers(
            0, self.subtable_size, size=(trials, self.d), dtype=np.int64
        )
        return local + self._offsets

    def describe(self) -> str:
        """Short human-readable label including the subtable geometry."""
        return (
            f"d-left fully-random(n_bins={self.n_bins}, d={self.d}, "
            f"subtable={self.subtable_size})"
        )


class PartitionedDoubleHashing(_PartitionedScheme):
    """Double hashing across subtables: ``(f + k·g) mod (n/d)`` in subtable ``k``.

    Requires ``n/d ≥ 2`` so a stride exists (for ``n/d == 1`` every choice
    is forced anyway).
    """

    def __init__(self, n_bins: int, d: int) -> None:
        super().__init__(n_bins, d)
        self._ks = np.arange(d, dtype=np.int64)

    def batch(self, trials: int, rng: np.random.Generator) -> np.ndarray:
        """Stride progressions across subtables with a shared ``(f, g)``."""
        size = self.subtable_size
        if size == 1:
            return np.broadcast_to(
                self._offsets, (trials, self.d)
            ).copy()
        f = rng.integers(0, size, size=trials, dtype=np.int64)
        g = sample_units(size, trials, rng)
        local = (f[:, None] + g[:, None] * self._ks) % size
        return local + self._offsets

    def describe(self) -> str:
        """Short human-readable label including the subtable geometry."""
        return (
            f"d-left double-hashing(n_bins={self.n_bins}, d={self.d}, "
            f"subtable={self.subtable_size})"
        )
