"""Graph-constrained choices (Kenthapadi–Panigrahy, related work [19]).

The other related-work model the paper discusses: the two choices of each
ball are **not** free — they must form an edge of a fixed random graph on
the bins, sampled once before the process starts.  Kenthapadi and Panigrahy
showed the two-choice `log log n` behaviour survives as long as the graph
is dense enough (degree ``n^ε`` suffices; sparse graphs degrade).

This scheme completes the library's randomness-reduction spectrum:

========================  ===========================  =====================
scheme                    fresh randomness per ball    structure constraint
========================  ===========================  =====================
fully random              d values                     none
double hashing            2 values                     arithmetic progression
KP blocks                 2 values                     two contiguous runs
graph choices             1 value (an edge index)      fixed pre-drawn graph
========================  ===========================  =====================
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.rng import default_generator

__all__ = ["GraphChoices"]


class GraphChoices(ChoiceScheme):
    """Two choices constrained to the edges of a fixed random graph.

    Parameters
    ----------
    n_bins:
        Number of bins (graph vertices).
    n_edges:
        Edges drawn once at construction (uniform pairs of distinct bins,
        with replacement across edges).  Each ball then picks a uniform
        edge; its candidates are that edge's endpoints.
    seed:
        Seeds the one-time graph draw (NOT the per-ball edge picks, which
        use the engine's rng as usual).
    """

    def __init__(
        self,
        n_bins: int,
        n_edges: int,
        *,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_bins, 2)
        if n_edges < 1:
            raise ConfigurationError(f"n_edges must be positive, got {n_edges}")
        if n_bins < 2:
            raise ConfigurationError(
                f"a graph needs at least 2 bins, got {n_bins}"
            )
        graph_rng = default_generator(seed)
        left = graph_rng.integers(0, n_bins, size=n_edges, dtype=np.int64)
        offset = graph_rng.integers(1, n_bins, size=n_edges, dtype=np.int64)
        right = (left + offset) % n_bins  # distinct endpoint
        self.edges = np.stack([left, right], axis=1)
        self.n_edges = int(n_edges)

    @property
    def distinct(self) -> bool:
        """True: edges are drawn with distinct endpoints."""
        return True

    @property
    def mean_degree(self) -> float:
        """Average bin degree ``2·|E|/n`` — the density knob of [19]."""
        return 2.0 * self.n_edges / self.n_bins

    def batch(self, trials: int, rng: np.random.Generator) -> np.ndarray:
        """One uniformly sampled edge (pair of bins) per trial row."""
        picks = rng.integers(0, self.n_edges, size=trials, dtype=np.int64)
        return self.edges[picks]

    def describe(self) -> str:
        """Short human-readable label including edge count and degree."""
        return (
            f"graph-choices(n_bins={self.n_bins}, edges={self.n_edges}, "
            f"mean_degree={self.mean_degree:.1f})"
        )
