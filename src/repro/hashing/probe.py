"""Probe-hash helpers for the open-addressed keymap kernel.

The assignment-map kernel (:mod:`repro.kernels.keymap`) is itself a
double-hashed open-addressed table — the service layer eating its own
dog food: a key's probe sequence is ``start + t * stride (mod capacity)``
with an odd ``stride``, so the sequence visits every slot of the
power-of-two table exactly once (the paper's "two cheap hashes" pitch
applied to the metadata structure, not just the bin placement).

Both probe values are carved out of **one** `splitmix64` finalizer pass
over the key: the high bits give the start slot, the low bits the
stride.  The finalizer matters — the service benchmarks insert
*sequential* key ranges, and a bare multiply-shift start/stride pair is
so correlated on arithmetic key streams that cohort probing degenerates
into hundred-round tails.  Splitmix64's xor-multiply chain breaks that
structure at the cost of three vector multiplies.

The scalar forms are the oracle the vectorized (and numba) forms are
tested bit-identical against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_PROBE_SEED",
    "probe_start_stride",
    "probe_start_stride_scalar",
    "splitmix64",
    "splitmix64_scalar",
]

#: Default keying constant for the probe hash.  Any fixed value works —
#: the probe layout never leaks into observable keymap results — but a
#: high-entropy constant keeps adversarial key sets out of scope for the
#: default configuration.
DEFAULT_PROBE_SEED = 0x9E3779B97F4A7C15

_U64 = np.uint64
_MASK64 = (1 << 64) - 1
#: Chunk size (elements) for the L2-resident vectorized mix: 2^15 x two
#: uint64 scratch rows = 512 KiB working set, comfortably inside L2.
_HASH_CHUNK = 1 << 15


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a ``uint64`` array.

    The standard Stafford mix13 constants; a bijection on 64-bit words,
    so distinct keys keep distinct probe identities.
    """
    x = (x + _U64(0x9E3779B97F4A7C15)).astype(_U64, copy=False)
    x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
    return x ^ (x >> _U64(31))


def splitmix64_scalar(x: int) -> int:
    """Pure-Python splitmix64 oracle, bit-identical to :func:`splitmix64`."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _check_cap_bits(cap_bits: int) -> None:
    if not 1 <= cap_bits <= 31:
        raise ConfigurationError(
            f"keymap capacity must be 2^1..2^31 slots, got cap_bits={cap_bits}"
        )


def probe_start_stride(
    keys: np.ndarray, cap_bits: int, seed: int = DEFAULT_PROBE_SEED
) -> tuple[np.ndarray, np.ndarray]:
    """Start slot and odd stride per key for a ``2**cap_bits``-slot table.

    One splitmix64 pass per key: the start slot comes from the top
    ``cap_bits`` bits of the mix, the stride from the bottom ``cap_bits``
    bits forced odd — a unit mod the power-of-two capacity, so each
    key's probe sequence is a full cycle.  Returns two ``int32`` arrays
    (capacity is capped at 2^31 slots, so slot arithmetic stays in the
    narrow dtype the gather kernels prefer).

    Parameters
    ----------
    keys:
        1-D ``int64`` key array (any values; the two's-complement bits
        are hashed).
    cap_bits:
        log2 of the table capacity, in ``[1, 31]``.
    seed:
        Keying constant XORed into the key before mixing.
    """
    _check_cap_bits(cap_bits)
    # In-place splitmix64 over L2-resident chunks: the mix is ~13
    # dependent passes over the batch, so streaming the whole array
    # through L3 each pass costs ~3x what 256 KiB working sets do.
    # This runs on every keymap operation's hot path.
    n = keys.size
    start = np.empty(n, dtype=np.int32)
    stride = np.empty(n, dtype=np.int32)
    chunk = min(n, _HASH_CHUNK) or 1
    x = np.empty(chunk, dtype=_U64)
    t = np.empty(chunk, dtype=_U64)
    kv = keys.view(_U64)
    seed64 = _U64(seed & _MASK64)
    sh_hi = _U64(64 - cap_bits)
    lo_mask = _U64((1 << cap_bits) - 1)
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        m = hi - lo
        xm = x[:m]
        tm = t[:m]
        np.bitwise_xor(kv[lo:hi], seed64, out=xm)
        xm += _U64(0x9E3779B97F4A7C15)
        np.right_shift(xm, _U64(30), out=tm)
        xm ^= tm
        xm *= _U64(0xBF58476D1CE4E5B9)
        np.right_shift(xm, _U64(27), out=tm)
        xm ^= tm
        xm *= _U64(0x94D049BB133111EB)
        np.right_shift(xm, _U64(31), out=tm)
        xm ^= tm
        np.right_shift(xm, sh_hi, out=tm)
        start[lo:hi] = tm
        xm &= lo_mask
        stride[lo:hi] = xm
    stride |= np.int32(1)
    return start, stride


def probe_start_stride_scalar(
    key: int, cap_bits: int, seed: int = DEFAULT_PROBE_SEED
) -> tuple[int, int]:
    """Scalar oracle for :func:`probe_start_stride` (one Python-int key)."""
    _check_cap_bits(cap_bits)
    mix = splitmix64_scalar((key & _MASK64) ^ (seed & _MASK64))
    return mix >> (64 - cap_bits), (mix & ((1 << cap_bits) - 1)) | 1
