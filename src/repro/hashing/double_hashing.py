"""Double hashing — the paper's subject scheme.

For each ball, draw ``f`` uniform on ``[0, n)`` and a stride ``g`` uniform
over the units mod ``n`` (numbers in ``[1, n)`` coprime to ``n``); the ``d``
choices are ``h_k = (f + k·g) mod n`` for ``k = 0, …, d−1``.

Because ``g`` is a unit, the map ``k ↦ k·g mod n`` is injective on
``[0, n)``, so the ``d`` choices are always distinct (for ``d ≤ n``) — the
property the paper relies on when comparing against fully-random choices
*without replacement*.

The entire batch is one broadcast expression, making this scheme strictly
cheaper than the fully-random scheme per ball — the practical advantage the
paper highlights for hardware and software implementations (two hash values
instead of ``d``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchemeError
from repro.hashing.base import ChoiceScheme
from repro.numtheory import count_units, sample_units

__all__ = ["DoubleHashingChoices"]


class DoubleHashingChoices(ChoiceScheme):
    """Choices ``(f + k·g) mod n`` with ``f`` uniform, ``g`` a uniform unit.

    Parameters
    ----------
    n_bins, d:
        Table geometry.  The paper recommends ``n_bins`` prime (all nonzero
        strides valid) or a power of two (odd strides valid); any modulus
        with at least one unit stride is accepted, with general moduli
        handled by rejection sampling of strides.

    Notes
    -----
    The choices of a single ball are **pairwise uniform**: each ``h_k`` is
    marginally uniform, and each pair ``(h_j, h_k)``, ``j ≠ k``, is uniform
    over ordered pairs of distinct bins — the sufficient condition the paper
    states for all of its results (Section 1, final remark).  The test suite
    verifies this empirically via :mod:`repro.hashing.pairwise`.
    """

    def __init__(self, n_bins: int, d: int) -> None:
        super().__init__(n_bins, d)
        if n_bins >= 2 and count_units(n_bins) == 0:  # pragma: no cover
            raise SchemeError(f"no valid strides mod {n_bins}")
        # Precompute the 0..d-1 multiplier row once; reused every batch.
        self._ks = np.arange(self.d, dtype=np.int64)

    @property
    def distinct(self) -> bool:
        """True: the stride is a unit, so the ``d`` probes never collide."""
        return True

    def batch(self, trials: int, rng: np.random.Generator) -> np.ndarray:
        """Arithmetic progressions ``(f + k·g) mod n`` with unit strides."""
        n = self.n_bins
        if n == 1:
            return np.zeros((trials, self.d), dtype=np.int64)
        f = rng.integers(0, n, size=trials, dtype=np.int64)
        g = sample_units(n, trials, rng)
        return (f[:, None] + g[:, None] * self._ks) % n

    def batch_planar(self, trials: int, rng: np.random.Generator) -> np.ndarray:
        """Planar ``(d, trials)`` choices via the stride recurrence.

        Plane ``k`` is ``plane[k-1] + g mod n`` computed with one add and
        a branchless wrap (both summands are in ``[0, n)``), skipping the
        broadcast multiply, the modulo, and the transpose of the generic
        path — this is the kernel layer's generation primitive.
        """
        n = self.n_bins
        d = self.d
        if n == 1:
            return np.zeros((d, trials), dtype=np.int64)
        out = np.empty((d, trials), dtype=np.int64)
        out[0] = rng.integers(0, n, size=trials, dtype=np.int64)
        g = sample_units(n, trials, rng)
        for k in range(1, d):
            plane = out[k]
            np.add(out[k - 1], g, out=plane)
            plane -= n
            wrap = plane >> 63  # -1 where the subtraction went negative
            wrap &= n
            plane += wrap
        return out

    def batch_with_hashes(
        self, trials: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`batch` but also return the raw ``(f, g)`` pairs.

        Used by analysis code (e.g. ancestry-list studies) that needs to
        reason about the underlying hash values, not just the choices.
        Shares :meth:`batch`'s ``n == 1`` early return (choices are all
        zeros, ``f = 0`` and ``g = 1``, no randomness consumed).
        """
        n = self.n_bins
        if n == 1:
            zeros = np.zeros(trials, dtype=np.int64)
            return (
                np.zeros((trials, self.d), dtype=np.int64),
                zeros,
                np.ones(trials, dtype=np.int64),
            )
        f = rng.integers(0, n, size=trials, dtype=np.int64)
        g = sample_units(n, trials, rng)
        choices = (f[:, None] + g[:, None] * self._ks) % n
        return choices, f, g

    def describe(self) -> str:
        """Short human-readable label including the geometry."""
        return f"double-hashing(n_bins={self.n_bins}, d={self.d})"
