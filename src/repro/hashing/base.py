"""The ``ChoiceScheme`` interface shared by all choice generators.

Design notes
------------
The vectorized engine in :mod:`repro.core.vectorized` simulates many trials
in lock-step: at each ball step it needs one row of ``d`` bin choices *per
trial*.  Schemes therefore expose a batched :meth:`ChoiceScheme.batch` that
returns a ``(trials, d)`` integer array in one numpy call — this is the
single hottest allocation in the library, so no per-ball Python object churn
is permitted on this path.

Schemes are stateless with respect to the ball sequence (each ball draws
fresh hash values), so the same scheme object can be shared across engines
and benchmark repetitions; all randomness comes from the ``rng`` argument.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ChoiceScheme"]


class ChoiceScheme(abc.ABC):
    """Generates the ``d`` candidate bins for each ball.

    Parameters
    ----------
    n_bins:
        Number of bins (table size), at least 1.
    d:
        Number of choices per ball, at least 1.
    """

    def __init__(self, n_bins: int, d: int) -> None:
        if n_bins < 1:
            raise ConfigurationError(f"n_bins must be positive, got {n_bins}")
        if d < 1:
            raise ConfigurationError(f"d must be positive, got {d}")
        if d > n_bins:
            raise ConfigurationError(
                f"cannot make {d} distinct choices from {n_bins} bins"
            )
        self.n_bins = int(n_bins)
        self.d = int(d)

    @abc.abstractmethod
    def batch(self, trials: int, rng: np.random.Generator) -> np.ndarray:
        """Return a ``(trials, d)`` int64 array of bin indices in [0, n_bins).

        Row ``t`` holds the choices for the next ball of trial ``t``.  Rows
        are mutually independent; the distribution within a row is the
        scheme's defining property.
        """

    def single(self, rng: np.random.Generator) -> np.ndarray:
        """Choices for one ball of one trial, as a length-``d`` array."""
        return self.batch(1, rng)[0]

    def batch_planar(self, trials: int, rng: np.random.Generator) -> np.ndarray:
        """Like :meth:`batch` but transposed: a ``(d, trials)`` array.

        Plane ``k`` holds the ``k``-th choice of every ball.  The kernel
        layer (:mod:`repro.kernels`) consumes this layout so each of its
        flat gathers walks one contiguous plane.  The default transposes
        :meth:`batch`; schemes with a natural per-plane recurrence (double
        hashing's constant stride) override it to skip the transpose and
        the modulo.
        """
        return np.ascontiguousarray(self.batch(trials, rng).T)

    @property
    def distinct(self) -> bool:
        """Whether the ``d`` choices within a row are guaranteed distinct.

        Subclasses override; the default is conservative.
        """
        return False

    def describe(self) -> str:
        """Human-readable one-line description used in reports."""
        return f"{type(self).__name__}(n_bins={self.n_bins}, d={self.d})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
