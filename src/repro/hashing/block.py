"""Kenthapadi–Panigrahy block choices (paper related work, ref. [19]).

Another reduced-randomness scheme the paper discusses: each ball makes only
*two* uniform random choices, but each choice selects a **contiguous block**
of ``d/2`` bins; the ball goes to the least loaded of the ``d`` bins.
Kenthapadi and Panigrahy showed this preserves the ``O(log log n)`` maximum
load.  Including it lets the experiment harness compare three
randomness-reduction strategies side by side: fully random (d values),
double hashing (2 values, arithmetic progression), and KP blocks (2 values,
two runs).

Unlike double hashing, the two blocks can overlap, so choices are not
guaranteed distinct; the engines handle repeated candidates naturally
(a repeated bin is simply considered once more at the same load).

Empirical contrast (see tests): KP blocks preserve the O(log log n)
*maximum load* but their load *distribution* measurably deviates from d
independent choices (in-block bins are adjacent, hence load-correlated) —
about +0.9 percentage points of empty bins at d = 4.  Double hashing shows
no such deviation, which is precisely the phenomenon the paper singles out:
not all randomness-reduction schemes are distribution-exact.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme

__all__ = ["BlockChoices"]


class BlockChoices(ChoiceScheme):
    """Two uniform choices, each expanded to a contiguous block of d/2 bins.

    Parameters
    ----------
    n_bins:
        Table size.
    d:
        Total candidates; must be even and at least 2 (two blocks of
        ``d/2``).  Blocks wrap modulo ``n_bins``.
    """

    def __init__(self, n_bins: int, d: int) -> None:
        super().__init__(n_bins, d)
        if d % 2 != 0:
            raise ConfigurationError(
                f"block scheme needs an even number of choices, got d={d}"
            )
        self.block = d // 2
        if self.block > n_bins:
            raise ConfigurationError(
                f"block of {self.block} exceeds table size {n_bins}"
            )
        self._offsets = np.arange(self.block, dtype=np.int64)

    @property
    def distinct(self) -> bool:
        """False: the two random blocks may overlap."""
        return False

    def batch(self, trials: int, rng: np.random.Generator) -> np.ndarray:
        """Two random contiguous blocks of ``block`` bins per trial row."""
        starts = rng.integers(0, self.n_bins, size=(trials, 2), dtype=np.int64)
        left = (starts[:, :1] + self._offsets) % self.n_bins
        right = (starts[:, 1:] + self._offsets) % self.n_bins
        return np.concatenate([left, right], axis=1)

    def describe(self) -> str:
        """Short human-readable label including the geometry."""
        return (
            f"kp-blocks(n_bins={self.n_bins}, d={self.d}, "
            f"block={self.block})"
        )
