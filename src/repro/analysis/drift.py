"""Directly measuring the drift of Lemma 5.

Lemma 5 is the paper's technical heart: under double hashing, with high
probability throughout the process,

    ``E[X_i(t + 1/n) − X_i(t)] = x_{i−1}(t)^d − x_i(t)^d + o(1)``

— the *drift* of the level-``i`` tail count matches the fully-random drift
up to vanishing terms.  This module measures the empirical drift directly:
run the process, and in a window around time ``t`` count how often a ball's
``d`` choices all have load ≥ i−1 but not all ≥ i (the event that increments
``X_i``), comparing the frequency against ``x_{i−1}^d − x_i^d`` evaluated at
the empirical tails.  Agreement here *is* Lemma 5, finite-n version.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.balls_bins import place_ball
from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.rng import default_generator

__all__ = ["DriftMeasurement", "measure_drift"]


@dataclass(frozen=True)
class DriftMeasurement:
    """Empirical vs. predicted drift of ``X_i`` in a time window.

    Attributes
    ----------
    level:
        The load level ``i`` measured.
    empirical_rate:
        Fraction of window balls that incremented ``X_i`` (all choices at
        load ≥ i−1, placement created a load-i bin).
    predicted_rate:
        ``x_{i−1}^d − x_i^d``, trapezoidally averaged between the tails at
        the window start and end (the tails move over a finite window, so
        a single-endpoint evaluation would be biased by O(window/n)) —
        the fully-random drift the lemma says double hashing matches.
    window_balls:
        Number of balls in the measurement window.
    """

    level: int
    empirical_rate: float
    predicted_rate: float
    window_balls: int

    @property
    def gap(self) -> float:
        """|empirical − predicted| — Lemma 5 says o(1) in n."""
        return abs(self.empirical_rate - self.predicted_rate)

    @property
    def standard_error(self) -> float:
        """Binomial standard error of the empirical rate."""
        p = max(min(self.predicted_rate, 1.0), 1e-12)
        return float(np.sqrt(p * (1 - p) / max(self.window_balls, 1)))


def measure_drift(
    scheme: ChoiceScheme,
    level: int,
    *,
    warmup_balls: int | None = None,
    window_balls: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> DriftMeasurement:
    """Measure the level-``level`` drift in a window after a warm-up.

    Parameters
    ----------
    scheme:
        Choice generator; ``n_bins`` sets the scale.
    level:
        The tail level ``i ≥ 1`` whose drift is measured.
    warmup_balls:
        Balls thrown before measuring (default ``n_bins // 2`` — inside
        the process, where all levels up to 2 are populated).
    window_balls:
        Measurement window length (default ``n_bins // 4``).  The window
        is short relative to ``n`` so the tails move little within it.
    """
    if level < 1:
        raise ConfigurationError(f"level must be >= 1, got {level}")
    rng = default_generator(seed)
    n = scheme.n_bins
    if warmup_balls is None:
        warmup_balls = n // 2
    if window_balls is None:
        window_balls = max(n // 4, 1)
    loads = np.zeros(n, dtype=np.int64)
    for _ in range(warmup_balls):
        place_ball(loads, scheme.single(rng), rng)

    def rate_now() -> float:
        x_below = float((loads >= level - 1).mean())
        x_at = float((loads >= level).mean())
        return x_below**scheme.d - x_at**scheme.d

    predicted_start = rate_now()
    increments = 0
    for _ in range(window_balls):
        choices = scheme.single(rng)
        chosen = place_ball(loads, choices, rng)
        if loads[chosen] == level:  # the placement created a load-`level` bin
            increments += 1
    # Trapezoid over the window: the drift function is smooth in t, so the
    # start/end average matches the window-mean rate to O((window/n)^2).
    predicted = 0.5 * (predicted_start + rate_now())
    return DriftMeasurement(
        level=level,
        empirical_rate=increments / window_balls,
        predicted_rate=predicted,
        window_balls=window_balls,
    )
