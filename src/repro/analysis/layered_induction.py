"""Theorem 10 / Appendix B: the layered-induction bound via the fluid limit.

The paper's Appendix B extends the fluid-limit machinery to a maximum-load
bound of ``log log n / log d + O(1)`` (avoiding the witness tree's ``O(d)``
term), by the Azar et al. layered induction with the recursion

    ``β_6 = n / (2e)``,
    ``β_{i+1} = 4 β_i^d / n^{d−1}``          (constant 4 instead of [3]'s e,
                                              absorbing the o(1) ancestry
                                              correction ``η``),

which satisfies ``β_i ≤ n / e^{d^{i−6}}``.  The induction runs while
``p_i = β_{i−1}^d / n^d ≥ n^{−1/5}``; after the crossing, two more Chernoff
rounds and a pair-union-bound round finish the argument (four extra levels).

This module computes the trajectory and the resulting bound, and offers a
comparator against simulated level counts ``z_i`` (the number of bins with
load ≥ i), which should sit far below the β envelope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["BetaTrajectory", "beta_trajectory", "layered_induction_bound"]

_START_LEVEL = 6


@dataclass(frozen=True)
class BetaTrajectory:
    """β_i envelope values from the Appendix B recursion.

    Attributes
    ----------
    levels:
        Load levels ``6, 7, …`` matching ``betas``.
    betas:
        Envelope on the number of bins with load ≥ level.
    stop_level:
        First level where ``p_i < n^{−1/5}`` (the induction hand-off).
    """

    n: int
    d: int
    levels: tuple[int, ...]
    betas: tuple[float, ...]
    stop_level: int

    def envelope_at(self, level: int) -> float:
        """β bound at ``level`` (n for levels below the recursion start)."""
        if level < _START_LEVEL:
            return float(self.n)
        idx = level - _START_LEVEL
        if idx < len(self.betas):
            return self.betas[idx]
        return self.betas[-1]


def beta_trajectory(n: int, d: int) -> BetaTrajectory:
    """Compute the β_i recursion until the induction hands off.

    >>> traj = beta_trajectory(2**14, 3)
    >>> traj.betas[0] == 2**14 / (2 * math.e)
    True
    """
    if n < 16:
        raise ConfigurationError(f"n must be at least 16, got {n}")
    if d < 2:
        raise ConfigurationError(f"d must be at least 2, got {d}")
    levels = [_START_LEVEL]
    betas = [n / (2 * math.e)]
    threshold = n ** (-1.0 / 5.0)
    level = _START_LEVEL
    while True:
        prev = betas[-1]
        p_next = prev**d / float(n) ** d
        if p_next < threshold or prev < 1.0:
            break
        level += 1
        levels.append(level)
        betas.append(4.0 * prev**d / float(n) ** (d - 1))
        if level > _START_LEVEL + 10 * max(
            1, math.ceil(math.log(max(math.log2(n), 2), d))
        ):  # pragma: no cover - safety against pathological parameters
            break
    return BetaTrajectory(
        n=n,
        d=d,
        levels=tuple(levels),
        betas=tuple(betas),
        stop_level=level,
    )


def layered_induction_bound(n: int, d: int) -> int:
    """Maximum-load bound ``i* + 4`` from Theorem 10.

    ``i*`` is the level where the β recursion hands off (``p_i < n^{−1/5}``);
    the paper then shows one more level reaches ``n^{5/6}`` bins, two
    Chernoff rounds reach ``e·n^{2/3}`` and ``e²·n^{1/3}``, and a union
    bound over bin pairs kills level ``i* + 4``.  The result is
    ``log log n / log d + O(1)``.

    >>> layered_induction_bound(2**14, 3)
    10
    """
    return beta_trajectory(n, d).stop_level + 4
