"""Executable versions of the paper's proof machinery.

Each module turns one of the paper's arguments into code that can be run,
measured, and tested:

- :mod:`repro.analysis.majorization` — Theorem 2's coupling: double hashing
  with ``d > 2`` choices is stochastically majorized by two fully-random
  choices.  The coupled simulation checks the majorization invariant at
  every step.
- :mod:`repro.analysis.witness_tree` — Theorem 4's bound
  ``log log n / log d + O(d)`` and its activation-probability ingredients.
- :mod:`repro.analysis.layered_induction` — Theorem 10 / Appendix B's
  ``β_i`` recursion and the resulting ``log log n / log d + O(1)`` bound.
- :mod:`repro.analysis.ancestry` — Lemma 6/7: ancestry-list construction
  from a recorded allocation history, size measurement (O(log n)) and
  disjointness of the d choices' lists.
- :mod:`repro.analysis.branching` — the Galton–Watson process that
  dominates ancestry growth, with the Karp–Zhang exponential tail.
- :mod:`repro.analysis.comparison` — the statistical meaning of
  "essentially indistinguishable": chi-square tests, sampling envelopes,
  and total-variation distances between load distributions.
"""

from repro.analysis.branching import (
    expected_population,
    simulate_branching_population,
)
from repro.analysis.comparison import (
    ComparisonReport,
    chi_square_comparison,
    compare_distributions,
    total_variation,
)
from repro.analysis.dleft_bound import (
    dleft_max_load_bound,
    phi_d,
    symmetric_max_load_coefficient,
)
from repro.analysis.layered_induction import (
    beta_trajectory,
    layered_induction_bound,
)
from repro.analysis.majorization import (
    coupled_majorization_run,
    majorizes,
)
from repro.analysis.witness_extraction import (
    WitnessTree,
    extract_witness_tree,
)
from repro.analysis.witness_tree import (
    leaf_activation_bound,
    pair_collision_bound,
    witness_tree_bound,
)

__all__ = [
    "ComparisonReport",
    "beta_trajectory",
    "chi_square_comparison",
    "compare_distributions",
    "WitnessTree",
    "coupled_majorization_run",
    "dleft_max_load_bound",
    "expected_population",
    "extract_witness_tree",
    "layered_induction_bound",
    "leaf_activation_bound",
    "majorizes",
    "pair_collision_bound",
    "phi_d",
    "simulate_branching_population",
    "symmetric_max_load_coefficient",
    "total_variation",
    "witness_tree_bound",
]
