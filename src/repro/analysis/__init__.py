"""Executable versions of the paper's proof machinery.

Each module turns one of the paper's arguments into code that can be run,
measured, and tested:

- :mod:`repro.analysis.majorization` — Theorem 2's coupling: double hashing
  with ``d > 2`` choices is stochastically majorized by two fully-random
  choices.  The coupled simulation checks the majorization invariant at
  every step.
- :mod:`repro.analysis.witness_tree` — Theorem 4's bound
  ``log log n / log d + O(d)`` and its activation-probability ingredients.
- :mod:`repro.analysis.layered_induction` — Theorem 10 / Appendix B's
  ``β_i`` recursion and the resulting ``log log n / log d + O(1)`` bound.
- :mod:`repro.analysis.ancestry` — Lemma 6/7: ancestry-list construction
  from a recorded allocation history, size measurement (O(log n)) and
  disjointness of the d choices' lists.
- :mod:`repro.analysis.branching` — the Galton–Watson process that
  dominates ancestry growth, with the Karp–Zhang exponential tail.
- :mod:`repro.analysis.comparison` — the statistical meaning of
  "essentially indistinguishable": chi-square tests, sampling envelopes,
  and total-variation distances between load distributions.
"""

from repro.analysis.branching import (
    expected_population,
    simulate_branching_population,
)
from repro.analysis.comparison import (
    ComparisonReport,
    HolmResult,
    chi_square_comparison,
    compare_distributions,
    cramers_v,
    holm_correction,
    sampling_envelope,
    total_variation,
)
from repro.analysis.dleft_bound import (
    dleft_max_load_bound,
    phi_d,
    symmetric_max_load_coefficient,
)
from repro.analysis.layered_induction import (
    beta_trajectory,
    layered_induction_bound,
)
from repro.analysis.majorization import (
    coupled_majorization_run,
    majorizes,
)
from repro.analysis.max_load_stats import (
    MaxLoadComparison,
    bootstrap_fraction_ci,
    bootstrap_mean_ci,
    compare_max_loads,
    max_load_fraction_ci,
)
from repro.analysis.witness_extraction import (
    WitnessTree,
    extract_witness_tree,
)
from repro.analysis.witness_tree import (
    leaf_activation_bound,
    pair_collision_bound,
    witness_tree_bound,
)

__all__ = [
    "ComparisonReport",
    "HolmResult",
    "MaxLoadComparison",
    "WitnessTree",
    "beta_trajectory",
    "bootstrap_fraction_ci",
    "bootstrap_mean_ci",
    "chi_square_comparison",
    "compare_distributions",
    "compare_max_loads",
    "coupled_majorization_run",
    "cramers_v",
    "dleft_max_load_bound",
    "expected_population",
    "extract_witness_tree",
    "holm_correction",
    "layered_induction_bound",
    "leaf_activation_bound",
    "majorizes",
    "max_load_fraction_ci",
    "pair_collision_bound",
    "phi_d",
    "sampling_envelope",
    "simulate_branching_population",
    "symmetric_max_load_coefficient",
    "total_variation",
    "witness_tree_bound",
]
