"""Lemmas 6 and 7: ancestry lists, their size, and their disjointness.

The *ancestry list* of bin ``b`` at time ``t`` (paper, proof of Lemma 5) is
built by following the allocation history backwards: start with the balls
that chose ``b`` before ``t``; for each such ball, recursively add the balls
that chose any of its other ``d − 1`` bins before that ball's own time, and
so on.  The bins encountered form the list; it contains all information
needed to determine ``b``'s load at ``t``.

The paper shows (Lemma 6) every ancestry list has ``O(log n)`` bins w.h.p.
(by domination with a branching process), and (Lemma 7) the ancestry lists
of a fresh ball's ``d`` choices are pairwise disjoint with probability
``1 − O(d² log² n / n)`` — the source of asymptotic independence and hence
of the shared fluid limit.

This module records an allocation history, constructs exact ancestry lists
from it, and measures both quantities so the lemmas can be checked
empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.balls_bins import place_ball
from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.rng import default_generator

__all__ = [
    "AllocationHistory",
    "record_history",
    "ancestry_bins",
    "ancestry_sizes_of_fresh_choices",
    "disjointness_rate",
]


@dataclass(frozen=True)
class AllocationHistory:
    """A recorded allocation run.

    Attributes
    ----------
    n_bins:
        Table size.
    choices:
        ``(n_balls, d)`` array; row ``j`` holds ball ``j``'s choices
        (ball times are row indices, earlier = smaller).
    placements:
        Bin that received each ball.
    """

    n_bins: int
    choices: np.ndarray
    placements: np.ndarray

    @property
    def n_balls(self) -> int:
        return self.choices.shape[0]


def record_history(
    scheme: ChoiceScheme,
    n_balls: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> AllocationHistory:
    """Run one trial, recording every ball's choices and placement."""
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    rng = default_generator(seed)
    loads = np.zeros(scheme.n_bins, dtype=np.int64)
    all_choices = np.empty((n_balls, scheme.d), dtype=np.int64)
    placements = np.empty(n_balls, dtype=np.int64)
    for j in range(n_balls):
        choices = scheme.single(rng)
        all_choices[j] = choices
        placements[j] = place_ball(loads, choices, rng)
    return AllocationHistory(
        n_bins=scheme.n_bins, choices=all_choices, placements=placements
    )


def _balls_by_bin(history: AllocationHistory) -> list[list[int]]:
    """Index: for each bin, the (ascending) ball times that chose it."""
    index: list[list[int]] = [[] for _ in range(history.n_bins)]
    for j in range(history.n_balls):
        for b in history.choices[j]:
            index[int(b)].append(j)
    return index


def ancestry_bins(
    history: AllocationHistory,
    bin_id: int,
    time: int,
    *,
    index: list[list[int]] | None = None,
    max_bins: int | None = None,
) -> set[int]:
    """The set of bins in the ancestry list of ``bin_id`` at ``time``.

    ``time`` is exclusive: balls with index < ``time`` are history.  The
    traversal is exact (iterative worklist over (bin, time-bound) states,
    deduplicated per bin with the loosest bound seen); ``max_bins`` caps
    work for pathological inputs, raising if exceeded.
    """
    if not 0 <= bin_id < history.n_bins:
        raise ConfigurationError(f"bin_id {bin_id} out of range")
    if index is None:
        index = _balls_by_bin(history)
    # best_bound[b] = largest time bound already explored for bin b; a bin
    # revisited with a smaller bound contributes nothing new.
    best_bound: dict[int, int] = {}
    result = {bin_id}
    stack: list[tuple[int, int]] = [(bin_id, time)]
    while stack:
        b, bound = stack.pop()
        seen = best_bound.get(b, -1)
        if bound <= seen:
            continue
        best_bound[b] = bound
        for j in index[b]:
            if j >= bound:
                break
            # Skip balls already fully covered by the previous exploration
            # of this bin (their recursion was already enqueued).
            if j < seen:
                continue
            for other in history.choices[j]:
                other = int(other)
                result.add(other)
                if max_bins is not None and len(result) > max_bins:
                    raise RuntimeError(
                        f"ancestry of bin {bin_id} exceeded {max_bins} bins"
                    )
                if other != b:
                    stack.append((other, j))
    return result


def ancestry_sizes_of_fresh_choices(
    history: AllocationHistory,
    fresh_choices: np.ndarray,
    *,
    time: int | None = None,
) -> list[int]:
    """Sizes of the ancestry lists of a fresh ball's ``d`` choices."""
    index = _balls_by_bin(history)
    t = history.n_balls if time is None else time
    return [
        len(ancestry_bins(history, int(b), t, index=index))
        for b in fresh_choices
    ]


def disjointness_rate(
    history: AllocationHistory,
    scheme: ChoiceScheme,
    samples: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> float:
    """Fraction of fresh balls whose d ancestry lists are pairwise disjoint.

    Lemma 7 predicts this tends to 1 at rate ``1 − O(d² log² n / n)``.
    """
    rng = default_generator(seed)
    index = _balls_by_bin(history)
    t = history.n_balls
    disjoint = 0
    for _ in range(samples):
        choices = scheme.single(rng)
        lists = [
            ancestry_bins(history, int(b), t, index=index) for b in choices
        ]
        union_size = len(set().union(*lists))
        if union_size == sum(len(s) for s in lists):
            disjoint += 1
    return disjoint / samples if samples else float("nan")
