"""Constructing actual witness trees from recorded allocation histories.

Section 2.2 *defines* witness trees; this module *builds* them.  If a bin
reaches load ``L``, the ball that brought it there is the root, and —
because that ball was placed in its **least loaded** choice — every one of
its ``d`` candidate bins held load at least ``L − 1`` at that moment.  For
each candidate, the ball that brought *it* to load ``L − 1`` becomes a
child, and so on down to a base load.  The resulting d-ary tree is the
combinatorial witness whose low probability of existence drives the
``log log n`` bound: its depth equals ``L − base``, so high loads require
deep (hence exponentially many-leaved, hence unlikely) witness structures.

Extraction doubles as a strong integrity check of the simulation engines:
if any placement had not been least-loaded, a required child ball would be
missing and extraction would fail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.ancestry import AllocationHistory
from repro.errors import ConfigurationError, SimulationError

__all__ = ["WitnessNode", "WitnessTree", "extract_witness_tree"]


@dataclass(frozen=True)
class WitnessNode:
    """One node of an extracted witness tree.

    Attributes
    ----------
    ball:
        Ball index (= its arrival time).
    bin:
        The bin this ball's placement witnesses.
    level:
        Load the placement brought ``bin`` to.
    children:
        One child per choice of ``ball`` (empty at the base level).
    """

    ball: int
    bin: int
    level: int
    children: tuple["WitnessNode", ...]

    def iter_nodes(self):
        yield self
        for child in self.children:
            yield from child.iter_nodes()


@dataclass(frozen=True)
class WitnessTree:
    """An extracted witness tree plus summary statistics.

    Attributes
    ----------
    root:
        The root node (the ball creating the target load).
    depth:
        Edge-depth of the tree (``target_load − base_load``).
    n_nodes:
        Total nodes.
    n_distinct_balls:
        Number of distinct balls among the nodes — the paper's argument
        first treats all-distinct trees, then handles repeats; this
        statistic shows how often repeats actually occur.
    """

    root: WitnessNode
    depth: int
    n_nodes: int
    n_distinct_balls: int


def _placement_index(history: AllocationHistory) -> list[list[int]]:
    """For each bin, the balls *placed* in it, in time order.

    The ball at position ``k`` (0-based) brought the bin to load ``k+1``.
    """
    placed: list[list[int]] = [[] for _ in range(history.n_bins)]
    for j in range(history.n_balls):
        placed[int(history.placements[j])].append(j)
    return placed


def extract_witness_tree(
    history: AllocationHistory,
    bin_id: int | None = None,
    *,
    target_load: int | None = None,
    base_load: int = 1,
) -> WitnessTree:
    """Extract the witness tree for ``bin_id`` reaching ``target_load``.

    Parameters
    ----------
    history:
        A recorded run (see :func:`repro.analysis.ancestry.record_history`).
    bin_id:
        Target bin; defaults to (one of) the maximum-loaded bin(s).
    target_load:
        Load level to witness; defaults to the bin's final load.  Must be
        at least ``base_load``.
    base_load:
        Recursion floor: nodes at this level become leaves.  The paper's
        argument uses base 3 (most bins have load < 3 at any time); base 1
        yields the full tree.

    Raises
    ------
    SimulationError
        If the history is inconsistent with least-loaded placement (a
        required witness ball is missing) — this would indicate an engine
        bug and is asserted against in tests.
    """
    if base_load < 1:
        raise ConfigurationError(f"base_load must be >= 1, got {base_load}")
    placed = _placement_index(history)
    loads = np.zeros(history.n_bins, dtype=np.int64)
    for j in range(history.n_balls):
        loads[history.placements[j]] += 1
    if bin_id is None:
        bin_id = int(np.argmax(loads))
    if not 0 <= bin_id < history.n_bins:
        raise ConfigurationError(f"bin_id {bin_id} out of range")
    final_load = int(loads[bin_id])
    if target_load is None:
        target_load = final_load
    if target_load < base_load:
        raise ConfigurationError(
            f"target_load {target_load} below base_load {base_load}"
        )
    if target_load > final_load:
        raise ConfigurationError(
            f"bin {bin_id} only reached load {final_load}, "
            f"cannot witness {target_load}"
        )

    def build(b: int, level: int, before: int) -> WitnessNode:
        """Node for the ball that brought bin ``b`` to ``level`` before
        time ``before`` (exclusive)."""
        candidates = placed[b]
        if level - 1 >= len(candidates):
            raise SimulationError(
                f"bin {b} never reached load {level}: inconsistent history"
            )
        ball = candidates[level - 1]
        if ball >= before:
            raise SimulationError(
                f"bin {b} reached load {level} only at time {ball}, "
                f"after the parent ball {before}: inconsistent history"
            )
        if level <= base_load:
            children: tuple[WitnessNode, ...] = ()
        else:
            children = tuple(
                build(int(choice), level - 1, ball)
                for choice in history.choices[ball]
            )
        return WitnessNode(ball=ball, bin=b, level=level, children=children)

    root = build(bin_id, target_load, history.n_balls)
    nodes = list(root.iter_nodes())
    return WitnessTree(
        root=root,
        depth=target_load - base_load,
        n_nodes=len(nodes),
        n_distinct_balls=len({n.ball for n in nodes}),
    )
