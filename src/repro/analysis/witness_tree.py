"""Theorem 4: the witness-tree maximum-load bound under double hashing.

The paper modifies Vöcking's witness-tree argument to cope with the
correlated choices of double hashing.  The quantitative pieces, exposed here
as functions so they can be tabulated and tested:

- a leaf is *active* if some earlier ball hit two of its ``d`` bins
  (probability ``O(d^4 / n)``, :func:`pair_collision_bound`) or all ``d``
  bins were each chosen by ``4d`` earlier balls (probability
  ``< (e/4)^d < 1/3`` per bin via a binomial tail,
  :func:`leaf_activation_bound`);
- an active witness tree of depth ``L`` with ``q = d^L`` leaves exists with
  probability at most ``n · 2^{−d^L}``, giving the maximum-load bound
  ``L + 4d`` with ``L = log_d log_2 n + log_d(1 + α)``
  (:func:`witness_tree_bound`, failure probability ``O(n^{−α})``).

:func:`empirical_max_load_check` runs simulations and confirms observed
maximum loads stay below the bound — the bound is very loose for practical
``n`` (as the paper notes, the ``O(d)`` additive term dominates), so this
is a sanity check, not a tightness claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "WitnessTreeBound",
    "empirical_max_load_check",
    "leaf_activation_bound",
    "pair_collision_bound",
    "witness_tree_bound",
]


def leaf_activation_bound(d: int) -> float:
    """Bound on Pr[a specific bin was chosen by ≥ 4d earlier balls].

    The paper bounds ``C(n, 4d) (d/n)^{4d} ≤ d^{4d}/(4d)! < (e/4)^d``;
    we return the middle (tighter) form ``d^{4d}/(4d)!``.
    For ``d ≥ 3`` this is below 1/3, the constant the argument needs.
    """
    if d < 1:
        raise ConfigurationError(f"d must be positive, got {d}")
    return d ** (4 * d) / math.factorial(4 * d)


def pair_collision_bound(n: int, d: int) -> float:
    """Bound on Pr[some earlier ball hit ≥ 2 of a leaf's d bins].

    Counting as the paper does: ``C(d,2)`` bin pairs at the leaf, at most
    ``d(d−1)`` position pairs in an earlier ball, at most ``n`` earlier
    balls, each specific (pair, positions) event with probability
    ``1/(n(n−1))`` — in total ``O(d^4/n)``.
    """
    if n < 2:
        raise ConfigurationError(f"n must be at least 2, got {n}")
    if d < 2:
        raise ConfigurationError(f"d must be at least 2, got {d}")
    pairs_at_leaf = d * (d - 1) / 2
    position_pairs = d * (d - 1)
    return pairs_at_leaf * position_pairs * n / (n * (n - 1))


@dataclass(frozen=True)
class WitnessTreeBound:
    """The Theorem 4 bound and its components.

    Attributes
    ----------
    depth:
        Witness-tree depth ``L = ⌈log_d log_2 n + log_d(1 + α)⌉``.
    max_load_bound:
        ``L + 4d`` — loads above this require an active witness tree.
    failure_probability:
        ``n · 2^{−d^L}``, the union bound over witness trees.
    """

    n: int
    d: int
    alpha: float
    depth: int
    max_load_bound: int
    failure_probability: float


def witness_tree_bound(n: int, d: int, alpha: float = 1.0) -> WitnessTreeBound:
    """Evaluate Theorem 4's bound: max load ≤ log_d log_2 n + O(d) w.h.p.

    >>> witness_tree_bound(2**14, 3).max_load_bound
    16
    """
    if n < 4:
        raise ConfigurationError(f"n must be at least 4, got {n}")
    if d < 2:
        raise ConfigurationError(f"d must be at least 2, got {d}")
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    depth = math.ceil(
        math.log(math.log2(n), d) + math.log(1 + alpha, d)
    )
    depth = max(depth, 1)
    leaves = d**depth
    # 2^{-d^L} underflows fast; compute in log space.
    log2_failure = math.log2(n) - leaves
    failure = 2.0**log2_failure if log2_failure > -1020 else 0.0
    return WitnessTreeBound(
        n=n,
        d=d,
        alpha=alpha,
        depth=depth,
        max_load_bound=depth + 4 * d,
        failure_probability=failure,
    )


def empirical_max_load_check(
    max_loads: list[int] | tuple[int, ...],
    n: int,
    d: int,
    alpha: float = 1.0,
) -> bool:
    """True when every observed maximum load respects the Theorem 4 bound."""
    bound = witness_tree_bound(n, d, alpha).max_load_bound
    return all(m <= bound for m in max_loads)
