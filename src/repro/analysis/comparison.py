"""Statistical meaning of "essentially indistinguishable".

The paper's empirical claim is that, at every load level, the fraction of
bins under double hashing sits *within sampling error* of the fraction under
fully random hashing.  This module quantifies that:

- :func:`chi_square_comparison` — a two-sample chi-square homogeneity test
  over the pooled load histograms (small-expectation cells merged);
- :func:`total_variation` — TV distance between the two empirical load
  distributions;
- :func:`sampling_envelope` — the per-level standard error implied by the
  trial count, the yardstick the paper's "well within experimental
  variance" refers to;
- :func:`compare_distributions` — all of the above in one report object
  with an overall verdict;
- :func:`cramers_v` — the chi-square effect size, so "not significant"
  can be distinguished from "significant but negligible";
- :func:`holm_correction` — step-down multiple-testing control, used by
  the certification runner when one claim is tested across many tables
  and load levels at once.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.types import LoadDistribution

__all__ = [
    "ComparisonReport",
    "HolmResult",
    "chi_square_comparison",
    "compare_distributions",
    "cramers_v",
    "holm_correction",
    "sampling_envelope",
    "total_variation",
]


def _aligned_counts(
    a: LoadDistribution, b: LoadDistribution
) -> tuple[np.ndarray, np.ndarray]:
    width = max(len(a.counts), len(b.counts))
    ca = np.zeros(width, dtype=np.int64)
    cb = np.zeros(width, dtype=np.int64)
    ca[: len(a.counts)] = a.counts
    cb[: len(b.counts)] = b.counts
    return ca, cb


def total_variation(a: LoadDistribution, b: LoadDistribution) -> float:
    """Total-variation distance between the two empirical load laws."""
    ca, cb = _aligned_counts(a, b)
    pa = ca / ca.sum()
    pb = cb / cb.sum()
    return 0.5 * float(np.abs(pa - pb).sum())


def sampling_envelope(dist: LoadDistribution, load: int, z: float = 2.0) -> float:
    """``z`` standard errors of the fraction estimate at ``load``.

    Treats bins as independent Bernoulli observations — an approximation
    (bin loads within a trial are negatively correlated), so the envelope
    is slightly conservative in the right direction for an
    indistinguishability claim.
    """
    p = dist.fraction_at(load)
    n_obs = dist.trials * dist.n_bins
    return z * float(np.sqrt(max(p * (1 - p), 1e-300) / n_obs))


def chi_square_comparison(
    a: LoadDistribution,
    b: LoadDistribution,
    *,
    min_expected: float = 5.0,
) -> tuple[float, float, int]:
    """Two-sample chi-square homogeneity test over pooled load histograms.

    Cells with expected count below ``min_expected`` are merged into their
    lower neighbour (standard practice for sparse tails).  Returns
    ``(statistic, p_value, dof)``.  A *large* p-value means the two load
    distributions are statistically indistinguishable at this sample size.
    """
    ca, cb = _aligned_counts(a, b)
    # Merge sparse tail cells from the top down.
    while len(ca) > 2:
        total = ca[-1] + cb[-1]
        expected_a = total * ca.sum() / (ca.sum() + cb.sum())
        if min(expected_a, total - expected_a) >= min_expected:
            break
        ca = np.concatenate([ca[:-2], [ca[-2] + ca[-1]]])
        cb = np.concatenate([cb[:-2], [cb[-2] + cb[-1]]])
    keep = (ca + cb) > 0
    table = np.vstack([ca[keep], cb[keep]])
    if table.shape[1] < 2:
        return (0.0, 1.0, 0)
    statistic, p_value, dof, _ = sps.chi2_contingency(table)
    return (float(statistic), float(p_value), int(dof))


def cramers_v(a: LoadDistribution, b: LoadDistribution) -> float:
    """Cramér's V effect size for the two-sample homogeneity table.

    For a 2-row contingency table ``V = sqrt(chi2 / N)`` with ``N`` the
    pooled observation count.  V is scale-free in [0, 1]; values below
    ~0.01 are conventionally negligible even when a huge sample makes
    the chi-square test formally significant.
    """
    statistic, _, dof = chi_square_comparison(a, b)
    if dof == 0:
        return 0.0
    ca, cb = _aligned_counts(a, b)
    n_obs = float(ca.sum() + cb.sum())
    return float(np.sqrt(statistic / max(n_obs, 1.0)))


@dataclass(frozen=True)
class HolmResult:
    """Outcome of a Holm step-down multiple-testing correction.

    Attributes
    ----------
    adjusted:
        Holm-adjusted p-values, in the input order (monotone-enforced,
        clipped at 1).
    reject:
        Per-hypothesis rejection flags at the family-wise ``alpha``.
    alpha:
        The family-wise significance level used.
    """

    adjusted: tuple[float, ...]
    reject: tuple[bool, ...]
    alpha: float

    @property
    def any_rejected(self) -> bool:
        """Whether any hypothesis in the family was rejected."""
        return any(self.reject)


def holm_correction(
    p_values: Sequence[float], *, alpha: float = 0.05
) -> HolmResult:
    """Holm's step-down correction over a family of p-values.

    Controls the family-wise error rate at ``alpha`` without the
    independence assumptions of Šidák: sort the p-values, compare the
    k-th smallest against ``alpha / (m - k)``, and stop at the first
    acceptance.  Adjusted p-values are ``max-accumulated`` so they are
    monotone in the raw ordering and directly comparable to ``alpha``.

    Used by the certification runner: the paper's equivalence claim is
    tested once per table (and per load level inside a table), so a raw
    1%-significance test repeated 20 times would reject a true claim
    ~18% of the time; Holm keeps the family-wise rate at ``alpha``.
    """
    p = np.asarray(list(p_values), dtype=float)
    if p.size == 0:
        return HolmResult(adjusted=(), reject=(), alpha=alpha)
    if np.any((p < 0) | (p > 1) | ~np.isfinite(p)):
        raise ValueError("p-values must be finite and in [0, 1]")
    m = p.size
    order = np.argsort(p, kind="stable")
    factors = m - np.arange(m)
    stepped = np.maximum.accumulate(p[order] * factors)
    adjusted = np.minimum(stepped, 1.0)
    reject_sorted = np.zeros(m, dtype=bool)
    for k in range(m):
        if p[order][k] <= alpha / (m - k):
            reject_sorted[k] = True
        else:
            break
    adj = np.empty(m)
    rej = np.empty(m, dtype=bool)
    adj[order] = adjusted
    rej[order] = reject_sorted
    return HolmResult(
        adjusted=tuple(float(x) for x in adj),
        reject=tuple(bool(x) for x in rej),
        alpha=alpha,
    )


@dataclass(frozen=True)
class ComparisonReport:
    """Full indistinguishability report between two load distributions.

    Attributes
    ----------
    tv_distance:
        Total-variation distance between the empirical laws.
    chi2_statistic, p_value, dof:
        Chi-square homogeneity test results.
    max_deviation:
        Largest |fraction difference| over load levels.
    max_deviation_sigmas:
        That deviation divided by its pooled standard error — the "how many
        sampling sigmas apart are they" number.
    indistinguishable:
        Verdict at the configured significance level.
    """

    tv_distance: float
    chi2_statistic: float
    p_value: float
    dof: int
    max_deviation: float
    max_deviation_sigmas: float
    indistinguishable: bool


def compare_distributions(
    a: LoadDistribution,
    b: LoadDistribution,
    *,
    significance: float = 0.01,
) -> ComparisonReport:
    """Compare two load distributions; verdict via the chi-square test.

    ``indistinguishable`` is True when the homogeneity test fails to reject
    at ``significance`` — i.e. the data are consistent with one common load
    law, the paper's empirical claim.
    """
    ca, cb = _aligned_counts(a, b)
    pa = ca / ca.sum()
    pb = cb / cb.sum()
    diffs = np.abs(pa - pb)
    # Pooled standard error per level.
    pooled = (ca + cb) / (ca.sum() + cb.sum())
    se = np.sqrt(
        np.maximum(pooled * (1 - pooled), 1e-300)
        * (1.0 / ca.sum() + 1.0 / cb.sum())
    )
    with np.errstate(invalid="ignore"):
        sigmas = np.where(diffs > 0, diffs / se, 0.0)
    statistic, p_value, dof = chi_square_comparison(a, b)
    return ComparisonReport(
        tv_distance=total_variation(a, b),
        chi2_statistic=statistic,
        p_value=p_value,
        dof=dof,
        max_deviation=float(diffs.max()),
        max_deviation_sigmas=float(sigmas.max()),
        indistinguishable=p_value > significance,
    )
