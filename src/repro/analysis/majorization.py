"""Theorem 2 as an executable coupling.

The paper couples two processes over the *sorted* load vectors:

- Process **X**: each ball picks two distinct bins uniformly; the less
  loaded one (the deeper position in the sorted-descending order) gains the
  ball.
- Process **Y**: each ball has ``d`` choices by double hashing; under the
  coupling, if X picked sorted positions ``a`` and ``b``, Y's choices are
  the positions ``a, b, 2b−a, 3b−2a, … (mod n)`` — an arithmetic
  progression of sorted positions with stride ``b − a``, exactly the double
  hashing pattern — and the deepest (least loaded) of them gains the ball.

Lemma 1 (if ``x`` majorizes ``y`` then ``x + e_i`` majorizes ``y + e_j``
for ``j ≥ i``) then gives by induction that X's sorted vector majorizes
Y's at every step: Y increments a position at least as deep as X's, because
Y minimizes over a superset containing X's two positions.

:func:`coupled_majorization_run` simulates the coupling and *checks the
invariant after every ball*, providing a machine-verified instance of the
theorem; the hypothesis tests randomize over (n, m, d, seed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import default_generator

__all__ = ["majorizes", "coupled_majorization_run", "MajorizationTrace"]


def majorizes(x: np.ndarray, y: np.ndarray) -> bool:
    """True when ``sorted(x, desc)`` majorizes ``sorted(y, desc)``.

    Majorization requires equal totals and dominating prefix sums at every
    index.
    """
    x = np.sort(np.asarray(x))[::-1]
    y = np.sort(np.asarray(y))[::-1]
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.sum() != y.sum():
        return False
    return bool(np.all(np.cumsum(x) >= np.cumsum(y)))


@dataclass(frozen=True)
class MajorizationTrace:
    """Outcome of a coupled run.

    Attributes
    ----------
    holds:
        True when the majorization invariant held after every ball.
    first_violation:
        Ball index of the first violation, or -1.
    final_max_x, final_max_y:
        Final maximum loads of the two processes (X should dominate).
    """

    holds: bool
    first_violation: int
    final_max_x: int
    final_max_y: int


def coupled_majorization_run(
    n_bins: int,
    n_balls: int,
    d: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> MajorizationTrace:
    """Run the Theorem 2 coupling and verify majorization at every step.

    Both processes are tracked as sorted-descending load vectors; position
    indices *are* the coupled choices.  Note that because placements go to
    positions (not fixed bins), re-sorting after each increment keeps the
    state canonical; an increment at the last tied position of its value
    class preserves sortedness, which is how placements are applied.
    """
    if d < 2:
        raise ConfigurationError(f"the coupling needs d >= 2, got {d}")
    if n_bins < 2:
        raise ConfigurationError(f"n_bins must be at least 2, got {n_bins}")
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    rng = default_generator(seed)
    x = np.zeros(n_bins, dtype=np.int64)  # sorted descending at all times
    y = np.zeros(n_bins, dtype=np.int64)
    ks = np.arange(d, dtype=np.int64)
    first_violation = -1

    for ball in range(n_balls):
        a = int(rng.integers(0, n_bins))
        b = int(rng.integers(0, n_bins - 1))
        if b >= a:
            b += 1  # distinct pair (a, b), order kept — stride may be ±
        # X: two choices at sorted positions a, b; deeper index = lower load.
        pos_x = max(a, b)
        _increment_sorted(x, pos_x)
        # Y: arithmetic progression a + k(b - a) mod n — the double-hashing
        # pattern in position space; place at the deepest chosen position.
        positions = (a + ks * (b - a)) % n_bins
        pos_y = int(positions.max())
        _increment_sorted(y, pos_y)
        if first_violation < 0 and not _majorizes_sorted(x, y):
            first_violation = ball
    return MajorizationTrace(
        holds=first_violation < 0,
        first_violation=first_violation,
        final_max_x=int(x[0]),
        final_max_y=int(y[0]),
    )


def _increment_sorted(loads: np.ndarray, position: int) -> None:
    """Add a ball at sorted ``position``, keeping ``loads`` sorted descending.

    Incrementing the *first* position holding the same value as
    ``loads[position]`` preserves sorted order and represents the same
    multiset update (bins of equal load are interchangeable).
    """
    value = loads[position]
    first = int(np.searchsorted(-loads, -value))
    loads[first] += 1


def _majorizes_sorted(x: np.ndarray, y: np.ndarray) -> bool:
    """Majorization check for already-sorted-descending equal-sum vectors."""
    return bool(np.all(np.cumsum(x) >= np.cumsum(y)))
