"""Statistical comparison of maximum-load distributions (Table 4's lens).

Table 4 compares the *fraction of trials* whose maximum load equals 3.
Because max loads are small integers concentrated on two or three values,
the right comparison is a contingency test over per-trial max-load counts;
this module provides it plus binomial confidence intervals for single
fractions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.types import LoadDistribution

__all__ = [
    "MaxLoadComparison",
    "bootstrap_fraction_ci",
    "bootstrap_mean_ci",
    "compare_max_loads",
    "max_load_fraction_ci",
]


def max_load_fraction_ci(
    dist: LoadDistribution, load: int, *, z: float = 1.96
) -> tuple[float, float, float]:
    """``(fraction, low, high)`` Wilson interval for P(max load == load).

    The Wilson interval behaves correctly near 0 and 1, where Table 4's
    fractions live for most n.
    """
    k = int(np.sum(dist.max_load_per_trial == load))
    n = len(dist.max_load_per_trial)
    if n == 0:
        return (float("nan"), float("nan"), float("nan"))
    p = k / n
    denom = 1 + z**2 / n
    center = (p + z**2 / (2 * n)) / denom
    half = (
        z * math.sqrt(p * (1 - p) / n + z**2 / (4 * n**2)) / denom
    )
    return (p, max(0.0, center - half), min(1.0, center + half))


def bootstrap_mean_ci(
    values: np.ndarray,
    *,
    n_boot: int = 2000,
    alpha: float = 0.05,
    seed: int = 0,
) -> tuple[float, float, float]:
    """``(mean, low, high)`` percentile-bootstrap CI for the sample mean.

    Used by the certification runner on per-trial maximum loads, whose
    distribution is a few-atom integer law where normal-theory intervals
    misbehave.  Deterministic for a given ``seed``; degenerate samples
    (all equal) return a zero-width interval.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return (float("nan"), float("nan"), float("nan"))
    mean = float(values.mean())
    if np.all(values == values[0]):
        return (mean, mean, mean)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, values.size, size=(n_boot, values.size))
    means = values[idx].mean(axis=1)
    low, high = np.quantile(means, [alpha / 2, 1 - alpha / 2])
    return (mean, float(low), float(high))


def bootstrap_fraction_ci(
    values: np.ndarray,
    target,
    *,
    n_boot: int = 2000,
    alpha: float = 0.05,
    seed: int = 0,
) -> tuple[float, float, float]:
    """``(fraction, low, high)`` bootstrap CI for ``P(value == target)``.

    The bootstrap analogue of :func:`max_load_fraction_ci` — Table 4's
    observable resampled rather than Wilson-approximated, so the two
    interval constructions can cross-check each other.
    """
    values = np.asarray(values)
    if values.size == 0:
        return (float("nan"), float("nan"), float("nan"))
    hits = (values == target).astype(float)
    return bootstrap_mean_ci(hits, n_boot=n_boot, alpha=alpha, seed=seed)


@dataclass(frozen=True)
class MaxLoadComparison:
    """Contingency-test comparison of two max-load samples.

    Attributes
    ----------
    p_value:
        From a chi-square contingency test over max-load values (Fisher
        exact for 2x2 tables with small counts).
    table_values:
        The max-load values compared.
    counts_a, counts_b:
        Per-value trial counts for each sample.
    indistinguishable:
        Verdict at the configured significance.
    """

    p_value: float
    table_values: tuple[int, ...]
    counts_a: tuple[int, ...]
    counts_b: tuple[int, ...]
    indistinguishable: bool


def compare_max_loads(
    a: LoadDistribution,
    b: LoadDistribution,
    *,
    significance: float = 0.01,
) -> MaxLoadComparison:
    """Test whether two max-load samples come from one distribution."""
    values = sorted(
        set(a.max_load_per_trial.tolist()) | set(b.max_load_per_trial.tolist())
    )
    counts_a = [int(np.sum(a.max_load_per_trial == v)) for v in values]
    counts_b = [int(np.sum(b.max_load_per_trial == v)) for v in values]
    table = np.array([counts_a, counts_b])
    # Drop all-zero columns (cannot occur by construction, but be safe).
    keep = table.sum(axis=0) > 0
    table = table[:, keep]
    if table.shape[1] < 2:
        p_value = 1.0
    elif table.shape[1] == 2 and table.min() < 5:
        _, p_value = sps.fisher_exact(table)
    else:
        _, p_value, _, _ = sps.chi2_contingency(table)
    return MaxLoadComparison(
        p_value=float(p_value),
        table_values=tuple(values),
        counts_a=tuple(counts_a),
        counts_b=tuple(counts_b),
        indistinguishable=p_value > significance,
    )
