"""Vöcking's asymmetric bound: ``ln ln n / (d·ln φ_d) + O(1)``.

The point of the d-left scheme (paper Table 7; Vöcking 2003) is a better
*constant*: with ``d`` subtables and ties to the left the maximum load is
``ln ln n / (d·ln φ_d) + O(1)``, where ``φ_d`` is the growth rate of the
``d``-ary (generalized) Fibonacci numbers — the unique root in (1, 2) of

    ``x^d = x^{d−1} + x^{d−2} + … + 1``.

``φ_2`` is the golden ratio; ``φ_d → 2``.  Since ``d·ln φ_d > ln d`` for
``d ≥ 2``, the d-left constant beats the symmetric scheme's
``1 / ln d`` — "how asymmetry helps load balancing".  This module computes
``φ_d`` and the bound, for comparison against :mod:`repro.core.dleft`
simulations and the witness-tree bound of the symmetric scheme.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = ["phi_d", "dleft_max_load_bound", "symmetric_max_load_coefficient"]


def phi_d(d: int, *, tolerance: float = 1e-14) -> float:
    """The d-ary Fibonacci growth rate: root of ``x^d = Σ_{j<d} x^j``.

    Solved by bisection on [1, 2] of ``f(x) = x^d − (x^d − 1)/(x − 1)``
    (using the geometric-series closed form), which is monotone there.

    >>> round(phi_d(2), 6)
    1.618034
    """
    if d < 2:
        raise ConfigurationError(f"phi_d needs d >= 2, got {d}")

    def f(x: float) -> float:
        # x^d - (x^d - 1)/(x - 1); positive above the root.
        return x**d - (x**d - 1.0) / (x - 1.0)

    lo, hi = 1.0 + 1e-12, 2.0
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if f(mid) > 0:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


def dleft_max_load_bound(n: int, d: int) -> float:
    """Vöcking's leading term ``ln ln n / (d·ln φ_d)`` (the O(1) omitted).

    Returned as a float: it is a comparison coefficient, not an integer
    guarantee at finite n.
    """
    if n < 4:
        raise ConfigurationError(f"n must be at least 4, got {n}")
    return math.log(math.log(n)) / (d * math.log(phi_d(d)))


def symmetric_max_load_coefficient(n: int, d: int) -> float:
    """The symmetric scheme's leading term ``ln ln n / ln d`` for contrast."""
    if n < 4:
        raise ConfigurationError(f"n must be at least 4, got {n}")
    if d < 2:
        raise ConfigurationError(f"d must be at least 2, got {d}")
    return math.log(math.log(n)) / math.log(d)
