"""The branching process dominating ancestry-list growth (Lemma 6).

Viewed backwards in time, an ancestry list grows like a Galton–Watson-style
process: examining balls from time ``Tn`` down to 1, each ball that hits a
bin already on the list adds (at most) ``d − 1`` new bins; the chance a
given ball hits a list of size ``B`` is at most ``B·d/n``.  The paper
dominates this with a branching process in which each element independently
spawns ``d`` offspring with probability ``d′/n`` (``d′ = d + 1`` absorbs the
dependence), giving

    ``E[B_{Tn}] ≤ (1 + d(d−1)/n)^{Tn} ≈ e^{T·d(d−1)}``   (a constant),

with a Karp–Zhang exponential tail ``Pr(B > γ·mean) ≤ c₁e^{−c₂γ}``; a union
bound then yields the O(log n) w.h.p. size.

This module simulates both the discrete dominating process and measures its
empirical mean and tail, for comparison against :func:`expected_population`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import default_generator

__all__ = [
    "expected_population",
    "simulate_branching_population",
    "empirical_tail_decay",
]


def expected_population(d: int, t_final: float) -> float:
    """Continuous-embedding mean population ``e^{T·d(d−1)}`` (Lemma 6)."""
    if d < 2:
        raise ConfigurationError(f"d must be at least 2, got {d}")
    if t_final < 0:
        raise ConfigurationError(f"t_final must be non-negative, got {t_final}")
    return math.exp(t_final * d * (d - 1))


def simulate_branching_population(
    n: int,
    d: int,
    t_final: float,
    trials: int,
    *,
    seed: int | np.random.Generator | None = None,
    d_prime: int | None = None,
) -> np.ndarray:
    """Simulate the dominating discrete process for ``T·n`` steps.

    Starting from ``B = 1``, each of the ``⌊T·n⌋`` steps adds ``d − 1``
    elements with probability ``min(B·d′/n, 1)``.  Vectorized across trials:
    all trials advance one step per iteration with a single Bernoulli draw
    block.

    Returns the final populations, one per trial.
    """
    if n < 1:
        raise ConfigurationError(f"n must be positive, got {n}")
    if d < 2:
        raise ConfigurationError(f"d must be at least 2, got {d}")
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    rng = default_generator(seed)
    dp = d + 1 if d_prime is None else d_prime
    steps = int(t_final * n)
    population = np.ones(trials, dtype=np.int64)
    for _ in range(steps):
        p_hit = np.minimum(population * dp / n, 1.0)
        hits = rng.random(trials) < p_hit
        population[hits] += d - 1
    return population


def empirical_tail_decay(
    populations: np.ndarray, mean: float, gammas: np.ndarray
) -> np.ndarray:
    """Empirical ``Pr(B > γ·mean)`` for each γ — the Karp–Zhang tail.

    The test suite checks this decays at least geometrically in γ.
    """
    populations = np.asarray(populations)
    return np.array(
        [np.mean(populations > g * mean) for g in np.asarray(gammas)]
    )
