"""repro — a reproduction of *Balanced Allocations and Double Hashing*
(Michael Mitzenmacher, SPAA 2014).

The library implements the paper's full experimental and analytical
apparatus:

- choice-generation schemes (fully random vs. double hashing, plain and
  d-left partitioned) — :mod:`repro.hashing`;
- balanced-allocation simulation engines (reference and vectorized
  multi-trial) — :mod:`repro.core`;
- fluid-limit differential equations and closed forms — :mod:`repro.fluid`;
- the supermarket queueing model — :mod:`repro.queueing`;
- the paper's proof machinery made executable (majorization coupling,
  witness trees, ancestry lists, layered induction, statistical
  indistinguishability) — :mod:`repro.analysis`;
- neighbouring structures the paper motivates (Bloom filters, cuckoo
  hashing, open addressing with double hashing) — :mod:`repro.extensions`;
- one harness function per paper table — :mod:`repro.experiments`.

Execution is handled by a resilient engine (:mod:`repro.parallel.engine`)
with per-chunk retries, checkpointing, and a metrics/tracing layer
(:mod:`repro.metrics`); runs are described by one frozen
:class:`~repro.experiments.config.ExperimentSpec` shared between the
library API and the CLI.

Quickstart
----------
>>> from repro import DoubleHashingChoices, FullyRandomChoices
>>> from repro import ExperimentSpec, run_experiment
>>> spec = ExperimentSpec(n=2**10, d=3, trials=20, seed=1)
>>> double = run_experiment(DoubleHashingChoices(spec.n, spec.d), spec)
>>> random_ = run_experiment(FullyRandomChoices(spec.n, spec.d), spec.replace(seed=2))
>>> abs(double.distribution.fraction_at(0) - random_.distribution.fraction_at(0)) < 0.01
True
"""

from repro.core import (
    run_experiment,
    simulate_batch,
    simulate_dleft,
    simulate_one_choice,
    simulate_one_plus_beta,
    simulate_single_trial,
)
from repro.errors import (
    ConfigurationError,
    ReproError,
    SchemeError,
    SimulationError,
    StabilityError,
    TableFullError,
)
from repro.experiments.config import ExperimentSpec
from repro.hashing import (
    ChoiceScheme,
    DoubleHashingChoices,
    FullyRandomChoices,
    PartitionedDoubleHashing,
    PartitionedFullyRandom,
    make_scheme,
)
from repro.metrics import MetricsRegistry
from repro.parallel import EngineConfig, ExecutionEngine
from repro.types import LevelStats, LoadDistribution, QueueingResult, TrialBatchResult

__version__ = "1.0.0"

__all__ = [
    "ChoiceScheme",
    "ConfigurationError",
    "DoubleHashingChoices",
    "EngineConfig",
    "ExecutionEngine",
    "ExperimentSpec",
    "FullyRandomChoices",
    "LevelStats",
    "LoadDistribution",
    "MetricsRegistry",
    "PartitionedDoubleHashing",
    "PartitionedFullyRandom",
    "QueueingResult",
    "ReproError",
    "SchemeError",
    "SimulationError",
    "StabilityError",
    "TableFullError",
    "TrialBatchResult",
    "__version__",
    "make_scheme",
    "run_experiment",
    "simulate_batch",
    "simulate_dleft",
    "simulate_one_choice",
    "simulate_one_plus_beta",
    "simulate_single_trial",
]
