"""Integer factorization (trial division + Pollard's rho) and Euler's totient.

The totient φ(n) counts the valid double-hashing strides mod ``n``.  The
paper's footnote 5 notes the collision probability for non-prime ``n`` is
``O(1/(n φ(n)))``; :func:`euler_phi` lets the analysis module compute that
exactly for any table size.
"""

from __future__ import annotations

import math

from repro.numtheory.primes import is_prime

__all__ = ["factorize", "euler_phi"]


def _pollard_rho(n: int) -> int:
    """Find a non-trivial factor of composite odd ``n`` via Brent's rho."""
    if n % 2 == 0:  # pragma: no cover - callers strip factors of 2 first
        return 2
    # Brent's cycle-finding variant; deterministic restart schedule over c.
    for c in range(1, 64):
        x = y = 2
        d = 1
        f = lambda v: (v * v + c) % n  # noqa: E731 - tiny local polynomial
        while d == 1:
            x = f(x)
            y = f(f(y))
            d = math.gcd(abs(x - y), n)
        if d != n:
            return d
    raise ArithmeticError(f"pollard rho failed to factor {n}")  # pragma: no cover


def factorize(n: int) -> dict[int, int]:
    """Return the prime factorization of ``n`` as ``{prime: exponent}``.

    >>> factorize(360)
    {2: 3, 3: 2, 5: 1}
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    factors: dict[int, int] = {}
    for p in (2, 3, 5, 7, 11, 13):
        while n % p == 0:
            factors[p] = factors.get(p, 0) + 1
            n //= p
    stack = [n] if n > 1 else []
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if is_prime(m):
            factors[m] = factors.get(m, 0) + 1
            continue
        d = _pollard_rho(m)
        stack.append(d)
        stack.append(m // d)
    return dict(sorted(factors.items()))


def euler_phi(n: int) -> int:
    """Euler's totient: the number of units mod ``n``.

    >>> euler_phi(2**14)
    8192
    >>> euler_phi(16411)  # prime
    16410
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if n == 1:
        return 1
    phi = n
    for p in factorize(n):
        phi -= phi // p
    return phi
