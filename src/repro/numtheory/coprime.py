"""Uniform sampling of units mod ``n`` (the double-hashing stride set).

The fast paths exploit the two geometries the paper highlights:

- ``n`` prime: every ``g`` in ``[1, n)`` is a unit — sample directly;
- ``n`` a power of two: the units are exactly the odd residues — sample an
  odd number directly (this is the "random odd stride" of the paper);
- general ``n``: vectorized rejection sampling against ``gcd(g, n) == 1``
  (acceptance rate φ(n)/n, which is Ω(1/log log n), so a couple of rounds
  suffice).
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro.numtheory.primes import is_prime
from repro.numtheory.totient import euler_phi

__all__ = ["is_unit", "count_units", "units_mod", "sample_units"]


def is_unit(g: int, n: int) -> bool:
    """True when ``g`` is invertible mod ``n`` (``gcd(g, n) == 1``)."""
    if n < 1:
        raise ValueError(f"modulus must be positive, got {n}")
    return math.gcd(g % n, n) == 1


def count_units(n: int) -> int:
    """Number of valid strides mod ``n`` — Euler's totient φ(n)."""
    return euler_phi(n)


def units_mod(n: int) -> np.ndarray:
    """All units in ``[1, n)`` as a sorted array (small ``n`` only).

    Intended for tests and exact enumeration; for sampling use
    :func:`sample_units`.
    """
    if n < 2:
        raise ValueError(f"modulus must be at least 2, got {n}")
    g = np.arange(1, n, dtype=np.int64)
    gcds = np.gcd(g, n)
    return g[gcds == 1]


def _is_power_of_two(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


# Small composite moduli get an enumerated unit table (one gcd sweep,
# cached): sampling becomes a single exact-uniform indexed draw instead of
# rejection rounds.  The cap bounds cache memory at a few hundred KiB.
_UNIT_TABLE_MAX = 4096


@lru_cache(maxsize=128)
def _unit_table(n: int) -> np.ndarray:
    table = units_mod(n)
    table.setflags(write=False)  # shared across callers; must stay frozen
    return table


def sample_units(
    n: int, size: int | tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Draw uniform random units mod ``n`` with shape ``size``.

    Parameters
    ----------
    n:
        Modulus (table size), at least 2.
    size:
        Output shape.
    rng:
        Source of randomness.

    Notes
    -----
    Prime and power-of-two moduli use closed-form direct sampling; small
    composite moduli (``n <= 4096``) draw one index into a cached unit
    table (exact uniform, one RNG call); larger composite moduli use
    rejection sampling, re-drawing only the rejected positions each round.
    """
    if n < 2:
        raise ValueError(f"modulus must be at least 2, got {n}")
    if _is_power_of_two(n):
        if n == 2:
            return np.ones(size, dtype=np.int64)
        # Odd residues 1, 3, ..., n-1 are exactly the units mod 2^k.
        return 2 * rng.integers(0, n // 2, size=size, dtype=np.int64) + 1
    if is_prime(n):
        return rng.integers(1, n, size=size, dtype=np.int64)
    if n <= _UNIT_TABLE_MAX:
        table = _unit_table(n)
        return table[rng.integers(0, table.size, size=size)]
    out = rng.integers(1, n, size=size, dtype=np.int64)
    bad = np.gcd(out, n) != 1
    while bad.any():
        out[bad] = rng.integers(1, n, size=int(bad.sum()), dtype=np.int64)
        bad = np.gcd(out, n) != 1
    return out
