"""Number-theoretic utilities for double hashing table geometry.

Double hashing needs strides ``g`` that are units mod the table size ``n``
(i.e. ``gcd(g, n) == 1``) so that the probe/choice sequence
``f + k·g mod n`` visits distinct bins.  The paper works with ``n`` prime
(every nonzero stride is a unit) or ``n`` a power of two (odd strides are
units).  This package provides primality testing, prime search, Euler's
totient, and uniform sampling of units mod ``n`` for arbitrary ``n``.
"""

from repro.numtheory.coprime import (
    count_units,
    is_unit,
    sample_units,
    units_mod,
)
from repro.numtheory.primes import (
    is_prime,
    next_prime,
    prev_prime,
)
from repro.numtheory.totient import euler_phi, factorize

__all__ = [
    "count_units",
    "euler_phi",
    "factorize",
    "is_prime",
    "is_unit",
    "next_prime",
    "prev_prime",
    "sample_units",
    "units_mod",
]
