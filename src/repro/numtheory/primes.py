"""Primality testing and prime search.

Uses deterministic Miller–Rabin: for inputs below 3.3 * 10^24 the witness set
``{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}`` is known to be exact
(Sorenson & Webster 2015), which comfortably covers every table size a
simulation here will use.  For larger inputs the same witnesses make the test
probabilistic with error below 4^-12 per witness, which we accept (and
document) rather than silently failing.
"""

from __future__ import annotations

__all__ = ["is_prime", "next_prime", "prev_prime"]

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_LIMIT = 3_317_044_064_679_887_385_961_981


def _miller_rabin_witness(n: int, a: int, d: int, r: int) -> bool:
    """Return True if ``a`` witnesses that ``n`` is composite."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_prime(n: int) -> bool:
    """Primality test, deterministic for ``n < 3.3e24``.

    Examples
    --------
    >>> is_prime(2**31 - 1)
    True
    >>> is_prime(2**14)
    False
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _SMALL_PRIMES:
        if _miller_rabin_witness(n, a, d, r):
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``.

    >>> next_prime(2**14)
    16411
    """
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def prev_prime(n: int) -> int:
    """Largest prime strictly less than ``n``.

    Raises
    ------
    ValueError
        If ``n <= 2`` (no smaller prime exists).
    """
    if n <= 2:
        raise ValueError(f"no prime below {n}")
    candidate = n - 1
    if candidate == 2:
        return 2
    if candidate % 2 == 0:
        candidate -= 1
    while candidate >= 2 and not is_prime(candidate):
        candidate -= 2
    if candidate < 2:
        raise ValueError(f"no prime below {n}")  # pragma: no cover
    return candidate
