"""The tiered certification runner.

Executes every table run of a :class:`~repro.certify.tiers.CertificationTier`
— both schemes, through the resilient engine — and turns the paper's
claims into typed :class:`CheckResult` records of four kinds:

``anchor``
    A measured value against the published cell, within
    ``anchor_z`` standard errors (at the tier's trial budget) plus the
    paper's rounding quantum.
``equivalence``
    The headline claim: random vs double must be statistically
    indistinguishable.  Chi-square homogeneity per table (with
    small-cell merging), Cramér's V effect sizes, and a Holm correction
    across the whole family of tests so the family-wise false-rejection
    rate is the tier's ``alpha``.
``fluid``
    Closed-form fluid-limit quantities against published cells —
    solver precision, no sampling involved.
``bootstrap``
    Percentile-bootstrap confidence intervals on max-load statistics;
    the two schemes' intervals must overlap.

:func:`run_certification` returns a :class:`Certification` whose
``to_dict()`` serializes to the ``certification.json`` schema enforced
by :mod:`repro.certify.verdict`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from math import sqrt
from typing import Any, Callable

import numpy as np

from repro.analysis import (
    bootstrap_mean_ci,
    compare_distributions,
    compare_max_loads,
    cramers_v,
    holm_correction,
)
from repro.certify.anchors import PAPER_SOURCE, REGISTRY, anchor
from repro.certify.tiers import TIERS, CertificationTier, TableRun
from repro.certify.verdict import SCHEMA_VERSION
from repro.core import run_experiment, simulate_dleft
from repro.core.dleft import make_dleft_scheme
from repro.experiments.config import ExperimentSpec
from repro.fluid import (
    equilibrium_mean_sojourn_time,
    solve_balls_bins,
    solve_dleft,
    solve_heavy_load,
)
from repro.hashing import DoubleHashingChoices, FullyRandomChoices, make_scheme
from repro.kernels import resolve_backend
from repro.metrics import MetricsRegistry
from repro.peeling import peeling_threshold, threshold_experiment
from repro.queueing import simulate_supermarket

__all__ = ["Certification", "CheckResult", "RunRecord", "run_certification"]

ProgressHook = Callable[[Any], None]


@dataclass
class CheckResult:
    """One certified claim: what was checked, against what, and the verdict."""

    check_id: str
    table: str
    variant: str
    kind: str  # "anchor" | "equivalence" | "fluid" | "bootstrap"
    passed: bool
    measured: float | None = None
    expected: float | None = None
    tolerance: float | None = None
    anchor_id: str | None = None
    p_value: float | None = None
    p_holm: float | None = None
    effect_size: float | None = None
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-ready mapping for the ``checks`` array."""
        return {
            "check_id": self.check_id,
            "table": self.table,
            "variant": self.variant,
            "kind": self.kind,
            "passed": bool(self.passed),
            "measured": self.measured,
            "expected": self.expected,
            "tolerance": self.tolerance,
            "anchor_id": self.anchor_id,
            "p_value": self.p_value,
            "p_holm": self.p_holm,
            "effect_size": self.effect_size,
            "detail": self.detail,
        }


@dataclass
class RunRecord:
    """Budget and provenance of one table run within a certification."""

    table: str
    variant: str
    params: dict
    wall_clock_seconds: float

    def to_dict(self) -> dict:
        """JSON-ready mapping for the ``runs`` array."""
        return {
            "table": self.table,
            "variant": self.variant,
            "params": self.params,
            "wall_clock_seconds": self.wall_clock_seconds,
        }


@dataclass
class Certification:
    """The full machine-readable verdict of one certification run."""

    tier: str
    description: str
    backend: str
    thresholds: dict
    runs: list[RunRecord] = field(default_factory=list)
    checks: list[CheckResult] = field(default_factory=list)
    wall_clock_seconds: float = 0.0

    @property
    def passed(self) -> bool:
        """Whether every check passed."""
        return all(c.passed for c in self.checks)

    def to_dict(self) -> dict:
        """The ``certification.json`` document (see ``repro.certify.verdict``)."""
        by_kind: dict[str, dict[str, int]] = {}
        for c in self.checks:
            slot = by_kind.setdefault(c.kind, {"total": 0, "failed": 0})
            slot["total"] += 1
            slot["failed"] += 0 if c.passed else 1
        return {
            "schema_version": SCHEMA_VERSION,
            "paper": PAPER_SOURCE,
            "tier": self.tier,
            "description": self.description,
            "passed": self.passed,
            "backend": self.backend,
            "thresholds": self.thresholds,
            "wall_clock_seconds": self.wall_clock_seconds,
            "runs": [r.to_dict() for r in self.runs],
            "checks": [c.to_dict() for c in self.checks],
            "summary": {
                "n_checks": len(self.checks),
                "n_failed": sum(1 for c in self.checks if not c.passed),
                "by_kind": by_kind,
                "tables": sorted({c.table for c in self.checks}),
            },
        }


# --------------------------------------------------------------------------
# Check builders
# --------------------------------------------------------------------------


def _tol(measured: float, expected: float, n_obs: int, z: float,
         quantum: float) -> float:
    """Envelope tolerance: ``z`` standard errors plus the rounding quantum.

    The standard error treats observations as Bernoulli at the larger of
    the two fractions (guarding the ``p == 0`` degenerate case), which
    is slightly conservative because bin loads within a trial are
    negatively correlated.
    """
    p = max(measured, expected, 1.0 / n_obs)
    p = min(p, 1.0 - 1.0 / n_obs)
    se = sqrt(max(p * (1.0 - p), 0.0) / n_obs)
    return z * se + quantum


def _anchor_check(
    run: TableRun,
    anchor_id: str,
    measured: float,
    n_obs: int,
    z: float,
    *,
    kind: str = "anchor",
    scale: float = 1.0,
) -> CheckResult:
    """Check one measured fraction/percent against its registry anchor.

    ``scale`` maps fractions to the anchor's printed unit (100 for the
    percent cells of Table 4).
    """
    a = anchor(anchor_id)
    expected = a.value
    tolerance = scale * _tol(
        measured / scale, expected / scale, n_obs, z, a.quantum / scale
    )
    diff = abs(measured - expected)
    return CheckResult(
        check_id=f"{kind}:{run.variant}:{anchor_id}",
        table=run.table,
        variant=run.variant,
        kind=kind,
        passed=diff <= tolerance,
        measured=measured,
        expected=expected,
        tolerance=tolerance,
        anchor_id=anchor_id,
        detail=f"|measured - paper| = {diff:.3g} (tol {tolerance:.3g}, "
               f"{n_obs} observations)",
    )


def _equivalence_check(run: TableRun, dist_random, dist_double,
                       label: str = "") -> CheckResult:
    """Chi-square homogeneity between the two schemes' load laws.

    ``passed`` is provisional (raw p vs alpha is finalized by the Holm
    pass in :func:`run_certification`).
    """
    report = compare_distributions(dist_random, dist_double)
    effect = cramers_v(dist_random, dist_double)
    suffix = f"/{label}" if label else ""
    return CheckResult(
        check_id=f"equivalence:{run.table}/{run.variant}{suffix}:chi2",
        table=run.table,
        variant=run.variant,
        kind="equivalence",
        passed=True,  # finalized by the Holm pass
        p_value=report.p_value,
        effect_size=effect,
        detail=(
            f"chi2={report.chi2_statistic:.3f} dof={report.dof} "
            f"TV={report.tv_distance:.5f} "
            f"max_dev={report.max_deviation_sigmas:.2f} sigma"
        ),
    )


def _bootstrap_check(run: TableRun, loads_random, loads_double,
                     seed: int) -> CheckResult:
    """Bootstrap CIs on per-trial max loads must overlap between schemes."""
    mr, lo_r, hi_r = bootstrap_mean_ci(loads_random, seed=seed)
    md, lo_d, hi_d = bootstrap_mean_ci(loads_double, seed=seed + 1)
    overlap = (lo_r <= hi_d) and (lo_d <= hi_r)
    return CheckResult(
        check_id=f"bootstrap:{run.table}/{run.variant}:max-load",
        table=run.table,
        variant=run.variant,
        kind="bootstrap",
        passed=overlap,
        measured=md,
        expected=mr,
        detail=(
            f"random mean max {mr:.4f} CI [{lo_r:.4f}, {hi_r:.4f}]; "
            f"double mean max {md:.4f} CI [{lo_d:.4f}, {hi_d:.4f}]"
        ),
    )


def _run_pair(run: TableRun, spec: ExperimentSpec, metrics, progress):
    """Run both schemes with the historical seed convention (s, s+1)."""
    seed2 = None if spec.seed is None else spec.seed + 1
    res_r = run_experiment(
        FullyRandomChoices(spec.n, spec.d), spec,
        metrics=metrics, progress=progress,
    )
    res_d = run_experiment(
        DoubleHashingChoices(spec.n, spec.d), spec.replace(seed=seed2),
        metrics=metrics, progress=progress,
    )
    return res_r, res_d


# --------------------------------------------------------------------------
# Per-table certifiers
# --------------------------------------------------------------------------


def _certify_load_fraction_table(run, tier, metrics, progress):
    """Tables 1, 3 and 6: per-load fraction anchors + equivalence."""
    spec = run.spec
    if run.table == "table3":
        spec = spec.replace(n=2 ** spec.log2_n)
    if run.table == "table6":
        spec = spec.replace(n_balls=spec.n * run.extras.get("balls_per_bin", 16))
    res_r, res_d = _run_pair(run, spec, metrics, progress)
    n_obs = spec.trials * spec.n
    checks = []
    for role, res in (("random", res_r), ("double", res_d)):
        if run.table == "table1":
            prefix = f"table1/d{spec.d}/{role}"
        elif run.table == "table3":
            prefix = f"table3/n{spec.log2_n}/d{spec.d}/{role}"
        else:
            prefix = f"table6/d{spec.d}/{role}"
        for a in REGISTRY.values():
            if not a.anchor_id.startswith(prefix + "/load"):
                continue
            load = int(a.anchor_id.rsplit("load", 1)[1])
            checks.append(_anchor_check(
                run, a.anchor_id, res.distribution.fraction_at(load),
                n_obs, tier.anchor_z,
            ))
    checks.append(_equivalence_check(run, res_r.distribution, res_d.distribution))
    checks.append(_bootstrap_check(
        run,
        res_r.distribution.max_load_per_trial,
        res_d.distribution.max_load_per_trial,
        seed=spec.seed or 0,
    ))
    if run.table == "table6":
        fluid = solve_heavy_load(spec.d, run.extras.get("balls_per_bin", 16))
        for a in REGISTRY.values():
            prefix = f"table6/d{spec.d}/random/load"
            if a.anchor_id.startswith(prefix):
                load = int(a.anchor_id.rsplit("load", 1)[1])
                checks.append(CheckResult(
                    check_id=f"fluid:{run.table}/{run.variant}:load{load}",
                    table=run.table,
                    variant=run.variant,
                    kind="fluid",
                    passed=abs(fluid.fraction_at(load) - a.value)
                    <= tier.fluid_rel_tol * max(a.value, 1e-3) + a.quantum,
                    measured=fluid.fraction_at(load),
                    expected=a.value,
                    tolerance=tier.fluid_rel_tol * max(a.value, 1e-3) + a.quantum,
                    anchor_id=a.anchor_id,
                    detail="heavy-load fluid limit vs published simulated cell",
                ))
    return checks, spec


def _certify_table2(run, tier, metrics, progress):
    """Table 2: fluid tails vs paper, simulated tails vs paper, equivalence."""
    spec = run.spec
    res_r, res_d = _run_pair(run, spec, metrics, progress)
    fluid = solve_balls_bins(spec.d, 1.0)
    n_obs = spec.trials * spec.n
    checks = []
    for k in (1, 2, 3):
        a = anchor(f"table2/fluid/tail{k}")
        measured = fluid.tail_at(k)
        tolerance = tier.fluid_rel_tol * a.value + a.quantum
        checks.append(CheckResult(
            check_id=f"fluid:{run.table}/{run.variant}:tail{k}",
            table=run.table,
            variant=run.variant,
            kind="fluid",
            passed=abs(measured - a.value) <= tolerance,
            measured=measured,
            expected=a.value,
            tolerance=tolerance,
            anchor_id=a.anchor_id,
            detail="ODE solver tail vs published fluid column",
        ))
    for role, res in (("random", res_r), ("double", res_d)):
        for k in (1, 2, 3):
            checks.append(_anchor_check(
                run, f"table2/{role}/tail{k}", res.distribution.tail_at(k),
                n_obs, tier.anchor_z,
            ))
    checks.append(_equivalence_check(run, res_r.distribution, res_d.distribution))
    return checks, spec


def _certify_table4(run, tier, metrics, progress):
    """Table 4: max-load percent anchors + per-size equivalence/bootstraps."""
    spec = run.spec
    sizes = run.extras.get("log2_n_values", (10, 11, 12, 13, 14))
    checks = []
    for k, log2_n in enumerate(sizes):
        point = spec.replace(
            n=2 ** log2_n,
            seed=None if spec.seed is None else spec.seed + 2 * k,
        )
        res_r, res_d = _run_pair(run, point, metrics, progress)
        for role, res in (("random", res_r), ("double", res_d)):
            anchor_id = f"table4/d{spec.d}/{role}/n{log2_n}"
            if anchor_id not in REGISTRY:
                continue
            pct = 100.0 * res.distribution.fraction_trials_max_load(3)
            checks.append(_anchor_check(
                run, anchor_id, pct, spec.trials, tier.anchor_z, scale=100.0,
            ))
        cmp = compare_max_loads(res_r.distribution, res_d.distribution)
        checks.append(CheckResult(
            check_id=f"equivalence:{run.table}/{run.variant}/n{log2_n}:max-load",
            table=run.table,
            variant=run.variant,
            kind="equivalence",
            passed=True,  # finalized by the Holm pass
            p_value=cmp.p_value,
            detail=f"max-load contingency over values {cmp.table_values}",
        ))
        checks.append(_bootstrap_check(
            TableRun(run.table, f"{run.variant}-n{log2_n}", point),
            res_r.distribution.max_load_per_trial,
            res_d.distribution.max_load_per_trial,
            seed=(point.seed or 0),
        ))
    return checks, spec


def _certify_table5(run, tier, metrics, progress):
    """Table 5: mean per-load occupancy fractions + equivalence.

    Published min/max/std cells are n-specific order statistics; the
    scale-free observable certified at every tier is ``avg / n`` (which
    at the ``full`` tier's n = 2^18 is the paper's own geometry).
    """
    spec = run.spec
    res_r, res_d = _run_pair(run, spec, metrics, progress)
    paper_n = 2 ** 18
    n_obs = spec.trials * spec.n
    checks = []
    for role, res in (("random", res_r), ("double", res_d)):
        for load in range(4):
            anchor_id = f"table5/{role}/load{load}/avg"
            if anchor_id not in REGISTRY:
                continue
            a = anchor(anchor_id)
            measured = res.aggregator.level_stats(load).mean / spec.n
            expected = a.value / paper_n
            tolerance = _tol(measured, expected, n_obs, tier.anchor_z,
                             a.quantum / paper_n)
            checks.append(CheckResult(
                check_id=f"anchor:{run.variant}:{anchor_id}",
                table=run.table,
                variant=run.variant,
                kind="anchor",
                passed=abs(measured - expected) <= tolerance,
                measured=measured,
                expected=expected,
                tolerance=tolerance,
                anchor_id=anchor_id,
                detail=f"avg/n occupancy at load {load} "
                       f"(paper avg {a.value} at n=2^18)",
            ))
    checks.append(_equivalence_check(run, res_r.distribution, res_d.distribution))
    return checks, spec


def _certify_table7(run, tier, metrics, progress):
    """Table 7: d-left fraction anchors + fluid + equivalence."""
    spec = run.spec
    batch_r = simulate_dleft(
        make_dleft_scheme(spec.n, spec.d, "random"), spec.n, spec.trials,
        seed=spec.seed,
    )
    batch_d = simulate_dleft(
        make_dleft_scheme(spec.n, spec.d, "double"), spec.n, spec.trials,
        seed=None if spec.seed is None else spec.seed + 1,
    )
    dist_r, dist_d = batch_r.distribution(), batch_d.distribution()
    log2_n = spec.n.bit_length() - 1 if spec.n & (spec.n - 1) == 0 else None
    n_obs = spec.trials * spec.n
    checks = []
    for role, dist in (("random", dist_r), ("double", dist_d)):
        for load in range(3):
            anchor_id = f"table7/n{log2_n}/{role}/load{load}"
            if anchor_id not in REGISTRY:
                continue
            checks.append(_anchor_check(
                run, anchor_id, dist.fraction_at(load), n_obs, tier.anchor_z,
            ))
    fluid = solve_dleft(spec.d, 1.0)
    a = anchor("table7/n18/random/load1")
    tolerance = tier.fluid_rel_tol * a.value + a.quantum
    checks.append(CheckResult(
        check_id=f"fluid:{run.table}/{run.variant}:load1",
        table=run.table,
        variant=run.variant,
        kind="fluid",
        passed=abs(fluid.fraction_at(1) - a.value) <= tolerance,
        measured=fluid.fraction_at(1),
        expected=a.value,
        tolerance=tolerance,
        anchor_id=a.anchor_id,
        detail="d-left fluid limit vs published cell at n=2^18",
    ))
    checks.append(_equivalence_check(run, dist_r, dist_d))
    return checks, spec


def _certify_table8(run, tier, metrics, progress):
    """Table 8: fluid-equilibrium anchors (all cells) + simulated cells."""
    spec = run.spec
    lambdas = run.extras.get("lambdas", (0.9, 0.99))
    d_values = run.extras.get("d_values", (3, 4))
    checks = []
    # Closed-form equilibrium vs every published cell: cheap and tight.
    for a in REGISTRY.values():
        if a.table != "table8":
            continue
        lam, d, _role = a.key
        measured = equilibrium_mean_sojourn_time(lam, d)
        tolerance = tier.fluid_rel_tol * a.value + a.quantum
        checks.append(CheckResult(
            check_id=f"fluid:{run.variant}:{a.anchor_id}",
            table=run.table,
            variant=run.variant,
            kind="fluid",
            passed=abs(measured - a.value) <= tolerance,
            measured=measured,
            expected=a.value,
            tolerance=tolerance,
            anchor_id=a.anchor_id,
            detail="closed-form fluid equilibrium vs published simulated cell",
        ))
    # Simulated cells for the tier's (lambda, d) budget.
    k = 0
    for lam in lambdas:
        for d in d_values:
            seed_r = None if spec.seed is None else spec.seed + 2 * k
            seed_d = None if spec.seed is None else spec.seed + 2 * k + 1
            res_r = simulate_supermarket(
                FullyRandomChoices(spec.n, d), lam, spec.sim_time,
                burn_in=spec.effective_burn_in, seed=seed_r,
                backend=spec.backend,
            )
            res_d = simulate_supermarket(
                DoubleHashingChoices(spec.n, d), lam, spec.sim_time,
                burn_in=spec.effective_burn_in, seed=seed_d,
                backend=spec.backend,
            )
            for role, res in (("random", res_r), ("double", res_d)):
                a = anchor(f"table8/lam{lam}/d{d}/{role}")
                tolerance = tier.queueing_rel_tol * a.value
                measured = res.mean_sojourn_time
                checks.append(CheckResult(
                    check_id=f"anchor:{run.variant}:{a.anchor_id}",
                    table=run.table,
                    variant=run.variant,
                    kind="anchor",
                    passed=abs(measured - a.value) <= tolerance,
                    measured=measured,
                    expected=a.value,
                    tolerance=tolerance,
                    anchor_id=a.anchor_id,
                    detail=f"simulated mean sojourn time, lambda={lam} d={d} "
                           f"(rel tol {tier.queueing_rel_tol})",
                ))
            gap = abs(res_r.mean_sojourn_time - res_d.mean_sojourn_time)
            ref = equilibrium_mean_sojourn_time(lam, d)
            checks.append(CheckResult(
                check_id=f"equivalence:{run.table}/{run.variant}/lam{lam}-d{d}:sojourn",
                table=run.table,
                variant=run.variant,
                kind="equivalence",
                passed=gap <= tier.queueing_rel_tol * ref,
                measured=gap,
                expected=0.0,
                tolerance=tier.queueing_rel_tol * ref,
                detail="random-vs-double sojourn gap (single runs, no "
                       "distributional test)",
            ))
            k += 1
    return checks, spec


def _certify_peeling(run, tier, metrics, progress):
    """Derived peeling-threshold cells: solver precision + density sweep.

    Three check families (see ``docs/peeling.md``):

    - **fluid** — the density-evolution solver against every derived
      threshold anchor (d = 3, 4, 5), pure solver precision;
    - **anchor** — the fully-random scheme's empirical 50%-success
      crossing against the spec's ``d`` anchor, inside a finite-size
      window (``extras["threshold_tol"]``).  The double curve is
      deliberately excluded: duplicate edges suppress its success
      probability by a constant (the paper's footnote-1 caveat), so its
      crossing does not estimate ``c*_d``;
    - **equivalence** — mean |core-fraction gap| between the schemes
      across the sweep, the observable where the fluid-limit
      equivalence genuinely carries over.  No distributional p-value
      (the success laws legitimately differ), so the check carries
      ``p_value=None`` and stays outside the Holm family, like the
      Table 8 sojourn-gap check.
    """
    spec = run.spec
    densities = run.extras.get(
        "densities", (0.70, 0.74, 0.78, 0.82, 0.86, 0.90)
    )
    threshold_tol = run.extras.get("threshold_tol", 0.04)
    core_gap_tol = run.extras.get("core_gap_tol", 0.02)
    checks = []
    for d in (3, 4, 5):
        a = anchor(f"derived/peeling-threshold/d{d}")
        measured = peeling_threshold(d)
        tolerance = tier.fluid_rel_tol * a.value + a.quantum
        checks.append(CheckResult(
            check_id=f"fluid:{run.variant}:{a.anchor_id}",
            table=run.table,
            variant=run.variant,
            kind="fluid",
            passed=abs(measured - a.value) <= tolerance,
            measured=measured,
            expected=a.value,
            tolerance=tolerance,
            anchor_id=a.anchor_id,
            detail="density-evolution solver vs derived threshold cell",
        ))
    exp = threshold_experiment(
        spec.n, spec.d, list(densities), spec.trials,
        seed=spec.seed, backend=spec.backend,
    )
    a = anchor(f"derived/peeling-threshold/d{spec.d}")
    measured = exp.empirical_threshold("random")
    checks.append(CheckResult(
        check_id=f"anchor:{run.variant}:{a.anchor_id}:empirical",
        table=run.table,
        variant=run.variant,
        kind="anchor",
        passed=abs(measured - a.value) <= threshold_tol,
        measured=measured,
        expected=a.value,
        tolerance=threshold_tol,
        anchor_id=a.anchor_id,
        detail=(
            f"fully-random 50% success crossing at n={spec.n} "
            f"(finite-size window {threshold_tol}; double excluded — "
            "duplicate edges suppress its success probability)"
        ),
    ))
    gap = float(
        np.abs(exp.core_fraction_random - exp.core_fraction_double).mean()
    )
    checks.append(CheckResult(
        check_id=f"equivalence:{run.table}/{run.variant}:core-fraction",
        table=run.table,
        variant=run.variant,
        kind="equivalence",
        passed=gap <= core_gap_tol,
        measured=gap,
        expected=0.0,
        tolerance=core_gap_tol,
        detail=(
            "mean |core-fraction gap| over the density sweep (the "
            "scheme-equivalent observable; success probability differs "
            "by the duplicate-edge caveat, so no distributional test)"
        ),
    ))
    return checks, spec


def _certify_schemes(run, tier, metrics, progress):
    """Hash-family zoo: keyed schemes vs the fully-random baseline.

    The empirical equivalence map behind ``docs/hash-families.md``: each
    scheme named in ``extras["schemes"]`` runs through the fused
    placement kernel (via its :class:`~repro.hashing.keyed.KeyedStreamScheme`
    wrapper) on the run's geometry and is compared to one shared
    fully-random baseline with

    - a chi-square homogeneity test on the load law, joining the
      tier-wide Holm family (kind ``equivalence``), and
    - overlapping bootstrap CIs on per-trial max loads (kind
      ``bootstrap``).

    Seed convention extends the ``(s, s+1)`` pair: the baseline runs at
    ``s``, the ``k``-th challenger at ``s + 1 + k`` (which also seeds
    its hash-parameter draws).
    """
    spec = run.spec
    schemes = tuple(run.extras.get("schemes", ("tabulation", "pairwise")))
    res_base = run_experiment(
        FullyRandomChoices(spec.n, spec.d), spec,
        metrics=metrics, progress=progress,
    )
    checks = []
    for k, name in enumerate(schemes):
        seed_k = None if spec.seed is None else spec.seed + 1 + k
        challenger = make_scheme(name, spec.n, spec.d, seed=seed_k)
        res_s = run_experiment(
            challenger, spec.replace(seed=seed_k),
            metrics=metrics, progress=progress,
        )
        checks.append(_equivalence_check(
            run, res_base.distribution, res_s.distribution, label=name,
        ))
        checks.append(_bootstrap_check(
            TableRun(run.table, f"{run.variant}-{name}", spec),
            res_base.distribution.max_load_per_trial,
            res_s.distribution.max_load_per_trial,
            seed=(seed_k or 0),
        ))
    return checks, spec


_CERTIFIERS = {
    "table1": _certify_load_fraction_table,
    "table2": _certify_table2,
    "table3": _certify_load_fraction_table,
    "table4": _certify_table4,
    "table5": _certify_table5,
    "table6": _certify_load_fraction_table,
    "table7": _certify_table7,
    "table8": _certify_table8,
    "peeling": _certify_peeling,
    "schemes": _certify_schemes,
}


def run_certification(
    tier: str | CertificationTier = "smoke",
    *,
    backend: str | None = None,
    workers: int | None = None,
    trials_mode: str | None = None,
    shards: int | None = None,
    metrics: MetricsRegistry | None = None,
    progress: ProgressHook | None = None,
) -> Certification:
    """Run one certification tier and return the machine-readable verdict.

    Parameters
    ----------
    tier:
        Tier name (``"smoke"``/``"standard"``/``"full"``) or a custom
        :class:`~repro.certify.tiers.CertificationTier` (tests use tiny
        ones).
    backend, workers, trials_mode, shards:
        Optional overrides applied to every run's spec
        (``trials_mode="parallel"`` switches every balls-and-bins run to
        per-trial counter streams; see ``docs/scale.md``).
    metrics, progress:
        Forwarded to :func:`repro.core.run_experiment`.
    """
    if isinstance(tier, str):
        tier = TIERS[tier] if tier in TIERS else _unknown_tier(tier)
    resolved_backend = resolve_backend(backend).name
    cert = Certification(
        tier=tier.name,
        description=tier.description,
        backend=resolved_backend,
        thresholds={
            "anchor_z": tier.anchor_z,
            "alpha": tier.alpha,
            "queueing_rel_tol": tier.queueing_rel_tol,
            "fluid_rel_tol": tier.fluid_rel_tol,
        },
    )
    t_total = time.perf_counter()
    for run in tier.runs:
        spec = run.spec
        overrides: dict[str, Any] = {}
        if backend is not None:
            overrides["backend"] = backend
        if workers is not None:
            overrides["workers"] = workers
        if trials_mode is not None:
            overrides["trials_mode"] = trials_mode
        if shards is not None:
            overrides["shards"] = shards
        if overrides:
            spec = spec.replace(**overrides)
            run = TableRun(run.table, run.variant, spec, run.extras)
        t0 = time.perf_counter()
        checks, used_spec = _CERTIFIERS[run.table](run, tier, metrics, progress)
        cert.checks.extend(checks)
        cert.runs.append(RunRecord(
            table=run.table,
            variant=run.variant,
            params={
                "n": used_spec.n,
                "d": used_spec.d,
                "n_balls": used_spec.balls,
                "trials": used_spec.trials,
                "seed": used_spec.seed,
                "backend": resolved_backend,
                "workers": used_spec.workers,
                **({"sim_time": used_spec.sim_time}
                   if run.table == "table8" else {}),
                **dict(run.extras),
            },
            wall_clock_seconds=round(time.perf_counter() - t0, 3),
        ))
    # Holm pass: finalize the equivalence verdicts family-wise.
    family = [c for c in cert.checks
              if c.kind == "equivalence" and c.p_value is not None]
    if family:
        holm = holm_correction([c.p_value for c in family], alpha=tier.alpha)
        for c, adjusted, rejected in zip(family, holm.adjusted, holm.reject):
            c.p_holm = adjusted
            c.passed = not rejected
    cert.wall_clock_seconds = round(time.perf_counter() - t_total, 3)
    return cert


def _unknown_tier(name: str) -> CertificationTier:
    """Raise the tiers module's helpful KeyError for an unknown name."""
    from repro.certify.tiers import tier as _tier

    return _tier(name)
