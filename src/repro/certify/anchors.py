"""The paper-anchor registry: every published value, transcribed once.

This module is the single place in the codebase where numbers from the
paper (Mitzenmacher, *Balanced Allocations and Double Hashing*,
arXiv:1209.5360v4) are transcribed.  Everything else — ``PAPER_VALUES``
in :mod:`repro.experiments.config`, the self-validation suite, the
table benchmarks, the EXPERIMENTS.md emitter, and the certification
runner — looks values up here, so a transcription typo can only ever
exist (and be fixed) in one file.

Two views are exposed:

- :data:`ANCHORS` / :data:`REGISTRY` — a flat, typed list of
  :class:`PaperAnchor` records, one per published cell, each carrying a
  stable ``anchor_id``, provenance (``source``), and the printed
  precision (``decimals``) from which a rounding quantum is derived;
- :func:`paper_values` — the historical nested-dict shape
  (``PAPER_VALUES``) rebuilt from the same transcription, for existing
  consumers.

The registry is intentionally dependency-free (stdlib only) so that low
layers such as :mod:`repro.experiments.config` can import it without
cycles.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

__all__ = [
    "ANCHORS",
    "PAPER_SOURCE",
    "REGISTRY",
    "PaperAnchor",
    "anchor",
    "anchor_value",
    "anchors_for_table",
    "paper_values",
]

#: Canonical citation for every ``table*`` anchor.
PAPER_SOURCE = "arXiv:1209.5360v4 (Mitzenmacher, SPAA 2014)"


@dataclass(frozen=True)
class PaperAnchor:
    """One published value with provenance and printed precision.

    Attributes
    ----------
    anchor_id:
        Stable slash-separated identifier, e.g. ``"table1/d3/random/load0"``.
    table:
        Owning table (``"table1"`` … ``"table8"``) or ``"derived"`` for
        literature constants the validation suite also certifies.
    key:
        The structured key within the owning table's legacy dict shape.
    value:
        The published number, exactly as printed.
    kind:
        ``"fraction"`` | ``"percent"`` | ``"count-stat"`` |
        ``"sojourn-time"`` | ``"threshold"``.
    role:
        ``"random"`` | ``"double"`` | ``"fluid"`` | ``""`` (derived).
    source:
        Citation string (paper table, or the follow-up literature).
    decimals:
        Digits printed after the decimal point (exponent-adjusted for
        scientific notation); drives :attr:`quantum`.
    """

    anchor_id: str
    table: str
    key: tuple
    value: float
    kind: str
    role: str
    source: str
    decimals: int

    @property
    def quantum(self) -> float:
        """Half a unit in the last printed digit — the rounding radius."""
        return 0.5 * 10.0 ** (-self.decimals)


# --------------------------------------------------------------------------
# The transcription.  THIS IS THE ONLY PLACE PAPER NUMBERS ARE TYPED IN.
# The nested shape mirrors the historical PAPER_VALUES layout so
# paper_values() can reproduce it bit-for-bit.
# --------------------------------------------------------------------------
_TRANSCRIPTION: dict[str, dict] = {
    # Table 1: fraction of bins with each load, n = 2^14 balls and bins.
    "table1": {
        (3, "random"): {0: 0.17693, 1: 0.64664, 2: 0.17592, 3: 0.00051},
        (3, "double"): {0: 0.17691, 1: 0.64670, 2: 0.17589, 3: 0.00051},
        (4, "random"): {0: 0.14081, 1: 0.71840, 2: 0.14077, 3: 2.25e-5},
        (4, "double"): {0: 0.14081, 1: 0.71841, 2: 0.14076, 3: 2.29e-5},
    },
    # Table 2: tail fractions, 3 choices, fluid limit vs n = 2^14.
    "table2": {
        "fluid": {1: 0.8231, 2: 0.1765, 3: 0.00051},
        "random": {1: 0.8231, 2: 0.1764, 3: 0.00051},
        "double": {1: 0.8231, 2: 0.1764, 3: 0.00051},
    },
    # Table 3: load fractions at n = 2^16 and 2^18.
    "table3": {
        (16, 3, "random"): {0: 0.17695, 1: 0.64661, 2: 0.17593, 3: 0.00051},
        (16, 3, "double"): {0: 0.17693, 1: 0.64664, 2: 0.17592, 3: 0.00051},
        (16, 4, "random"): {0: 0.14081, 1: 0.71841, 2: 0.14076, 3: 2.32e-5},
        (16, 4, "double"): {0: 0.14083, 1: 0.71835, 2: 0.14079, 3: 2.30e-5},
        (18, 3, "random"): {0: 0.17696, 1: 0.64658, 2: 0.17595, 3: 0.00051},
        (18, 3, "double"): {0: 0.17696, 1: 0.64648, 2: 0.17595, 3: 0.00051},
        (18, 4, "random"): {0: 0.14083, 1: 0.71837, 2: 0.14078, 3: 2.31e-5},
        (18, 4, "double"): {0: 0.14082, 1: 0.71838, 2: 0.14078, 3: 2.32e-5},
    },
    # Table 4: percentage of trials with maximum load 3.
    "table4": {
        (3, "random"): {
            10: 39.78, 11: 64.71, 12: 86.90, 13: 98.37, 14: 100.0, 15: 100.0,
        },
        (3, "double"): {
            10: 39.40, 11: 65.15, 12: 87.05, 13: 98.63, 14: 99.99, 15: 100.0,
        },
        (4, "random"): {
            10: 2.24, 12: 8.91, 14: 30.75, 16: 78.23, 18: 99.77, 20: 100.0,
        },
        (4, "double"): {
            10: 2.23, 12: 8.52, 14: 31.42, 16: 77.72, 18: 99.79, 20: 100.0,
        },
    },
    # Table 5: per-load count statistics, 4 choices, 2^18 balls and bins.
    "table5": {
        "random": {
            0: {"min": 36522, "avg": 36913.75, "max": 37308, "std": 111.06},
            1: {"min": 187533, "avg": 188322.55, "max": 189103, "std": 222.02},
            2: {"min": 36516, "avg": 36901.67, "max": 37298, "std": 110.96},
            3: {"min": 1, "avg": 6.04, "max": 17, "std": 2.42},
        },
        "double": {
            0: {"min": 36535, "avg": 36916.57, "max": 37301, "std": 109.89},
            1: {"min": 187544, "avg": 188316.93, "max": 189078, "std": 219.71},
            2: {"min": 36524, "avg": 36904.45, "max": 37297, "std": 109.85},
            3: {"min": 1, "avg": 6.06, "max": 18, "std": 2.44},
        },
    },
    # Table 6: 2^18 balls into 2^14 bins (average load 16).
    "table6": {
        (3, "random"): {
            13: 0.00076, 14: 0.01254, 15: 0.16885, 16: 0.62220,
            17: 0.19482, 18: 0.00079,
        },
        (3, "double"): {
            13: 0.00076, 14: 0.01254, 15: 0.16877, 16: 0.62234,
            17: 0.19475, 18: 0.00079,
        },
        (4, "random"): {
            14: 0.00349, 15: 0.13908, 16: 0.71110, 17: 0.14622, 18: 2.86e-5,
        },
        (4, "double"): {
            14: 0.00349, 15: 0.13906, 16: 0.71114, 17: 0.14620, 18: 2.85e-5,
        },
    },
    # Table 7: Vöcking's d-left scheme, 4 choices.
    "table7": {
        (14, "random"): {0: 0.12420, 1: 0.75160, 2: 0.12420},
        (14, "double"): {0: 0.12421, 1: 0.75158, 2: 0.12421},
        (18, "random"): {0: 0.12421, 1: 0.75159, 2: 0.12421},
        (18, "double"): {0: 0.12421, 1: 0.75158, 2: 0.12421},
    },
    # Table 8: queueing, n = 2^14 queues, average time in system.
    "table8": {
        (0.9, 3, "random"): 2.02805,
        (0.9, 3, "double"): 2.02813,
        (0.9, 4, "random"): 1.77788,
        (0.9, 4, "double"): 1.77792,
        (0.99, 3, "random"): 3.85967,
        (0.99, 3, "double"): 3.86073,
        (0.99, 4, "random"): 3.24347,
        (0.99, 4, "double"): 3.24410,
    },
}

# Constants from the follow-up literature that the validation suite also
# certifies (peeling thresholds for d = 3/4/5 random hypergraphs).
_DERIVED: dict[str, tuple[float, str]] = {
    "derived/peeling-threshold/d3": (
        0.81847, "density-evolution threshold c*_3 (paper's reference [30])",
    ),
    "derived/peeling-threshold/d4": (
        0.77228, "density-evolution threshold c*_4 (paper's reference [30])",
    ),
    "derived/peeling-threshold/d5": (
        0.70178, "density-evolution threshold c*_5 (paper's reference [30])",
    ),
}

# Printed decimals for cells whose repr under-reports precision (the
# paper prints trailing zeros the float literal cannot carry).
_TABLE_KIND = {
    "table1": "fraction",
    "table2": "fraction",
    "table3": "fraction",
    "table4": "percent",
    "table5": "count-stat",
    "table6": "fraction",
    "table7": "fraction",
    "table8": "sojourn-time",
}


def _decimals_of(value: float) -> int:
    """Printed decimal places of ``value`` inferred from its repr.

    Scientific notation is exponent-adjusted: ``2.25e-5`` is precise to
    ``10^-7``, hence 7 decimals.
    """
    if isinstance(value, int):
        return 0
    text = repr(float(value))
    if "e" in text:
        mantissa, exponent = text.split("e")
        frac = len(mantissa.split(".")[1]) if "." in mantissa else 0
        return max(0, frac - int(exponent))
    return len(text.split(".")[1]) if "." in text else 0


def _slug(part) -> str:
    """Render one key component for an anchor id."""
    if isinstance(part, float):
        return f"lam{part}" if part < 1 else str(part)
    return str(part)


def _iter_anchors():
    """Yield one :class:`PaperAnchor` per transcribed cell."""
    for table, cells in _TRANSCRIPTION.items():
        kind = _TABLE_KIND[table]
        for key, entry in cells.items():
            if table == "table1" or table == "table6":
                d, role = key
                prefix = f"{table}/d{d}/{role}"
            elif table == "table2":
                role = key
                prefix = f"{table}/{role}"
            elif table == "table3":
                log2_n, d, role = key
                prefix = f"{table}/n{log2_n}/d{d}/{role}"
            elif table == "table4":
                d, role = key
                prefix = f"{table}/d{d}/{role}"
            elif table == "table5":
                role = key
                prefix = f"{table}/{role}"
            elif table == "table7":
                log2_n, role = key
                prefix = f"{table}/n{log2_n}/{role}"
            else:  # table8: scalar cells keyed (lambda, d, role)
                lam, d, role = key
                yield PaperAnchor(
                    anchor_id=f"{table}/{_slug(lam)}/d{d}/{role}",
                    table=table,
                    key=key,
                    value=float(entry),
                    kind=kind,
                    role=role,
                    source=f"{PAPER_SOURCE}, Table 8",
                    decimals=_decimals_of(entry),
                )
                continue
            label = "Table " + table.removeprefix("table")
            for sub, value in entry.items():
                if isinstance(value, dict):  # table5 per-load stat blocks
                    for stat, v in value.items():
                        yield PaperAnchor(
                            anchor_id=f"{prefix}/load{sub}/{stat}",
                            table=table,
                            key=(key, sub, stat),
                            value=float(v),
                            kind=kind,
                            role=role,
                            source=f"{PAPER_SOURCE}, {label}",
                            decimals=_decimals_of(v),
                        )
                else:
                    field = "tail" if table == "table2" else (
                        "n" if table == "table4" else "load"
                    )
                    yield PaperAnchor(
                        anchor_id=f"{prefix}/{field}{sub}",
                        table=table,
                        key=(key, sub),
                        value=float(value),
                        kind=kind,
                        role=role,
                        source=f"{PAPER_SOURCE}, {label}",
                        decimals=_decimals_of(value),
                    )
    for anchor_id, (value, source) in _DERIVED.items():
        yield PaperAnchor(
            anchor_id=anchor_id,
            table="derived",
            key=(anchor_id,),
            value=value,
            kind="threshold",
            role="",
            source=source,
            decimals=_decimals_of(value),
        )


#: Every registered anchor, in transcription order.
ANCHORS: tuple[PaperAnchor, ...] = tuple(_iter_anchors())

#: Anchors indexed by ``anchor_id``.
REGISTRY: dict[str, PaperAnchor] = {a.anchor_id: a for a in ANCHORS}

if len(REGISTRY) != len(ANCHORS):  # pragma: no cover - build-time invariant
    raise RuntimeError("duplicate anchor ids in the paper-anchor registry")


def anchor(anchor_id: str) -> PaperAnchor:
    """Look up one anchor by id, with a helpful error for typos."""
    try:
        return REGISTRY[anchor_id]
    except KeyError:
        raise KeyError(
            f"unknown paper anchor {anchor_id!r}; known tables: "
            f"{sorted({a.table for a in ANCHORS})}"
        ) from None


def anchor_value(anchor_id: str) -> float:
    """The published value behind ``anchor_id``."""
    return anchor(anchor_id).value


def anchors_for_table(table: str) -> tuple[PaperAnchor, ...]:
    """All anchors belonging to one paper table (or ``"derived"``)."""
    return tuple(a for a in ANCHORS if a.table == table)


def paper_values() -> dict[str, dict]:
    """The legacy ``PAPER_VALUES`` nested-dict view of the registry.

    Returns a deep copy so callers mutating their view (e.g. the table
    functions attaching slices to results) cannot corrupt the registry.
    """
    return copy.deepcopy(_TRANSCRIPTION)
