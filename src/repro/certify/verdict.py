"""The ``certification.json`` document: schema, validation, and writing.

A certification document is the machine-readable verdict of one
:func:`repro.certify.runner.run_certification` run.  Version 1 looks
like::

    {
      "schema_version": 1,
      "paper": "arXiv:1209.5360v4 (Mitzenmacher, SPAA 2014)",
      "tier": "smoke",
      "description": "...",
      "passed": true,
      "backend": "numpy",
      "thresholds": {"anchor_z": ..., "alpha": ...,
                     "queueing_rel_tol": ..., "fluid_rel_tol": ...},
      "wall_clock_seconds": 12.3,
      "runs":   [{"table": ..., "variant": ..., "params": {...},
                  "wall_clock_seconds": ...}, ...],
      "checks": [{"check_id": ..., "table": ..., "variant": ...,
                  "kind": "anchor|equivalence|fluid|bootstrap",
                  "passed": ..., "measured": ..., "expected": ...,
                  "tolerance": ..., "anchor_id": ..., "p_value": ...,
                  "p_holm": ..., "effect_size": ..., "detail": ...}, ...],
      "summary": {"n_checks": ..., "n_failed": ...,
                  "by_kind": {...}, "tables": [...]}
    }

:func:`validate_certification` checks a document against this shape
without any third-party schema library (the CI job and the golden tests
both call it); :func:`write_certification` validates and serializes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "format_summary",
    "validate_certification",
    "write_certification",
]

#: Version written into (and required of) certification documents.
SCHEMA_VERSION = 1

_CHECK_KINDS = {"anchor", "equivalence", "fluid", "bootstrap"}

_TOP_LEVEL: dict[str, type | tuple[type, ...]] = {
    "schema_version": int,
    "paper": str,
    "tier": str,
    "description": str,
    "passed": bool,
    "backend": str,
    "thresholds": dict,
    "wall_clock_seconds": (int, float),
    "runs": list,
    "checks": list,
    "summary": dict,
}

_CHECK_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "check_id": str,
    "table": str,
    "variant": str,
    "kind": str,
    "passed": bool,
}

_CHECK_OPTIONAL_NUMERIC = (
    "measured", "expected", "tolerance", "p_value", "p_holm", "effect_size",
)

_RUN_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "table": str,
    "variant": str,
    "params": dict,
    "wall_clock_seconds": (int, float),
}

_THRESHOLD_KEYS = ("anchor_z", "alpha", "queueing_rel_tol", "fluid_rel_tol")


def validate_certification(doc: Any) -> list[str]:
    """Validate a certification document; return a list of problems.

    An empty list means the document is schema-valid.  Problems are
    human-readable strings naming the offending path, suitable for a CI
    failure message.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    for key, typ in _TOP_LEVEL.items():
        if key not in doc:
            problems.append(f"missing top-level field {key!r}")
        elif not isinstance(doc[key], typ):
            problems.append(
                f"field {key!r} must be {typ}, got {type(doc[key]).__name__}"
            )
    if problems:
        return problems
    if doc["schema_version"] != SCHEMA_VERSION:
        problems.append(
            f"schema_version {doc['schema_version']} != {SCHEMA_VERSION}"
        )
    for key in _THRESHOLD_KEYS:
        if key not in doc["thresholds"]:
            problems.append(f"thresholds missing {key!r}")
    for i, run in enumerate(doc["runs"]):
        if not isinstance(run, dict):
            problems.append(f"runs[{i}] must be an object")
            continue
        for key, typ in _RUN_REQUIRED.items():
            if key not in run or not isinstance(run[key], typ):
                problems.append(f"runs[{i}].{key} missing or wrong type")
    n_failed = 0
    for i, check in enumerate(doc["checks"]):
        if not isinstance(check, dict):
            problems.append(f"checks[{i}] must be an object")
            continue
        for key, typ in _CHECK_REQUIRED.items():
            if key not in check or not isinstance(check[key], typ):
                problems.append(f"checks[{i}].{key} missing or wrong type")
        if check.get("kind") not in _CHECK_KINDS:
            problems.append(
                f"checks[{i}].kind must be one of {sorted(_CHECK_KINDS)}, "
                f"got {check.get('kind')!r}"
            )
        for key in _CHECK_OPTIONAL_NUMERIC:
            value = check.get(key)
            if value is not None and not isinstance(value, (int, float)):
                problems.append(f"checks[{i}].{key} must be numeric or null")
        if check.get("passed") is False:
            n_failed += 1
    if not doc["checks"]:
        problems.append("checks must be non-empty")
    summary = doc["summary"]
    if summary.get("n_checks") != len(doc["checks"]):
        problems.append("summary.n_checks disagrees with len(checks)")
    if summary.get("n_failed") != n_failed:
        problems.append("summary.n_failed disagrees with failing checks")
    if doc["passed"] is not (n_failed == 0):
        problems.append("top-level passed disagrees with failing checks")
    ids = [c.get("check_id") for c in doc["checks"] if isinstance(c, dict)]
    if len(ids) != len(set(ids)):
        problems.append("check_id values must be unique")
    return problems


def write_certification(cert: Any, path: str | Path) -> Path:
    """Validate and write a certification to ``path`` as JSON.

    ``cert`` may be a :class:`~repro.certify.runner.Certification` (its
    ``to_dict()`` is used) or an already-built document dict.  Raises
    :class:`ValueError` listing every schema problem rather than writing
    an invalid artifact.
    """
    doc = cert.to_dict() if hasattr(cert, "to_dict") else cert
    problems = validate_certification(doc)
    if problems:
        raise ValueError(
            "refusing to write invalid certification:\n  "
            + "\n  ".join(problems)
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return path


def format_summary(doc: Any) -> str:
    """Human-readable one-screen summary of a certification document."""
    doc = doc.to_dict() if hasattr(doc, "to_dict") else doc
    lines = [
        f"certification: tier={doc['tier']} backend={doc['backend']} "
        f"{'PASSED' if doc['passed'] else 'FAILED'} "
        f"({doc['wall_clock_seconds']:.1f}s)",
        f"  paper: {doc['paper']}",
    ]
    by_kind = doc["summary"].get("by_kind", {})
    for kind in sorted(by_kind):
        slot = by_kind[kind]
        lines.append(
            f"  {kind:12s} {slot['total'] - slot['failed']:3d}/{slot['total']:<3d} passed"
        )
    for check in doc["checks"]:
        if not check["passed"]:
            lines.append(
                f"  FAIL {check['check_id']}: measured={check['measured']} "
                f"expected={check['expected']} tol={check['tolerance']} "
                f"{check['detail']}"
            )
    return "\n".join(lines)
