"""Certification tiers: budgets and thresholds for the anchor runs.

A tier is a named bundle of (a) the table runs to execute — each an
:class:`~repro.experiments.config.ExperimentSpec` plus table-shape
extras — and (b) the statistical thresholds the checks are judged at.
Three tiers ship:

``smoke``
    Minutes-scale, wired into CI.  Covers Tables 1, 2, 3 and 8 plus the
    derived peeling-threshold cells and the hash-family-zoo scheme
    sweep (``schemes`` runs; see ``docs/hash-families.md``) at reduced
    trial counts with generous (but documented) envelopes.
``standard``
    The EXPERIMENTS.md reproduction scale — every table, tens of
    minutes, tighter envelopes.
``full``
    Paper scale (10^4 trials, n up to 2^18, 10^4-second queueing
    horizons; scheme sweeps up to n = 2^24).  Overnight; the envelopes
    approach the paper's printed precision.

Threshold semantics (see ``docs/certification.md`` for derivations):

- ``anchor_z`` — an anchor-agreement check passes when the measured
  value sits within ``anchor_z`` standard errors (at the tier's trial
  count) plus the paper's rounding quantum of the published value;
- ``alpha`` — family-wise significance for the equivalence tests: the
  per-table chi-square p-values are Holm-corrected across the whole
  run, and any corrected rejection fails certification;
- ``queueing_rel_tol`` — relative tolerance for simulated sojourn
  times against the published Table 8 cells (single-run values whose
  own variance the paper does not report);
- ``fluid_rel_tol`` — relative tolerance for closed-form fluid
  quantities against published cells (solver precision, not sampling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.experiments.config import ExperimentSpec

__all__ = ["TIERS", "CertificationTier", "TableRun", "tier"]


@dataclass(frozen=True)
class TableRun:
    """One table execution within a tier.

    Attributes
    ----------
    table:
        Table id (``"table1"`` … ``"table8"``).
    variant:
        Short label distinguishing sub-runs of one table (e.g. ``"d3"``).
    spec:
        The run's :class:`~repro.experiments.config.ExperimentSpec`.
    extras:
        Table-shape arguments outside the spec (e.g. ``log2_n_values``
        for Table 4, ``lambdas``/``d_values`` for Table 8).
    """

    table: str
    variant: str
    spec: ExperimentSpec
    extras: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CertificationTier:
    """A named certification budget plus its statistical thresholds."""

    name: str
    description: str
    runs: tuple[TableRun, ...]
    anchor_z: float
    alpha: float
    queueing_rel_tol: float
    fluid_rel_tol: float = 1.5e-3

    @property
    def tables(self) -> tuple[str, ...]:
        """Distinct tables covered by this tier, in run order."""
        seen: list[str] = []
        for run in self.runs:
            if run.table not in seen:
                seen.append(run.table)
        return tuple(seen)


def _spec(**kw) -> ExperimentSpec:
    """Shorthand spec constructor for the tier tables below."""
    return ExperimentSpec(**kw)


_SMOKE = CertificationTier(
    name="smoke",
    description=(
        "CI tier: Tables 1/2/3/8 plus the derived peeling-threshold "
        "and hash-family-zoo cells at reduced trials, seed-pinned; "
        "~1 minute on one core"
    ),
    runs=(
        TableRun("table1", "d3", _spec(n=2**14, d=3, trials=25, seed=101)),
        TableRun("table2", "d3", _spec(n=2**14, d=3, trials=25, seed=102)),
        TableRun(
            "table3", "n16-d3",
            _spec(n=2**16, d=3, log2_n=16, trials=8, seed=103),
        ),
        TableRun(
            "table8", "lam0.9",
            _spec(n=512, sim_time=400.0, burn_in=80.0, seed=108),
            extras={"lambdas": (0.9,), "d_values": (3, 4)},
        ),
        TableRun(
            "peeling", "d3", _spec(n=2**11, d=3, trials=12, seed=109),
            extras={"threshold_tol": 0.04, "core_gap_tol": 0.02},
        ),
        TableRun(
            "schemes", "n14-d3", _spec(n=2**14, d=3, trials=20, seed=141),
            extras={"schemes": ("tabulation", "pairwise")},
        ),
    ),
    anchor_z=6.0,
    alpha=1e-3,
    queueing_rel_tol=0.12,
)

_STANDARD = CertificationTier(
    name="standard",
    description=(
        "EXPERIMENTS.md scale: every table, tens of minutes on one core"
    ),
    runs=(
        TableRun("table1", "d3", _spec(n=2**14, d=3, trials=400, seed=101)),
        TableRun("table1", "d4", _spec(n=2**14, d=4, trials=400, seed=111)),
        TableRun("table2", "d3", _spec(n=2**14, d=3, trials=400, seed=102)),
        TableRun(
            "table3", "n16-d3",
            _spec(n=2**16, d=3, log2_n=16, trials=60, seed=103),
        ),
        TableRun(
            "table3", "n16-d4",
            _spec(n=2**16, d=4, log2_n=16, trials=60, seed=113),
        ),
        TableRun(
            "table4", "d3", _spec(d=3, trials=400, seed=104),
            extras={"log2_n_values": (10, 11, 12, 13, 14)},
        ),
        TableRun(
            "table5", "d4", _spec(n=2**16, d=4, trials=60, seed=105),
        ),
        TableRun(
            "table6", "d3", _spec(n=2**12, d=3, trials=40, seed=106),
            extras={"balls_per_bin": 16},
        ),
        TableRun(
            "table6", "d4", _spec(n=2**12, d=4, trials=40, seed=116),
            extras={"balls_per_bin": 16},
        ),
        TableRun("table7", "d4", _spec(n=2**14, d=4, trials=400, seed=107)),
        TableRun(
            "table8", "all",
            _spec(n=2**10, sim_time=2000.0, burn_in=200.0, seed=108),
            extras={"lambdas": (0.9, 0.99), "d_values": (3, 4)},
        ),
        TableRun(
            "peeling", "d3", _spec(n=2**13, d=3, trials=24, seed=109),
            extras={"threshold_tol": 0.035, "core_gap_tol": 0.02},
        ),
        TableRun(
            "schemes", "n16-d3", _spec(n=2**16, d=3, trials=50, seed=141),
            extras={"schemes": (
                "multiply-shift", "tabulation", "tabulation-double",
                "pairwise", "pairwise-double",
            )},
        ),
    ),
    anchor_z=5.0,
    alpha=1e-2,
    queueing_rel_tol=0.06,
)

_FULL = CertificationTier(
    name="full",
    description=(
        "paper scale: 10^4 trials, n up to 2^18, 10^4 s queueing horizon; "
        "overnight"
    ),
    runs=(
        TableRun("table1", "d3", _spec(n=2**14, d=3, trials=10000, seed=101)),
        TableRun("table1", "d4", _spec(n=2**14, d=4, trials=10000, seed=111)),
        TableRun("table2", "d3", _spec(n=2**14, d=3, trials=10000, seed=102)),
        TableRun(
            "table3", "n16-d3",
            _spec(n=2**16, d=3, log2_n=16, trials=10000, seed=103),
        ),
        TableRun(
            "table3", "n16-d4",
            _spec(n=2**16, d=4, log2_n=16, trials=10000, seed=113),
        ),
        TableRun(
            "table3", "n18-d3",
            _spec(n=2**18, d=3, log2_n=18, trials=10000, seed=123),
        ),
        TableRun(
            "table3", "n18-d4",
            _spec(n=2**18, d=4, log2_n=18, trials=10000, seed=133),
        ),
        TableRun(
            "table4", "d3", _spec(d=3, trials=10000, seed=104),
            extras={"log2_n_values": (10, 11, 12, 13, 14, 15)},
        ),
        TableRun(
            "table4", "d4", _spec(d=4, trials=10000, seed=114),
            extras={"log2_n_values": (10, 12, 14, 16, 18, 20)},
        ),
        TableRun(
            "table5", "d4", _spec(n=2**18, d=4, trials=10000, seed=105),
        ),
        TableRun(
            "table6", "d3", _spec(n=2**14, d=3, trials=10000, seed=106),
            extras={"balls_per_bin": 16},
        ),
        TableRun(
            "table6", "d4", _spec(n=2**14, d=4, trials=10000, seed=116),
            extras={"balls_per_bin": 16},
        ),
        TableRun("table7", "d4", _spec(n=2**14, d=4, trials=10000, seed=107)),
        TableRun(
            "table8", "all",
            _spec(n=2**14, sim_time=10000.0, burn_in=1000.0, seed=108),
            extras={"lambdas": (0.9, 0.99), "d_values": (3, 4)},
        ),
        TableRun(
            "peeling", "d3", _spec(n=2**14, d=3, trials=100, seed=109),
            extras={
                "densities": (
                    0.70, 0.74, 0.78, 0.80, 0.82, 0.84, 0.86, 0.90,
                ),
                "threshold_tol": 0.03,
                "core_gap_tol": 0.02,
            },
        ),
        TableRun(
            "schemes", "n20-d3", _spec(n=2**20, d=3, trials=100, seed=141),
            extras={"schemes": (
                "multiply-shift", "tabulation", "tabulation-double",
                "pairwise", "pairwise-double",
            )},
        ),
        TableRun(
            "schemes", "n24-d3", _spec(n=2**24, d=3, trials=10, seed=151),
            extras={"schemes": ("tabulation", "pairwise")},
        ),
    ),
    anchor_z=4.0,
    alpha=1e-2,
    queueing_rel_tol=0.02,
)

#: The shipped tiers, by name.
TIERS: dict[str, CertificationTier] = {
    t.name: t for t in (_SMOKE, _STANDARD, _FULL)
}


def tier(name: str) -> CertificationTier:
    """Look up a shipped tier by name, with a helpful error."""
    try:
        return TIERS[name]
    except KeyError:
        raise KeyError(
            f"unknown certification tier {name!r}; known: {sorted(TIERS)}"
        ) from None
