"""Paper-anchor certification: the equivalence claim as a checkable artifact.

The paper's headline empirical claim — double hashing is statistically
indistinguishable from fully random hashing across its evaluation tables
— is certified here as a reproducible pipeline rather than a set of
scattered tolerance checks:

- :mod:`repro.certify.anchors` — the registry of transcribed paper
  values (the *only* transcription in the codebase), with provenance
  and printed-precision metadata per cell;
- :mod:`repro.certify.tiers` — ``smoke`` / ``standard`` / ``full``
  budgets mapping each table to an
  :class:`~repro.experiments.config.ExperimentSpec` and to the tier's
  statistical thresholds;
- :mod:`repro.certify.runner` — executes every table's random/double
  pair through the resilient engine and applies the
  :mod:`repro.analysis.comparison` statistics (chi-square homogeneity
  with small-cell merging, sampling envelopes, Holm correction across
  the whole family, bootstrap CIs on max-load statistics, fluid-limit
  agreement);
- :mod:`repro.certify.verdict` — the ``certification.json`` document:
  schema, validation, and serialization;
- :mod:`repro.certify.experiments_md` — regenerates EXPERIMENTS.md from
  the registry and checks the committed file for drift.

Entry point: ``python -m repro certify --tier smoke`` (see
``docs/certification.md`` for the methodology and
``docs/reproducing.md`` for the workflow).

Heavy submodules (runner, emitter) are imported lazily so that low
layers — notably :mod:`repro.experiments.config`, which rebuilds
``PAPER_VALUES`` from :func:`repro.certify.anchors.paper_values` — can
import this package without a cycle.
"""

from __future__ import annotations

from repro.certify.anchors import (
    ANCHORS,
    REGISTRY,
    PaperAnchor,
    anchor,
    anchor_value,
    anchors_for_table,
    paper_values,
)

__all__ = [
    "ANCHORS",
    "REGISTRY",
    "PaperAnchor",
    "anchor",
    "anchor_value",
    "anchors_for_table",
    "paper_values",
    # Lazily resolved (PEP 562):
    "TIERS",
    "CertificationTier",
    "TableRun",
    "Certification",
    "CheckResult",
    "run_certification",
    "validate_certification",
    "write_certification",
    "render_experiments_md",
    "check_experiments_md_drift",
]

_LAZY = {
    "TIERS": "repro.certify.tiers",
    "CertificationTier": "repro.certify.tiers",
    "TableRun": "repro.certify.tiers",
    "Certification": "repro.certify.runner",
    "CheckResult": "repro.certify.runner",
    "run_certification": "repro.certify.runner",
    "validate_certification": "repro.certify.verdict",
    "write_certification": "repro.certify.verdict",
    "render_experiments_md": "repro.certify.experiments_md",
    "check_experiments_md_drift": "repro.certify.experiments_md",
}


def __getattr__(name: str):
    """Resolve heavy certification members on first access (PEP 562)."""
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
