"""Resilient chunked execution engine: retries, checkpoints, metrics.

:class:`ExecutionEngine` generalizes the bare pool in
:mod:`repro.parallel.pool` into a fault-tolerant runner for the paper's
10^4-trial sweeps:

- **Fault tolerance** — each chunk is retried up to
  :attr:`EngineConfig.max_retries` times with exponential backoff, and a
  failed chunk is re-run on its *original* ``SeedSequence`` child, so the
  aggregate result is bit-identical to an uninterrupted run with the same
  root seed.  A per-chunk timeout (pooled mode) bounds the damage of a
  hung worker, and any pool-level breakage degrades gracefully to serial
  in-process execution of the remaining chunks.
- **Checkpointing** — completed chunk summaries are appended to a JSONL
  file as they finish; a re-run with the same geometry, chunking, and
  seed skips the chunks already on disk.
- **Observability** — every completion, retry, timeout, and degradation
  is published to a :class:`~repro.metrics.MetricsRegistry`, and an
  optional progress callback receives a :class:`ChunkProgress` per chunk.

The work-unit contract is unchanged from :func:`map_trial_chunks`:
``func(task, chunk_trials, seed_seq)`` with a picklable ``func``/``task``.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Any, TypeVar

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.metrics import MetricsRegistry
from repro.rng import spawn_seeds

__all__ = [
    "ChunkProgress",
    "EngineConfig",
    "ExecutionEngine",
    "decode_result",
    "encode_result",
]

T = TypeVar("T")

_CHECKPOINT_KIND = "repro-engine-checkpoint"
_CHECKPOINT_VERSION = 1

# Exceptions that mean the *pool* (not the chunk function) is unhealthy;
# they trigger degradation to serial execution rather than a chunk retry.
_POOL_FAILURES = (OSError, EOFError, mp.ProcessError)


@dataclass(frozen=True)
class EngineConfig:
    """Execution policy for :class:`ExecutionEngine`.

    Attributes
    ----------
    workers:
        Process count; ``None`` uses :func:`~repro.parallel.pool.default_workers`,
        ``0``/``1`` runs serially in-process.
    chunks:
        Chunk count; ``None`` defaults to the worker count (or 4 when
        serial, so the chunked code path is still exercised).
    max_retries:
        Extra attempts per chunk after the first failure.
    retry_backoff:
        Sleep before the first retry, in seconds; doubles per retry.
    chunk_timeout:
        Wall-clock bound per chunk in pooled mode.  A timeout terminates
        the pool (a hung worker cannot be cancelled individually) and the
        remaining chunks run serially.  Not enforced in serial mode.
    checkpoint_path:
        JSONL file for chunk summaries; enables resume.
    """

    workers: int | None = None
    chunks: int | None = None
    max_retries: int = 2
    retry_backoff: float = 0.25
    chunk_timeout: float | None = None
    checkpoint_path: str | Path | None = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {self.workers}")
        if self.chunks is not None and self.chunks < 1:
            raise ConfigurationError(f"chunks must be positive, got {self.chunks}")
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff < 0:
            raise ConfigurationError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ConfigurationError(
                f"chunk_timeout must be positive, got {self.chunk_timeout}"
            )


@dataclass(frozen=True)
class ChunkProgress:
    """One progress-callback notification: chunk ``index`` just completed.

    ``done``/``total`` count chunks (including checkpoint-restored ones);
    ``source`` is ``"pool"``, ``"serial"``, or ``"checkpoint"``.
    """

    index: int
    done: int
    total: int
    trials: int
    seconds: float
    source: str


# -- checkpoint result codec ---------------------------------------------


def encode_result(obj: Any) -> Any:
    """JSON-encode a chunk result, round-tripping numpy arrays exactly."""
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, tuple):
        return {"__tuple__": [encode_result(x) for x in obj]}
    if isinstance(obj, list):
        return [encode_result(x) for x in obj]
    if isinstance(obj, dict):
        return {key: encode_result(value) for key, value in obj.items()}
    return obj


def decode_result(obj: Any) -> Any:
    """Inverse of :func:`encode_result`."""
    if isinstance(obj, dict):
        if "__ndarray__" in obj:
            return np.asarray(obj["__ndarray__"], dtype=np.dtype(obj["dtype"]))
        if "__tuple__" in obj:
            return tuple(decode_result(x) for x in obj["__tuple__"])
        return {key: decode_result(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [decode_result(x) for x in obj]
    return obj


# -- checkpoint file handling --------------------------------------------


def _checkpoint_header(trials: int, chunks: int, seed: int | None) -> dict:
    return {
        "kind": _CHECKPOINT_KIND,
        "version": _CHECKPOINT_VERSION,
        "trials": trials,
        "chunks": chunks,
        "seed": seed,
    }


def _load_checkpoint(
    path: Path, *, trials: int, chunks: int, seed: int | None
) -> list[dict] | None:
    """Read completed-chunk records; ``None`` when no file exists yet.

    A header mismatch (different geometry, chunking, or seed) raises —
    silently discarding completed work or mixing incompatible results
    would both be worse.  A torn final line (crash mid-append) is
    tolerated and skipped.
    """
    if not path.exists():
        return None
    records: list[dict] = []
    header: dict | None = None
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail from an interrupted append
        if header is None:
            header = payload
            continue
        records.append(payload)
    if header is None:
        return None  # empty file: treat as fresh
    expected = _checkpoint_header(trials, chunks, seed)
    if header != expected:
        raise ConfigurationError(
            f"checkpoint {path} was written by a different run "
            f"(header {header!r}, expected {expected!r}); delete it or "
            "point the engine at a fresh path"
        )
    return records


class _CheckpointWriter:
    """Append-only JSONL writer; writes the header on a fresh file."""

    def __init__(
        self,
        path: Path,
        *,
        trials: int,
        chunks: int,
        seed: int | None,
        fresh: bool,
    ) -> None:
        self._path = path
        path.parent.mkdir(parents=True, exist_ok=True)
        if fresh:
            path.write_text(
                json.dumps(_checkpoint_header(trials, chunks, seed)) + "\n"
            )

    def append(self, record: dict) -> None:
        with self._path.open("a") as fh:
            fh.write(json.dumps(record) + "\n")
            fh.flush()


def _invoke(args: tuple) -> Any:
    """Unpack one job tuple: ``(func, task, trials, seed_seq[, offset])``.

    The optional fifth element is the chunk's global trial offset
    (``map_chunks(..., offsets=True)``), used by trial-indexed work such
    as the parallel-trials mode.
    """
    func, task, chunk_trials, seed_seq, *rest = args
    return func(task, chunk_trials, seed_seq, *rest)


# -- the engine -----------------------------------------------------------


class ExecutionEngine:
    """Fault-tolerant, checkpointed, instrumented chunk runner.

    Parameters
    ----------
    config:
        Execution policy; defaults to :class:`EngineConfig` defaults.
    metrics:
        Registry receiving counters, timers, chunk records, and events;
        a private one is created when omitted (reachable via ``.metrics``).
    progress:
        Optional callable receiving a :class:`ChunkProgress` after every
        chunk completion (including checkpoint restores).
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        progress: Callable[[ChunkProgress], None] | None = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.progress = progress

    def map_chunks(
        self,
        func: Callable[..., T],
        task: Any,
        trials: int,
        *,
        seed: int | None = None,
        offsets: bool = False,
    ) -> list[T]:
        """Run ``func`` over partitioned trials; one result per chunk.

        Results are returned in chunk order regardless of scheduling,
        retries, or checkpoint restores, so aggregation downstream is
        deterministic given the root ``seed``.  With ``offsets=True``
        each call also receives the chunk's global trial offset as a
        fourth argument — ``func(task, chunk_trials, seed_seq, offset)``
        — so trial-indexed work (parallel-trials mode) addresses the
        same per-trial streams under any chunking.
        """
        from repro.parallel.pool import default_workers, partition_trials

        cfg = self.config
        workers = cfg.workers if cfg.workers is not None else default_workers()
        chunk_count = (
            cfg.chunks
            if cfg.chunks is not None
            else (workers if workers > 1 else min(4, max(trials, 1)))
        )
        sizes = [s for s in partition_trials(trials, chunk_count) if s > 0]
        seeds = spawn_seeds(seed, len(sizes))
        if offsets:
            starts = [0] * len(sizes)
            for i in range(1, len(sizes)):
                starts[i] = starts[i - 1] + sizes[i - 1]
            jobs = [
                (func, task, size, s, off)
                for size, s, off in zip(sizes, seeds, starts)
            ]
        else:
            jobs = [(func, task, size, s) for size, s in zip(sizes, seeds)]
        total = len(jobs)
        self.metrics.increment("engine.chunks_total", total)
        # Pre-register the fault counters so every snapshot has a stable
        # schema, retries or not.
        for counter in (
            "engine.retries",
            "engine.timeouts",
            "engine.serial_fallbacks",
            "engine.chunks_resumed",
        ):
            self.metrics.increment(counter, 0)

        results: list[Any] = [None] * total
        done = [False] * total
        self._done_count = 0
        self._writer = None

        if cfg.checkpoint_path is not None:
            path = Path(cfg.checkpoint_path)
            restored = _load_checkpoint(
                path, trials=trials, chunks=total, seed=seed
            )
            for record in restored or []:
                index = record["index"]
                if 0 <= index < total and not done[index]:
                    results[index] = decode_result(record["result"])
                    done[index] = True
                    self._complete(
                        index,
                        trials=record["trials"],
                        attempts=0,
                        seconds=0.0,
                        source="checkpoint",
                        total=total,
                        write=False,
                    )
                    self.metrics.increment("engine.chunks_resumed")
            self._writer = _CheckpointWriter(
                path,
                trials=trials,
                chunks=total,
                seed=seed,
                fresh=restored is None,
            )

        pending = [i for i in range(total) if not done[i]]
        if not pending:
            return results
        if workers > 1 and len(pending) > 1:
            self._run_pooled(workers, pending, jobs, results, total)
        else:
            for index in pending:
                results[index] = self._run_serial(
                    index, jobs[index], cfg.max_retries + 1, total
                )
        return results

    # -- completion bookkeeping ------------------------------------------

    def _complete(
        self,
        index: int,
        *,
        trials: int,
        attempts: int,
        seconds: float,
        source: str,
        total: int,
        result: Any = None,
        write: bool = True,
    ) -> None:
        self._done_count += 1
        self.metrics.record_chunk(
            index=index,
            trials=trials,
            attempts=attempts,
            seconds=seconds,
            source=source,
        )
        if write and self._writer is not None:
            self._writer.append(
                {
                    "index": index,
                    "trials": trials,
                    "attempts": attempts,
                    "seconds": seconds,
                    "result": encode_result(result),
                }
            )
        if self.progress is not None:
            self.progress(
                ChunkProgress(
                    index=index,
                    done=self._done_count,
                    total=total,
                    trials=trials,
                    seconds=seconds,
                    source=source,
                )
            )

    # -- serial execution (also the degradation target) ------------------

    def _run_serial(self, index: int, job: tuple, budget: int, total: int) -> Any:
        """Run one chunk in-process with up to ``budget`` attempts."""
        if budget < 1:
            raise SimulationError(
                f"chunk {index} exhausted its retry budget before serial re-run"
            )
        cfg = self.config
        delay = cfg.retry_backoff
        start = time.perf_counter()
        for attempt in range(1, budget + 1):
            try:
                with self.metrics.timer("engine.chunk_seconds"):
                    result = _invoke(job)
            except Exception as exc:
                self.metrics.event(
                    "chunk-error",
                    chunk=index,
                    attempt=attempt,
                    error=repr(exc),
                    where="serial",
                )
                if attempt == budget:
                    raise SimulationError(
                        f"chunk {index} failed after {attempt} attempt(s): {exc!r}"
                    ) from exc
                self.metrics.increment("engine.retries")
                if delay > 0:
                    time.sleep(delay)
                delay *= 2
            else:
                elapsed = time.perf_counter() - start
                self._complete(
                    index,
                    trials=job[2],
                    attempts=attempt,
                    seconds=elapsed,
                    source="serial",
                    total=total,
                    result=result,
                )
                return result
        raise AssertionError("unreachable")  # pragma: no cover

    # -- pooled execution -------------------------------------------------

    def _run_pooled(
        self,
        workers: int,
        pending: list[int],
        jobs: list[tuple],
        results: list[Any],
        total: int,
    ) -> None:
        cfg = self.config
        ctx = mp.get_context("spawn")
        pool = ctx.Pool(processes=min(workers, len(pending)))
        degraded = False
        try:
            asyncs = {i: pool.apply_async(_invoke, (jobs[i],)) for i in pending}
            for index in pending:
                if degraded:
                    results[index] = self._run_serial(
                        index, jobs[index], cfg.max_retries + 1, total
                    )
                    continue
                attempts = 0
                delay = cfg.retry_backoff
                start = time.perf_counter()
                while True:
                    attempts += 1
                    try:
                        result = asyncs[index].get(timeout=cfg.chunk_timeout)
                    except mp.TimeoutError:
                        self.metrics.increment("engine.timeouts")
                        self.metrics.event(
                            "chunk-timeout",
                            chunk=index,
                            attempt=attempts,
                            timeout=cfg.chunk_timeout,
                        )
                        # A hung pool worker cannot be cancelled on its
                        # own: tear the pool down and finish serially.
                        degraded = self._degrade(pool, "timeout")
                        results[index] = self._run_serial(
                            index,
                            jobs[index],
                            cfg.max_retries + 1 - attempts,
                            total,
                        )
                        break
                    except _POOL_FAILURES as exc:
                        self.metrics.event(
                            "pool-failure", chunk=index, error=repr(exc)
                        )
                        degraded = self._degrade(pool, "pool-failure")
                        results[index] = self._run_serial(
                            index,
                            jobs[index],
                            cfg.max_retries + 2 - attempts,
                            total,
                        )
                        break
                    except Exception as exc:
                        # The chunk function raised inside a healthy
                        # worker: retry on the same seed child.
                        self.metrics.event(
                            "chunk-error",
                            chunk=index,
                            attempt=attempts,
                            error=repr(exc),
                            where="pool",
                        )
                        if attempts > cfg.max_retries:
                            raise SimulationError(
                                f"chunk {index} failed after {attempts} "
                                f"attempt(s): {exc!r}"
                            ) from exc
                        self.metrics.increment("engine.retries")
                        if delay > 0:
                            time.sleep(delay)
                        delay *= 2
                        try:
                            asyncs[index] = pool.apply_async(
                                _invoke, (jobs[index],)
                            )
                        except Exception:
                            degraded = self._degrade(pool, "resubmit-failure")
                            results[index] = self._run_serial(
                                index,
                                jobs[index],
                                cfg.max_retries + 1 - attempts,
                                total,
                            )
                            break
                    else:
                        elapsed = time.perf_counter() - start
                        results[index] = result
                        self.metrics.observe("engine.chunk_seconds", elapsed)
                        self._complete(
                            index,
                            trials=jobs[index][2],
                            attempts=attempts,
                            seconds=elapsed,
                            source="pool",
                            total=total,
                            result=result,
                        )
                        break
        finally:
            pool.terminate()
            pool.join()

    def _degrade(self, pool, reason: str) -> bool:
        """Tear down a sick pool; remaining chunks run serially."""
        self.metrics.increment("engine.serial_fallbacks")
        self.metrics.event("degraded-to-serial", reason=reason)
        pool.terminate()
        pool.join()
        return True
