"""Multi-process fan-out of independent simulation trials.

Follows the structure the HPC guides recommend for Python: vectorize inside
a process (numpy lock-step trials), parallelize across processes with
independent, deterministically spawned random streams.  The API mirrors an
MPI scatter/gather over trial chunks but uses ``multiprocessing`` so the
library has no extra dependencies.

Two layers:

- :func:`map_trial_chunks` — the minimal scatter/gather front door;
- :class:`~repro.parallel.engine.ExecutionEngine` — the resilient engine
  underneath it, adding per-chunk retries with exponential backoff,
  timeouts, graceful degradation to serial execution, JSONL
  checkpointing with resume, and metrics/progress instrumentation
  (see ``docs/engine.md``).
"""

from repro.parallel.engine import ChunkProgress, EngineConfig, ExecutionEngine
from repro.parallel.pool import default_workers, map_trial_chunks, partition_trials

__all__ = [
    "ChunkProgress",
    "EngineConfig",
    "ExecutionEngine",
    "default_workers",
    "map_trial_chunks",
    "partition_trials",
]
