"""Multi-process fan-out of independent simulation trials.

Follows the structure the HPC guides recommend for Python: vectorize inside
a process (numpy lock-step trials), parallelize across processes with
independent, deterministically spawned random streams.  The API mirrors an
MPI scatter/gather over trial chunks but uses ``multiprocessing`` so the
library has no extra dependencies.
"""

from repro.parallel.pool import map_trial_chunks, partition_trials

__all__ = ["map_trial_chunks", "partition_trials"]
