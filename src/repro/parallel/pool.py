"""Process-pool mapping of trial chunks with deterministic seed streams.

The work unit is "run ``k`` trials and return a compact summary".  Workers
receive a picklable task object plus their own ``SeedSequence`` child, so the
overall result is reproducible from the root seed regardless of scheduling —
the multiprocessing analogue of MPI rank-indexed RNG streams.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from collections.abc import Callable, Sequence
from typing import Any, TypeVar

import numpy as np

from repro.rng import spawn_seeds

__all__ = ["partition_trials", "map_trial_chunks", "default_workers"]

T = TypeVar("T")


def default_workers() -> int:
    """Worker count: CPU count capped at 8 (diminishing returns beyond)."""
    return min(os.cpu_count() or 1, 8)


def partition_trials(trials: int, chunks: int) -> list[int]:
    """Split ``trials`` into ``chunks`` near-equal positive parts.

    >>> partition_trials(10, 4)
    [3, 3, 2, 2]
    """
    if trials < 0:
        raise ValueError(f"trials must be non-negative, got {trials}")
    if chunks < 1:
        raise ValueError(f"chunks must be positive, got {chunks}")
    chunks = min(chunks, trials) or 1
    base, extra = divmod(trials, chunks)
    return [base + (1 if i < extra else 0) for i in range(chunks)]


def _invoke(
    args: tuple[Callable[[Any, int, np.random.SeedSequence], T], Any, int, np.random.SeedSequence],
) -> T:
    func, task, chunk_trials, seed_seq = args
    return func(task, chunk_trials, seed_seq)


def map_trial_chunks(
    func: Callable[[Any, int, np.random.SeedSequence], T],
    task: Any,
    trials: int,
    *,
    seed: int | None = None,
    workers: int | None = None,
    chunks: int | None = None,
) -> list[T]:
    """Run ``func(task, chunk_trials, seed_seq)`` over partitioned trials.

    Parameters
    ----------
    func:
        Top-level (picklable) callable executing one chunk of trials.
    task:
        Picklable description of the work (scheme, geometry, options).
    trials:
        Total number of trials across all chunks.
    seed:
        Root seed; each chunk gets an independent spawned child sequence.
    workers:
        Process count.  ``0`` or ``1`` runs chunks serially in-process
        (useful under coverage and on single-core machines); ``None`` uses
        :func:`default_workers`.
    chunks:
        Number of chunks (defaults to the worker count, or 4 when serial so
        the chunked code path is still exercised).

    Returns
    -------
    list
        One result per chunk, in chunk order.
    """
    if workers is None:
        workers = default_workers()
    if chunks is None:
        chunks = workers if workers > 1 else min(4, max(trials, 1))
    sizes = [s for s in partition_trials(trials, chunks) if s > 0]
    seeds = spawn_seeds(seed, len(sizes))
    jobs = [(func, task, size, s) for size, s in zip(sizes, seeds)]
    if workers <= 1 or len(jobs) <= 1:
        return [_invoke(job) for job in jobs]
    ctx = mp.get_context("spawn")
    with ctx.Pool(processes=min(workers, len(jobs))) as pool:
        return pool.map(_invoke, jobs)
