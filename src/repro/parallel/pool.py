"""Process-pool mapping of trial chunks with deterministic seed streams.

The work unit is "run ``k`` trials and return a compact summary".  Workers
receive a picklable task object plus their own ``SeedSequence`` child, so the
overall result is reproducible from the root seed regardless of scheduling —
the multiprocessing analogue of MPI rank-indexed RNG streams.

:func:`map_trial_chunks` is the stable, minimal front door; it delegates to
the resilient :class:`~repro.parallel.engine.ExecutionEngine`, which adds
retries, per-chunk timeouts, checkpointing, and metrics for callers that
need them.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from typing import Any, TypeVar

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["partition_trials", "map_trial_chunks", "default_workers"]

T = TypeVar("T")


def default_workers() -> int:
    """Default worker count.

    Honors the ``REPRO_WORKERS`` environment variable when set (any
    positive integer, no cap — explicit configuration wins).  Otherwise
    uses the process CPU count (``os.process_cpu_count`` on 3.13+, which
    respects affinity masks; ``os.cpu_count`` before that) capped at 8,
    where trial fan-out sees diminishing returns.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None and env.strip():
        try:
            value = int(env)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
        if value < 1:
            raise ConfigurationError(f"REPRO_WORKERS must be >= 1, got {value}")
        return value
    count_cpus = getattr(os, "process_cpu_count", os.cpu_count)
    return min(count_cpus() or 1, 8)


def partition_trials(trials: int, chunks: int) -> list[int]:
    """Split ``trials`` into ``chunks`` near-equal positive parts.

    >>> partition_trials(10, 4)
    [3, 3, 2, 2]
    """
    if trials < 0:
        raise ValueError(f"trials must be non-negative, got {trials}")
    if chunks < 1:
        raise ValueError(f"chunks must be positive, got {chunks}")
    chunks = min(chunks, trials) or 1
    base, extra = divmod(trials, chunks)
    return [base + (1 if i < extra else 0) for i in range(chunks)]


def map_trial_chunks(
    func: Callable[[Any, int, np.random.SeedSequence], T],
    task: Any,
    trials: int,
    *,
    seed: int | None = None,
    workers: int | None = None,
    chunks: int | None = None,
) -> list[T]:
    """Run ``func(task, chunk_trials, seed_seq)`` over partitioned trials.

    Parameters
    ----------
    func:
        Top-level (picklable) callable executing one chunk of trials.
    task:
        Picklable description of the work (scheme, geometry, options).
    trials:
        Total number of trials across all chunks.
    seed:
        Root seed; each chunk gets an independent spawned child sequence.
    workers:
        Process count.  ``0`` or ``1`` runs chunks serially in-process
        (useful under coverage and on single-core machines); ``None`` uses
        :func:`default_workers`.
    chunks:
        Number of chunks (defaults to the worker count, or 4 when serial so
        the chunked code path is still exercised).

    Returns
    -------
    list
        One result per chunk, in chunk order.
    """
    from repro.parallel.engine import EngineConfig, ExecutionEngine

    engine = ExecutionEngine(EngineConfig(workers=workers, chunks=chunks))
    return engine.map_chunks(func, task, trials, seed=seed)
