"""Shared ODE integration wrapper.

All fluid-limit systems in this package are smooth, Lipschitz on [0, 1]^K
(the paper verifies the Lipschitz condition explicitly in Theorem 8's
proof), and stiff-free, so a high-order explicit Runge–Kutta method with
tight tolerances is both fast and accurate to ~1e-10 — far below the 5
decimal places the paper reports.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
from scipy.integrate import solve_ivp

from repro.errors import SimulationError

__all__ = ["integrate"]

DEFAULT_RTOL = 1e-10
DEFAULT_ATOL = 1e-14


def integrate(
    rhs: Callable[[float, np.ndarray], np.ndarray],
    y0: np.ndarray,
    t_final: float,
    *,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
    t_eval: np.ndarray | None = None,
    method: str = "RK45",
):
    """Integrate ``dy/dt = rhs(t, y)`` from 0 to ``t_final``.

    Returns the scipy solution object (with ``.y``, ``.t``, and
    ``.sol`` dense output).  Raises :class:`SimulationError` when the
    integrator reports failure, so callers never consume a partial
    trajectory silently.
    """
    if t_final < 0:
        raise ValueError(f"t_final must be non-negative, got {t_final}")
    if t_final == 0:
        # Degenerate call: return an object shaped like a solution.
        class _Trivial:
            t = np.array([0.0])
            y = np.asarray(y0, dtype=float).reshape(-1, 1)

            @staticmethod
            def sol(t):
                return np.asarray(y0, dtype=float)

        return _Trivial()
    sol = solve_ivp(
        rhs,
        (0.0, float(t_final)),
        np.asarray(y0, dtype=float),
        method=method,
        rtol=rtol,
        atol=atol,
        dense_output=True,
        t_eval=t_eval,
    )
    if not sol.success:  # pragma: no cover - scipy failure is exceptional
        raise SimulationError(f"ODE integration failed: {sol.message}")
    return sol
