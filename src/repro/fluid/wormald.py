"""Measuring the Wormald deviation: how fast simulations reach the limit.

Wormald's theorem (paper ref. [42]) gives ``X_i(t) = n·x_i(t) + o(n)``;
Theorem 8 extends it to double hashing.  This module quantifies the ``o(n)``
empirically: for a sequence of table sizes it measures

    ``dev(n) = max_{t, i} | X_i(t)/n − x_i(t) |``

over the whole trajectory, and fits the decay exponent ``dev ~ n^{−γ}``
(the CLT scale predicts γ ≈ 1/2).  It is both a convergence diagnostic and
the quantitative content of "the difference is vanishing".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trajectory import simulate_trajectory
from repro.errors import ConfigurationError
from repro.fluid.balls_bins_ode import balls_bins_rhs
from repro.fluid.solver import integrate
from repro.hashing.base import ChoiceScheme

__all__ = ["DeviationSweep", "deviation_sweep"]


@dataclass(frozen=True)
class DeviationSweep:
    """Fluid-limit deviation as a function of table size.

    Attributes
    ----------
    n_values:
        Table sizes swept.
    deviations:
        ``max_{t, i <= max_level} |sim − ode|`` per table size.
    decay_exponent:
        Least-squares slope of ``log dev`` against ``log n`` (negated), so
        ``dev ~ n^{−decay_exponent}``; ≈ 0.5 at CLT scaling.
    """

    d: int
    n_values: tuple[int, ...]
    deviations: np.ndarray
    decay_exponent: float


def deviation_sweep(
    scheme_factory,
    d: int,
    n_values: tuple[int, ...] = (256, 1024, 4096),
    *,
    t_final: float = 1.0,
    trials: int = 40,
    checkpoints: int = 6,
    max_level: int = 3,
    seed: int = 0,
) -> DeviationSweep:
    """Measure trajectory deviation from the ODE path across table sizes.

    Parameters
    ----------
    scheme_factory:
        ``f(n, d) -> ChoiceScheme`` (e.g. ``DoubleHashingChoices``).
    d:
        Choices per ball.
    n_values:
        Ascending table sizes.
    t_final, trials, checkpoints, max_level:
        Trajectory-recording parameters; deviations are taken over levels
        ``1..max_level`` at every checkpoint.
    """
    if len(n_values) < 2:
        raise ConfigurationError("need at least two table sizes to fit decay")
    if sorted(n_values) != list(n_values):
        raise ConfigurationError(f"n_values must ascend, got {n_values}")
    sol = integrate(
        lambda t, x: balls_bins_rhs(t, x, d),
        np.zeros(max_level + 4),
        t_final,
    )
    deviations = []
    for k, n in enumerate(n_values):
        scheme: ChoiceScheme = scheme_factory(n, d)
        traj = simulate_trajectory(
            scheme,
            t_final,
            trials,
            checkpoints=checkpoints,
            max_level=max_level,
            seed=seed + k,
        )
        worst = 0.0
        for j, t in enumerate(traj.times):
            ode_tails = np.concatenate(([1.0], sol.sol(t)))
            for level in range(1, max_level + 1):
                worst = max(
                    worst, abs(traj.tails[j, level] - ode_tails[level])
                )
        deviations.append(worst)
    deviations_arr = np.array(deviations)
    slope, _ = np.polyfit(
        np.log(np.array(n_values, dtype=float)),
        np.log(np.maximum(deviations_arr, 1e-12)),
        1,
    )
    return DeviationSweep(
        d=d,
        n_values=tuple(n_values),
        deviations=deviations_arr,
        decay_exponent=float(-slope),
    )
