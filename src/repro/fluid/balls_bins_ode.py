"""The standard d-choice balls-and-bins fluid limit (paper Section 3).

State: ``x_i(t)`` = limiting fraction of bins with load **at least** ``i``
after ``t·n`` balls.  Dynamics (paper, Section 3):

    ``dx_i/dt = x_{i-1}^d − x_i^d``,   ``x_0 ≡ 1``,   ``x_i(0) = 0`` (i ≥ 1).

Theorem 8 shows the same system governs double hashing; Corollary 9 concludes
the two processes' load fractions differ by o(1).  The numbers in the
paper's Table 2 come from exactly this system at ``T = 1``, ``d = 3``.

The truncation level ``max_load`` only needs to exceed the loads of
interest: the tail decays doubly exponentially (``x_i ~ c^(d^i)``), so a
dozen levels reaches underflow for any constant ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.fluid.solver import integrate

__all__ = ["BallsBinsFluidLimit", "solve_balls_bins", "balls_bins_rhs"]


def balls_bins_rhs(t: float, x: np.ndarray, d: int) -> np.ndarray:
    """Right-hand side of the d-choice system for the truncated tail vector.

    ``x[j]`` holds ``x_{j+1}`` (the ``x_0 ≡ 1`` boundary is implicit).
    """
    xd = x**d
    upstream = np.empty_like(xd)
    upstream[0] = 1.0
    upstream[1:] = xd[:-1]
    return upstream - xd


@dataclass(frozen=True)
class BallsBinsFluidLimit:
    """Solved fluid limit: tail fractions and derived load fractions.

    Attributes
    ----------
    d:
        Number of choices.
    t_final:
        Horizon in units of ``n`` balls (``T = m/n``).
    tails:
        ``tails[i]`` = limiting fraction of bins with load ≥ i;
        ``tails[0] == 1``.
    """

    d: int
    t_final: float
    tails: np.ndarray

    @property
    def load_fractions(self) -> np.ndarray:
        """Limiting fraction of bins with load exactly ``i``."""
        extended = np.append(self.tails, 0.0)
        return extended[:-1] - extended[1:]

    @property
    def mean_load(self) -> float:
        """Σ_i x_i — equals ``t_final`` exactly (ball conservation)."""
        return float(self.tails[1:].sum())

    def tail_at(self, load: int) -> float:
        """Fraction of bins with load at least ``load`` (0 beyond range)."""
        if load < 0:
            raise ValueError(f"load must be non-negative, got {load}")
        return float(self.tails[load]) if load < len(self.tails) else 0.0

    def fraction_at(self, load: int) -> float:
        """Fraction of bins with load exactly ``load``."""
        fr = self.load_fractions
        return float(fr[load]) if 0 <= load < len(fr) else 0.0


def solve_balls_bins(
    d: int,
    t_final: float = 1.0,
    *,
    max_load: int = 16,
    rtol: float = 1e-10,
    atol: float = 1e-14,
) -> BallsBinsFluidLimit:
    """Solve the d-choice fluid limit up to time ``t_final``.

    Parameters
    ----------
    d:
        Number of choices, at least 1.  (``d = 1`` gives
        ``dx_i/dt = x_{i-1} − x_i``, the Poisson(t) tail — a useful exact
        cross-check used in the tests.)
    t_final:
        Balls thrown per bin (the paper's ``T``).
    max_load:
        Truncation level; ``tails`` has ``max_load + 1`` entries.  Must
        comfortably exceed the largest load of interest — for the heavy-load
        table (T = 16) pass ~T + 10.
    """
    if d < 1:
        raise ConfigurationError(f"d must be at least 1, got {d}")
    if max_load < 1:
        raise ConfigurationError(f"max_load must be at least 1, got {max_load}")
    sol = integrate(
        lambda t, x: balls_bins_rhs(t, x, d),
        np.zeros(max_load),
        t_final,
        rtol=rtol,
        atol=atol,
    )
    x_final = np.clip(sol.y[:, -1], 0.0, 1.0)
    tails = np.concatenate(([1.0], x_final))
    return BallsBinsFluidLimit(d=d, t_final=float(t_final), tails=tails)
