"""Fluid-limit (mean-field) models — Section 3 of the paper.

The paper's central theoretical result (Theorem 8, Corollary 9) is that the
family of differential equations

    ``dx_i/dt = x_{i-1}^d − x_i^d``,   ``x_0 ≡ 1``,  ``x_i(0) = 0`` for i ≥ 1,

which describes the limiting fraction of bins with load ≥ i under *fully
random* choices, applies unchanged under *double hashing*.  This package
makes those limits computable:

- :mod:`repro.fluid.balls_bins_ode` — the standard d-choice system
  (Tables 1–5 predictions);
- :mod:`repro.fluid.heavy_load` — the same system run to ``T = m/n > 1``
  (Table 6 predictions);
- :mod:`repro.fluid.dleft_ode` — Vöcking's d-left system (Table 7
  predictions);
- :mod:`repro.fluid.supermarket` — the queueing model: transient ODE,
  closed-form equilibrium tail ``π_i = λ^((d^i−1)/(d−1))`` and mean sojourn
  time (Table 8 predictions);
- :mod:`repro.fluid.solver` — the shared scipy ``solve_ivp`` wrapper.
"""

from repro.fluid.balls_bins_ode import (
    BallsBinsFluidLimit,
    solve_balls_bins,
)
from repro.fluid.dleft_ode import DLeftFluidLimit, solve_dleft
from repro.fluid.heavy_load import solve_heavy_load
from repro.fluid.wormald import DeviationSweep, deviation_sweep
from repro.fluid.supermarket import (
    SupermarketFluidLimit,
    equilibrium_mean_queue_length,
    equilibrium_mean_sojourn_time,
    equilibrium_tail,
    solve_supermarket,
)

__all__ = [
    "BallsBinsFluidLimit",
    "DLeftFluidLimit",
    "DeviationSweep",
    "deviation_sweep",
    "SupermarketFluidLimit",
    "equilibrium_mean_queue_length",
    "equilibrium_mean_sojourn_time",
    "equilibrium_tail",
    "solve_balls_bins",
    "solve_dleft",
    "solve_heavy_load",
    "solve_supermarket",
]
