"""Fluid limit for Vöcking's d-left scheme (paper Table 7, ref. [32]).

The ``n`` bins split into ``d`` subtables; a ball draws one uniform candidate
per subtable and joins the least loaded, ties broken toward the *leftmost*
subtable.  Let ``y_i^k(t)`` be the fraction of subtable-``k`` bins (out of
``n/d``) with load at least ``i``.  A ball lands on a subtable-``k`` bin of
current load ``i−1`` exactly when

- its candidate in ``k`` has load exactly ``i−1``            (``y_{i−1}^k − y_i^k``),
- every candidate to the left has load **at least i** (a tie at ``i−1``
  would win leftward)                                         (``Π_{j<k} y_i^j``),
- every candidate to the right has load **at least i−1** (a tie loses to
  ``k``)                                                      (``Π_{j>k} y_{i−1}^j``).

Each placement raises that subtable's ≥ i fraction by ``d/n``, and balls
arrive at rate ``n`` per unit time, giving

    ``dy_i^k/dt = d · (y_{i−1}^k − y_i^k) · Π_{j<k} y_i^j · Π_{j>k} y_{i−1}^j``

with ``y_0^k ≡ 1``.  This is the system of Mitzenmacher–Vöcking (Allerton
1999), which the paper states extends to double hashing by the same
ancestry-list argument (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.fluid.solver import integrate

__all__ = ["DLeftFluidLimit", "solve_dleft", "dleft_rhs"]


def dleft_rhs(t: float, y_flat: np.ndarray, d: int, max_load: int) -> np.ndarray:
    """RHS over the flattened ``(max_load, d)`` state ``y[i-1, k] = y_i^k``."""
    y = y_flat.reshape(max_load, d)
    # y_above[i, k] = y_{i-1}^k with the y_0 == 1 boundary.
    y_above = np.vstack([np.ones((1, d)), y[:-1]])
    # Left products: prod_{j<k} y_i^j ; right products: prod_{j>k} y_{i-1}^j.
    left = np.cumprod(np.hstack([np.ones((max_load, 1)), y[:, :-1]]), axis=1)
    right = np.cumprod(
        np.hstack([np.ones((max_load, 1)), y_above[:, :0:-1]]), axis=1
    )[:, ::-1]
    dy = d * (y_above - y) * left * right
    return dy.ravel()


@dataclass(frozen=True)
class DLeftFluidLimit:
    """Solved d-left fluid limit.

    Attributes
    ----------
    d:
        Number of subtables (= choices).
    t_final:
        Balls per bin.
    subtable_tails:
        ``(max_load + 1, d)`` array: entry ``(i, k)`` is the fraction of
        subtable-``k`` bins with load ≥ i (row 0 is all ones).
    """

    d: int
    t_final: float
    subtable_tails: np.ndarray

    @property
    def tails(self) -> np.ndarray:
        """Overall fraction of bins with load ≥ i (averaged over subtables,
        which have equal size)."""
        return self.subtable_tails.mean(axis=1)

    @property
    def load_fractions(self) -> np.ndarray:
        """Overall fraction of bins with load exactly ``i``."""
        tails = np.append(self.tails, 0.0)
        return tails[:-1] - tails[1:]

    def fraction_at(self, load: int) -> float:
        fr = self.load_fractions
        return float(fr[load]) if 0 <= load < len(fr) else 0.0


def solve_dleft(
    d: int,
    t_final: float = 1.0,
    *,
    max_load: int = 12,
    rtol: float = 1e-10,
    atol: float = 1e-14,
) -> DLeftFluidLimit:
    """Solve the d-left fluid limit up to ``t_final`` balls per bin."""
    if d < 1:
        raise ConfigurationError(f"d must be at least 1, got {d}")
    if max_load < 1:
        raise ConfigurationError(f"max_load must be at least 1, got {max_load}")
    y0 = np.zeros(max_load * d)
    sol = integrate(
        lambda t, y: dleft_rhs(t, y, d, max_load),
        y0,
        t_final,
        rtol=rtol,
        atol=atol,
    )
    y_final = np.clip(sol.y[:, -1].reshape(max_load, d), 0.0, 1.0)
    tails = np.vstack([np.ones((1, d)), y_final])
    return DLeftFluidLimit(d=d, t_final=float(t_final), subtable_tails=tails)
