"""Heavily-loaded fluid limit (paper Table 6: m = 16n balls).

The d-choice system of :mod:`repro.fluid.balls_bins_ode` run to
``T = m/n > 1``.  The load distribution concentrates around the mean load
``T`` with a window whose width is O(1) in ``T`` — exactly the band of loads
(9–18 for T = 16, d = 3) the paper's Table 6 reports.

The paper notes (Conclusion) that fluid limits "do not straightforwardly
apply for the heavily loaded case where the number of balls is superlinear"
— for *constant* ``T = m/n`` as here they do apply; the caveat concerns
``m = ω(n)``.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.fluid.balls_bins_ode import BallsBinsFluidLimit, solve_balls_bins

__all__ = ["solve_heavy_load"]


def solve_heavy_load(
    d: int,
    balls_per_bin: float,
    *,
    extra_levels: int = 12,
    rtol: float = 1e-10,
    atol: float = 1e-14,
) -> BallsBinsFluidLimit:
    """Solve the d-choice fluid limit at average load ``balls_per_bin``.

    Parameters
    ----------
    d:
        Number of choices.
    balls_per_bin:
        ``T = m/n``; e.g. 16 for the paper's Table 6.
    extra_levels:
        Truncation margin above the mean load.  The distribution's upper
        tail decays doubly exponentially, so ~12 levels beyond ``T``
        suffices for double precision.
    """
    if balls_per_bin < 0:
        raise ConfigurationError(
            f"balls_per_bin must be non-negative, got {balls_per_bin}"
        )
    max_load = int(balls_per_bin) + extra_levels
    return solve_balls_bins(
        d, t_final=balls_per_bin, max_load=max_load, rtol=rtol, atol=atol
    )
