"""Supermarket-model fluid limit (paper Table 8; refs [27], [40]).

Customers arrive to a bank of ``n`` FIFO queues as a Poisson process of rate
``λn`` (``λ < 1``) with exp(1) service, each joining the shortest of ``d``
sampled queues.  With ``s_i(t)`` the fraction of queues holding at least
``i`` jobs, the fluid limit (Mitzenmacher 1996; Vvedenskaya et al. 1996) is

    ``ds_i/dt = λ(s_{i-1}^d − s_i^d) − (s_i − s_{i+1})``,   ``s_0 ≡ 1``.

Its fixed point is the doubly-exponential tail

    ``π_i = λ^((d^i − 1)/(d − 1))``,

and the equilibrium expected time a customer spends in the system is

    ``E[T] = (1/λ) · Σ_{i≥1} π_i``

(mean jobs per queue over throughput λ, by Little's law).  These closed
forms reproduce the paper's Table 8 column to four decimals and are what the
event-driven simulator in :mod:`repro.queueing` is validated against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.fluid.solver import integrate

__all__ = [
    "SupermarketFluidLimit",
    "solve_supermarket",
    "supermarket_rhs",
    "equilibrium_tail",
    "equilibrium_mean_queue_length",
    "equilibrium_mean_sojourn_time",
]


def _validate(lam: float, d: int) -> None:
    if not 0.0 < lam < 1.0:
        raise ConfigurationError(f"lambda must be in (0, 1), got {lam}")
    if d < 1:
        raise ConfigurationError(f"d must be at least 1, got {d}")


def supermarket_rhs(t: float, s: np.ndarray, lam: float, d: int) -> np.ndarray:
    """RHS over the truncated tail vector ``s[j] = s_{j+1}``.

    The truncation closes the system with ``s_{K+1} = 0``; valid because the
    equilibrium tail decays doubly exponentially.
    """
    sd = s**d
    upstream = np.empty_like(sd)
    upstream[0] = 1.0
    upstream[1:] = sd[:-1]
    below = np.empty_like(s)
    below[:-1] = s[1:]
    below[-1] = 0.0
    return lam * (upstream - sd) - (s - below)


@dataclass(frozen=True)
class SupermarketFluidLimit:
    """Solved transient supermarket fluid limit.

    Attributes
    ----------
    lam, d:
        Arrival rate per queue and choice count.
    t_final:
        Horizon in time units (service rate 1).
    tails:
        ``tails[i]`` = fraction of queues with at least ``i`` jobs at
        ``t_final``; ``tails[0] == 1``.
    """

    lam: float
    d: int
    t_final: float
    tails: np.ndarray

    @property
    def mean_queue_length(self) -> float:
        """Expected jobs per queue: Σ_{i≥1} s_i."""
        return float(self.tails[1:].sum())

    @property
    def mean_sojourn_time(self) -> float:
        """Expected time in system by Little's law (throughput λ)."""
        return self.mean_queue_length / self.lam


def solve_supermarket(
    lam: float,
    d: int,
    t_final: float,
    *,
    max_jobs: int = 40,
    start_tails: np.ndarray | None = None,
    rtol: float = 1e-10,
    atol: float = 1e-14,
) -> SupermarketFluidLimit:
    """Integrate the supermarket system from empty (or ``start_tails``).

    ``start_tails`` is a full tail vector including the leading 1 (as
    produced by a previous solve), enabling warm restarts.
    """
    _validate(lam, d)
    if max_jobs < 1:
        raise ConfigurationError(f"max_jobs must be at least 1, got {max_jobs}")
    if start_tails is None:
        s0 = np.zeros(max_jobs)
    else:
        interior = np.asarray(start_tails, dtype=float)[1:]
        s0 = np.zeros(max_jobs)
        take = min(len(interior), max_jobs)
        s0[:take] = interior[:take]
    sol = integrate(
        lambda t, s: supermarket_rhs(t, s, lam, d),
        s0,
        t_final,
        rtol=rtol,
        atol=atol,
    )
    tails = np.concatenate(([1.0], np.clip(sol.y[:, -1], 0.0, 1.0)))
    return SupermarketFluidLimit(lam=lam, d=d, t_final=float(t_final), tails=tails)


def equilibrium_tail(lam: float, d: int, max_jobs: int = 40) -> np.ndarray:
    """Fixed-point tail ``π_i = λ^((d^i − 1)/(d − 1))`` for i = 0..max_jobs.

    For ``d = 1`` this degenerates to the M/M/1 geometric tail ``λ^i``.
    """
    _validate(lam, d)
    i = np.arange(max_jobs + 1, dtype=float)
    if d == 1:
        exponents = i
    else:
        exponents = (np.power(float(d), i) - 1.0) / (d - 1.0)
    # Guard overflow: exponents explode doubly exponentially; lam < 1 so the
    # tail underflows to zero exactly where exp would overflow.
    with np.errstate(over="ignore", under="ignore"):
        tail = np.where(
            exponents * np.log(lam) < -745.0, 0.0, np.power(lam, exponents)
        )
    tail[0] = 1.0
    return tail


def equilibrium_mean_queue_length(lam: float, d: int) -> float:
    """Expected jobs per queue at equilibrium: Σ_{i≥1} π_i.

    ``d = 1`` uses the exact M/M/1 geometric sum ``λ/(1−λ)`` (the default
    truncation would visibly clip a geometric tail, unlike the doubly
    exponential tails for ``d ≥ 2``).
    """
    _validate(lam, d)
    if d == 1:
        return lam / (1.0 - lam)
    return float(equilibrium_tail(lam, d)[1:].sum())


def equilibrium_mean_sojourn_time(lam: float, d: int) -> float:
    """Equilibrium expected time in system — the paper's Table 8 quantity.

    >>> round(equilibrium_mean_sojourn_time(0.9, 3), 4)
    2.0279
    """
    return equilibrium_mean_queue_length(lam, d) / lam
