"""Load-trajectory recording: the process *path*, not just its endpoint.

Theorem 8 says ``X_i(t)/n = x_i(t) + o(1)`` for **all** ``t ≤ T``, not only
at ``T``.  :func:`simulate_trajectory` runs the lock-step engine while
snapshotting the tail fractions at requested checkpoints, so the whole
simulated path can be compared against the dense ODE solution — a much
stronger validation of the fluid-limit claim than endpoint agreement, and
the data behind "convergence over time" plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.rng import default_generator

__all__ = ["LoadTrajectory", "simulate_trajectory"]


@dataclass(frozen=True)
class LoadTrajectory:
    """Tail-fraction snapshots along a simulated allocation path.

    Attributes
    ----------
    times:
        Checkpoint times in balls-per-bin units (ascending).
    tails:
        ``(len(times), max_level + 1)`` array: entry ``(k, i)`` is the
        fraction of bins with load ≥ i at checkpoint ``k``, averaged over
        trials.  Column 0 is identically 1.
    trials:
        Number of lock-step trials averaged.
    """

    n_bins: int
    d: int
    times: np.ndarray
    tails: np.ndarray
    trials: int
    max_loads: np.ndarray | None = None
    """Mean (over trials) maximum load at each checkpoint — the max-load
    growth curve whose flatness is the log log n phenomenon."""

    def tail_series(self, level: int) -> np.ndarray:
        """The time series of the ≥ ``level`` fraction."""
        if not 0 <= level < self.tails.shape[1]:
            raise ValueError(
                f"level {level} outside recorded range "
                f"[0, {self.tails.shape[1]})"
            )
        return self.tails[:, level]


def simulate_trajectory(
    scheme: ChoiceScheme,
    t_final: float,
    trials: int,
    *,
    checkpoints: int = 20,
    max_level: int = 8,
    seed: int | np.random.Generator | None = None,
) -> LoadTrajectory:
    """Run the allocation to ``t_final`` balls per bin, snapshotting tails.

    Parameters
    ----------
    scheme:
        Choice generator (defines n_bins and d).
    t_final:
        Horizon in balls-per-bin units.
    trials:
        Lock-step trial count (snapshots average over trials).
    checkpoints:
        Number of equally spaced snapshot times in (0, t_final].
    max_level:
        Highest load level recorded.
    """
    if t_final <= 0:
        raise ConfigurationError(f"t_final must be positive, got {t_final}")
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if checkpoints < 1:
        raise ConfigurationError(
            f"checkpoints must be positive, got {checkpoints}"
        )
    rng = default_generator(seed)
    n = scheme.n_bins
    d = scheme.d
    n_balls = int(round(t_final * n))
    # Checkpoint ball indices (1-based counts after which to snapshot).
    marks = np.unique(
        np.round(np.linspace(1, n_balls, checkpoints)).astype(np.int64)
    )
    loads = np.zeros((trials, n), dtype=np.int32)
    rows = np.arange(trials)
    tails_out = np.zeros((len(marks), max_level + 1))
    max_out = np.zeros(len(marks))
    random_ties = d > 1

    next_mark = 0
    thrown = 0
    block = 128
    while thrown < n_balls:
        steps = min(block, n_balls - thrown)
        choices = scheme.batch(steps * trials, rng).reshape(steps, trials, d)
        noise = rng.random((steps, trials, d)) if random_ties else None
        for s in range(steps):
            ball_choices = choices[s]
            candidate = loads[rows[:, None], ball_choices]
            if random_ties:
                picks = np.argmin(candidate + noise[s], axis=1)
            else:
                picks = np.zeros(trials, dtype=np.int64)
            chosen = ball_choices[rows, picks]
            loads[rows, chosen] += 1
            thrown += 1
            while next_mark < len(marks) and thrown == marks[next_mark]:
                for level in range(max_level + 1):
                    tails_out[next_mark, level] = float(
                        (loads >= level).mean()
                    )
                max_out[next_mark] = float(loads.max(axis=1).mean())
                next_mark += 1
    return LoadTrajectory(
        n_bins=n,
        d=d,
        times=marks / float(n),
        tails=tails_out,
        trials=trials,
        max_loads=max_out,
    )
