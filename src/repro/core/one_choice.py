"""One-choice baseline: each ball goes to a single uniform random bin.

The classical comparison point the paper opens with: one choice yields a
maximum load of ``log n / log log n (1 + o(1))``, versus ``log log n / log d
+ O(1)`` for ``d ≥ 2`` choices.  Because placement does not depend on loads,
the whole trial collapses to a multinomial draw — no sequential loop at all.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import default_generator
from repro.types import TrialBatchResult

__all__ = ["simulate_one_choice"]


def simulate_one_choice(
    n_bins: int,
    n_balls: int,
    trials: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> TrialBatchResult:
    """Throw ``n_balls`` one-choice balls per trial; return final loads.

    Each trial's load vector is one multinomial sample with equal cell
    probabilities, drawn directly (no ball loop).
    """
    if n_bins < 1:
        raise ConfigurationError(f"n_bins must be positive, got {n_bins}")
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    rng = default_generator(seed)
    pvals = np.full(n_bins, 1.0 / n_bins)
    loads = rng.multinomial(n_balls, pvals, size=trials).astype(np.int32)
    return TrialBatchResult(n_bins=n_bins, n_balls=n_balls, loads=loads)
