"""The (1+β)-choice process of Peres, Talwar and Wieder.

Cited in the paper's related work ([36]): each ball flips a β-coin; with
probability β it uses two choices (least loaded of two), otherwise a single
uniform choice.  Interpolates between one-choice and two-choice and shows
that even a *fraction* of two-choice balls collapses the maximum load to
``Θ(log n / β)``.

We support the same scheme split as the main engines: the two-choice balls
may draw their pair from fully random hashing or double hashing — extending
the paper's question ("does double hashing change anything?") to this
process.  Implemented on the lock-step trial layout of
:mod:`repro.core.vectorized`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.hashing.double_hashing import DoubleHashingChoices
from repro.hashing.fully_random import FullyRandomChoices
from repro.rng import default_generator
from repro.types import TrialBatchResult

__all__ = ["simulate_one_plus_beta"]


def simulate_one_plus_beta(
    n_bins: int,
    n_balls: int,
    trials: int,
    beta: float,
    *,
    scheme: ChoiceScheme | str = "random",
    seed: int | np.random.Generator | None = None,
    block: int = 128,
) -> TrialBatchResult:
    """Run the (1+β)-choice process on ``trials`` lock-step trials.

    Parameters
    ----------
    beta:
        Probability that a ball uses two choices instead of one, in [0, 1].
    scheme:
        How the two-choice balls draw their pair: ``"random"``/``"double"``
        or an explicit two-choice :class:`ChoiceScheme` over ``n_bins``.
    """
    if not 0.0 <= beta <= 1.0:
        raise ConfigurationError(f"beta must be in [0, 1], got {beta}")
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if isinstance(scheme, str):
        if scheme == "random":
            scheme = FullyRandomChoices(n_bins, 2)
        elif scheme == "double":
            scheme = DoubleHashingChoices(n_bins, 2)
        else:
            raise ConfigurationError(
                f"scheme must be 'random' or 'double', got {scheme!r}"
            )
    if scheme.n_bins != n_bins or scheme.d != 2:
        raise ConfigurationError(
            "scheme must offer 2 choices over n_bins="
            f"{n_bins}; got {scheme.describe()}"
        )
    rng = default_generator(seed)
    loads = np.zeros((trials, n_bins), dtype=np.int32)
    rows = np.arange(trials)

    remaining = n_balls
    while remaining > 0:
        steps = min(block, remaining)
        pair = scheme.batch(steps * trials, rng).reshape(steps, trials, 2)
        two_choice = rng.random((steps, trials)) < beta
        noise = rng.random((steps, trials, 2))
        for s in range(steps):
            ball_choices = pair[s]
            candidate = loads[rows[:, None], ball_choices]
            keys = candidate + noise[s]
            picks = np.argmin(keys, axis=1)
            # One-choice balls ignore the comparison and take the first
            # candidate (marginally uniform for both schemes).
            picks = np.where(two_choice[s], picks, 0)
            chosen = ball_choices[rows, picks]
            loads[rows, chosen] += 1
        remaining -= steps
    return TrialBatchResult(n_bins=n_bins, n_balls=n_balls, loads=loads)
