"""Experiment orchestration: chunked, optionally parallel trial running.

:func:`run_experiment` is the main entry point used by the experiment
harness and benchmarks.  It splits the requested trials into chunks, runs
each chunk through the vectorized engine (in-process or across a process
pool), and folds the chunk summaries into a
:class:`~repro.core.stats.StreamingLoadAggregator` — so memory stays
O(max_load) no matter how many trials are requested, matching the paper's
10^4-trial scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stats import StreamingLoadAggregator, trial_histograms
from repro.core.vectorized import simulate_batch
from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.parallel import map_trial_chunks
from repro.types import LoadDistribution

__all__ = ["ExperimentResult", "run_experiment"]


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregated outcome of a multi-trial experiment.

    Attributes
    ----------
    distribution:
        Merged load distribution over all trials.
    aggregator:
        The streaming aggregator, exposing per-level sample statistics
        (Table 5 rows) without retaining raw loads.
    scheme_description:
        The scheme's one-line description for reports.
    """

    distribution: LoadDistribution
    aggregator: StreamingLoadAggregator
    scheme_description: str


@dataclass(frozen=True)
class _ChunkTask:
    """Picklable chunk description shipped to worker processes."""

    scheme: ChoiceScheme
    n_balls: int
    tie_break: str
    block: int


def _run_chunk(
    task: _ChunkTask, chunk_trials: int, seed_seq: np.random.SeedSequence
) -> np.ndarray:
    """Worker body: run one chunk, return the per-trial histogram matrix."""
    rng = np.random.default_rng(seed_seq)
    batch = simulate_batch(
        task.scheme,
        task.n_balls,
        chunk_trials,
        seed=rng,
        tie_break=task.tie_break,
        block=task.block,
    )
    return trial_histograms(batch.loads)


def run_experiment(
    scheme: ChoiceScheme,
    n_balls: int,
    trials: int,
    *,
    seed: int | None = None,
    tie_break: str = "random",
    block: int = 128,
    workers: int = 1,
    chunks: int | None = None,
) -> ExperimentResult:
    """Run ``trials`` balls-and-bins trials and aggregate the results.

    Parameters
    ----------
    scheme:
        Choice generator (must be picklable when ``workers > 1``; all
        built-in schemes are).
    n_balls, trials:
        Experiment size.
    seed:
        Root seed; chunk streams are spawned deterministically from it.
    tie_break:
        ``"random"`` (standard scheme) or ``"left"`` (Vöcking).
    block:
        Ball-steps per RNG call inside the engine.
    workers:
        Process count; 1 (default) runs in-process, still chunked.
    chunks:
        Chunk count override (defaults chosen by the pool).
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    histograms = map_trial_chunks(
        _run_chunk,
        _ChunkTask(scheme=scheme, n_balls=n_balls, tie_break=tie_break, block=block),
        trials,
        seed=seed,
        workers=workers,
        chunks=chunks,
    )
    aggregator = StreamingLoadAggregator(n_bins=scheme.n_bins, n_balls=n_balls)
    for hist in histograms:
        aggregator.update_histograms(hist)
    return ExperimentResult(
        distribution=aggregator.distribution(),
        aggregator=aggregator,
        scheme_description=scheme.describe(),
    )
