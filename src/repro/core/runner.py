"""Experiment orchestration: chunked, resilient, optionally parallel runs.

:func:`run_experiment` is the main entry point used by the experiment
harness and benchmarks.  It splits the requested trials into chunks and
runs each through the vectorized engine via the resilient
:class:`~repro.parallel.engine.ExecutionEngine` — per-chunk retries on
the original seed streams, optional checkpointing and timeouts, metrics
and progress instrumentation — then folds the chunk summaries into a
:class:`~repro.core.stats.StreamingLoadAggregator`, so memory stays
O(max_load) no matter how many trials are requested, matching the
paper's 10^4-trial scale.

The preferred call style passes an
:class:`~repro.experiments.config.ExperimentSpec`::

    spec = ExperimentSpec(n=2**14, d=3, trials=1000, seed=1, workers=4)
    result = run_experiment(DoubleHashingChoices(spec.n, spec.d), spec)

The historical ``run_experiment(scheme, n_balls, trials, **kw)`` signature
still works but emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.core.stats import StreamingLoadAggregator, trial_histograms
from repro.core.vectorized import simulate_batch
from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.metrics import MetricsRegistry
from repro.parallel.engine import ChunkProgress, ExecutionEngine
from repro.types import LoadDistribution

if TYPE_CHECKING:
    from repro.experiments.config import ExperimentSpec

__all__ = ["ExperimentResult", "run_experiment"]


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregated outcome of a multi-trial experiment.

    Attributes
    ----------
    distribution:
        Merged load distribution over all trials.
    aggregator:
        The streaming aggregator, exposing per-level sample statistics
        (Table 5 rows) without retaining raw loads.
    scheme_description:
        The scheme's one-line description for reports.
    metrics:
        The metrics registry observed during the run (chunk timings,
        retry/timeout events); ``None`` unless instrumentation was on.
    """

    distribution: LoadDistribution
    aggregator: StreamingLoadAggregator
    scheme_description: str
    metrics: MetricsRegistry | None = None


@dataclass(frozen=True)
class _ChunkTask:
    """Picklable chunk description shipped to worker processes.

    ``backend`` rides along so pool workers inherit the kernel backend of
    the parent run (the ``REPRO_BACKEND`` environment variable is also
    inherited by spawned processes, but an explicit spec choice must win
    over the worker's environment).
    """

    scheme: ChoiceScheme
    n_balls: int
    tie_break: str
    block: int
    backend: str | None = None


def _run_chunk(
    task: _ChunkTask, chunk_trials: int, seed_seq: np.random.SeedSequence
) -> np.ndarray:
    """Worker body: run one chunk, return the per-trial histogram matrix."""
    rng = np.random.default_rng(seed_seq)
    batch = simulate_batch(
        task.scheme,
        task.n_balls,
        chunk_trials,
        seed=rng,
        tie_break=task.tie_break,
        block=task.block,
        backend=task.backend,
    )
    return trial_histograms(batch.loads)


@dataclass(frozen=True)
class _ParallelChunkTask:
    """Chunk description for ``trials_mode="parallel"``.

    Carries the shared ``root`` entropy instead of relying on the
    engine's spawned per-chunk seeds: every trial's counter-based stream
    is keyed by ``(root, global trial index)``, so results are identical
    under any chunking (seed-equivalence; see
    :mod:`repro.kernels.parallel_trials`).
    """

    scheme: ChoiceScheme
    n_balls: int
    tie_break: str
    block: int
    backend: str | None
    root: int
    shards: int | None


def _run_parallel_chunk(
    task: _ParallelChunkTask,
    chunk_trials: int,
    seed_seq: np.random.SeedSequence,
    trial_offset: int,
) -> np.ndarray:
    """Worker body for parallel-trials mode.

    ``seed_seq`` is unused by design — trial streams derive from
    ``task.root`` and the global trial index so the histogram matrix does
    not depend on how trials were partitioned into chunks.
    """
    from repro.kernels import run_parallel_trials

    return run_parallel_trials(
        task.scheme,
        task.n_balls,
        chunk_trials,
        root=task.root,
        trial_offset=trial_offset,
        tie_break=task.tie_break,
        block=task.block,
        backend=task.backend,
        shards=task.shards,
    )


def _coerce_spec(
    spec: Any,
    trials: int | None,
    kwargs: dict[str, Any],
) -> "ExperimentSpec":
    """Resolve the (spec | legacy keyword) calling conventions."""
    from repro.experiments.config import ExperimentSpec

    if isinstance(spec, ExperimentSpec):
        if trials is not None:
            spec = spec.replace(trials=trials)
        overrides = {k: v for k, v in kwargs.items() if v is not None}
        return spec.replace(**overrides) if overrides else spec
    # Legacy: the second positional argument was ``n_balls``.
    if spec is None and kwargs.get("n_balls") is None:
        raise ConfigurationError(
            "run_experiment needs an ExperimentSpec (or legacy n_balls/trials)"
        )
    warnings.warn(
        "run_experiment(scheme, n_balls, trials, ...) is deprecated; "
        "pass an ExperimentSpec instead: run_experiment(scheme, spec)",
        DeprecationWarning,
        stacklevel=3,
    )
    n_balls = kwargs.pop("n_balls", None)
    if n_balls is None:
        n_balls = spec
    legacy = {
        "n_balls": int(n_balls),
        "trials": 0 if trials is None else trials,
        # Legacy default seed was None (fresh entropy), not the spec's 1.
        "seed": None,
        "tie_break": "random",
        "block": 128,
        "workers": 1,
    }
    legacy.update({k: v for k, v in kwargs.items() if v is not None})
    return ExperimentSpec(n=legacy["n_balls"], **legacy)


def run_experiment(
    scheme: ChoiceScheme,
    spec: "ExperimentSpec | int | None" = None,
    trials: int | None = None,
    *,
    n_balls: int | None = None,
    seed: int | None = None,
    tie_break: str | None = None,
    block: int | None = None,
    backend: str | None = None,
    workers: int | None = None,
    chunks: int | None = None,
    metrics: MetricsRegistry | None = None,
    progress: Callable[[ChunkProgress], None] | None = None,
) -> ExperimentResult:
    """Run balls-and-bins trials under ``spec`` and aggregate the results.

    Parameters
    ----------
    scheme:
        Choice generator (must be picklable when ``spec.workers > 1``;
        all built-in schemes are).
    spec:
        The :class:`~repro.experiments.config.ExperimentSpec` describing
        the run.  (Legacy: an integer here is read as ``n_balls`` and
        triggers the deprecated keyword path.)
    trials, n_balls, seed, tie_break, block, backend, workers, chunks:
        Per-call overrides of the corresponding spec fields; with a spec
        these are conveniences (``None`` means "use the spec"), without
        one they form the deprecated legacy signature.
    metrics:
        Registry to instrument the run with; when ``None`` one is created
        if ``spec.metrics_out`` is set (and saved there afterwards).
    progress:
        Callback receiving a :class:`~repro.parallel.engine.ChunkProgress`
        per completed chunk.
    """
    spec = _coerce_spec(
        spec,
        trials,
        {
            "n_balls": n_balls,
            "seed": seed,
            "tie_break": tie_break,
            "block": block,
            "backend": backend,
            "workers": workers,
            "chunks": chunks,
        },
    )
    if spec.trials < 1:
        raise ConfigurationError(f"trials must be positive, got {spec.trials}")

    registry = metrics
    if registry is None and (spec.metrics_out or progress is not None):
        registry = MetricsRegistry()
    engine = ExecutionEngine(
        spec.engine_config(), metrics=registry, progress=progress
    )
    registry = engine.metrics  # the engine creates one when none was given

    n_balls_run = spec.balls
    with registry.timer("experiment.total_seconds"):
        if spec.trials_mode == "parallel":
            # Resolve the shared root entropy once, in the driver, so
            # every chunk keys the same per-trial streams even when the
            # spec asked for fresh entropy.
            root = (
                spec.seed
                if spec.seed is not None
                else int(np.random.SeedSequence().entropy)
            )
            histograms = engine.map_chunks(
                _run_parallel_chunk,
                _ParallelChunkTask(
                    scheme=scheme,
                    n_balls=n_balls_run,
                    tie_break=spec.tie_break,
                    block=spec.block,
                    backend=spec.backend,
                    root=root,
                    shards=spec.shards,
                ),
                spec.trials,
                seed=spec.seed,
                offsets=True,
            )
        else:
            histograms = engine.map_chunks(
                _run_chunk,
                _ChunkTask(
                    scheme=scheme,
                    n_balls=n_balls_run,
                    tie_break=spec.tie_break,
                    block=spec.block,
                    backend=spec.backend,
                ),
                spec.trials,
                seed=spec.seed,
            )
        with registry.timer("experiment.aggregate_seconds"):
            aggregator = StreamingLoadAggregator(
                n_bins=scheme.n_bins, n_balls=n_balls_run
            )
            for hist in histograms:
                aggregator.update_histograms(hist)
    registry.increment("experiment.trials", spec.trials)
    # Each ball draws d candidate bins (plus tie-break draws); this
    # estimate tracks RNG pressure across sweeps without instrumenting
    # numpy itself.
    registry.increment(
        "rng.draws_estimate", spec.trials * n_balls_run * scheme.d
    )
    if spec.metrics_out:
        registry.save(spec.metrics_out)
    return ExperimentResult(
        distribution=aggregator.distribution(),
        aggregator=aggregator,
        scheme_description=scheme.describe(),
        metrics=registry if (metrics is not None or spec.metrics_out or progress) else None,
    )
