"""Weighted balls into bins (Peres–Talwar–Wieder, paper related work [36]).

Each ball carries a random weight; it joins the candidate bin whose
*total weight* is smallest.  The related work the paper cites studies this
together with the (1+β) process; including it lets the double-hashing
question be asked one setting further out: does replacing the d choices
with double hashing change the weighted-load distribution?  (Empirically —
per the tests — it does not, mirroring the unweighted result.)

Implemented on the lock-step trial layout with float64 loads; weights are
drawn per ball from a pluggable sampler (default exp(1), the standard
benchmark distribution).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.rng import default_generator

__all__ = ["WeightedBatchResult", "simulate_weighted"]


@dataclass(frozen=True)
class WeightedBatchResult:
    """Final weighted loads of a multi-trial weighted allocation.

    Attributes
    ----------
    loads:
        ``(trials, n_bins)`` float array of total bin weights.
    total_weight_per_trial:
        Sum of weights thrown per trial (for normalization checks).
    """

    n_bins: int
    n_balls: int
    loads: np.ndarray
    total_weight_per_trial: np.ndarray

    @property
    def max_load_per_trial(self) -> np.ndarray:
        return self.loads.max(axis=1)

    @property
    def gap_per_trial(self) -> np.ndarray:
        """Max weighted load minus the mean weighted load, per trial."""
        return self.max_load_per_trial - self.total_weight_per_trial / self.n_bins


def simulate_weighted(
    scheme: ChoiceScheme,
    n_balls: int,
    trials: int,
    *,
    weight_sampler: Callable[[np.random.Generator, int], np.ndarray]
    | None = None,
    seed: int | np.random.Generator | None = None,
    block: int = 128,
) -> WeightedBatchResult:
    """Throw weighted balls: each joins its least-weighted candidate bin.

    Parameters
    ----------
    scheme:
        Choice generator.
    n_balls, trials:
        Geometry, as in :func:`repro.core.vectorized.simulate_batch`.
    weight_sampler:
        ``f(rng, size) -> positive weights``; default exp(1).  Weights are
        continuous, so ties have probability zero and no tie-breaking
        noise is needed.
    """
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if weight_sampler is None:
        weight_sampler = lambda rng, size: rng.exponential(1.0, size)  # noqa: E731
    rng = default_generator(seed)
    n, d = scheme.n_bins, scheme.d
    loads = np.zeros((trials, n), dtype=np.float64)
    totals = np.zeros(trials, dtype=np.float64)
    rows = np.arange(trials)

    remaining = n_balls
    while remaining > 0:
        steps = min(block, remaining)
        choices = scheme.batch(steps * trials, rng).reshape(steps, trials, d)
        weights = np.asarray(
            weight_sampler(rng, (steps, trials)), dtype=np.float64
        )
        if weights.shape != (steps, trials):
            raise ConfigurationError(
                "weight_sampler returned shape "
                f"{weights.shape}, expected {(steps, trials)}"
            )
        if (weights <= 0).any():
            raise ConfigurationError("weights must be strictly positive")
        for s in range(steps):
            ball_choices = choices[s]
            candidate = loads[rows[:, None], ball_choices]
            picks = np.argmin(candidate, axis=1)
            chosen = ball_choices[rows, picks]
            loads[rows, chosen] += weights[s]
            totals += weights[s]
        remaining -= steps
    return WeightedBatchResult(
        n_bins=n,
        n_balls=n_balls,
        loads=loads,
        total_weight_per_trial=totals,
    )
