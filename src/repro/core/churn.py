"""Balanced allocations with deletions ("churn"), per paper Section 2.2.

The paper notes Vöcking's witness-tree argument "also appl[ies] in settings
with deletions".  This engine makes that setting runnable: after an initial
fill of ``n_balls`` balls, each churn step deletes one *uniformly random
alive ball* and inserts a fresh ball through the choice scheme — keeping
the population constant while the configuration mixes.  The observable is
the steady-state load distribution, which should again be indistinguishable
between double hashing and fully random choices.

This is also the repo's keyed-stream engine: pass a
:class:`~repro.hashing.keyed.KeyedStreamScheme` (or any registry scheme via
:func:`repro.hashing.make_scheme`) and the insert stream is driven by
hashed keys instead of fresh per-ball randomness — the regime the service
layer (:mod:`repro.service`) operates in, with live per-key state on top.

Implementation follows the lock-step trial layout of
:mod:`repro.core.vectorized`: ball→bin placements are a ``(trials,
n_balls)`` matrix, so deletion of a random ball index and re-insertion is a
vectorized gather/scatter per step.  The signature mirrors
``simulate_batch`` (``seed``/``tie_break``/``block``/``backend``/
``metrics``); note that churn must track *which bin every alive ball
occupies*, which the packed placement kernels do not expose, so both
backends currently execute the strided per-step path — ``backend`` is
validated and recorded for API uniformity and forward compatibility.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.kernels import DEFAULT_BLOCK, kernel_metrics, resolve_backend
from repro.metrics import MetricsRegistry
from repro.rng import default_generator
from repro.types import TrialBatchResult

__all__ = ["simulate_churn"]


def _place_step(
    loads: np.ndarray,
    ball_choices: np.ndarray,
    noise: np.ndarray | None,
    rows: np.ndarray,
) -> np.ndarray:
    """Place one ball per trial; returns the chosen bin per trial.

    ``noise`` is the U[0,1) tie-break key block for this step (random
    tie-breaking) or ``None`` (leftmost-choice tie-breaking).
    """
    candidate = loads[rows[:, None], ball_choices]
    if noise is not None:
        picks = np.argmin(candidate + noise, axis=1)
    else:
        picks = np.argmin(candidate, axis=1)
    chosen = ball_choices[rows, picks]
    loads[rows, chosen] += 1
    return chosen


def simulate_churn(
    scheme: ChoiceScheme,
    n_balls: int,
    churn_steps: int,
    trials: int,
    *,
    seed: int | np.random.Generator | None = None,
    tie_break: str = "random",
    block: int = DEFAULT_BLOCK,
    backend: str | None = None,
    metrics: MetricsRegistry | None = None,
) -> TrialBatchResult:
    """Fill with ``n_balls``, then run ``churn_steps`` delete+insert cycles.

    Parameters
    ----------
    scheme:
        Choice generator (also used for the initial fill).
    n_balls:
        Standing population per trial.
    churn_steps:
        Number of delete-one/insert-one cycles after the fill.
    trials:
        Lock-step trial count.
    seed:
        Seed or generator driving all randomness.
    tie_break:
        ``"random"`` (the standard scheme) or ``"left"`` (first shortest
        candidate in choice order), as in ``simulate_batch``.
    block:
        Steps generated per RNG superblock (a throughput knob, but note
        it changes the draw interleaving, so results for a fixed seed
        depend on it).  Default: :data:`repro.kernels.DEFAULT_BLOCK`.
    backend:
        Kernel-backend name, resolved and recorded exactly as in
        ``simulate_batch``; the churn stream itself always runs the
        strided engine (see module docstring).
    metrics:
        Registry receiving ``churn.*`` counters and timers (the global
        registry by default).

    Returns
    -------
    TrialBatchResult
        Final loads after churn; ``n_balls`` balls remain per trial.
    """
    if n_balls < 1:
        raise ConfigurationError(f"n_balls must be positive, got {n_balls}")
    if churn_steps < 0:
        raise ConfigurationError(
            f"churn_steps must be non-negative, got {churn_steps}"
        )
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if block < 1:
        raise ConfigurationError(f"block must be positive, got {block}")
    if tie_break not in ("random", "left"):
        raise ConfigurationError(
            f"tie_break must be 'random' or 'left', got {tie_break!r}"
        )
    impl = resolve_backend(backend, metrics=metrics)
    registry = metrics if metrics is not None else kernel_metrics()
    rng = default_generator(seed)
    n = scheme.n_bins
    d = scheme.d
    random_ties = tie_break == "random" and d > 1
    loads = np.zeros((trials, n), dtype=np.int32)
    placements = np.empty((trials, n_balls), dtype=np.int64)
    rows = np.arange(trials)

    with registry.timer("churn.seconds"):
        # Initial fill: ball j occupies placement slot j.
        done = 0
        while done < n_balls:
            steps = min(block, n_balls - done)
            choices = scheme.batch(steps * trials, rng).reshape(steps, trials, d)
            noise = rng.random((steps, trials, d)) if random_ties else None
            for s in range(steps):
                chosen = _place_step(
                    loads, choices[s], None if noise is None else noise[s], rows
                )
                placements[:, done + s] = chosen
            done += steps

        # Churn: delete a uniform alive ball, insert into its slot.
        done = 0
        while done < churn_steps:
            steps = min(block, churn_steps - done)
            victims = rng.integers(0, n_balls, size=(steps, trials))
            choices = scheme.batch(steps * trials, rng).reshape(steps, trials, d)
            noise = rng.random((steps, trials, d)) if random_ties else None
            for s in range(steps):
                victim_bins = placements[rows, victims[s]]
                loads[rows, victim_bins] -= 1
                chosen = _place_step(
                    loads, choices[s], None if noise is None else noise[s], rows
                )
                placements[rows, victims[s]] = chosen
            done += steps

    registry.increment("churn.balls_filled", n_balls * trials)
    registry.increment("churn.steps", churn_steps * trials)
    registry.increment(f"churn.calls.{impl.name}", 1)
    return TrialBatchResult(n_bins=n, n_balls=n_balls, loads=loads)
