"""Balanced allocations with deletions ("churn"), per paper Section 2.2.

The paper notes Vöcking's witness-tree argument "also appl[ies] in settings
with deletions".  This engine makes that setting runnable: after an initial
fill of ``n_balls`` balls, each churn step deletes one *uniformly random
alive ball* and inserts a fresh ball through the choice scheme — keeping
the population constant while the configuration mixes.  The observable is
the steady-state load distribution, which should again be indistinguishable
between double hashing and fully random choices.

Implementation follows the lock-step trial layout of
:mod:`repro.core.vectorized`: ball→bin placements are a ``(trials,
n_balls)`` matrix, so deletion of a random ball index and re-insertion is a
vectorized gather/scatter per step.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.rng import default_generator
from repro.types import TrialBatchResult

__all__ = ["simulate_churn"]


def simulate_churn(
    scheme: ChoiceScheme,
    n_balls: int,
    churn_steps: int,
    trials: int,
    *,
    seed: int | np.random.Generator | None = None,
    block: int = 128,
) -> TrialBatchResult:
    """Fill with ``n_balls``, then run ``churn_steps`` delete+insert cycles.

    Parameters
    ----------
    scheme:
        Choice generator (also used for the initial fill).
    n_balls:
        Standing population per trial.
    churn_steps:
        Number of delete-one/insert-one cycles after the fill.
    trials:
        Lock-step trial count.
    seed, block:
        As in :func:`repro.core.vectorized.simulate_batch`.

    Returns
    -------
    TrialBatchResult
        Final loads after churn; ``n_balls`` balls remain per trial.
    """
    if n_balls < 1:
        raise ConfigurationError(f"n_balls must be positive, got {n_balls}")
    if churn_steps < 0:
        raise ConfigurationError(
            f"churn_steps must be non-negative, got {churn_steps}"
        )
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    rng = default_generator(seed)
    n = scheme.n_bins
    d = scheme.d
    loads = np.zeros((trials, n), dtype=np.int32)
    placements = np.empty((trials, n_balls), dtype=np.int64)
    rows = np.arange(trials)

    def _insert_block(choice_block, noise_block, ball_slots):
        """Place one ball per trial for each step in the block."""
        for s in range(choice_block.shape[0]):
            ball_choices = choice_block[s]
            candidate = loads[rows[:, None], ball_choices]
            picks = np.argmin(candidate + noise_block[s], axis=1)
            chosen = ball_choices[rows, picks]
            loads[rows, chosen] += 1
            placements[rows, ball_slots[s]] = chosen

    # Initial fill: ball j occupies placement slot j.
    done = 0
    while done < n_balls:
        steps = min(block, n_balls - done)
        choices = scheme.batch(steps * trials, rng).reshape(steps, trials, d)
        noise = rng.random((steps, trials, d))
        slots = np.tile(
            np.arange(done, done + steps)[:, None], (1, trials)
        )
        _insert_block(choices, noise, slots)
        done += steps

    # Churn: delete a uniform alive ball, insert a replacement into its slot.
    done = 0
    while done < churn_steps:
        steps = min(block, churn_steps - done)
        victims = rng.integers(0, n_balls, size=(steps, trials))
        choices = scheme.batch(steps * trials, rng).reshape(steps, trials, d)
        noise = rng.random((steps, trials, d))
        for s in range(steps):
            victim_bins = placements[rows, victims[s]]
            loads[rows, victim_bins] -= 1
            ball_choices = choices[s]
            candidate = loads[rows[:, None], ball_choices]
            picks = np.argmin(candidate + noise[s], axis=1)
            chosen = ball_choices[rows, picks]
            loads[rows, chosen] += 1
            placements[rows, victims[s]] = chosen
        done += steps

    return TrialBatchResult(n_bins=n, n_balls=n_balls, loads=loads)
