"""Table-shaped summaries of simulation results.

Helpers that turn raw :class:`~repro.types.TrialBatchResult` /
:class:`~repro.types.LoadDistribution` objects into the row formats the
paper's tables report: per-load fractions, tail fractions, max-load trial
fractions, and per-level sample statistics (Table 5's min/avg/max/std).

Also provides :class:`StreamingLoadAggregator`, a Welford-style accumulator
for runs too large to keep all per-trial loads in memory: trials are fed in
chunks and only O(max_load) state is retained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.types import LevelStats, LoadDistribution, TrialBatchResult

__all__ = [
    "StreamingLoadAggregator",
    "level_stats_table",
    "load_fraction_rows",
    "tail_fraction_rows",
    "trial_histograms",
]


def trial_histograms(loads: np.ndarray) -> np.ndarray:
    """Per-trial load histograms: ``(trials, max_load + 1)`` counts.

    Row ``t`` is ``bincount(loads[t])``, padded to a common width.  This is
    the compact summary a worker process ships back to the parent (a few
    dozen integers per trial instead of ``n_bins``).
    """
    loads = np.asarray(loads)
    width = int(loads.max(initial=0)) + 1
    out = np.zeros((loads.shape[0], width), dtype=np.int64)
    for t in range(loads.shape[0]):
        out[t] = np.bincount(loads[t], minlength=width)
    return out


def load_fraction_rows(
    dist: LoadDistribution, *, min_fraction: float = 0.0
) -> list[tuple[int, float]]:
    """``(load, fraction)`` rows as in paper Tables 1, 3, 6, 7.

    Loads whose fraction is at most ``min_fraction`` are dropped (the paper
    omits all-zero rows).
    """
    fractions = dist.fractions
    return [
        (load, float(frac))
        for load, frac in enumerate(fractions)
        if frac > min_fraction
    ]


def tail_fraction_rows(
    dist: LoadDistribution, *, max_load: int | None = None
) -> list[tuple[int, float]]:
    """``(load, fraction with load >= load)`` rows as in paper Table 2."""
    tails = dist.tail_fractions
    stop = len(tails) if max_load is None else min(len(tails), max_load + 1)
    return [(load, float(tails[load])) for load in range(1, stop)]


def level_stats_table(
    batch: TrialBatchResult, *, max_load: int | None = None
) -> list[LevelStats]:
    """Per-load min/avg/max/std of bin counts across trials (Table 5)."""
    top = int(batch.loads.max(initial=0))
    if max_load is not None:
        top = min(top, max_load)
    return [batch.level_stats(load) for load in range(top + 1)]


@dataclass
class StreamingLoadAggregator:
    """Welford-style streaming aggregation of per-trial load histograms.

    Feed chunks of trials via :meth:`update`; retrieve a merged
    :class:`LoadDistribution` and per-level :class:`LevelStats` at any time.
    Memory is O(max observed load), independent of trial count — required
    for paper-scale runs (10^4 trials × 2^18 bins would not fit as raw
    loads).
    """

    n_bins: int
    n_balls: int
    trials: int = 0
    _counts: np.ndarray = field(default_factory=lambda: np.zeros(1, np.int64))
    _max_loads: list[int] = field(default_factory=list)
    # Welford accumulators per load level: count-mean and M2 of the
    # per-trial number of bins at that level.
    _mean: np.ndarray = field(default_factory=lambda: np.zeros(1))
    _m2: np.ndarray = field(default_factory=lambda: np.zeros(1))
    # Mins start at int64-max ("no data"); _grow keeps that convention for
    # levels added before any trial has been folded in.
    _mins: np.ndarray = field(
        default_factory=lambda: np.full(1, np.iinfo(np.int64).max, np.int64)
    )
    _maxs: np.ndarray = field(default_factory=lambda: np.zeros(1, np.int64))

    def _grow(self, width: int) -> None:
        """Widen the per-level arrays to ``width`` levels.

        A trial processed before level L first appeared contributed zero
        bins at L, so mins must reflect those implicit zeros.
        """
        current = len(self._counts)
        if width <= current:
            return
        pad = width - current
        self._counts = np.concatenate([self._counts, np.zeros(pad, np.int64)])
        self._mean = np.concatenate([self._mean, np.zeros(pad)])
        self._m2 = np.concatenate([self._m2, np.zeros(pad)])
        new_mins = np.zeros(pad, np.int64)
        if self.trials == 0:
            new_mins[:] = np.iinfo(np.int64).max
        self._mins = np.concatenate([self._mins, new_mins])
        self._maxs = np.concatenate([self._maxs, np.zeros(pad, np.int64)])

    def update(self, batch: TrialBatchResult) -> None:
        """Fold a chunk of trials into the aggregate."""
        if (batch.n_bins, batch.n_balls) != (self.n_bins, self.n_balls):
            raise ValueError(
                "geometry mismatch: aggregator is "
                f"({self.n_bins}, {self.n_balls}), batch is "
                f"({batch.n_bins}, {batch.n_balls})"
            )
        self.update_histograms(trial_histograms(batch.loads))

    def update_histograms(self, per_trial: np.ndarray) -> None:
        """Fold a ``(chunk_trials, width)`` per-trial histogram matrix.

        Row ``t`` is the load histogram of one trial (``row[i]`` = number of
        bins with load exactly ``i``).  This is the cross-process transport
        format: workers ship these tiny matrices instead of raw loads.
        """
        per_trial = np.asarray(per_trial, dtype=np.int64)
        self._grow(per_trial.shape[1])
        width = len(self._counts)
        if per_trial.shape[1] < width:
            pad = width - per_trial.shape[1]
            per_trial = np.pad(per_trial, ((0, 0), (0, pad)))
        for row in per_trial:
            nonzero = np.flatnonzero(row)
            self._max_loads.append(int(nonzero[-1]) if nonzero.size else 0)
        self._counts += per_trial.sum(axis=0)
        self._mins = np.minimum(self._mins, per_trial.min(axis=0))
        self._maxs = np.maximum(self._maxs, per_trial.max(axis=0))
        # Chunked Welford merge (Chan et al. parallel variance update).
        m = per_trial.shape[0]
        chunk_mean = per_trial.mean(axis=0)
        chunk_m2 = ((per_trial - chunk_mean) ** 2).sum(axis=0)
        if self.trials == 0:
            self._mean = chunk_mean
            self._m2 = chunk_m2
        else:
            delta = chunk_mean - self._mean
            total = self.trials + m
            self._mean += delta * (m / total)
            self._m2 += chunk_m2 + delta**2 * (self.trials * m / total)
        self.trials += m

    def merge(self, other: "StreamingLoadAggregator") -> None:
        """Fold another aggregator into this one (Chan et al. merge).

        The pairwise form of the chunked Welford update: two aggregators
        built from disjoint trial sets merge into exactly the aggregate
        of their union — associative and commutative up to float
        rounding (``tests/core`` pins agreement with the batch formulas).
        This is how sharded giant-``n`` runs combine per-shard partial
        aggregates in O(max_load) memory (see ``docs/scale.md``).
        """
        if (other.n_bins, other.n_balls) != (self.n_bins, self.n_balls):
            raise ValueError(
                "geometry mismatch: aggregator is "
                f"({self.n_bins}, {self.n_balls}), other is "
                f"({other.n_bins}, {other.n_balls})"
            )
        if other.trials == 0:
            return
        width = max(len(self._counts), len(other._counts))
        self._grow(width)
        pad = width - len(other._counts)
        # Levels the other aggregator never saw held zero bins in all of
        # its trials: zero-padding is exact for every accumulator.
        o_counts = np.pad(other._counts, (0, pad))
        o_mean = np.pad(other._mean.astype(np.float64), (0, pad))
        o_m2 = np.pad(other._m2.astype(np.float64), (0, pad))
        o_mins = np.pad(other._mins, (0, pad))
        o_maxs = np.pad(other._maxs, (0, pad))
        self._counts += o_counts
        self._max_loads.extend(other._max_loads)
        self._mins = np.minimum(self._mins, o_mins)
        self._maxs = np.maximum(self._maxs, o_maxs)
        if self.trials == 0:
            self._mean = o_mean
            self._m2 = o_m2
        else:
            t1, t2 = self.trials, other.trials
            total = t1 + t2
            delta = o_mean - self._mean
            self._mean += delta * (t2 / total)
            self._m2 += o_m2 + delta**2 * (t1 * t2 / total)
        self.trials += other.trials

    def distribution(self) -> LoadDistribution:
        """The merged load distribution over all trials seen so far."""
        if self.trials == 0:
            raise ValueError("no trials aggregated yet")
        return LoadDistribution(
            n_bins=self.n_bins,
            n_balls=self.n_balls,
            trials=self.trials,
            counts=self._counts.copy(),
            max_load_per_trial=np.array(self._max_loads, dtype=np.int64),
        )

    def level_stats(self, load: int) -> LevelStats:
        """Sample statistics of per-trial bin counts at ``load``."""
        if self.trials == 0:
            raise ValueError("no trials aggregated yet")
        if load >= len(self._counts):
            return LevelStats(load=load, minimum=0, maximum=0, mean=0.0, std=0.0)
        var = self._m2[load] / (self.trials - 1) if self.trials > 1 else 0.0
        return LevelStats(
            load=load,
            minimum=int(self._mins[load]),
            maximum=int(self._maxs[load]),
            mean=float(self._mean[load]),
            std=float(np.sqrt(var)),
        )
