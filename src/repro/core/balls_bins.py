"""Reference single-trial balanced-allocation engine.

This is the executable specification of the process the paper studies:
``m`` balls arrive sequentially; each draws ``d`` candidate bins from a
:class:`~repro.hashing.base.ChoiceScheme` and is placed in the least loaded
candidate, breaking ties uniformly at random (or toward the leftmost
candidate, for Vöcking-style processes).

The implementation now lives in :mod:`repro.kernels.reference`, where it
doubles as the kernel subsystem's reference backend — the ground truth the
vectorized backends are tested against (fixed-seed outputs are pinned by
``tests/data/golden_reference.json``).  This module keeps the historical
import path.
"""

from __future__ import annotations

from repro.kernels.reference import TieBreak, place_ball, simulate_single_trial

__all__ = ["simulate_single_trial", "place_ball", "TieBreak"]
