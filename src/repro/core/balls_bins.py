"""Reference single-trial balanced-allocation engine.

This is the executable specification of the process the paper studies:
``m`` balls arrive sequentially; each draws ``d`` candidate bins from a
:class:`~repro.hashing.base.ChoiceScheme` and is placed in the least loaded
candidate, breaking ties uniformly at random (or toward the leftmost
candidate, for Vöcking-style processes).

It is deliberately written for clarity — a plain loop over balls with small
numpy calls — and serves as the ground truth the vectorized engine is tested
against (same seed discipline, distributionally identical output).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.rng import default_generator
from repro.types import LoadDistribution

__all__ = ["simulate_single_trial", "place_ball"]

TieBreak = Literal["random", "left"]


def place_ball(
    loads: np.ndarray,
    choices: np.ndarray,
    rng: np.random.Generator,
    tie_break: TieBreak = "random",
) -> int:
    """Place one ball given its candidate bins; return the chosen bin.

    Mutates ``loads`` in place.  With ``tie_break="random"`` the least-loaded
    candidate is chosen uniformly among ties; with ``"left"`` the leftmost
    (lowest index *within the choice vector*) wins, which is Vöcking's rule
    when the choice vector is ordered across subtables.
    """
    candidate_loads = loads[choices]
    least = candidate_loads.min()
    ties = np.flatnonzero(candidate_loads == least)
    if tie_break == "left" or ties.size == 1:
        pick = ties[0]
    else:
        pick = ties[int(rng.integers(0, ties.size))]
    chosen = int(choices[pick])
    loads[chosen] += 1
    return chosen


def simulate_single_trial(
    scheme: ChoiceScheme,
    n_balls: int,
    *,
    seed: int | np.random.Generator | None = None,
    tie_break: TieBreak = "random",
    return_loads: bool = False,
) -> LoadDistribution | np.ndarray:
    """Throw ``n_balls`` balls using ``scheme``; return the load distribution.

    Parameters
    ----------
    scheme:
        Choice generator; its ``n_bins`` defines the table size.
    n_balls:
        Number of balls to place sequentially.
    seed:
        Seed or generator for all randomness (choices and tie-breaking).
    tie_break:
        ``"random"`` (paper's standard scheme) or ``"left"`` (Vöcking).
    return_loads:
        If True, return the raw per-bin load vector instead of the
        aggregated :class:`~repro.types.LoadDistribution`.
    """
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    rng = default_generator(seed)
    loads = np.zeros(scheme.n_bins, dtype=np.int64)
    for _ in range(n_balls):
        choices = scheme.single(rng)
        place_ball(loads, choices, rng, tie_break)
    if return_loads:
        return loads
    max_load = int(loads.max(initial=0))
    counts = np.bincount(loads, minlength=max_load + 1)
    return LoadDistribution(
        n_bins=scheme.n_bins,
        n_balls=n_balls,
        trials=1,
        counts=counts,
        max_load_per_trial=np.array([max_load]),
    )
