"""Vöcking's d-left scheme (paper Table 7).

The ``n`` bins are split into ``d`` subtables of size ``n/d`` laid out left
to right; each ball gets one candidate per subtable and goes to the least
loaded, breaking ties **toward the leftmost subtable**.  The asymmetric
tie-breaking is what improves the maximum-load constant from
``log log n / log d`` to ``log log n / (d·log φ_d)`` (Vöcking 2003).

Implementation: a partitioned choice scheme already emits its ``k``-th
column inside subtable ``k``, and numpy's ``argmin`` returns the *first*
minimum, so leftmost tie-breaking is exactly ``tie_break="left"`` on the
shared engines.  These wrappers only validate the pairing and pick defaults.
"""

from __future__ import annotations

import numpy as np

from repro.core.vectorized import DEFAULT_BLOCK, simulate_batch
from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.hashing.partitioned import (
    PartitionedDoubleHashing,
    PartitionedFullyRandom,
    _PartitionedScheme,
)
from repro.types import TrialBatchResult

__all__ = ["simulate_dleft", "make_dleft_scheme"]


def make_dleft_scheme(n_bins: int, d: int, kind: str = "random") -> ChoiceScheme:
    """Build the partitioned scheme for a d-left run.

    ``kind`` is ``"random"`` (one uniform choice per subtable) or
    ``"double"`` (double hashing across subtables).
    """
    if kind == "random":
        return PartitionedFullyRandom(n_bins, d)
    if kind == "double":
        return PartitionedDoubleHashing(n_bins, d)
    raise ConfigurationError(f"kind must be 'random' or 'double', got {kind!r}")


def simulate_dleft(
    scheme: ChoiceScheme,
    n_balls: int,
    trials: int,
    *,
    seed: int | np.random.Generator | None = None,
    block: int = DEFAULT_BLOCK,
    backend: str | None = None,
) -> TrialBatchResult:
    """Run Vöcking's scheme: partitioned choices, ties to the left.

    ``scheme`` must be partitioned (its column ``k`` confined to subtable
    ``k``); passing an unpartitioned scheme would silently simulate a
    different process, so it is rejected.  Leftmost tie-breaking rides the
    shared kernel backends: the candidate's column index is its tie key
    (see :mod:`repro.kernels.generate`), and since a partitioned scheme's
    columns occupy disjoint ascending index ranges, "lowest column" and
    "lowest bin index" coincide.
    """
    if not isinstance(scheme, _PartitionedScheme):
        raise ConfigurationError(
            "d-left simulation requires a partitioned scheme "
            f"(got {type(scheme).__name__}); build one with make_dleft_scheme"
        )
    return simulate_batch(
        scheme,
        n_balls,
        trials,
        seed=seed,
        tie_break="left",
        block=block,
        backend=backend,
    )
