"""Vectorized multi-trial balanced-allocation engine (the hot path).

Strategy
--------
The placement of ball *t+1* depends on the loads after ball *t*, so the
ball loop cannot be vectorized away naively.  Since this release the hot
path lives in :mod:`repro.kernels`: choices (and integer tie keys) for a
``block``-ball superblock are generated in one fused pass — a single
``uint64`` draw per ball for power-of-two double hashing — packed into
flat int32 candidates, and handed to a placement-kernel backend:

- the **numpy** backend commits balls out of sequential order whenever
  their candidate sets are provably disjoint from all earlier pending
  balls (exact, bit-identical to sequential placement on the same draws;
  see :mod:`repro.kernels.numpy_backend`);
- the optional **numba** backend JIT-compiles the plain sequential loop
  over the same draws, bit-identical to numpy for the same seed.

Backend choice: ``backend=`` argument > ``REPRO_BACKEND`` env > auto.
Geometries beyond the int32 packed address space (``n ≳ 2^23``) now plan
a *wide* int64 layout (see :mod:`repro.kernels.generate`) and keep the
fused kernels; the strided per-ball engine
(:func:`_simulate_batch_strided`) remains only for tables no packed
layout can host (``n_bins + 1 > 2^31``).

Memory: ``loads`` uses int32 — 4 bytes × trials × n_bins — which bounds
``n_balls`` at ``2**31 - 1``; heavier runs are rejected up front with the
dtype to use instead.  Kernel scratch is bounded by trial-chunking (see
:func:`repro.kernels.plan_layout`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.hashing.base import ChoiceScheme
from repro.kernels import (
    DEFAULT_BLOCK,
    choose_window,
    generate_packed,
    kernel_metrics,
    plan_layout,
    resolve_backend,
)
from repro.metrics import MetricsRegistry
from repro.rng import default_generator
from repro.types import TrialBatchResult

__all__ = ["simulate_batch", "DEFAULT_BLOCK"]

_LOAD_DTYPE = np.int32
_MAX_BALLS = int(np.iinfo(_LOAD_DTYPE).max)


def simulate_batch(
    scheme: ChoiceScheme,
    n_balls: int,
    trials: int,
    *,
    seed: int | np.random.Generator | None = None,
    tie_break: str = "random",
    block: int = DEFAULT_BLOCK,
    check_invariants: bool = False,
    backend: str | None = None,
    metrics: MetricsRegistry | None = None,
) -> TrialBatchResult:
    """Run ``trials`` independent balls-and-bins trials in lock-step.

    Parameters
    ----------
    scheme:
        Choice generator shared by all trials (stateless per ball).
    n_balls:
        Balls thrown per trial; must fit the int32 load table.
    trials:
        Number of independent trials.
    seed:
        Seed or generator driving all randomness.
    tie_break:
        ``"random"`` for the paper's standard scheme, ``"left"`` for
        Vöcking-style leftmost tie-breaking.
    block:
        Ball steps generated (and kernel-placed) per superblock.  The
        default is sweep-derived (see ``docs/performance.md``); it is a
        throughput/scratch-memory knob, not a semantic one.
    check_invariants:
        If True, verify after the run that every trial placed exactly
        ``n_balls`` balls (cheap O(trials · n_bins) check; used in tests).
    backend:
        Kernel backend name (``"numpy"``/``"numba"``); ``None`` defers to
        ``REPRO_BACKEND`` then auto-detection.
    metrics:
        Registry for kernel timers and backend events; defaults to the
        process-global registry.

    Returns
    -------
    TrialBatchResult
        Raw ``(trials, n_bins)`` final loads plus geometry.
    """
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    if n_balls > _MAX_BALLS:
        raise ConfigurationError(
            f"n_balls={n_balls} overflows the {np.dtype(_LOAD_DTYPE).name} "
            f"load table (max {_MAX_BALLS}); rerun with loads held in int64 "
            "(e.g. aggregate several smaller batches) for heavier runs"
        )
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if block < 1:
        raise ConfigurationError(f"block must be positive, got {block}")
    if tie_break not in ("random", "left"):
        raise ConfigurationError(
            f"tie_break must be 'random' or 'left', got {tie_break!r}"
        )
    rng = default_generator(seed)
    impl = resolve_backend(backend, metrics=metrics)
    registry = metrics if metrics is not None else kernel_metrics()
    n = scheme.n_bins
    d = scheme.d
    loads = np.zeros((trials, n), dtype=_LOAD_DTYPE)

    if n_balls and n == 1:
        # Degenerate table: every ball lands in the only bin, no RNG needed.
        loads[:, 0] = n_balls
    elif n_balls:
        layout = plan_layout(n, d, tie_break, trials, min(block, n_balls))
        if layout is None:
            _simulate_batch_strided(
                scheme, n_balls, trials, rng, tie_break, block, loads
            )
        else:
            window = choose_window(n, d)
            bins_p = layout.bins_p
            for t0 in range(0, trials, layout.trial_chunk):
                t1 = min(trials, t0 + layout.trial_chunk)
                chunk = t1 - t0
                work = np.zeros(chunk * bins_p, dtype=_LOAD_DTYPE)
                ws = impl.make_workspace(
                    d=d, trials=chunk, window=window, bins_p=bins_p,
                    dtype=layout.dtype,
                )
                remaining = n_balls
                while remaining > 0:
                    steps = min(block, remaining)
                    with registry.timer("kernel.generate_seconds"):
                        pc = generate_packed(scheme, chunk, steps, rng, layout)
                    with registry.timer("kernel.place_seconds"):
                        impl.place(work, pc, layout=layout, workspace=ws)
                    remaining -= steps
                if layout.wide and int(work.max(initial=0)) >> layout.load_bits:
                    # Sound overflow detector: loads only grow, so a final
                    # load under 2**load_bits proves no intermediate
                    # packed key ever wrapped into the sign bit.
                    raise SimulationError(
                        f"load field overflow: a bin exceeded 2**"
                        f"{layout.load_bits} in the wide packed layout "
                        f"(n_bins={n}, d={d}); results discarded"
                    )
                loads[t0:t1] = work.reshape(chunk, bins_p)[:, :n]
            registry.increment("kernel.balls_placed", n_balls * trials)
            registry.increment(f"kernel.calls.{impl.name}", 1)

    if check_invariants:
        totals = loads.sum(axis=1, dtype=np.int64)
        if not np.all(totals == n_balls):
            raise SimulationError(
                "ball-conservation violated: expected "
                f"{n_balls} balls per trial, got totals {np.unique(totals)}"
            )
    return TrialBatchResult(n_bins=n, n_balls=n_balls, loads=loads)


def _simulate_batch_strided(
    scheme: ChoiceScheme,
    n_balls: int,
    trials: int,
    rng: np.random.Generator,
    tie_break: str,
    block: int,
    loads: np.ndarray,
) -> None:
    """Pre-kernel per-ball engine, kept for geometries beyond the packed
    layout's address space: one fancy-indexed gather + argmin per ball
    step, float-noise tie keys, RNG amortized over ``block`` steps."""
    n = scheme.n_bins
    d = scheme.d
    rows = np.arange(trials)
    random_ties = tie_break == "random" and d > 1
    remaining = n_balls
    while remaining > 0:
        steps = min(block, remaining)
        choices = scheme.batch(steps * trials, rng).reshape(steps, trials, d)
        noise = rng.random((steps, trials, d)) if random_ties else None
        for s in range(steps):
            ball_choices = choices[s]
            candidate = loads[rows[:, None], ball_choices]
            if random_ties:
                # Integer loads + U[0,1) noise: ordering between distinct
                # loads is preserved; ties are broken uniformly.
                keys = candidate + noise[s]
                picks = np.argmin(keys, axis=1)
            else:
                picks = np.argmin(candidate, axis=1)
            chosen = ball_choices[rows, picks]
            loads[rows, chosen] += 1
        remaining -= steps
