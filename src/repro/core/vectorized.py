"""Vectorized multi-trial balanced-allocation engine (the hot path).

Strategy
--------
The placement of ball *t+1* depends on the loads after ball *t*, so the ball
loop cannot be vectorized away.  What *can* be vectorized is the trial axis:
all ``trials`` independent repetitions advance in lock-step, one ball per
step, with loads held in a single ``(trials, n_bins)`` array.  Each step is
then four numpy operations over every trial at once:

1. draw a ``(trials, d)`` block of choices from the scheme;
2. gather candidate loads with fancy indexing;
3. argmin along the choice axis — uniform tie-breaking is implemented by
   adding U[0,1) noise to the integer loads before the argmin (the noise
   perturbs order only within a tie class), while "left" tie-breaking is a
   plain argmin (numpy returns the first minimum);
4. scatter-increment the chosen bin of each trial.

Choice blocks and tie-noise are drawn for ``block`` balls at a time to
amortize RNG call overhead, per the profiling advice in the HPC guides.

Memory: ``loads`` uses int32 — 4 bytes × trials × n_bins (e.g. 64 MiB for
1000 trials at n = 2^14), and the per-block scratch is
``block × trials × d`` words.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.hashing.base import ChoiceScheme
from repro.rng import default_generator
from repro.types import TrialBatchResult

__all__ = ["simulate_batch", "DEFAULT_BLOCK"]

DEFAULT_BLOCK = 128


def simulate_batch(
    scheme: ChoiceScheme,
    n_balls: int,
    trials: int,
    *,
    seed: int | np.random.Generator | None = None,
    tie_break: str = "random",
    block: int = DEFAULT_BLOCK,
    check_invariants: bool = False,
) -> TrialBatchResult:
    """Run ``trials`` independent balls-and-bins trials in lock-step.

    Parameters
    ----------
    scheme:
        Choice generator shared by all trials (stateless per ball).
    n_balls:
        Balls thrown per trial.
    trials:
        Number of independent trials.
    seed:
        Seed or generator driving all randomness.
    tie_break:
        ``"random"`` for the paper's standard scheme, ``"left"`` for
        Vöcking-style leftmost tie-breaking.
    block:
        Number of ball steps whose randomness is drawn per RNG call.
    check_invariants:
        If True, verify after the run that every trial placed exactly
        ``n_balls`` balls (cheap O(trials · n_bins) check; used in tests).

    Returns
    -------
    TrialBatchResult
        Raw ``(trials, n_bins)`` final loads plus geometry.
    """
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if block < 1:
        raise ConfigurationError(f"block must be positive, got {block}")
    if tie_break not in ("random", "left"):
        raise ConfigurationError(
            f"tie_break must be 'random' or 'left', got {tie_break!r}"
        )
    rng = default_generator(seed)
    n = scheme.n_bins
    d = scheme.d
    loads = np.zeros((trials, n), dtype=np.int32)
    rows = np.arange(trials)
    random_ties = tie_break == "random" and d > 1

    remaining = n_balls
    while remaining > 0:
        steps = min(block, remaining)
        # One RNG call yields the choices for `steps` balls of every trial.
        choices = scheme.batch(steps * trials, rng).reshape(steps, trials, d)
        noise = rng.random((steps, trials, d)) if random_ties else None
        for s in range(steps):
            ball_choices = choices[s]
            candidate = loads[rows[:, None], ball_choices]
            if random_ties:
                # Integer loads + U[0,1) noise: ordering between distinct
                # loads is preserved; ties are broken uniformly.
                keys = candidate + noise[s]
                picks = np.argmin(keys, axis=1)
            else:
                picks = np.argmin(candidate, axis=1)
            chosen = ball_choices[rows, picks]
            loads[rows, chosen] += 1
        remaining -= steps

    if check_invariants:
        totals = loads.sum(axis=1, dtype=np.int64)
        if not np.all(totals == n_balls):
            raise SimulationError(
                "ball-conservation violated: expected "
                f"{n_balls} balls per trial, got totals {np.unique(totals)}"
            )
    return TrialBatchResult(n_bins=n, n_balls=n_balls, loads=loads)
