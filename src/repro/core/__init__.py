"""Balanced-allocation simulation engines.

Two implementations of the same process, cross-validated against each other
in the test suite:

- :mod:`repro.core.balls_bins` — a readable, single-trial reference engine
  in pure Python.  This is the executable specification.
- :mod:`repro.core.vectorized` — the production engine.  It simulates many
  independent trials in lock-step: bin loads live in a ``(trials, n_bins)``
  array and each ball step is a handful of numpy operations over all trials
  at once (gather loads, argmin with the configured tie-breaking, scatter
  increment).  This turns the inherently sequential ball loop into *m* numpy
  steps amortized over every trial, per the HPC guides' vectorization advice.

On top of these:

- :mod:`repro.core.dleft` — Vöcking's d-left scheme (ties to the left);
- :mod:`repro.core.one_choice` — the classical one-choice baseline;
- :mod:`repro.core.one_plus_beta` — the (1+β)-choice process of
  Peres–Talwar–Wieder (related work the paper cites);
- :mod:`repro.core.runner` — trial orchestration, chunking, and optional
  multiprocessing fan-out;
- :mod:`repro.core.stats` — table-shaped summaries of results.
"""

from repro.core.balls_bins import simulate_single_trial
from repro.core.churn import simulate_churn
from repro.core.dleft import simulate_dleft
from repro.core.trajectory import simulate_trajectory
from repro.core.weighted import simulate_weighted
from repro.core.one_choice import simulate_one_choice
from repro.core.one_plus_beta import simulate_one_plus_beta
from repro.core.runner import run_experiment
from repro.core.vectorized import simulate_batch

__all__ = [
    "run_experiment",
    "simulate_batch",
    "simulate_churn",
    "simulate_dleft",
    "simulate_one_choice",
    "simulate_one_plus_beta",
    "simulate_single_trial",
    "simulate_trajectory",
    "simulate_weighted",
]
