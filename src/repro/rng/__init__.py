"""Pseudo-random number generation substrate.

The paper's simulations used the C ``drand48`` generator as a proxy for
"fully random" hash values.  This package provides:

- :class:`~repro.rng.drand48.Drand48` — a bit-exact pure-Python port of the
  POSIX 48-bit LCG family (``drand48``/``lrand48``/``srand48``), so the
  paper's exact randomness source can be used in ablations;
- :class:`~repro.rng.splitmix.SplitMix64` — the standard 64-bit seeding mixer;
- :class:`~repro.rng.xorshift.Xorshift128Plus` — a fast 128-bit xorshift;
- :class:`~repro.rng.pcg.PCG32` — the PCG-XSH-RR 32-bit generator;
- :mod:`~repro.rng.streams` — deterministic spawning of independent numpy
  generator streams for parallel trials.

All bespoke generators implement a tiny shared protocol (``next_u64`` /
``random`` / ``integers``) defined in :mod:`repro.rng.base` so the choice
schemes can consume any of them interchangeably.
"""

from repro.rng.adapter import GeneratorAdapter
from repro.rng.base import BitGenerator64
from repro.rng.drand48 import Drand48
from repro.rng.pcg import PCG32
from repro.rng.splitmix import SplitMix64
from repro.rng.streams import default_generator, spawn_generators, spawn_seeds
from repro.rng.xorshift import Xorshift128Plus

__all__ = [
    "BitGenerator64",
    "Drand48",
    "GeneratorAdapter",
    "PCG32",
    "SplitMix64",
    "Xorshift128Plus",
    "default_generator",
    "spawn_generators",
    "spawn_seeds",
]
