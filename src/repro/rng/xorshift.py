"""xorshift128+ — a fast 128-bit-state generator (Vigna 2017).

Included for the PRNG ablation benchmark: the paper's claim is that double
hashing matches fully random hashing regardless of the concrete randomness
source, so the ablation runs the same experiment over drand48, SplitMix64,
xorshift128+, and PCG and confirms the load distributions agree.
"""

from __future__ import annotations

from repro.rng.base import MASK64, BitGenerator64
from repro.rng.splitmix import SplitMix64

__all__ = ["Xorshift128Plus"]


class Xorshift128Plus(BitGenerator64):
    """xorshift128+ with the (23, 17, 26) shift triple.

    Parameters
    ----------
    seed:
        Expanded to the two 64-bit state words via SplitMix64, per the
        author's recommended seeding procedure.  A zero state is impossible
        by construction (SplitMix64 outputs are never both zero for
        sequential draws, and we re-draw in the astronomically unlikely
        event they are).
    """

    def __init__(self, seed: int = 0) -> None:
        mixer = SplitMix64(seed)
        s0 = mixer.next_u64()
        s1 = mixer.next_u64()
        while s0 == 0 and s1 == 0:  # pragma: no cover - probability 2^-128
            s0 = mixer.next_u64()
            s1 = mixer.next_u64()
        self._s0 = s0
        self._s1 = s1

    @property
    def state(self) -> tuple[int, int]:
        """The two 64-bit state words (mainly for tests)."""
        return (self._s0, self._s1)

    def next_u64(self) -> int:
        s1, s0 = self._s0, self._s1
        result = (s0 + s1) & MASK64
        self._s0 = s0
        s1 = (s1 ^ (s1 << 23)) & MASK64
        self._s1 = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5)
        return result
