"""PCG32 (PCG-XSH-RR 64/32) — O'Neill's permuted congruential generator.

A 64-bit LCG state with a 32-bit xorshift-high/random-rotate output
permutation.  This is the small sibling of numpy's default PCG64; having a
pure-Python implementation lets the ablation bench include a
modern-statistical-quality generator without depending on numpy internals.
"""

from __future__ import annotations

from repro.rng.base import MASK32, MASK64, BitGenerator64

__all__ = ["PCG32"]

_PCG_MULT = 6364136223846793005
_PCG_DEFAULT_INC = 1442695040888963407


class PCG32(BitGenerator64):
    """PCG-XSH-RR with 64-bit state and 32-bit output.

    Parameters
    ----------
    seed:
        Initial state seed.
    stream:
        Stream selector; distinct streams yield statistically independent
        sequences.  The increment is ``(2 * stream + 1) mod 2^64`` per the
        reference implementation.
    """

    def __init__(self, seed: int = 0, stream: int = 0) -> None:
        self._inc = ((stream << 1) | 1) & MASK64 if stream else _PCG_DEFAULT_INC
        self._state = 0
        self._step()
        self._state = (self._state + (seed & MASK64)) & MASK64
        self._step()

    @property
    def state(self) -> int:
        """The raw 64-bit LCG state (mainly for tests)."""
        return self._state

    def _step(self) -> None:
        self._state = (self._state * _PCG_MULT + self._inc) & MASK64

    def next_u32(self) -> int:
        """One 32-bit output word."""
        old = self._state
        self._step()
        xorshifted = (((old >> 18) ^ old) >> 27) & MASK32
        rot = old >> 59
        return ((xorshifted >> rot) | (xorshifted << ((-rot) & 31))) & MASK32

    def next_u64(self) -> int:
        hi = self.next_u32()
        lo = self.next_u32()
        return (hi << 32) | lo
