"""Bit-exact port of the POSIX ``drand48`` 48-bit LCG family.

The paper's experiments generated "fully random" hash values with C's
``drand48`` seeded by time.  This module reproduces that generator exactly:

- state advances as ``X' = (a * X + c) mod 2^48`` with ``a = 0x5DEECE66D``
  and ``c = 0xB``;
- ``drand48()`` returns ``X' / 2^48`` (all 48 bits);
- ``lrand48()`` returns the top 31 bits;
- ``mrand48()`` returns the top 32 bits as a signed value;
- ``srand48(s)`` sets the state to ``(s << 16) | 0x330E``.

The port is verified in the test suite against reference values produced by
the documented recurrence.
"""

from __future__ import annotations

from repro.rng.base import BitGenerator64

__all__ = ["Drand48", "DRAND48_A", "DRAND48_C", "DRAND48_MASK"]

DRAND48_A = 0x5DEECE66D
DRAND48_C = 0xB
DRAND48_MASK = (1 << 48) - 1
_SRAND48_PAD = 0x330E


class Drand48(BitGenerator64):
    """The POSIX 48-bit linear congruential generator.

    Parameters
    ----------
    seed:
        Seeded as ``srand48(seed)`` would: the 32 low bits of ``seed`` become
        the high 32 bits of the 48-bit state, padded with ``0x330E``.

    Examples
    --------
    >>> gen = Drand48(seed=1)
    >>> 0.0 <= gen.drand48() < 1.0
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.srand48(seed)

    def srand48(self, seed: int) -> None:
        """Reset the state exactly as POSIX ``srand48`` does."""
        self._state = (((seed & 0xFFFFFFFF) << 16) | _SRAND48_PAD) & DRAND48_MASK

    @property
    def state(self) -> int:
        """The raw 48-bit state (mainly for tests)."""
        return self._state

    def _step(self) -> int:
        self._state = (DRAND48_A * self._state + DRAND48_C) & DRAND48_MASK
        return self._state

    # -- POSIX-named outputs --------------------------------------------------

    def drand48(self) -> float:
        """Uniform double on [0, 1) using all 48 state bits."""
        return self._step() / float(1 << 48)

    def lrand48(self) -> int:
        """Uniform non-negative long in [0, 2^31)."""
        return self._step() >> 17

    def mrand48(self) -> int:
        """Uniform signed long in [-2^31, 2^31)."""
        value = self._step() >> 16
        return value - (1 << 32) if value >= (1 << 31) else value

    # -- BitGenerator64 protocol ----------------------------------------------

    def next_u64(self) -> int:
        """Two successive 48-bit words, concatenated to 64 bits.

        drand48's native word is 48 bits; we splice the top 32 bits of two
        successive states, matching how one would draw 64 bits from it in C.
        """
        hi = self._step() >> 16
        lo = self._step() >> 16
        return ((hi << 32) | lo) & ((1 << 64) - 1)

    def random(self) -> float:
        """Uniform float on [0, 1) — delegates to native :meth:`drand48`."""
        return self.drand48()
