"""Minimal shared interface for the bespoke bit generators.

The bespoke generators here exist for *fidelity* (drand48 is what the paper
used) and for *ablation benchmarks* (does the PRNG choice matter? — the paper
argues it does not, and the ablation bench confirms it).  The hot simulation
paths use numpy's PCG64 via :mod:`repro.rng.streams`; these pure-Python
generators are deliberately simple and correct rather than fast.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["BitGenerator64", "MASK64", "MASK32"]

MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1


class BitGenerator64(abc.ABC):
    """A generator producing a stream of 64-bit unsigned integers.

    Subclasses implement :meth:`next_u64`; the convenience methods
    (:meth:`random`, :meth:`integers`) are derived from it and shared.
    """

    @abc.abstractmethod
    def next_u64(self) -> int:
        """Return the next 64-bit output word as a Python int in [0, 2^64)."""

    def random(self) -> float:
        """Return a float uniform on [0, 1) with 53 bits of precision."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def integers(self, low: int, high: int) -> int:
        """Return a uniform integer in ``[low, high)`` without modulo bias.

        Uses rejection sampling on the top of the 64-bit stream (Lemire-style
        threshold rejection is unnecessary at Python speed; simple masking
        rejection is clearer).
        """
        if high <= low:
            raise ValueError(f"empty range [{low}, {high})")
        span = high - low
        # Smallest power-of-two mask covering span, then reject overshoot.
        mask = (1 << span.bit_length()) - 1
        while True:
            value = self.next_u64() & mask
            if value < span:
                return low + value

    def integers_array(self, low: int, high: int, size: int) -> np.ndarray:
        """Return ``size`` uniform integers in ``[low, high)`` as an array."""
        return np.array(
            [self.integers(low, high) for _ in range(size)], dtype=np.int64
        )

    def random_array(self, size: int) -> np.ndarray:
        """Return ``size`` uniform floats in [0, 1) as an array."""
        return np.array([self.random() for _ in range(size)], dtype=np.float64)
