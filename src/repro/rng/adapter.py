"""Adapter: run the vectorized engines on any pure-Python bit generator.

Every scheme and engine consumes the small numpy ``Generator`` surface
(``integers(low, high, size=…, dtype=…)``, ``random(size)``,
``exponential(scale, size)``).  :class:`GeneratorAdapter` implements exactly
that surface on top of a :class:`~repro.rng.base.BitGenerator64`, so the
*entire simulation stack* — not just hand-rolled loops — can be driven by
the paper's drand48, by xorshift128+, or by PCG32.  This is what makes the
PRNG ablation an apples-to-apples comparison: same engine code, different
raw bits.

It is, of course, orders of magnitude slower than numpy's native
generators (every word crosses the Python boundary); use it at ablation
scales.
"""

from __future__ import annotations

import numpy as np

from repro.rng.base import BitGenerator64

__all__ = ["GeneratorAdapter"]


def _size_to_count(size) -> tuple[int, tuple[int, ...] | None]:
    if size is None:
        return 1, None
    if isinstance(size, int):
        return size, (size,)
    total = 1
    for dim in size:
        total *= int(dim)
    return total, tuple(int(dim) for dim in size)


class GeneratorAdapter:
    """Duck-typed stand-in for ``numpy.random.Generator``.

    Parameters
    ----------
    bitgen:
        Any :class:`~repro.rng.base.BitGenerator64` (drand48, SplitMix64,
        xorshift128+, PCG32).

    Only the methods the repro engines use are implemented; anything else
    raises ``AttributeError`` naturally.
    """

    def __init__(self, bitgen: BitGenerator64) -> None:
        self._bitgen = bitgen

    def integers(
        self,
        low: int,
        high: int | None = None,
        size=None,
        dtype=np.int64,
        endpoint: bool = False,
    ):
        """Uniform integers, matching numpy's half-open convention."""
        if high is None:
            low, high = 0, low
        if endpoint:
            high = high + 1
        count, shape = _size_to_count(size)
        values = [self._bitgen.integers(int(low), int(high)) for _ in range(count)]
        if shape is None:
            return dtype(values[0]) if dtype is not int else values[0]
        return np.array(values, dtype=dtype).reshape(shape)

    def random(self, size=None):
        """Uniform floats on [0, 1)."""
        count, shape = _size_to_count(size)
        values = [self._bitgen.random() for _ in range(count)]
        if shape is None:
            return values[0]
        return np.array(values, dtype=np.float64).reshape(shape)

    def exponential(self, scale: float = 1.0, size=None):
        """Exponential variates via inverse CDF."""
        count, shape = _size_to_count(size)
        values = [
            -scale * np.log(1.0 - self._bitgen.random()) for _ in range(count)
        ]
        if shape is None:
            return values[0]
        return np.array(values, dtype=np.float64).reshape(shape)

    def permutation(self, n: int) -> np.ndarray:
        """Fisher–Yates permutation of range(n)."""
        out = np.arange(int(n), dtype=np.int64)
        for i in range(len(out) - 1, 0, -1):
            j = self._bitgen.integers(0, i + 1)
            out[i], out[j] = out[j], out[i]
        return out
