"""SplitMix64 — the standard 64-bit seed mixer and utility generator.

SplitMix64 (Steele, Lea, Flood 2014) advances a counter by a fixed odd
constant and scrambles it with two xor-shift-multiply rounds.  It is the
conventional generator for expanding a single 64-bit seed into the larger
state needed by other generators (we use it to seed xorshift128+), and it is
itself equidistributed enough for simulation use.
"""

from __future__ import annotations

from repro.rng.base import MASK64, BitGenerator64

__all__ = ["SplitMix64", "splitmix64_mix"]

_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def splitmix64_mix(z: int) -> int:
    """Apply the SplitMix64 output scrambler to a 64-bit word."""
    z &= MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & MASK64
    return (z ^ (z >> 31)) & MASK64


class SplitMix64(BitGenerator64):
    """The SplitMix64 generator.

    Parameters
    ----------
    seed:
        Initial counter value (any Python int; reduced mod 2^64).
    """

    def __init__(self, seed: int = 0) -> None:
        self._state = seed & MASK64

    @property
    def state(self) -> int:
        """The raw counter state (mainly for tests)."""
        return self._state

    def next_u64(self) -> int:
        self._state = (self._state + _GAMMA) & MASK64
        return splitmix64_mix(self._state)
