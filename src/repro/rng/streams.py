"""Deterministic independent random streams for parallel trials.

Per the HPC guides, the library vectorizes inside a process and parallelizes
across processes.  Each worker needs its own statistically independent
generator, reproducible from a single root seed.  numpy's ``SeedSequence``
spawning provides exactly this; these helpers wrap it so every entry point in
the library takes a plain ``seed`` int (or an existing ``Generator``) and the
fan-out logic lives in one place.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.rng.adapter import GeneratorAdapter

__all__ = ["default_generator", "spawn_seeds", "spawn_generators"]


def default_generator(
    seed: int
    | np.random.Generator
    | GeneratorAdapter
    | np.random.SeedSequence
    | None = None,
) -> np.random.Generator:
    """Coerce ``seed`` into a numpy ``Generator`` (or compatible adapter).

    Accepts ``None`` (fresh OS entropy), an integer seed, a ``SeedSequence``,
    an existing ``Generator``, or a :class:`~repro.rng.adapter.GeneratorAdapter`
    wrapping one of the pure-Python bit generators — the latter two are
    returned unchanged so callers can thread one stream through a pipeline.
    """
    if isinstance(seed, (np.random.Generator, GeneratorAdapter)):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: int | None, count: int) -> list[np.random.SeedSequence]:
    """Spawn ``count`` independent child seed sequences from a root seed.

    The children are deterministic given ``seed`` and mutually independent,
    making multi-process runs reproducible regardless of scheduling order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence(seed)
    return root.spawn(count)


def spawn_generators(seed: int | None, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent numpy generators from a root seed."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, count)]


def interleave_check(seeds: Sequence[np.random.SeedSequence]) -> bool:
    """Sanity check that spawned seed sequences have distinct entropy pools.

    Used by tests; returns True when all spawn keys differ.
    """
    keys = {tuple(s.spawn_key) for s in seeds}
    return len(keys) == len(seeds)
