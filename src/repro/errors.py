"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch a single type at the API boundary.  Subclasses distinguish configuration
mistakes (bad parameters) from runtime failures (e.g. an unstable queueing
system or a cuckoo insertion cycle).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SchemeError",
    "SimulationError",
    "StabilityError",
    "TableFullError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A parameter is out of range or inconsistent with other parameters.

    Raised eagerly at construction time so misconfiguration surfaces before
    a long simulation starts.
    """


class SchemeError(ConfigurationError):
    """A choice scheme cannot be built for the requested table geometry.

    For example: double hashing over a table whose size shares a factor with
    every candidate stride, or a d-left scheme whose subtable count does not
    divide the number of bins.
    """


class SimulationError(ReproError, RuntimeError):
    """A simulation reached an invalid internal state.

    This indicates a bug in the library (violated invariant) rather than a
    user mistake; it is raised by internal consistency checks.
    """


class StabilityError(SimulationError):
    """A queueing simulation diverged (arrival rate >= service capacity)."""


class TableFullError(ReproError, RuntimeError):
    """A hash-table structure could not place an item.

    Raised by open addressing when the table is full and by cuckoo hashing
    when the insertion random walk exceeds its displacement budget.
    """
