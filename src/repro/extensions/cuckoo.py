"""d-ary cuckoo hashing with double-hashed candidate buckets.

The paper's follow-up ([30], Mitzenmacher–Thaler) studied double hashing for
cuckoo tables empirically and "again found essentially no empirical
difference".  This module provides that experiment: a d-ary cuckoo table
(one slot per bucket) whose per-key candidate sets come either from ``d``
independent hashes or from two hashes combined double-hashing style, with
random-walk insertion.

The interesting observable is the *insertion displacement count*
distribution near the load threshold, plus the achievable load factor —
both should match between modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, TableFullError
from repro.hashing.hash_functions import TabulationHash
from repro.rng import default_generator

__all__ = ["CuckooTable", "CuckooStats"]

_EMPTY = -1


@dataclass
class CuckooStats:
    """Aggregate insertion statistics.

    Attributes
    ----------
    insertions:
        Number of successful insertions.
    displacements:
        Total evictions performed across all insertions.
    max_displacements:
        Largest single-insertion eviction chain.
    failures:
        Insertions abandoned after exceeding the displacement budget.
    """

    insertions: int = 0
    displacements: int = 0
    max_displacements: int = 0
    failures: int = 0
    per_insert: list[int] = field(default_factory=list)


class CuckooTable:
    """A d-ary cuckoo hash table (one slot per bucket) for int64 keys.

    Parameters
    ----------
    n:
        Number of buckets.
    d:
        Candidate buckets per key (``d ≥ 2``).
    mode:
        ``"double"`` — candidates ``(h1 + i·h2) mod n`` with a unit stride;
        ``"random"`` — ``d`` independent tabulation hashes, deduplicated at
        probe time (a key whose hashes collide simply has fewer distinct
        candidates, as in practice).
    max_kicks:
        Random-walk eviction budget per insertion before raising
        :class:`~repro.errors.TableFullError`.
    seed:
        Seeds the hash tables and the eviction walk.
    """

    def __init__(
        self,
        n: int,
        d: int,
        *,
        mode: str = "double",
        max_kicks: int = 500,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if n < 2:
            raise ConfigurationError(f"n must be at least 2, got {n}")
        if d < 2:
            raise ConfigurationError(f"d must be at least 2, got {d}")
        if d > n:
            raise ConfigurationError(f"d={d} exceeds bucket count n={n}")
        if mode not in ("double", "random"):
            raise ConfigurationError(
                f"mode must be 'double' or 'random', got {mode!r}"
            )
        if max_kicks < 1:
            raise ConfigurationError(f"max_kicks must be positive, got {max_kicks}")
        self._rng = default_generator(seed)
        self.n = int(n)
        self.d = int(d)
        self.mode = mode
        self.max_kicks = int(max_kicks)
        self.slots = np.full(n, _EMPTY, dtype=np.int64)
        self.stats = CuckooStats()
        self._is_pow2 = (n & (n - 1)) == 0
        if mode == "double":
            self._h1 = TabulationHash(n, self._rng)
            self._h2 = TabulationHash(n, self._rng)
        else:
            self._hashes = [TabulationHash(n, self._rng) for _ in range(d)]

    # -- candidate generation -------------------------------------------------

    def candidates(self, key: int) -> np.ndarray:
        """The candidate buckets of ``key`` (length ``d``; ``random`` mode
        may contain repeats, which lookup/insert tolerate)."""
        if self.mode == "random":
            return np.array([h(key) for h in self._hashes], dtype=np.int64)
        f = int(self._h1(key))
        g = int(self._h2(key))
        if self._is_pow2:
            g |= 1
        elif g == 0:
            g = 1
        return (f + g * np.arange(self.d, dtype=np.int64)) % self.n

    # -- operations ------------------------------------------------------------

    def lookup(self, key: int) -> bool:
        """True when ``key`` is present."""
        return bool((self.slots[self.candidates(key)] == key).any())

    def insert(self, key: int) -> int:
        """Insert ``key``; return the number of evictions performed.

        Random-walk insertion: place in an empty candidate if one exists;
        otherwise evict a uniformly chosen candidate occupant and re-insert
        it, repeating up to ``max_kicks`` times.

        Raises
        ------
        TableFullError
            When the eviction budget is exhausted; the table is left
            consistent (every stored key remains findable) but the pending
            key is not stored.
        """
        current = int(key)
        kicks = 0
        while True:
            cands = self.candidates(current)
            empties = cands[self.slots[cands] == _EMPTY]
            if empties.size:
                self.slots[int(empties[0])] = current
                self.stats.insertions += 1
                self.stats.displacements += kicks
                self.stats.max_displacements = max(
                    self.stats.max_displacements, kicks
                )
                self.stats.per_insert.append(kicks)
                return kicks
            if kicks >= self.max_kicks:
                self.stats.failures += 1
                # Re-insert the evicted chain's pending key is impossible;
                # restore nothing (current is the displaced key) and report.
                raise TableFullError(
                    f"insertion exceeded {self.max_kicks} evictions at load "
                    f"{self.load_factor:.3f}"
                )
            victim_bucket = int(cands[self._rng.integers(0, len(cands))])
            current, self.slots[victim_bucket] = (
                int(self.slots[victim_bucket]),
                current,
            )
            kicks += 1

    @property
    def size(self) -> int:
        """Number of stored keys."""
        return int((self.slots != _EMPTY).sum())

    @property
    def load_factor(self) -> float:
        """Stored keys per bucket."""
        return self.size / self.n

    def fill_to(self, target_load: float, *, key_start: int = 0) -> int:
        """Insert sequential keys until ``target_load``; returns keys added.

        Stops early (without raising) if an insertion fails, which is the
        expected behaviour when probing for the load threshold.
        """
        if not 0.0 <= target_load <= 1.0:
            raise ConfigurationError(
                f"target_load must be in [0, 1], got {target_load}"
            )
        added = 0
        key = key_start
        while self.load_factor < target_load:
            try:
                self.insert(key)
            except TableFullError:
                break
            key += 1
            added += 1
        return added
