"""Two-party set reconciliation over a symmetric-difference IBLT.

The classic IBLT application (Eppstein–Goodrich–Uyeda–Varghese, "What's
the Difference?"): two parties each hold millions of keyed items whose
sets differ in only a small delta.  Each builds an
:class:`~repro.extensions.iblt.IBLT` with *identical* geometry and hash
seeds, sized for the expected difference (not the set size!); one table
crosses the wire; the receiver subtracts its own and peels the result.
Shared items cancel cell-by-cell, so the difference table holds exactly
the symmetric difference — listing recovers each delta item with a sign
(+1 = only the local party has it, −1 = only the remote one).

Recovery succeeds exactly when the delta's key-cell hypergraph has an
empty 2-core, so the peeling thresholds of
:mod:`repro.peeling.density_evolution` govern the required table size:
``cells ≳ |Δ| / c*_d`` plus slack.  This driver exercises the
repository's central question at that layer — double-hashed cell choice
(two hash evaluations per key) versus fully-random (``d`` evaluations) —
including the duplicate-edge caveat: in double mode two delta keys
collide onto an identical cell set with probability Θ(1/m), leaving an
O(1) unpeelable residue that the report surfaces rather than hiding
(see :mod:`repro.peeling.experiment` and ``docs/peeling.md``).

Everything is array-shaped: item generation, table builds
(``insert_many``), subtraction, and listing (``list_entries_batched``)
touch no per-key Python, so millions of items reconcile in seconds;
``benchmarks/bench_peeling.py`` records the throughput trajectory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.extensions.iblt import IBLT
from repro.peeling.density_evolution import peeling_threshold
from repro.rng import default_generator

__all__ = [
    "ReconcileResult",
    "default_cells",
    "make_parties",
    "reconcile",
    "run_reconciliation",
]

#: Sizing slack over the density-evolution bound ``|Δ| / c*_d`` — the
#: thresholds are asymptotic; finite tables need headroom (and a floor
#: for tiny deltas where the asymptotics say nothing).
_SLACK = 1.35
_MIN_CELLS = 64


def default_cells(n_diff: int, d: int) -> int:
    """Table size for an expected difference of ``n_diff`` keys.

    ``slack · n_diff / c*_d``, rounded up to a power of two — the
    power-of-two shape keeps the double mode's stride a unit (odd), so
    the ``d`` cells of any key are always distinct.
    """
    if n_diff < 0:
        raise ConfigurationError(f"n_diff must be non-negative, got {n_diff}")
    want = max(_MIN_CELLS, int(np.ceil(_SLACK * n_diff / peeling_threshold(d))))
    return 1 << (want - 1).bit_length()


@dataclass(frozen=True)
class ReconcileResult:
    """Outcome of one two-party reconciliation.

    Attributes
    ----------
    success:
        True when the recovered delta matches the planted one exactly
        (both directions, keys and values).
    only_in_a, only_in_b:
        Recovered delta keys per direction (sign +1 / −1), sorted.
    missed, spurious:
        Planted-but-unrecovered and recovered-but-unplanted key counts
        (both 0 on success; nonzero ``missed`` below threshold is the
        double-mode duplicate-cell-set signature).
    residue_cells:
        Nonempty cells left after peeling (0 on success).
    rounds:
        Synchronous peeling rounds the listing took.
    n_items, n_diff, cells, d, mode, seed:
        The workload geometry, echoed for reports.
    build_seconds, reconcile_seconds:
        Wall-clock split: table builds vs subtract + peel (the recovery
        path a deployment would actually pay per sync).
    """

    success: bool
    only_in_a: np.ndarray
    only_in_b: np.ndarray
    missed: int
    spurious: int
    residue_cells: int
    rounds: int
    n_items: int
    n_diff: int
    cells: int
    d: int
    mode: str
    seed: int
    build_seconds: float
    reconcile_seconds: float

    @property
    def items_per_second(self) -> float:
        """End-to-end throughput: items held per total wall-clock second."""
        total = self.build_seconds + self.reconcile_seconds
        return self.n_items / total if total > 0 else 0.0

    @property
    def delta_per_second(self) -> float:
        """Recovery throughput: delta keys per subtract+peel second."""
        if self.reconcile_seconds <= 0:
            return 0.0
        return (self.only_in_a.size + self.only_in_b.size) / self.reconcile_seconds


def make_parties(
    n_items: int, n_diff: int, *, seed: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Generate two key sets differing in exactly ``n_diff`` keys.

    Returns ``(keys_a, keys_b, a_only, b_only)``: a shared base of
    ``n_items − ceil(n_diff/2)`` keys plus disjoint per-party tails
    (``a_only`` gets the larger half for odd deltas).  Keys are distinct
    uniform draws from the 62-bit range (distinctness enforced by
    ``np.unique`` with top-up redraws — at millions of keys a collision
    is already ~10⁻⁶-rare).
    """
    if n_items < 1:
        raise ConfigurationError(f"n_items must be positive, got {n_items}")
    a_extra = (n_diff + 1) // 2
    b_extra = n_diff // 2
    if a_extra > n_items:
        raise ConfigurationError(
            f"n_diff={n_diff} too large for n_items={n_items}"
        )
    rng = default_generator(seed)
    want = n_items + b_extra
    keys = np.unique(rng.integers(0, 1 << 62, size=want, dtype=np.int64))
    while keys.size < want:  # pragma: no cover - ~2^-40 per batch
        extra = rng.integers(0, 1 << 62, size=want - keys.size, dtype=np.int64)
        keys = np.unique(np.concatenate([keys, extra]))
    keys = rng.permutation(keys[:want])
    shared = keys[: n_items - a_extra]
    a_only = np.sort(keys[n_items - a_extra : n_items])
    b_only = np.sort(keys[n_items : n_items + b_extra])
    keys_a = np.concatenate([shared, a_only])
    keys_b = np.concatenate([shared, b_only])
    return keys_a, keys_b, a_only, b_only


def _values_for(keys: np.ndarray) -> np.ndarray:
    """Deterministic per-key values (checkable after recovery)."""
    return (keys * 2654435761) & ((1 << 62) - 1)


def reconcile(
    table_a: IBLT, table_b: IBLT
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Recover the symmetric difference of two same-seed tables.

    Returns ``(only_in_a, only_in_b, residue_cells, rounds)`` — the
    sign-split keys of ``table_a − table_b`` after peeling.  The inputs
    are not modified (subtraction builds a fresh table).
    """
    diff = table_a.subtract(table_b)
    listing = diff.list_entries_batched()
    only_a = np.sort(listing.keys[listing.signs > 0])
    only_b = np.sort(listing.keys[listing.signs < 0])
    return only_a, only_b, listing.residue_cells, listing.rounds


def run_reconciliation(
    n_items: int,
    n_diff: int,
    *,
    d: int = 3,
    mode: str = "double",
    cells: int | None = None,
    seed: int | None = None,
) -> ReconcileResult:
    """Run one full two-party reconciliation and verify the recovery.

    Parameters
    ----------
    n_items:
        Items per party (the sets share all but ``n_diff`` keys).
    n_diff:
        Symmetric-difference size (split across the parties).
    d:
        Cells per key.
    mode:
        ``"double"`` or ``"random"`` cell selection (the central
        comparison; see the module docstring for the caveat).
    cells:
        IBLT size; defaults to :func:`default_cells` — sized by the
        *delta*, independent of ``n_items``.
    seed:
        Seeds item generation; hash functions use ``seed + 1`` (shared
        by both parties, as the protocol requires).
    """
    if cells is None:
        cells = default_cells(n_diff, d)
    base_seed = 0 if seed is None else int(seed)
    keys_a, keys_b, a_only, b_only = make_parties(
        n_items, n_diff, seed=base_seed
    )

    t0 = time.perf_counter()
    table_a = IBLT(cells, d, mode=mode, seed=base_seed + 1)
    table_b = IBLT(cells, d, mode=mode, seed=base_seed + 1)
    table_a.insert_many(keys_a, _values_for(keys_a))
    table_b.insert_many(keys_b, _values_for(keys_b))
    build_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    only_a, only_b, residue, rounds = reconcile(table_a, table_b)
    reconcile_seconds = time.perf_counter() - t1

    planted_a = set(a_only.tolist())
    planted_b = set(b_only.tolist())
    got_a = set(only_a.tolist())
    got_b = set(only_b.tolist())
    missed = len(planted_a - got_a) + len(planted_b - got_b)
    spurious = len(got_a - planted_a) + len(got_b - planted_b)
    return ReconcileResult(
        success=missed == 0 and spurious == 0 and residue == 0,
        only_in_a=only_a,
        only_in_b=only_b,
        missed=missed,
        spurious=spurious,
        residue_cells=residue,
        rounds=rounds,
        n_items=int(n_items),
        n_diff=int(n_diff),
        cells=int(cells),
        d=int(d),
        mode=mode,
        seed=base_seed,
        build_seconds=build_seconds,
        reconcile_seconds=reconcile_seconds,
    )
