"""Invertible Bloom Lookup Table with double-hashed cell selection.

The IBLT (Goodrich–Mitzenmacher) is *the* data structure whose recovery
procedure is literally the peeling process of :mod:`repro.peeling`: each
key occupies ``d`` cells; each cell keeps (count, keySum, checkSum,
valueSum) — checkSum XORs an independent checksum hash of each key, the
standard guard that makes "this cell holds exactly one entry" checkable
to ~2⁻³² instead of trusting a raw count of ±1 (several colliding
entries can XOR into a plausible-looking phantom key otherwise);
listing repeatedly finds a verified pure cell, reads its key/value, and
deletes it — i.e. peels a hyperedge.  Complete listing
succeeds exactly when the key-cell hypergraph's 2-core is empty, so the
density-evolution thresholds apply (c₃ ≈ 0.818 keys per cell, …; the
precise constants live in :mod:`repro.certify.anchors`).

Cell selection supports both modes of this repository's central question:
``d`` independent hashes or two hashes combined double-hashing style.  The
duplicate-edge caveat (see :mod:`repro.peeling.experiment`) applies in the
double mode: two distinct keys drawing identical cell sets are unpeelable
even below threshold — but remain *detectable* (their cells end with
count 2), so listing reports them as residue rather than failing
silently.

The table has two faces:

- a scalar face (``insert`` / ``delete`` / ``get`` / ``list_entries``) —
  one key at a time, kept as the easy-to-audit reference;
- a batched face (``insert_many`` / ``delete_many`` /
  ``list_entries_batched``) — whole key arrays hashed through the fused
  vectorized cell generator (:meth:`IBLT.cells_batch`), updates applied
  with ``np.add.at`` / ``np.bitwise_xor.at`` scatters, and listing run
  as synchronous peeling rounds mirroring the kernel contract of
  :mod:`repro.kernels.peeling`.  Both faces produce identical cell
  states for the same operations (asserted in the test suite).

Field widths are negotiated up front in the
:func:`~repro.kernels.packing.check_packed_fields` style: ``key_bits``
(and the 63 value bits of the int64 XOR carriers) bound the keys and
values accepted, and ``capacity`` sizes the count dtype (int32 when the
signed count range fits 31 value bits, int64 otherwise) — overflow is a
loud :class:`~repro.errors.ConfigurationError` at construction or
insertion, never a silent wrap mid-experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.hash_functions import TabulationHash, _digest
from repro.kernels.packing import (
    INT32_VALUE_BITS,
    INT64_VALUE_BITS,
    check_packed_fields,
    field_width,
)
from repro.rng import default_generator

__all__ = ["BatchListResult", "IBLT", "ListResult"]


@dataclass(frozen=True)
class ListResult:
    """Outcome of :meth:`IBLT.list_entries`.

    Attributes
    ----------
    complete:
        True when every entry was recovered (the table is now empty).
    entries:
        Recovered ``(key, value)`` pairs, in peeling order.
    residue_cells:
        Number of nonempty cells left (0 when complete) — cells where
        the count *or* the key XOR is nonzero, so cancelled-count cells
        (e.g. a +1 and a −1 entry colliding) still register.
    """

    complete: bool
    entries: list[tuple[int, int]]
    residue_cells: int


@dataclass(frozen=True)
class BatchListResult:
    """Outcome of :meth:`IBLT.list_entries_batched` (array form).

    Attributes
    ----------
    complete:
        True when every entry was recovered (the table is now empty).
    keys, values:
        Recovered entries in peeling order (ascending cell order within
        each synchronous round), as int64 arrays.
    signs:
        +1 for net-inserted entries, −1 for net-deleted ones — the
        direction information set reconciliation needs (an entry of the
        subtrahend table surfaces with sign −1 after :meth:`IBLT.subtract`).
    residue_cells:
        Number of nonempty cells left (count or key XOR nonzero).
    rounds:
        Synchronous peeling rounds that recovered at least one entry.
    """

    complete: bool
    keys: np.ndarray
    values: np.ndarray
    signs: np.ndarray
    residue_cells: int
    rounds: int

    @property
    def entries(self) -> list[tuple[int, int]]:
        """The recovered pairs as a python list (scalar-face shape)."""
        return list(zip(self.keys.tolist(), self.values.tolist()))


@dataclass(frozen=True)
class _CellConfig:
    """Resolved width negotiation: key bound and count carrier."""

    key_bits: int
    count_dtype: np.dtype = field(repr=False)


def _negotiate_widths(m: int, key_bits: int, capacity: int) -> _CellConfig:
    """Pick the count carrier and validate the key field width.

    Keys and values ride int64 XOR accumulators, so ``key_bits`` may not
    exceed :data:`~repro.kernels.packing.INT64_VALUE_BITS`.  The count
    field needs ``field_width(capacity + 1)`` magnitude bits plus a sign
    bit; it lands in int32 when that fits 31 value bits (the common
    case — half the memory at millions of cells), else int64.
    """
    check_packed_fields(
        {"key": key_bits}, carrier_bits=INT64_VALUE_BITS, context="IBLT key field"
    )
    if key_bits < 1:
        raise ConfigurationError(f"key_bits must be positive, got {key_bits}")
    if capacity < 1:
        raise ConfigurationError(f"capacity must be positive, got {capacity}")
    count_bits = field_width(capacity + 1)
    if count_bits + 1 <= INT32_VALUE_BITS:
        dtype = np.dtype(np.int32)
    else:
        check_packed_fields(
            {"count": count_bits, "sign": 1},
            carrier_bits=INT64_VALUE_BITS,
            context="IBLT count field",
        )
        dtype = np.dtype(np.int64)
    return _CellConfig(key_bits=key_bits, count_dtype=dtype)


class IBLT:
    """An invertible Bloom lookup table over int64 keys and values.

    Parameters
    ----------
    m:
        Number of cells.
    d:
        Cells per key.
    mode:
        ``"double"`` (two tabulation hashes combined as ``f + i·g``) or
        ``"random"`` (d independent tabulation hashes).
    seed:
        Seeds the hash functions.
    key_bits:
        Width bound on keys (default 63 — the full int64 value range).
        Narrower bounds document the workload and are enforced on every
        insert/delete.
    capacity:
        Bound on the total number of operations (insert + delete) the
        table will see; sizes the per-cell count dtype (int32 when the
        signed range fits, int64 otherwise).  Defaults to ``2**31 - 2``
        (the full int32 range).

    Notes
    -----
    Deletions of never-inserted keys are allowed (counts go negative),
    supporting the set-difference use of IBLTs; a cell is *pure* when its
    count is ±1 and its keySum hashes back to that cell.
    """

    def __init__(
        self,
        m: int,
        d: int,
        *,
        mode: str = "double",
        seed: int | np.random.Generator | None = None,
        key_bits: int = INT64_VALUE_BITS,
        capacity: int = (1 << 31) - 2,
    ) -> None:
        if m < 2:
            raise ConfigurationError(f"m must be at least 2, got {m}")
        if d < 2:
            raise ConfigurationError(f"d must be at least 2, got {d}")
        if d > m:
            raise ConfigurationError(f"d={d} exceeds cell count m={m}")
        if mode not in ("double", "random"):
            raise ConfigurationError(
                f"mode must be 'double' or 'random', got {mode!r}"
            )
        config = _negotiate_widths(m, key_bits, capacity)
        rng = default_generator(seed)
        self.m = int(m)
        self.d = int(d)
        self.mode = mode
        self.key_bits = config.key_bits
        self.capacity = int(capacity)
        self.count = np.zeros(m, dtype=config.count_dtype)
        self.key_sum = np.zeros(m, dtype=np.int64)
        self.check_sum = np.zeros(m, dtype=np.int64)
        self.value_sum = np.zeros(m, dtype=np.int64)
        self._is_pow2 = (m & (m - 1)) == 0
        self._n_ops = 0
        if mode == "double":
            self._h1 = TabulationHash(m, rng)
            self._h2 = TabulationHash(m, rng)
        else:
            self._hashes = [TabulationHash(m, rng) for _ in range(d)]
        # Drawn after the cell hashes so their streams stay seed-stable.
        self._check = TabulationHash(1 << 32, rng)

    # -- identity -----------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable digest of the table geometry and hash functions.

        Two tables with equal fingerprints map every key to the same
        cells — the precondition :meth:`subtract` checks.
        """
        if self.mode == "double":
            parts = [self._h1.fingerprint(), self._h2.fingerprint()]
        else:
            parts = [h.fingerprint() for h in self._hashes]
        parts.append(self._check.fingerprint())
        return _digest("iblt", self.m, self.d, self.mode, *parts)

    def _clone_empty(self) -> IBLT:
        """A zeroed table sharing this table's geometry and hashes."""
        clone = object.__new__(IBLT)
        clone.m = self.m
        clone.d = self.d
        clone.mode = self.mode
        clone.key_bits = self.key_bits
        clone.capacity = self.capacity
        clone.count = np.zeros(self.m, dtype=self.count.dtype)
        clone.key_sum = np.zeros(self.m, dtype=np.int64)
        clone.check_sum = np.zeros(self.m, dtype=np.int64)
        clone.value_sum = np.zeros(self.m, dtype=np.int64)
        clone._is_pow2 = self._is_pow2
        clone._n_ops = 0
        if self.mode == "double":
            clone._h1 = self._h1
            clone._h2 = self._h2
        else:
            clone._hashes = self._hashes
        clone._check = self._check
        return clone

    # -- cell selection ---------------------------------------------------

    def cells_batch(self, keys: np.ndarray) -> np.ndarray:
        """The ``(len(keys), d)`` cell matrix, hashed as whole arrays.

        Double mode is one fused array op: both tabulation hashes run
        over the full key array, the stride is forced to a unit
        (``g | 1`` for power-of-two ``m``, ``g → 1`` where zero
        otherwise), and the progression ``(f + i·g) mod m`` broadcasts
        across columns.  Rows may contain repeats when ``m`` is neither
        a power of two nor prime (the stride may share a factor with
        ``m``); the update paths deduplicate per row.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if self.mode == "random":
            return np.stack([h(keys) for h in self._hashes], axis=1)
        f = self._h1(keys)
        g = self._h2(keys)
        if self._is_pow2:
            g = g | 1
        else:
            g = np.where(g == 0, 1, g)
        steps = np.arange(self.d, dtype=np.int64)
        return (f[:, None] + g[:, None] * steps) % self.m

    def cells(self, key: int) -> np.ndarray:
        """The ``d`` cells of ``key`` (scalar face of :meth:`cells_batch`)."""
        return self.cells_batch(np.array([key], dtype=np.int64))[0]

    # -- updates ------------------------------------------------------------

    def _validate_batch(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        keys = np.asarray(keys, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=np.int64).ravel()
        if keys.shape != values.shape:
            raise ConfigurationError(
                f"keys and values must align, got {keys.shape} vs {values.shape}"
            )
        if keys.size:
            if int(keys.min()) < 0 or int(keys.max()) >> self.key_bits:
                raise ConfigurationError(
                    f"keys must lie in [0, 2**{self.key_bits}) "
                    "(the negotiated key field width)"
                )
            if int(values.min()) < 0:
                raise ConfigurationError("values must be non-negative")
        if self._n_ops + keys.size > self.capacity:
            raise ConfigurationError(
                f"operation count would exceed capacity={self.capacity} "
                "(the negotiated count field width); construct the table "
                "with a larger capacity"
            )
        return keys, values

    def _apply_many(
        self, keys: np.ndarray, values: np.ndarray, signs: np.ndarray | int
    ) -> None:
        """Scatter a batch of signed entries into the cell arrays.

        One fused ``cells_batch`` per call; rows are deduplicated by an
        in-row sort + adjacent-duplicate mask (a key occupying a cell
        twice touches it once, matching the scalar ``np.unique`` path),
        then four scatters (``np.add.at`` on the counts,
        ``np.bitwise_xor.at`` on the key/checksum/value accumulators).
        """
        k = keys.size
        if k == 0:
            return
        rows = np.sort(self.cells_batch(keys), axis=1)
        mask = np.ones_like(rows, dtype=bool)
        mask[:, 1:] = rows[:, 1:] != rows[:, :-1]
        flat_cells = rows[mask]
        reps = mask.sum(axis=1)
        signs = np.broadcast_to(
            np.asarray(signs, dtype=self.count.dtype), (k,)
        )
        np.add.at(self.count, flat_cells, np.repeat(signs, reps))
        np.bitwise_xor.at(self.key_sum, flat_cells, np.repeat(keys, reps))
        np.bitwise_xor.at(
            self.check_sum, flat_cells, np.repeat(self._check(keys), reps)
        )
        np.bitwise_xor.at(self.value_sum, flat_cells, np.repeat(values, reps))

    def insert_many(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert whole key/value arrays (one fused hash + three scatters)."""
        keys, values = self._validate_batch(keys, values)
        self._apply_many(keys, values, +1)
        self._n_ops += keys.size

    def delete_many(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Delete whole key/value arrays (tolerates deleting before inserting)."""
        keys, values = self._validate_batch(keys, values)
        self._apply_many(keys, values, -1)
        self._n_ops += keys.size

    def insert(self, key: int, value: int) -> None:
        """Insert a key/value pair (scalar face of :meth:`insert_many`)."""
        self.insert_many(
            np.array([key], dtype=np.int64), np.array([value], dtype=np.int64)
        )

    def delete(self, key: int, value: int) -> None:
        """Delete a pair (scalar face of :meth:`delete_many`)."""
        self.delete_many(
            np.array([key], dtype=np.int64), np.array([value], dtype=np.int64)
        )

    def subtract(self, other: IBLT) -> IBLT:
        """The cell-wise difference ``self − other`` as a new table.

        The set-reconciliation primitive: when both parties build tables
        with identical geometry and hash seeds, the difference table
        holds exactly the symmetric difference of their key sets —
        listing it yields sign +1 for keys only in ``self`` and sign −1
        for keys only in ``other``.  Raises
        :class:`~repro.errors.ConfigurationError` when the fingerprints
        differ (different hashes would subtract unrelated cells).
        """
        if not isinstance(other, IBLT):
            raise ConfigurationError(
                f"can only subtract another IBLT, got {type(other).__name__}"
            )
        if self.fingerprint() != other.fingerprint():
            raise ConfigurationError(
                "cannot subtract IBLTs with different geometry or hash "
                "seeds (fingerprints differ)"
            )
        diff = self._clone_empty()
        np.subtract(
            self.count,
            other.count.astype(self.count.dtype),
            out=diff.count,
        )
        np.bitwise_xor(self.key_sum, other.key_sum, out=diff.key_sum)
        np.bitwise_xor(self.check_sum, other.check_sum, out=diff.check_sum)
        np.bitwise_xor(self.value_sum, other.value_sum, out=diff.value_sum)
        diff._n_ops = min(self._n_ops + other._n_ops, diff.capacity)
        return diff

    # -- queries ------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when every cell is zeroed."""
        return bool(
            (self.count == 0).all()
            and (self.key_sum == 0).all()
            and (self.check_sum == 0).all()
            and (self.value_sum == 0).all()
        )

    def get(self, key: int) -> int | None:
        """Value of ``key`` if determinable from some pure cell, else None.

        Returns None both for absent keys and for keys whose cells are all
        shared (an inherent IBLT limitation).
        """
        key = int(key)
        for c in self.cells(key):
            if self.count[c] == 1 and self.key_sum[c] == key:
                return int(self.value_sum[c])
            if self.count[c] == 0 and self.key_sum[c] == 0:
                return None  # a provably empty cell: key absent
        return None

    def _pure_cell_key(self, c: int) -> int | None:
        """Key recoverable from cell ``c`` if it is verified pure."""
        if abs(self.count[c]) != 1:
            return None
        key = int(self.key_sum[c])
        # Verify via the checksum field (guards against XOR coincidences
        # of colliding entries to ~2^-32, per the standard IBLT design).
        if key >= 0 and int(self._check(key)) == int(self.check_sum[c]):
            return key
        return None

    def _residue_cells(self) -> int:
        """Nonempty cells: count *or* key XOR nonzero (no short-circuit)."""
        return int(np.count_nonzero((self.count != 0) | (self.key_sum != 0)))

    def list_entries(self) -> ListResult:
        """Peel the table, recovering all entries (destructive, scalar).

        Entries inserted an odd number of times are recovered with sign
        +1 counts; net-deleted entries (count −1 cells) are recovered too,
        reported with their stored values.  The reference lister — one
        cell at a time; :meth:`list_entries_batched` is the vectorized
        equivalent.
        """
        entries: list[tuple[int, int]] = []
        queue = [c for c in range(self.m) if abs(self.count[c]) == 1]
        while queue:
            c = queue.pop()
            key = self._pure_cell_key(int(c))
            if key is None:
                continue
            sign = int(self.count[c])
            value = int(self.value_sum[c])
            entries.append((key, value))
            self._apply_many(
                np.array([key], dtype=np.int64),
                np.array([value], dtype=np.int64),
                -sign,
            )
            for c2 in np.unique(self.cells(key)):
                if abs(self.count[c2]) == 1:
                    queue.append(int(c2))
        return ListResult(
            complete=self.is_empty,
            entries=entries,
            residue_cells=self._residue_cells(),
        )

    def list_entries_batched(self) -> BatchListResult:
        """Peel the table in synchronous vectorized rounds (destructive).

        The batched face of :meth:`list_entries`, shaped like the
        peeling kernel of :mod:`repro.kernels.peeling`: each round
        gathers every cell with count ±1, verifies purity for the whole
        candidate array at once (one fused checksum-hash evaluation
        against the checkSum field), deduplicates recovered keys, and
        removes the verified batch with one scatter pass.  Recovers the same
        entry multiset as the scalar lister on well-formed tables, plus
        the per-entry sign array reconciliation needs.

        Rounds are capped at ``m + 1`` — each productive round removes
        at least one of at most ``m``-ish recoverable entries, so the
        cap is unreachable except under adversarial XOR coincidences,
        where it guarantees termination (reported as incomplete).
        """
        keys_out: list[np.ndarray] = []
        values_out: list[np.ndarray] = []
        signs_out: list[np.ndarray] = []
        rounds = 0
        for _ in range(self.m + 1):
            candidates = np.flatnonzero(np.abs(self.count) == 1)
            if candidates.size == 0:
                break
            cand_keys = self.key_sum[candidates]
            valid = cand_keys >= 0
            checks = self._check(np.where(valid, cand_keys, 0))
            pure = valid & (checks == self.check_sum[candidates])
            if not pure.any():
                break  # remaining ±1 cells are XOR coincidences, stuck
            pure_cells = candidates[pure]
            batch_keys = cand_keys[pure]
            # One key may be pure in several cells this round — keep the
            # first (lowest-cell) occurrence of each.
            _, first = np.unique(batch_keys, return_index=True)
            first.sort()
            batch_keys = batch_keys[first]
            batch_cells = pure_cells[first]
            batch_values = self.value_sum[batch_cells]
            batch_signs = self.count[batch_cells].astype(np.int64)
            self._apply_many(batch_keys, batch_values, -batch_signs)
            keys_out.append(batch_keys)
            values_out.append(batch_values)
            signs_out.append(batch_signs)
            rounds += 1
        empty = np.empty(0, dtype=np.int64)
        return BatchListResult(
            complete=self.is_empty,
            keys=np.concatenate(keys_out) if keys_out else empty,
            values=np.concatenate(values_out) if values_out else empty.copy(),
            signs=np.concatenate(signs_out) if signs_out else empty.copy(),
            residue_cells=self._residue_cells(),
            rounds=rounds,
        )

    @property
    def load(self) -> float:
        """Entries per cell, estimated from total count mass / d."""
        return float(self.count.sum()) / (self.d * self.m)
