"""Invertible Bloom Lookup Table with double-hashed cell selection.

The IBLT (Goodrich–Mitzenmacher) is *the* data structure whose recovery
procedure is literally the peeling process of :mod:`repro.peeling`: each
key occupies ``d`` cells; each cell keeps (count, keySum, valueSum);
listing repeatedly finds a count-1 cell (a "pure" cell), reads its
key/value, and deletes it — i.e. peels a hyperedge.  Complete listing
succeeds exactly when the key-cell hypergraph's 2-core is empty, so the
density-evolution thresholds apply (c₃ ≈ 0.818 keys per cell, …; the
precise constants live in :mod:`repro.certify.anchors`).

Cell selection supports both modes of this repository's central question:
``d`` independent hashes or two hashes combined double-hashing style.  The
duplicate-edge caveat (see :mod:`repro.peeling.experiment`) applies in the
double mode: two distinct keys drawing identical cell sets are unpeelable
even below threshold — but remain *detectable* (their cells end with
count 2), so ``list_entries`` reports them as residue rather than failing
silently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.hash_functions import TabulationHash
from repro.rng import default_generator

__all__ = ["IBLT", "ListResult"]


@dataclass(frozen=True)
class ListResult:
    """Outcome of :meth:`IBLT.list_entries`.

    Attributes
    ----------
    complete:
        True when every entry was recovered (the table is now empty).
    entries:
        Recovered ``(key, value)`` pairs, in peeling order.
    residue_cells:
        Number of nonempty cells left (0 when complete).
    """

    complete: bool
    entries: list[tuple[int, int]]
    residue_cells: int


class IBLT:
    """An invertible Bloom lookup table over int64 keys and values.

    Parameters
    ----------
    m:
        Number of cells.
    d:
        Cells per key.
    mode:
        ``"double"`` (two tabulation hashes, stride forced to a unit) or
        ``"random"`` (d independent tabulation hashes).
    seed:
        Seeds the hash functions.

    Notes
    -----
    Deletions of never-inserted keys are allowed (counts go negative),
    supporting the set-difference use of IBLTs; a cell is *pure* when its
    count is ±1 and its keySum hashes back to that cell (checked via the
    first cell index).
    """

    def __init__(
        self,
        m: int,
        d: int,
        *,
        mode: str = "double",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if m < 2:
            raise ConfigurationError(f"m must be at least 2, got {m}")
        if d < 2:
            raise ConfigurationError(f"d must be at least 2, got {d}")
        if d > m:
            raise ConfigurationError(f"d={d} exceeds cell count m={m}")
        if mode not in ("double", "random"):
            raise ConfigurationError(
                f"mode must be 'double' or 'random', got {mode!r}"
            )
        rng = default_generator(seed)
        self.m = int(m)
        self.d = int(d)
        self.mode = mode
        self.count = np.zeros(m, dtype=np.int64)
        self.key_sum = np.zeros(m, dtype=np.int64)
        self.value_sum = np.zeros(m, dtype=np.int64)
        self._is_pow2 = (m & (m - 1)) == 0
        if mode == "double":
            self._h1 = TabulationHash(m, rng)
            self._h2 = TabulationHash(m, rng)
        else:
            self._hashes = [TabulationHash(m, rng) for _ in range(d)]

    # -- cell selection ---------------------------------------------------

    def cells(self, key: int) -> np.ndarray:
        """The ``d`` cells of ``key`` (double mode: an arithmetic
        progression with a unit stride, hence distinct)."""
        if self.mode == "random":
            return np.array([h(key) for h in self._hashes], dtype=np.int64)
        f = int(self._h1(key))
        g = int(self._h2(key))
        if self._is_pow2:
            g |= 1
        elif g == 0:
            g = 1
        return (f + g * np.arange(self.d, dtype=np.int64)) % self.m

    # -- updates ------------------------------------------------------------

    def _apply(self, key: int, value: int, sign: int) -> None:
        for c in np.unique(self.cells(key)):
            self.count[c] += sign
            self.key_sum[c] ^= int(key)
            self.value_sum[c] ^= int(value)

    def insert(self, key: int, value: int) -> None:
        """Insert a key/value pair."""
        self._apply(int(key), int(value), +1)

    def delete(self, key: int, value: int) -> None:
        """Delete a pair (tolerates deleting before inserting)."""
        self._apply(int(key), int(value), -1)

    # -- queries ------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when every cell is zeroed."""
        return bool(
            (self.count == 0).all()
            and (self.key_sum == 0).all()
            and (self.value_sum == 0).all()
        )

    def get(self, key: int) -> int | None:
        """Value of ``key`` if determinable from some pure cell, else None.

        Returns None both for absent keys and for keys whose cells are all
        shared (an inherent IBLT limitation).
        """
        key = int(key)
        for c in self.cells(key):
            if self.count[c] == 1 and self.key_sum[c] == key:
                return int(self.value_sum[c])
            if self.count[c] == 0 and self.key_sum[c] == 0:
                return None  # a provably empty cell: key absent
        return None

    def _pure_cell_key(self, c: int) -> int | None:
        """Key recoverable from cell ``c`` if it is pure."""
        if abs(self.count[c]) != 1:
            return None
        key = int(self.key_sum[c])
        # Verify the key really maps to this cell (guards against XOR
        # coincidences of colliding entries).
        if c in self.cells(key):
            return key
        return None

    def list_entries(self) -> ListResult:
        """Peel the table, recovering all entries (destructive).

        Entries inserted an odd number of times are recovered with sign
        +1 counts; net-deleted entries (count −1 cells) are recovered too,
        reported with their stored values.
        """
        entries: list[tuple[int, int]] = []
        queue = [c for c in range(self.m) if abs(self.count[c]) == 1]
        while queue:
            c = queue.pop()
            key = self._pure_cell_key(int(c))
            if key is None:
                continue
            sign = int(self.count[c])
            value = int(self.value_sum[c])
            entries.append((key, value))
            self._apply(key, value, -sign)
            for c2 in np.unique(self.cells(key)):
                if abs(self.count[c2]) == 1:
                    queue.append(int(c2))
        residue = int(np.count_nonzero(self.count) or np.count_nonzero(
            self.key_sum
        ))
        return ListResult(
            complete=self.is_empty,
            entries=entries,
            residue_cells=residue,
        )

    @property
    def load(self) -> float:
        """Entries per cell, estimated from total count mass / d."""
        return float(self.count.sum()) / (self.d * self.m)
