"""Bloom filters with double-hashed index generation (Kirsch–Mitzenmacher).

A Bloom filter needs ``k`` indices per key.  The classical construction uses
``k`` independent hash functions; Kirsch–Mitzenmacher (2008, cited by the
paper as the result "closest in spirit") showed that the double-hashed
family ``g_i(x) = (h1(x) + i·h2(x)) mod m`` achieves the same asymptotic
false-positive rate with only two hash computations — the trick now used by
leveldb, bloomd, and other production filters the paper's footnote 3 lists.

Both modes are implemented behind one class so the comparison is a
constructor argument, mirroring the scheme switch in the core engines.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.hash_functions import TabulationHash
from repro.rng import default_generator

__all__ = ["BloomFilter", "theoretical_fpr"]


def theoretical_fpr(m: int, k: int, n_items: int) -> float:
    """Asymptotic false-positive rate ``(1 − e^{−kn/m})^k``."""
    if m < 1 or k < 1 or n_items < 0:
        raise ConfigurationError(
            f"invalid parameters m={m}, k={k}, n_items={n_items}"
        )
    return float((1.0 - np.exp(-k * n_items / m)) ** k)


class BloomFilter:
    """A Bloom filter over 64-bit integer keys.

    Parameters
    ----------
    m:
        Number of bits.
    k:
        Number of indices per key.
    mode:
        ``"double"`` — indices ``(h1 + i·h2) mod m`` from two tabulation
        hashes, with ``h2`` forced odd when ``m`` is a power of two (or
        nonzero otherwise) so the probe indices are distinct;
        ``"enhanced"`` — Kirsch–Mitzenmacher's *enhanced double hashing*
        ``(h1 + i·h2 + (i³−i)/6) mod m``: the cubic accumulator breaks the
        arithmetic-progression structure (two keys sharing one index no
        longer share the whole tail), at the same two-hash cost;
        ``"random"`` — ``k`` independent tabulation hashes.
    seed:
        Seeds the hash function tables.
    """

    def __init__(
        self,
        m: int,
        k: int,
        *,
        mode: str = "double",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if m < 2:
            raise ConfigurationError(f"m must be at least 2, got {m}")
        if k < 1:
            raise ConfigurationError(f"k must be at least 1, got {k}")
        if mode not in ("double", "enhanced", "random"):
            raise ConfigurationError(
                f"mode must be 'double', 'enhanced' or 'random', got {mode!r}"
            )
        rng = default_generator(seed)
        self.m = int(m)
        self.k = int(k)
        self.mode = mode
        self.bits = np.zeros(m, dtype=bool)
        self.n_items = 0
        if mode in ("double", "enhanced"):
            self._h1 = TabulationHash(m, rng)
            self._h2 = TabulationHash(m, rng)
        else:
            self._hashes = [TabulationHash(m, rng) for _ in range(k)]
        self._is_pow2 = (m & (m - 1)) == 0

    def _indices(self, keys: np.ndarray) -> np.ndarray:
        """``(len(keys), k)`` index matrix for the configured mode."""
        keys = np.asarray(keys, dtype=np.int64)
        if self.mode == "random":
            return np.stack([h(keys) for h in self._hashes], axis=1)
        f = np.asarray(self._h1(keys), dtype=np.int64)
        g = np.asarray(self._h2(keys), dtype=np.int64)
        if self._is_pow2:
            g = g | 1  # odd stride: a unit mod a power of two
        else:
            g = np.where(g == 0, 1, g)
        ks = np.arange(self.k, dtype=np.int64)
        idx = f[:, None] + g[:, None] * ks
        if self.mode == "enhanced":
            # (i^3 - i)/6 is integral for every i; the cubic accumulator of
            # Kirsch-Mitzenmacher's enhanced variant.
            idx = idx + (ks**3 - ks) // 6
        return idx % self.m

    def add(self, keys: np.ndarray | int) -> None:
        """Insert one key or an array of keys."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        idx = self._indices(keys)
        self.bits[idx.ravel()] = True
        self.n_items += len(keys)

    def contains(self, keys: np.ndarray | int) -> np.ndarray | bool:
        """Membership query; scalar in, scalar out."""
        scalar = np.isscalar(keys)
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        idx = self._indices(keys)
        hit = self.bits[idx].all(axis=1)
        return bool(hit[0]) if scalar else hit

    @property
    def fill_fraction(self) -> float:
        """Fraction of set bits."""
        return float(self.bits.mean())

    def empirical_fpr(
        self, probe_keys: np.ndarray, member_keys: set[int] | None = None
    ) -> float:
        """False-positive rate over ``probe_keys``.

        ``member_keys`` (keys actually inserted) are excluded from the
        probe set; pass None when the probe keys are known-fresh.
        """
        probe_keys = np.asarray(probe_keys, dtype=np.int64)
        if member_keys:
            mask = np.array([int(x) not in member_keys for x in probe_keys])
            probe_keys = probe_keys[mask]
        if len(probe_keys) == 0:
            return float("nan")
        return float(np.mean(self.contains(probe_keys)))

    def expected_fpr(self) -> float:
        """Theoretical rate at the current item count."""
        return theoretical_fpr(self.m, self.k, self.n_items)
