"""Neighbouring hash structures the paper motivates.

The paper argues its results "suggest that using double hashing in place of
fully random choices may similarly yield the same performance in other
settings that make use of multiple hash functions" (Section 1), naming Bloom
filters (where Kirsch–Mitzenmacher proved it), cuckoo hashing (studied
empirically in the follow-up [30]), and classical open addressing (where
Guibas–Szemerédi / Lueker–Molodowitch proved search cost matches random
probing).  This package implements all three so the claim can be exercised:

- :mod:`repro.extensions.bloom` — Bloom filter with k-from-2 double-hashed
  indices vs. k independent hashes; false-positive-rate comparison;
- :mod:`repro.extensions.cuckoo` — d-ary cuckoo hashing with double-hashed
  candidate buckets vs. d independent hashes; insertion displacement
  statistics;
- :mod:`repro.extensions.open_addressing` — open-addressed table with
  double-hashing vs. random and linear probing; unsuccessful-search cost
  against the 1/(1−α) law.

Plus the IBLT application layer: :mod:`repro.extensions.iblt` (batched
invertible Bloom lookup table, whose listing is the peeling kernel's
workload) and :mod:`repro.extensions.reconcile` (two-party set
reconciliation over a symmetric-difference IBLT).
"""

from repro.extensions.bloom import BloomFilter, theoretical_fpr
from repro.extensions.cuckoo import CuckooTable
from repro.extensions.cuckoo_filter import CuckooFilter
from repro.extensions.dleft_table import DLeftHashTable
from repro.extensions.iblt import BatchListResult, IBLT, ListResult
from repro.extensions.open_addressing import (
    OpenAddressTable,
    expected_unsuccessful_probes,
)
from repro.extensions.reconcile import (
    ReconcileResult,
    reconcile,
    run_reconciliation,
)

__all__ = [
    "BatchListResult",
    "BloomFilter",
    "CuckooFilter",
    "CuckooTable",
    "DLeftHashTable",
    "IBLT",
    "ListResult",
    "OpenAddressTable",
    "ReconcileResult",
    "expected_unsuccessful_probes",
    "reconcile",
    "run_reconciliation",
    "theoretical_fpr",
]
