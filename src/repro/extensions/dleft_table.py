"""A d-left fingerprint hash table — the hardware application ([11], [17]).

This is the structure the paper's introduction motivates: router /
flash-storage hash tables (e.g. ChunkStash) use d-left hashing with small
fixed-capacity buckets, probing ``d`` subtables in parallel and inserting
into the least-occupied bucket, ties to the left.  Bucket capacity is fixed
in hardware, so the engineering question is the **overflow probability** at
a target occupancy — exactly what the balanced-allocation tail bounds
control, and where the d-left layout's tighter constant pays off.

Subtable indices come from either ``d`` independent hashes or two hashes
double-hashing style (the paper's proposal: cheaper hashing, same
behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, TableFullError
from repro.hashing.hash_functions import TabulationHash
from repro.rng import default_generator

__all__ = ["DLeftHashTable", "OccupancyStats"]


@dataclass(frozen=True)
class OccupancyStats:
    """Bucket-occupancy summary of a d-left table.

    Attributes
    ----------
    histogram:
        ``histogram[k]`` = number of buckets holding exactly ``k`` entries.
    max_occupancy:
        Fullest bucket.
    overflow_count:
        Insertions that failed because all ``d`` candidate buckets were
        full.
    """

    histogram: np.ndarray
    max_occupancy: int
    overflow_count: int


class DLeftHashTable:
    """d-left hash table storing fingerprints in fixed-capacity buckets.

    Parameters
    ----------
    buckets_per_subtable:
        Buckets in each of the ``d`` subtables.
    d:
        Number of subtables.
    bucket_capacity:
        Slots per bucket (hardware word budget).
    mode:
        ``"double"`` — bucket indices ``(h1 + k·h2) mod buckets`` per
        subtable ``k``; ``"random"`` — one independent hash per subtable.
    fingerprint_bits:
        Stored fingerprint width (lookup false-positive rate is
        ``~ occupancy · 2^{−bits}`` per bucket probed).
    seed:
        Seeds the hash functions.
    """

    def __init__(
        self,
        buckets_per_subtable: int,
        d: int,
        *,
        bucket_capacity: int = 4,
        mode: str = "double",
        fingerprint_bits: int = 16,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if buckets_per_subtable < 2:
            raise ConfigurationError(
                f"need at least 2 buckets per subtable, got {buckets_per_subtable}"
            )
        if d < 2:
            raise ConfigurationError(f"d must be at least 2, got {d}")
        if bucket_capacity < 1:
            raise ConfigurationError(
                f"bucket_capacity must be positive, got {bucket_capacity}"
            )
        if mode not in ("double", "random"):
            raise ConfigurationError(
                f"mode must be 'double' or 'random', got {mode!r}"
            )
        if not 1 <= fingerprint_bits <= 62:
            raise ConfigurationError(
                f"fingerprint_bits must be in [1, 62], got {fingerprint_bits}"
            )
        rng = default_generator(seed)
        self.buckets = int(buckets_per_subtable)
        self.d = int(d)
        self.capacity = int(bucket_capacity)
        self.mode = mode
        self.fingerprint_bits = int(fingerprint_bits)
        # occupancy[k, b]: entries in bucket b of subtable k;
        # slots[k, b, s]: stored fingerprints (0 = empty sentinel).
        self.occupancy = np.zeros((d, self.buckets), dtype=np.int64)
        self.slots = np.zeros(
            (d, self.buckets, self.capacity), dtype=np.int64
        )
        self.overflow_count = 0
        self._is_pow2 = (self.buckets & (self.buckets - 1)) == 0
        self._fp_hash = TabulationHash(1 << fingerprint_bits, rng)
        if mode == "double":
            self._h1 = TabulationHash(self.buckets, rng)
            self._h2 = TabulationHash(self.buckets, rng)
        else:
            self._hashes = [
                TabulationHash(self.buckets, rng) for _ in range(d)
            ]

    # -- addressing -----------------------------------------------------------

    def bucket_indices(self, key: int) -> np.ndarray:
        """One bucket index per subtable for ``key``."""
        if self.mode == "random":
            return np.array(
                [h(key) for h in self._hashes], dtype=np.int64
            )
        f = int(self._h1(key))
        g = int(self._h2(key))
        if self._is_pow2:
            g |= 1
        elif g == 0:
            g = 1
        return (f + g * np.arange(self.d, dtype=np.int64)) % self.buckets

    def fingerprint(self, key: int) -> int:
        """Nonzero fingerprint of ``key`` (0 is the empty-slot sentinel)."""
        fp = int(self._fp_hash(key))
        return fp if fp != 0 else 1

    # -- operations -------------------------------------------------------------

    def insert(self, key: int) -> tuple[int, int]:
        """Insert ``key``; return the (subtable, bucket) used.

        Placement: least-occupied candidate bucket, ties to the left —
        Vöcking's rule.

        Raises
        ------
        TableFullError
            When all ``d`` candidate buckets are at capacity.
        """
        idx = self.bucket_indices(key)
        occupancies = self.occupancy[np.arange(self.d), idx]
        k = int(np.argmin(occupancies))  # argmin = leftmost tie
        if occupancies[k] >= self.capacity:
            self.overflow_count += 1
            raise TableFullError(
                f"all {self.d} candidate buckets full for key {key}"
            )
        b = int(idx[k])
        self.slots[k, b, self.occupancy[k, b]] = self.fingerprint(key)
        self.occupancy[k, b] += 1
        return (k, b)

    def lookup(self, key: int) -> bool:
        """Fingerprint match in any candidate bucket (false positives at
        rate ~ occupancy · 2^{−fingerprint_bits})."""
        fp = self.fingerprint(key)
        idx = self.bucket_indices(key)
        for k in range(self.d):
            b = idx[k]
            used = self.occupancy[k, b]
            if used and (self.slots[k, b, :used] == fp).any():
                return True
        return False

    # -- statistics --------------------------------------------------------------

    @property
    def size(self) -> int:
        """Total stored entries."""
        return int(self.occupancy.sum())

    @property
    def load_factor(self) -> float:
        """Entries per slot over the whole table."""
        return self.size / (self.d * self.buckets * self.capacity)

    def occupancy_stats(self) -> OccupancyStats:
        """Bucket-occupancy histogram across all subtables."""
        hist = np.bincount(
            self.occupancy.ravel(), minlength=self.capacity + 1
        )
        return OccupancyStats(
            histogram=hist,
            max_occupancy=int(self.occupancy.max(initial=0)),
            overflow_count=self.overflow_count,
        )
