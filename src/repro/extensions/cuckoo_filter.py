"""Cuckoo filter (Fan et al.) — partial-key cuckoo hashing.

A deployed cousin of the structures the paper studies: an approximate-set
filter storing short fingerprints in 2-choice buckets, where the *second*
bucket is derived from the first and the fingerprint alone:

    ``i2 = i1 XOR hash(fingerprint)``.

That derivation is itself a reduced-randomness trick in the double-hashing
spirit — the alternate location is a deterministic function of (location,
fingerprint), not an independent hash of the key — which is what makes
relocation possible without knowing the original key.  Including it rounds
out the library's tour of "less hashing, same performance" structures and
provides a deletion-capable alternative to the Bloom filter.

Bucket size ``b = 4`` supports ~95% occupancy (Fan et al.); the test suite
checks the load and false-positive behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, TableFullError
from repro.hashing.hash_functions import TabulationHash
from repro.rng import default_generator

__all__ = ["CuckooFilter"]

_EMPTY = 0


class CuckooFilter:
    """A cuckoo filter over int64 keys.

    Parameters
    ----------
    n_buckets:
        Number of buckets; must be a power of two (the XOR trick needs a
        closed index space).
    bucket_size:
        Fingerprint slots per bucket (4 is the standard choice).
    fingerprint_bits:
        Fingerprint width; false-positive rate ~ ``2·b / 2^bits``.
    max_kicks:
        Relocation budget per insertion.
    seed:
        Seeds the hash functions and eviction choices.
    """

    def __init__(
        self,
        n_buckets: int,
        *,
        bucket_size: int = 4,
        fingerprint_bits: int = 12,
        max_kicks: int = 500,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if n_buckets < 2 or (n_buckets & (n_buckets - 1)) != 0:
            raise ConfigurationError(
                f"n_buckets must be a power of two >= 2, got {n_buckets}"
            )
        if bucket_size < 1:
            raise ConfigurationError(
                f"bucket_size must be positive, got {bucket_size}"
            )
        if not 2 <= fingerprint_bits <= 30:
            raise ConfigurationError(
                f"fingerprint_bits must be in [2, 30], got {fingerprint_bits}"
            )
        if max_kicks < 1:
            raise ConfigurationError(
                f"max_kicks must be positive, got {max_kicks}"
            )
        self._rng = default_generator(seed)
        self.n_buckets = int(n_buckets)
        self.bucket_size = int(bucket_size)
        self.fingerprint_bits = int(fingerprint_bits)
        self.max_kicks = int(max_kicks)
        self.slots = np.zeros((n_buckets, bucket_size), dtype=np.int64)
        self.size = 0
        self._index_hash = TabulationHash(n_buckets, self._rng)
        self._fp_hash = TabulationHash(1 << fingerprint_bits, self._rng)
        # Independent hash of the fingerprint for the XOR partner.
        self._partner_hash = TabulationHash(n_buckets, self._rng)

    # -- addressing ------------------------------------------------------------

    def fingerprint(self, key: int) -> int:
        """Nonzero fingerprint (0 is the empty-slot sentinel)."""
        fp = int(self._fp_hash(key))
        return fp if fp != 0 else 1

    def buckets_for(self, key: int) -> tuple[int, int, int]:
        """``(i1, i2, fingerprint)`` for ``key``."""
        fp = self.fingerprint(key)
        i1 = int(self._index_hash(key))
        i2 = self._partner(i1, fp)
        return i1, i2, fp

    def _partner(self, bucket: int, fp: int) -> int:
        """The alternate bucket of a (bucket, fingerprint) pair."""
        return (bucket ^ int(self._partner_hash(fp))) % self.n_buckets

    # -- operations -------------------------------------------------------------

    def _try_place(self, bucket: int, fp: int) -> bool:
        row = self.slots[bucket]
        empty = np.flatnonzero(row == _EMPTY)
        if empty.size:
            row[empty[0]] = fp
            return True
        return False

    def insert(self, key: int) -> int:
        """Insert ``key``; return the number of relocations performed.

        Raises
        ------
        TableFullError
            When the relocation budget is exhausted.  The displaced
            fingerprint that could not be placed is dropped — as in the
            reference implementation, the filter is then considered full.
        """
        i1, i2, fp = self.buckets_for(key)
        if self._try_place(i1, fp) or self._try_place(i2, fp):
            self.size += 1
            return 0
        bucket = int(i1 if self._rng.integers(0, 2) else i2)
        for kick in range(self.max_kicks):
            slot = int(self._rng.integers(0, self.bucket_size))
            fp, self.slots[bucket, slot] = int(self.slots[bucket, slot]), fp
            bucket = self._partner(bucket, fp)
            if self._try_place(bucket, fp):
                self.size += 1
                return kick + 1
        raise TableFullError(
            f"cuckoo filter full at load {self.load_factor:.3f}"
        )

    def contains(self, key: int) -> bool:
        """Approximate membership (false positives, no false negatives)."""
        i1, i2, fp = self.buckets_for(key)
        return bool(
            (self.slots[i1] == fp).any() or (self.slots[i2] == fp).any()
        )

    def delete(self, key: int) -> bool:
        """Remove one copy of ``key``'s fingerprint; True when found.

        Deleting a never-inserted key may remove a colliding entry — the
        documented cuckoo-filter caveat; only delete inserted keys.
        """
        i1, i2, fp = self.buckets_for(key)
        for bucket in (i1, i2):
            hits = np.flatnonzero(self.slots[bucket] == fp)
            if hits.size:
                self.slots[bucket, hits[0]] = _EMPTY
                self.size -= 1
                return True
        return False

    @property
    def load_factor(self) -> float:
        """Occupied slots over total slots."""
        return self.size / (self.n_buckets * self.bucket_size)

    def expected_fpr(self) -> float:
        """Approximate false-positive rate ``1 − (1 − 2^{−bits})^{2b}``."""
        miss = 1.0 - 2.0**-self.fingerprint_bits
        return 1.0 - miss ** (2 * self.bucket_size)
