"""Classical open addressing: double hashing vs. random and linear probing.

The paper's related work recalls the classical result (Guibas–Szemerédi;
Lueker–Molodowitch; Bradford–Katehakis) that at constant load ``α`` the
expected unsuccessful-search cost of *double hashing* is ``1/(1−α)`` up to
lower-order terms — identical to idealized *random probing*.  This module
provides the table and the measurement so that result can be demonstrated
alongside the paper's balanced-allocation claims, and includes linear
probing as the contrast case whose cost ``(1 + 1/(1−α)²)/2`` is
asymptotically worse.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, TableFullError
from repro.hashing.hash_functions import TabulationHash
from repro.rng import default_generator

__all__ = [
    "OpenAddressTable",
    "expected_unsuccessful_probes",
    "expected_linear_probes",
]

_EMPTY = -1


def expected_unsuccessful_probes(alpha: float) -> float:
    """Asymptotic unsuccessful-search cost ``1/(1−α)`` for double/random
    probing."""
    if not 0.0 <= alpha < 1.0:
        raise ConfigurationError(f"alpha must be in [0, 1), got {alpha}")
    return 1.0 / (1.0 - alpha)


def expected_linear_probes(alpha: float) -> float:
    """Knuth's unsuccessful-search cost for linear probing:
    ``(1 + 1/(1−α)²)/2``."""
    if not 0.0 <= alpha < 1.0:
        raise ConfigurationError(f"alpha must be in [0, 1), got {alpha}")
    return 0.5 * (1.0 + 1.0 / (1.0 - alpha) ** 2)


class OpenAddressTable:
    """Open-addressed hash table over int64 keys with pluggable probing.

    Parameters
    ----------
    n:
        Table size.  Power-of-two sizes keep double-hashing strides valid
        via odd-forcing; other sizes force a nonzero stride, which only
        guarantees full-cycle probing when ``n`` is prime.
    probe:
        ``"double"`` — ``(h1 + i·h2) mod n``;
        ``"linear"`` — ``(h1 + i) mod n``;
        ``"random"`` — per-key pseudo-random probe permutation (idealized
        random probing), generated lazily by a per-key Fisher–Yates stream.
    seed:
        Seeds the hash functions.
    """

    def __init__(
        self,
        n: int,
        *,
        probe: str = "double",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if n < 2:
            raise ConfigurationError(f"n must be at least 2, got {n}")
        if probe not in ("double", "linear", "random"):
            raise ConfigurationError(
                f"probe must be 'double', 'linear' or 'random', got {probe!r}"
            )
        rng = default_generator(seed)
        self.n = int(n)
        self.probe = probe
        self.slots = np.full(n, _EMPTY, dtype=np.int64)
        self.size = 0
        self._h1 = TabulationHash(n, rng)
        self._h2 = TabulationHash(n, rng)
        self._is_pow2 = (n & (n - 1)) == 0
        # Per-key permutation seeds for "random" probing.
        self._perm_salt = int(rng.integers(0, 2**63))

    @property
    def load_factor(self) -> float:
        return self.size / self.n

    def _probe_sequence(self, key: int):
        """Yield the probe positions of ``key`` in order (lazily)."""
        f = int(self._h1(key))
        if self.probe == "linear":
            for i in range(self.n):
                yield (f + i) % self.n
            return
        if self.probe == "double":
            g = int(self._h2(key))
            if self._is_pow2:
                g |= 1
            elif g == 0:
                g = 1
            for i in range(self.n):
                yield (f + i * g) % self.n
            return
        # Idealized random probing: a fresh uniform permutation per key,
        # deterministic in the key (so search retraces insertion).
        perm_rng = np.random.default_rng(
            (int(key) * 0x9E3779B97F4A7C15 + self._perm_salt) & (2**63 - 1)
        )
        yield from perm_rng.permutation(self.n).tolist()

    def insert(self, key: int) -> int:
        """Insert ``key``; return the number of probes used.

        Duplicate keys occupy additional slots (multiset semantics,
        matching the classical analysis where each insertion is a fresh
        probe sequence).
        """
        if self.size >= self.n:
            raise TableFullError(f"table of size {self.n} is full")
        for probes, pos in enumerate(self._probe_sequence(key), start=1):
            if self.slots[pos] == _EMPTY:
                self.slots[pos] = key
                self.size += 1
                return probes
        raise TableFullError(  # pragma: no cover - unreachable when size < n
            "probe sequence did not cover the table; "
            "use a prime or power-of-two size with double probing"
        )

    def unsuccessful_search_cost(self, key: int) -> int:
        """Probes needed to conclude ``key``-as-fresh-key is absent
        (probes until the first empty slot)."""
        for probes, pos in enumerate(self._probe_sequence(key), start=1):
            if self.slots[pos] == _EMPTY:
                return probes
        return self.n

    def search(self, key: int) -> bool:
        """True when ``key`` is present (probing until key or empty)."""
        for pos in self._probe_sequence(key):
            slot = self.slots[pos]
            if slot == key:
                return True
            if slot == _EMPTY:
                return False
        return False

    def mean_unsuccessful_cost(
        self,
        samples: int,
        rng: np.random.Generator | int | None = None,
    ) -> float:
        """Empirical mean unsuccessful-search cost over fresh random keys."""
        gen = default_generator(rng)
        keys = gen.integers(2**32, 2**62, size=samples)
        return float(
            np.mean([self.unsuccessful_search_cost(int(k)) for k in keys])
        )
