"""Workload generators for the keyed service: churn, skew, and bursts.

A workload is a deterministic stream of per-step batches — fresh-key
inserts, delete attempts against previously inserted keys, and lookups —
parameterized along the axes production key-value traffic varies on:

- **popularity**: victims/lookups drawn uniformly over the recency window,
  or Zipf-skewed toward the most recent keys (truncated Zipf by recency
  rank — the standard hot-key model);
- **churn**: delete attempts per insert.  Victims are sampled from the
  insertion history, so a fraction targets already-deleted keys; the store
  absorbs those as counted misses, exactly like clients racing deletes in
  a real system;
- **arrival**: per-step intensity shaping — constant, a linear ramp
  (0.5×→1.5×), or a sinusoidal diurnal pattern — scaling the nominal
  batch size over time.

Streams are generated lazily (:func:`generate_stream`), are fully
deterministic given the seed, and never materialize more than the history
log (one int64 per inserted key).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import default_generator

__all__ = ["WorkloadSpec", "StepBatch", "generate_stream", "intensity"]

_POPULARITIES = ("uniform", "zipf")
_ARRIVALS = ("constant", "ramp", "sine")


@dataclass(frozen=True)
class WorkloadSpec:
    """Frozen description of one keyed workload.

    Attributes
    ----------
    n_keys:
        Total number of insert operations in the stream.
    batch:
        Nominal inserts per step (scaled by the arrival intensity).
    churn:
        Delete attempts per insert (0 disables deletes; 1.0 keeps the
        live population roughly constant after warm-up).
    lookups:
        Lookup operations per insert.
    popularity:
        ``"uniform"`` or ``"zipf"`` — how victims/lookup keys are drawn
        from the recency window.
    zipf_s:
        Zipf exponent (> 1) for ``popularity="zipf"``.
    window:
        Recency window (in keys) victims/lookups are drawn from;
        ``None`` means ``8 * batch``.
    arrival:
        ``"constant"``, ``"ramp"``, or ``"sine"`` per-step intensity.
    key_start:
        First key value; keys are consecutive 63-bit integers from here
        (the hash families do the scattering — sequential keys are the
        adversarial-but-realistic input for weak hash families).
    """

    n_keys: int
    batch: int = 8192
    churn: float = 0.0
    lookups: float = 0.0
    popularity: str = "uniform"
    zipf_s: float = 1.2
    window: int | None = None
    arrival: str = "constant"
    key_start: int = 1

    def __post_init__(self) -> None:
        if self.n_keys < 1:
            raise ConfigurationError(
                f"n_keys must be positive, got {self.n_keys}"
            )
        if self.batch < 1:
            raise ConfigurationError(f"batch must be positive, got {self.batch}")
        if self.churn < 0:
            raise ConfigurationError(
                f"churn must be non-negative, got {self.churn}"
            )
        if self.lookups < 0:
            raise ConfigurationError(
                f"lookups must be non-negative, got {self.lookups}"
            )
        if self.popularity not in _POPULARITIES:
            raise ConfigurationError(
                f"popularity must be one of {_POPULARITIES}, "
                f"got {self.popularity!r}"
            )
        if self.popularity == "zipf" and self.zipf_s <= 1.0:
            raise ConfigurationError(
                f"zipf_s must exceed 1, got {self.zipf_s}"
            )
        if self.window is not None and self.window < 1:
            raise ConfigurationError(
                f"window must be positive, got {self.window}"
            )
        if self.arrival not in _ARRIVALS:
            raise ConfigurationError(
                f"arrival must be one of {_ARRIVALS}, got {self.arrival!r}"
            )

    @property
    def effective_window(self) -> int:
        """Recency window: ``window`` when set, else ``8 * batch``."""
        return self.window if self.window is not None else 8 * self.batch

    @property
    def n_steps(self) -> int:
        """Number of steps at nominal batch size (intensity may shift it)."""
        return -(-self.n_keys // self.batch)


@dataclass(frozen=True)
class StepBatch:
    """One step of the stream: the key batches to apply, in order."""

    step: int
    inserts: np.ndarray
    deletes: np.ndarray
    lookups: np.ndarray


def intensity(arrival: str, step: int, n_steps: int) -> float:
    """Arrival-intensity multiplier for ``step`` of ``n_steps``.

    ``constant`` is 1; ``ramp`` climbs linearly 0.5×→1.5×; ``sine`` is a
    full diurnal cycle ``1 + 0.5·sin(2π·step/n_steps)``.
    """
    if arrival == "constant":
        return 1.0
    frac = step / max(n_steps - 1, 1)
    if arrival == "ramp":
        return 0.5 + frac
    if arrival == "sine":
        return 1.0 + 0.5 * float(np.sin(2.0 * np.pi * frac))
    raise ConfigurationError(f"unknown arrival kind {arrival!r}")


def _sample_history(
    history: np.ndarray,
    hist_size: int,
    count: int,
    spec: WorkloadSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``count`` keys from the recency window of the history log."""
    if count == 0 or hist_size == 0:
        return np.empty(0, dtype=np.int64)
    window = min(spec.effective_window, hist_size)
    if spec.popularity == "uniform":
        idx = rng.integers(hist_size - window, hist_size, size=count)
    else:
        # Truncated Zipf over recency rank: rank 1 = most recent key.
        ranks = np.minimum(rng.zipf(spec.zipf_s, size=count), window)
        idx = hist_size - ranks
    return history[idx]


def generate_stream(
    spec: WorkloadSpec,
    *,
    seed: int | np.random.Generator | None = None,
) -> Iterator[StepBatch]:
    """Yield the workload's per-step batches, deterministically.

    Inserts are fresh consecutive keys; deletes and lookups sample the
    insertion history per ``spec.popularity`` over the recency window.
    The stream ends once exactly ``spec.n_keys`` inserts have been
    produced (the last step is truncated to fit).
    """
    rng = default_generator(seed)
    n_steps = spec.n_steps
    history = np.empty(max(spec.batch * 2, 1024), dtype=np.int64)
    hist_size = 0
    next_key = spec.key_start
    produced = 0
    step = 0
    while produced < spec.n_keys:
        scale = intensity(spec.arrival, step, n_steps)
        b = max(1, int(round(spec.batch * scale)))
        b = min(b, spec.n_keys - produced)
        inserts = np.arange(next_key, next_key + b, dtype=np.int64)
        next_key += b
        produced += b
        if hist_size + b > history.size:
            history = np.concatenate(
                [history[:hist_size],
                 np.empty(max(history.size, b) * 2, dtype=np.int64)]
            )
        history[hist_size : hist_size + b] = inserts
        hist_size += b
        deletes = _sample_history(
            history, hist_size, int(round(spec.churn * b)), spec, rng
        )
        lookups = _sample_history(
            history, hist_size, int(round(spec.lookups * b)), spec, rng
        )
        yield StepBatch(step=step, inserts=inserts, deletes=deletes,
                        lookups=lookups)
        step += 1
