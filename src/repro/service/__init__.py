"""Keyed-workload service layer: a production-shaped keyed store/router.

This package is the repo's bridge from the paper's stochastic process to
the systems it models: items arrive *with keys*, their ``d`` candidate
bins come from keyed double hashing (two hash computations per key — the
paper's efficiency pitch), and per-bin load state is live across
insert/delete/lookup streams.

- :class:`KeyedStore` — the single-node keyed dictionary/router with
  micro-batched least-loaded placement and tail-SLO sampling.
- :class:`ShardedRouter` — deterministic sharding over stores sharing one
  keyed scheme, with an associative :meth:`~KeyedStore.merge` and
  reusable per-batch :class:`RoutePlan` routing passes.
- :class:`WorkloadSpec` / :func:`generate_stream` — deterministic keyed
  workload streams (uniform/zipf popularity, churn, arrival shaping).
- :func:`run_service_workload` — the engine loop the CLI ``serve``
  command and ``benchmarks/bench_service.py`` drive.

Scheme names (``"double"``, ``"tabulation"``, ``"random"``, ...) resolve
through the unified registry in :mod:`repro.hashing.registry`.  The
store's key → bin bookkeeping runs on the vectorized open-addressed
assignment-map kernel (:mod:`repro.kernels.keymap`); pick a tier with
``backend=`` or the ``REPRO_BACKEND`` environment variable.
"""

from repro.service.runner import ServiceReport, run_service_workload
from repro.service.shard import RoutePlan, ShardedRouter
from repro.service.store import DEFAULT_MICRO_BATCH, KeyedStore
from repro.service.workloads import StepBatch, WorkloadSpec, generate_stream

__all__ = [
    "DEFAULT_MICRO_BATCH",
    "KeyedStore",
    "RoutePlan",
    "ServiceReport",
    "ShardedRouter",
    "StepBatch",
    "WorkloadSpec",
    "generate_stream",
    "run_service_workload",
]
