"""Deterministic sharding of the keyed store, with associative merge.

:class:`ShardedRouter` partitions the key space across ``n_shards``
independent :class:`~repro.service.store.KeyedStore` shards via a
multiply-shift shard hash.  All shards share **one** keyed placement
scheme (the same hash functions), so their states are merge-compatible:
:meth:`ShardedRouter.merged` folds them into a single store, and because
:meth:`KeyedStore.merge` is associative over disjoint key sets, the fold
order does not matter — the property that lets a real deployment combine
per-node states pairwise, tree-wise, or incrementally.

Each shard balances against *its own* load view (the loads of keys routed
to it), which is the distributed model: shards are nodes that do not see
each other's placements.  Batched operations are dispatched with a stable
sort by shard id, so per-shard sub-batches preserve stream order and the
whole router is deterministic given the seed and the input stream.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.hash_functions import MultiplyShiftHash
from repro.hashing.keyed import KeyedChoices, _as_key_array
from repro.hashing.registry import make_keyed_scheme
from repro.metrics import MetricsRegistry, global_registry
from repro.rng import default_generator
from repro.service.store import DEFAULT_MICRO_BATCH, KeyedStore

__all__ = ["ShardedRouter"]


class ShardedRouter:
    """A bank of keyed-store shards behind one batched API.

    Parameters
    ----------
    n_bins, d:
        Geometry shared by every shard (loads are per-bin across the
        whole cluster; each shard tracks the slice its keys produced).
    n_shards:
        Number of shards; must be a power of two (the shard hash is
        multiply-shift).
    scheme, seed, rng:
        As in :class:`~repro.service.store.KeyedStore`; the scheme is
        built once here and shared by all shards.
    micro_batch, slo_interval, metrics, series:
        Forwarded to every shard (sampling, when enabled, is per shard).
    """

    def __init__(
        self,
        n_bins: int,
        d: int = 2,
        *,
        n_shards: int = 4,
        scheme: str | KeyedChoices | None = None,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        micro_batch: int = DEFAULT_MICRO_BATCH,
        slo_interval: int | None = None,
        metrics: MetricsRegistry | None = None,
        series: str = "service.slo",
    ) -> None:
        if n_shards < 1 or n_shards & (n_shards - 1):
            raise ConfigurationError(
                f"n_shards must be a positive power of two, got {n_shards}"
            )
        if rng is not None and seed is not None:
            raise ConfigurationError("pass rng or seed, not both")
        gen = rng if rng is not None else default_generator(seed)
        if isinstance(scheme, KeyedChoices):
            if scheme.n_bins != n_bins or scheme.d != d:
                raise ConfigurationError(
                    f"scheme geometry ({scheme.n_bins}, {scheme.d}) does not "
                    f"match router geometry ({n_bins}, {d})"
                )
            self.keyed = scheme
        else:
            self.keyed = make_keyed_scheme(scheme, n_bins, d, rng=gen)
        self.n_bins = int(n_bins)
        self.d = int(d)
        self.n_shards = int(n_shards)
        self.series = series
        self._metrics = metrics if metrics is not None else global_registry()
        self._shard_hash = MultiplyShiftHash(n_shards, gen)
        self.shards = [
            KeyedStore(
                n_bins,
                d,
                scheme=self.keyed,
                micro_batch=micro_batch,
                slo_interval=slo_interval,
                metrics=self._metrics,
                series=f"{series}.shard{i}" if n_shards > 1 else series,
            )
            for i in range(n_shards)
        ]

    # -- inspection -------------------------------------------------------

    @property
    def size(self) -> int:
        """Live keys across all shards."""
        return sum(shard.size for shard in self.shards)

    @property
    def ops(self) -> int:
        """Total operations processed across all shards."""
        return sum(shard.ops for shard in self.shards)

    @property
    def loads(self) -> np.ndarray:
        """Cluster-wide per-bin loads (sum over shards)."""
        total = np.zeros(self.n_bins, dtype=np.int64)
        for shard in self.shards:
            total += shard.loads
        return total

    @property
    def counters(self) -> dict[str, int]:
        """Operation counters summed over shards."""
        out: dict[str, int] = {}
        for shard in self.shards:
            for name, value in shard.counters.items():
                out[name] = out.get(name, 0) + value
        return out

    def shard_of(self, keys) -> np.ndarray:
        """Shard index per key (deterministic multiply-shift routing)."""
        keys = _as_key_array(keys)
        if self.n_shards == 1:
            return np.zeros(keys.size, dtype=np.int64)
        return np.asarray(self._shard_hash(keys), dtype=np.int64)

    def describe(self) -> str:
        """One-line description used in reports."""
        return (
            f"ShardedRouter({self.keyed.describe()}, shards={self.n_shards}, "
            f"size={self.size})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()

    # -- batched operations -----------------------------------------------

    def _dispatch(self, keys, op: str, **kwargs) -> np.ndarray:
        keys = _as_key_array(keys)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        if self.n_shards == 1:
            return getattr(self.shards[0], op)(keys, **kwargs)
        sid = self.shard_of(keys)
        order = np.argsort(sid, kind="stable")
        sorted_keys = keys[order]
        bounds = np.searchsorted(sid[order], np.arange(self.n_shards + 1))
        out_sorted = np.empty(keys.size, dtype=np.int64)
        for s in range(self.n_shards):
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            if hi > lo:
                out_sorted[lo:hi] = getattr(self.shards[s], op)(
                    sorted_keys[lo:hi], **kwargs
                )
        out = np.empty(keys.size, dtype=np.int64)
        out[order] = out_sorted
        return out

    def insert_many(self, keys) -> np.ndarray:
        """Route and place a key batch; returns the assigned bin per key."""
        return self._dispatch(keys, "insert_many")

    def delete_many(self, keys, *, missing: str = "ignore") -> np.ndarray:
        """Route and remove a key batch; returns the freed bin per key."""
        return self._dispatch(keys, "delete_many", missing=missing)

    def lookup_many(self, keys) -> np.ndarray:
        """Route and look up a key batch (``-1`` for absent keys)."""
        return self._dispatch(keys, "lookup_many")

    # -- SLO sampling and merge -------------------------------------------

    def load_quantiles(self, qs=(0.5, 0.99, 0.999)) -> tuple[float, ...]:
        """Quantiles of the cluster-wide per-bin load vector."""
        return tuple(float(q) for q in np.quantile(self.loads, qs))

    def record_slo(self) -> dict:
        """Record one cluster-wide tail-SLO sample onto the series."""
        loads = self.loads
        p50, p99, p999 = (
            float(q) for q in np.quantile(loads, (0.5, 0.99, 0.999))
        )
        sample = {
            "ops": self.ops,
            "size": self.size,
            "max_load": int(loads.max(initial=0)),
            "p50": p50,
            "p99": p99,
            "p999": p999,
        }
        self._metrics.sample(self.series, **sample)
        return sample

    def merged(self) -> KeyedStore:
        """Fold all shard states into one store (order-independent)."""
        return functools.reduce(
            lambda acc, shard: acc.merge(shard), self.shards[1:], self.shards[0]
        )
