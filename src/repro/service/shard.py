"""Deterministic sharding of the keyed store, with associative merge.

:class:`ShardedRouter` partitions the key space across ``n_shards``
independent :class:`~repro.service.store.KeyedStore` shards via a
multiply-shift shard hash.  All shards share **one** keyed placement
scheme (the same hash functions), so their states are merge-compatible:
:meth:`ShardedRouter.merged` folds them into a single store, and because
:meth:`KeyedStore.merge` is associative over disjoint key sets, the fold
order does not matter — the property that lets a real deployment combine
per-node states pairwise, tree-wise, or incrementally.

Each shard balances against *its own* load view (the loads of keys routed
to it), which is the distributed model: shards are nodes that do not see
each other's placements.  Batched operations are dispatched with a stable
sort by shard id, so per-shard sub-batches preserve stream order and the
whole router is deterministic given the seed and the input stream.  The
routing pass (hash, stable sort, shard boundaries) is computed once per
batch as a :class:`RoutePlan` — and :meth:`ShardedRouter.route` exposes
it so callers issuing several operations over the *same* key batch
(insert-then-lookup loops, read-audit passes) pay for routing once.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.hash_functions import MultiplyShiftHash
from repro.hashing.keyed import KeyedChoices, _as_key_array
from repro.hashing.registry import make_keyed_scheme
from repro.metrics import MetricsRegistry, global_registry
from repro.rng import default_generator
from repro.service.store import DEFAULT_MICRO_BATCH, KeyedStore

__all__ = ["RoutePlan", "ShardedRouter"]


@dataclass(frozen=True)
class RoutePlan:
    """One routing pass over a key batch, reusable across operations.

    Attributes
    ----------
    keys:
        The normalized int64 key batch the plan was built for.
    order:
        Stable permutation sorting the batch by shard id.
    sorted_keys:
        ``keys[order]`` — contiguous per-shard sub-batches.
    bounds:
        ``n_shards + 1`` offsets; shard ``s`` owns
        ``sorted_keys[bounds[s]:bounds[s + 1]]``.
    """

    keys: np.ndarray
    order: np.ndarray
    sorted_keys: np.ndarray
    bounds: np.ndarray


class ShardedRouter:
    """A bank of keyed-store shards behind one batched API.

    Parameters
    ----------
    n_bins, d:
        Geometry shared by every shard (loads are per-bin across the
        whole cluster; each shard tracks the slice its keys produced).
    n_shards:
        Number of shards; must be a power of two (the shard hash is
        multiply-shift).
    scheme, seed, rng:
        As in :class:`~repro.service.store.KeyedStore`; the scheme is
        built once here and shared by all shards.
    backend:
        Assignment-map kernel tier forwarded to every shard (see
        :class:`~repro.service.store.KeyedStore`).
    expected_keys:
        Presize hint for the *whole router*; each shard presizes its
        assignment map for ``expected_keys / n_shards`` live keys.
    micro_batch, slo_interval, metrics, series:
        Forwarded to every shard (sampling, when enabled, is per shard).
    """

    def __init__(
        self,
        n_bins: int,
        d: int = 2,
        *,
        n_shards: int = 4,
        scheme: str | KeyedChoices | None = None,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        micro_batch: int = DEFAULT_MICRO_BATCH,
        backend: str | None = None,
        expected_keys: int = 0,
        slo_interval: int | None = None,
        metrics: MetricsRegistry | None = None,
        series: str = "service.slo",
    ) -> None:
        if n_shards < 1 or n_shards & (n_shards - 1):
            raise ConfigurationError(
                f"n_shards must be a positive power of two, got {n_shards}"
            )
        if rng is not None and seed is not None:
            raise ConfigurationError("pass rng or seed, not both")
        gen = rng if rng is not None else default_generator(seed)
        if isinstance(scheme, KeyedChoices):
            if scheme.n_bins != n_bins or scheme.d != d:
                raise ConfigurationError(
                    f"scheme geometry ({scheme.n_bins}, {scheme.d}) does not "
                    f"match router geometry ({n_bins}, {d})"
                )
            self.keyed = scheme
        else:
            self.keyed = make_keyed_scheme(scheme, n_bins, d, rng=gen)
        self.n_bins = int(n_bins)
        self.d = int(d)
        self.n_shards = int(n_shards)
        self.series = series
        self._metrics = metrics if metrics is not None else global_registry()
        self._shard_hash = MultiplyShiftHash(n_shards, gen)
        per_shard = -(-int(expected_keys) // n_shards) if expected_keys else 0
        self.shards = [
            KeyedStore(
                n_bins,
                d,
                scheme=self.keyed,
                micro_batch=micro_batch,
                backend=backend,
                expected_keys=per_shard,
                slo_interval=slo_interval,
                metrics=self._metrics,
                series=f"{series}.shard{i}" if n_shards > 1 else series,
            )
            for i in range(n_shards)
        ]
        self.backend = self.shards[0].backend

    # -- inspection -------------------------------------------------------

    @property
    def size(self) -> int:
        """Live keys across all shards."""
        return sum(shard.size for shard in self.shards)

    @property
    def ops(self) -> int:
        """Total operations processed across all shards."""
        return sum(shard.ops for shard in self.shards)

    @property
    def loads(self) -> np.ndarray:
        """Cluster-wide per-bin loads (sum over shards)."""
        total = np.zeros(self.n_bins, dtype=np.int64)
        for shard in self.shards:
            total += shard.loads
        return total

    @property
    def counters(self) -> dict[str, int]:
        """Operation counters summed over shards."""
        out: dict[str, int] = {}
        for shard in self.shards:
            for name, value in shard.counters.items():
                out[name] = out.get(name, 0) + value
        return out

    def shard_of(self, keys) -> np.ndarray:
        """Shard index per key (deterministic multiply-shift routing)."""
        keys = _as_key_array(keys)
        if self.n_shards == 1:
            return np.zeros(keys.size, dtype=np.int64)
        return np.asarray(self._shard_hash(keys), dtype=np.int64)

    def describe(self) -> str:
        """One-line description used in reports."""
        return (
            f"ShardedRouter({self.keyed.describe()}, shards={self.n_shards}, "
            f"size={self.size})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()

    # -- batched operations -----------------------------------------------

    def route(self, keys) -> RoutePlan:
        """Build the routing pass for a key batch (hash, sort, bounds).

        The returned :class:`RoutePlan` can be passed to
        :meth:`insert_many` / :meth:`delete_many` / :meth:`lookup_many`
        via ``plan=`` so repeated operations over the same batch reuse
        one routing pass.
        """
        keys = _as_key_array(keys)
        sid = self.shard_of(keys)
        order = np.argsort(sid, kind="stable")
        sorted_keys = keys[order]
        bounds = np.searchsorted(sid[order], np.arange(self.n_shards + 1))
        return RoutePlan(
            keys=keys, order=order, sorted_keys=sorted_keys, bounds=bounds
        )

    def _dispatch(self, keys, op: str, plan: RoutePlan | None = None, **kwargs):
        if plan is None:
            keys = _as_key_array(keys)
            if keys.size == 0:
                return np.empty(0, dtype=np.int64)
            if self.n_shards == 1:
                return getattr(self.shards[0], op)(keys, **kwargs)
            plan = self.route(keys)
        else:
            if keys is not None and keys is not plan.keys:
                keys = _as_key_array(keys)
                if keys.shape != plan.keys.shape or not np.array_equal(
                    keys, plan.keys
                ):
                    raise ConfigurationError(
                        "RoutePlan was built for a different key batch"
                    )
            if plan.keys.size == 0:
                return np.empty(0, dtype=np.int64)
            if self.n_shards == 1:
                return getattr(self.shards[0], op)(plan.keys, **kwargs)
        out_sorted = np.empty(plan.keys.size, dtype=np.int64)
        bounds = plan.bounds
        for s in range(self.n_shards):
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            if hi > lo:
                out_sorted[lo:hi] = getattr(self.shards[s], op)(
                    plan.sorted_keys[lo:hi], **kwargs
                )
        out = np.empty(plan.keys.size, dtype=np.int64)
        out[plan.order] = out_sorted
        return out

    def insert_many(self, keys=None, *, plan: RoutePlan | None = None) -> np.ndarray:
        """Route and place a key batch; returns the assigned bin per key."""
        return self._dispatch(keys, "insert_many", plan=plan)

    def delete_many(
        self,
        keys=None,
        *,
        missing: str = "ignore",
        plan: RoutePlan | None = None,
    ) -> np.ndarray:
        """Route and remove a key batch; returns the freed bin per key."""
        return self._dispatch(keys, "delete_many", plan=plan, missing=missing)

    def lookup_many(self, keys=None, *, plan: RoutePlan | None = None) -> np.ndarray:
        """Route and look up a key batch (``-1`` for absent keys)."""
        return self._dispatch(keys, "lookup_many", plan=plan)

    # -- SLO sampling and merge -------------------------------------------

    def load_quantiles(self, qs=(0.5, 0.99, 0.999)) -> tuple[float, ...]:
        """Quantiles of the cluster-wide per-bin load vector."""
        return tuple(float(q) for q in np.quantile(self.loads, qs))

    def record_slo(self) -> dict:
        """Record one cluster-wide tail-SLO sample onto the series."""
        loads = self.loads
        p50, p99, p999 = (
            float(q) for q in np.quantile(loads, (0.5, 0.99, 0.999))
        )
        sample = {
            "ops": self.ops,
            "size": self.size,
            "max_load": int(loads.max(initial=0)),
            "p50": p50,
            "p99": p99,
            "p999": p999,
        }
        self._metrics.sample(self.series, **sample)
        return sample

    def merged(self) -> KeyedStore:
        """Fold all shard states into one store (order-independent)."""
        return functools.reduce(
            lambda acc, shard: acc.merge(shard), self.shards[1:], self.shards[0]
        )
