"""Drive a workload through a store/router and report throughput + tails.

:func:`run_service_workload` is the service layer's engine loop: it pulls
:class:`~repro.service.workloads.StepBatch` batches off a deterministic
stream, applies them (inserts, then deletes, then lookups — the order
within a step), samples the tail SLO at a fixed operation cadence, and
returns a :class:`ServiceReport` with keyed ops/sec and the final load
quantiles.  The CLI ``serve`` command and ``benchmarks/bench_service.py``
are thin wrappers over this function.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.metrics import MetricsRegistry, global_registry
from repro.service.shard import ShardedRouter
from repro.service.store import DEFAULT_MICRO_BATCH, KeyedStore
from repro.service.workloads import WorkloadSpec, generate_stream

__all__ = ["ServiceReport", "run_service_workload"]


@dataclass
class ServiceReport:
    """Summary of one service run, JSON-ready via :meth:`to_dict`."""

    scheme: str
    n_bins: int
    d: int
    n_shards: int
    backend: str
    ops: int
    inserts: int
    deletes: int
    lookups: int
    size: int
    seconds: float
    ops_per_sec: float
    insert_ops_per_sec: float
    max_load: int
    p50: float
    p99: float
    p999: float
    counters: dict = field(default_factory=dict)
    slo_series: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """Plain-dict form (numpy scalars already coerced)."""
        return {
            "scheme": self.scheme,
            "n_bins": self.n_bins,
            "d": self.d,
            "n_shards": self.n_shards,
            "backend": self.backend,
            "ops": self.ops,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "lookups": self.lookups,
            "size": self.size,
            "seconds": self.seconds,
            "ops_per_sec": self.ops_per_sec,
            "insert_ops_per_sec": self.insert_ops_per_sec,
            "max_load": self.max_load,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "counters": dict(self.counters),
            "slo_series": [dict(s) for s in self.slo_series],
        }


def run_service_workload(
    spec: WorkloadSpec,
    *,
    n_bins: int,
    d: int = 2,
    scheme: str | None = None,
    n_shards: int = 1,
    seed: int | None = None,
    micro_batch: int = DEFAULT_MICRO_BATCH,
    backend: str | None = None,
    slo_samples: int = 32,
    metrics: MetricsRegistry | None = None,
    series: str = "service.slo",
) -> ServiceReport:
    """Run ``spec`` through a fresh store (or sharded router).

    Parameters
    ----------
    spec:
        The workload (keys, churn, popularity, arrival shape).
    n_bins, d:
        Store geometry.
    scheme:
        Keyed-scheme registry name (explicit > ``REPRO_SCHEME`` env >
        ``"double"``); see :func:`repro.hashing.keyed_scheme_names`.
    n_shards:
        1 runs a single :class:`~repro.service.store.KeyedStore`; more
        runs a :class:`~repro.service.shard.ShardedRouter`.
    seed:
        Drives both the hash-family draws and the workload stream.
    micro_batch:
        Placement micro-batch size (see the store docs).
    backend:
        Assignment-map kernel tier for every store/shard (explicit >
        ``REPRO_BACKEND`` env > auto; see
        :func:`repro.kernels.keymap.resolve_keymap_backend`).
    slo_samples:
        Target number of tail-SLO samples over the run (0 disables
        periodic sampling; a final sample is always recorded).
    metrics, series:
        Registry and series name receiving timers/counters/SLO samples.
    """
    registry = metrics if metrics is not None else global_registry()
    if n_shards > 1:
        store = ShardedRouter(
            n_bins,
            d,
            n_shards=n_shards,
            scheme=scheme,
            seed=seed,
            micro_batch=micro_batch,
            backend=backend,
            expected_keys=spec.n_keys,
            metrics=registry,
            series=series,
        )
        slo_target = store  # cluster-wide samples from the router
    else:
        store = KeyedStore(
            n_bins,
            d,
            scheme=scheme,
            seed=seed,
            micro_batch=micro_batch,
            backend=backend,
            expected_keys=spec.n_keys,
            metrics=registry,
            series=series,
        )
        slo_target = store
    total_ops = int(spec.n_keys * (1 + spec.churn + spec.lookups))
    sample_every = (
        max(1, total_ops // slo_samples) if slo_samples > 0 else None
    )
    next_sample = sample_every if sample_every is not None else None

    insert_seconds = 0.0
    start = time.perf_counter()
    for batch in generate_stream(spec, seed=seed):
        t0 = time.perf_counter()
        store.insert_many(batch.inserts)
        insert_seconds += time.perf_counter() - t0
        if batch.deletes.size:
            store.delete_many(batch.deletes, missing="ignore")
        if batch.lookups.size:
            store.lookup_many(batch.lookups)
        if next_sample is not None and store.ops >= next_sample:
            slo_target.record_slo()
            next_sample += sample_every
    seconds = time.perf_counter() - start
    slo_target.record_slo()

    loads = store.loads
    p50, p99, p999 = (
        float(q) for q in np.quantile(loads, (0.5, 0.99, 0.999))
    )
    counters = store.counters
    scheme_label = (
        store.keyed.describe() if scheme is None else scheme
    )
    return ServiceReport(
        scheme=scheme_label,
        n_bins=n_bins,
        d=d,
        n_shards=n_shards,
        backend=store.backend,
        ops=store.ops,
        inserts=counters["inserts"],
        deletes=counters["deletes"],
        lookups=counters["lookups"],
        size=store.size,
        seconds=seconds,
        ops_per_sec=store.ops / seconds if seconds > 0 else float("inf"),
        insert_ops_per_sec=(
            counters["inserts"] / insert_seconds
            if insert_seconds > 0
            else float("inf")
        ),
        max_load=int(loads.max(initial=0)),
        p50=p50,
        p99=p99,
        p999=p999,
        counters=counters,
        slo_series=registry.get_series(series),
    )
