"""The keyed store: live multiple-choice placement addressed by key.

:class:`KeyedStore` is the repo's production-shaped façade over the
paper's process: items are placed by *hashing their keys* through a keyed
double-hashing scheme (two hash computations per key — the paper's pitch),
per-bin load state is live, and insert/delete/lookup streams are processed
in vectorized batches.

Placement semantics
-------------------
``insert_many`` places each batch in **micro-batches** (default 2048
keys): the candidate loads of one micro-batch are gathered against a
single load snapshot, every key joins its least-loaded candidate
(ties to the lowest-index choice, i.e. asymmetric/left — deterministic),
and the increments are applied before the next micro-batch.  Keys inside
one micro-batch therefore do not see each other's placements — the batch
model of balanced allocations, which is exactly how concurrent routers
behave between state syncs.  ``micro_batch=1`` recovers the strictly
sequential process.  Given the hash functions (``seed``) and the input
stream, placement is fully deterministic: no per-ball randomness exists
anywhere on this path.

State
-----
Per-bin loads are a flat int64 vector; the key→bin assignment lives in a
flat open-addressed kernel map (:mod:`repro.kernels.keymap` — the service
layer eating the paper's own double-hashing medicine), selected through
the usual explicit > ``REPRO_BACKEND`` > auto registry via ``backend``
(``"reference"`` recovers the demoted per-key dict path, the oracle the
kernels are tested exactly equal to).  Because speculative load
increments happen for *every* key of a batch — reinserts included — and
are only rolled back afterwards, the placement loop is independent of
reinsert status, and the whole batch resolves through **one**
``insert_many`` kernel call.  Re-inserting a live key is idempotent
(the existing placement wins; the speculative increment is rolled back
and counted under ``reinserts``).  Deleting an absent key is counted
under ``delete_misses`` and reported as bin ``-1`` (or raises, with the
store untouched, under ``missing="error"``).

Tail-SLO observability
----------------------
:meth:`KeyedStore.record_slo` pushes a ``{ops, size, max_load, p50, p99,
p999}`` sample onto a :class:`repro.metrics.MetricsRegistry` time series
(p-quantiles are over the per-bin load vector — the tail a load balancer's
SLO cares about).  Pass ``slo_interval`` to sample automatically every so
many operations.

Sharding
--------
:meth:`KeyedStore.merge` combines two stores built from the *same* hash
functions (checked via scheme fingerprints) over disjoint key sets into a
new store — deterministic and associative, so shard states can be merged
in any grouping (see :mod:`repro.service.shard`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.keyed import KeyedChoices, _as_key_array
from repro.hashing.registry import make_keyed_scheme
from repro.kernels.keymap import NOT_FOUND, make_keymap
from repro.metrics import MetricsRegistry, global_registry

__all__ = ["KeyedStore", "DEFAULT_MICRO_BATCH"]

#: Keys placed per load-snapshot micro-batch.  Large enough that the
#: per-micro-batch numpy dispatch overhead amortizes (the gather/argmin/
#: scatter costs ~3 ops of this length), small enough that the snapshot
#: staleness stays far below one ball per bin for the default geometries.
DEFAULT_MICRO_BATCH = 2048

_COUNTERS = (
    "inserts",
    "deletes",
    "lookups",
    "reinserts",
    "delete_misses",
    "lookup_misses",
)


class KeyedStore:
    """A keyed dictionary/router placing items via keyed double hashing.

    Parameters
    ----------
    n_bins:
        Number of bins (servers, slots).
    d:
        Choices per key (the paper's headline case is 2).
    scheme:
        Registry name resolved via
        :func:`repro.hashing.registry.make_keyed_scheme` (explicit >
        ``REPRO_SCHEME`` env > ``"double"`` when ``None``), or an existing
        :class:`~repro.hashing.keyed.KeyedChoices` instance (shards share
        one instance so their placements are mergeable).
    seed, rng:
        Construction-time randomness for the hash-family draws; at most
        one may be given, and both are ignored when ``scheme`` is already
        an instance.
    micro_batch:
        Keys per load-snapshot micro-batch (see module docstring).
    backend:
        Assignment-map kernel tier (``"reference"``, ``"numpy"``,
        ``"numba"``, ``"numba-parallel"``) resolved through
        :func:`repro.kernels.keymap.resolve_keymap_backend`; ``None``
        follows ``REPRO_BACKEND`` then auto-detection.
    expected_keys:
        Presize the assignment map for this many live keys, keeping
        amortized rehashes out of the serving path (it still grows on
        demand).
    slo_interval:
        Record an SLO sample automatically every this many operations
        (``None`` — the default — samples only on explicit
        :meth:`record_slo` calls).
    metrics:
        Registry receiving counters/timers/SLO series (global by default).
    series:
        Name of the SLO time series in the registry.
    """

    def __init__(
        self,
        n_bins: int,
        d: int = 2,
        *,
        scheme: str | KeyedChoices | None = None,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        micro_batch: int = DEFAULT_MICRO_BATCH,
        backend: str | None = None,
        expected_keys: int = 0,
        slo_interval: int | None = None,
        metrics: MetricsRegistry | None = None,
        series: str = "service.slo",
    ) -> None:
        if micro_batch < 1:
            raise ConfigurationError(
                f"micro_batch must be positive, got {micro_batch}"
            )
        if slo_interval is not None and slo_interval < 1:
            raise ConfigurationError(
                f"slo_interval must be positive, got {slo_interval}"
            )
        if isinstance(scheme, KeyedChoices):
            if scheme.n_bins != n_bins or scheme.d != d:
                raise ConfigurationError(
                    f"scheme geometry ({scheme.n_bins}, {scheme.d}) does not "
                    f"match store geometry ({n_bins}, {d})"
                )
            self.keyed = scheme
        else:
            self.keyed = make_keyed_scheme(scheme, n_bins, d, rng=rng, seed=seed)
        self.n_bins = int(n_bins)
        self.d = int(d)
        self.micro_batch = int(micro_batch)
        self.slo_interval = slo_interval
        self.series = series
        self.loads = np.zeros(self.n_bins, dtype=np.int64)
        self._metrics = metrics if metrics is not None else global_registry()
        self._map = make_keymap(
            expected=expected_keys, backend=backend, metrics=self._metrics
        )
        self.backend = self._map.backend
        self.counters: dict[str, int] = dict.fromkeys(_COUNTERS, 0)
        self._ops = 0
        self._ops_at_last_sample = 0

    # -- inspection -------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of live keys."""
        return self._map.size

    @property
    def ops(self) -> int:
        """Total operations processed (inserts + deletes + lookups)."""
        return self._ops

    @property
    def assignments(self) -> tuple[np.ndarray, np.ndarray]:
        """Live ``(keys, bins)`` int64 arrays, sorted by key.

        Built directly from the kernel map's flat storage (no Python
        lists); the key sort makes the order deterministic across
        backends, whose physical slot layouts differ.
        """
        keys, bins = self._map.items()
        order = np.argsort(keys, kind="stable")
        return keys[order], bins[order]

    def load_quantiles(self, qs=(0.5, 0.99, 0.999)) -> tuple[float, ...]:
        """Quantiles of the per-bin load vector (the SLO tail view)."""
        return tuple(float(q) for q in np.quantile(self.loads, qs))

    def describe(self) -> str:
        """One-line description used in reports."""
        return (
            f"KeyedStore({self.keyed.describe()}, size={self.size}, "
            f"micro_batch={self.micro_batch}, backend={self.backend})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()

    # -- operations -------------------------------------------------------

    def _place(self, keys: np.ndarray) -> np.ndarray:
        """Least-loaded placement with speculative increments for all keys.

        Returns the chosen bin per key under micro-batch snapshot
        semantics.  ``d == 2`` runs on contiguous planar choice rows with
        a branch-free pick (ties to the first choice — exactly what
        ``argmin`` does); other ``d`` take the generic argmin path.  Both
        are bit-identical to the historical per-batch loop.
        """
        n_keys = keys.size
        bins = np.empty(n_keys, dtype=np.int64)
        loads = self.loads
        mb = self.micro_batch
        if self.d == 2:
            planes = self.keyed.choices_planar(keys)
            c0, c1 = planes[0], planes[1]
            for lo in range(0, n_keys, mb):
                b0 = c0[lo : lo + mb]
                b1 = c1[lo : lo + mb]
                picks = loads[b1] < loads[b0]
                chosen = np.where(picks, b1, b0)
                np.add.at(loads, chosen, 1)
                bins[lo : lo + mb] = chosen
        else:
            choices = self.keyed.choices(keys)
            for lo in range(0, n_keys, mb):
                block = choices[lo : lo + mb]
                rows = np.arange(block.shape[0])
                picks = np.argmin(loads[block], axis=1)
                chosen = block[rows, picks]
                np.add.at(loads, chosen, 1)
                bins[lo : lo + mb] = chosen
        return bins

    def insert_many(self, keys) -> np.ndarray:
        """Place a batch of keys; returns the assigned bin per key.

        Each key joins the least-loaded of its ``d`` hashed candidates
        under micro-batch snapshot semantics (see module docstring).
        Re-inserted live keys keep their existing bin.
        """
        keys = _as_key_array(keys)
        n_keys = keys.size
        if n_keys == 0:
            return np.empty(0, dtype=np.int64)
        with self._metrics.timer("service.insert_seconds"):
            bins = self._place(keys)
            # One kernel call for the whole batch: set-default resolves
            # reinserts (and intra-batch duplicates) to the stored bin,
            # whose speculative increment is then rolled back.
            prev = self._map.insert_many(keys, bins)
            reins = prev != NOT_FOUND
            if reins.any():
                np.subtract.at(self.loads, bins[reins], 1)
                self.counters["reinserts"] += int(np.count_nonzero(reins))
                bins = np.where(reins, prev, bins)
        self.counters["inserts"] += n_keys
        self._ops += n_keys
        self._metrics.increment("service.inserts", n_keys)
        self._maybe_sample()
        return bins

    def delete_many(self, keys, *, missing: str = "ignore") -> np.ndarray:
        """Remove a batch of keys; returns the freed bin per key.

        Absent keys yield bin ``-1`` and are counted under
        ``delete_misses``; with ``missing="error"`` the call raises
        :class:`KeyError` instead, leaving the store untouched.
        """
        if missing not in ("ignore", "error"):
            raise ConfigurationError(
                f"missing must be 'ignore' or 'error', got {missing!r}"
            )
        keys = _as_key_array(keys)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        with self._metrics.timer("service.delete_seconds"):
            if missing == "error":
                found = self._map.lookup_many(keys)
                absent = np.flatnonzero(found == NOT_FOUND)
                if absent.size:
                    raise KeyError(int(keys[absent[0]]))
            out = self._map.delete_many(keys)
            freed = out != NOT_FOUND
            n_freed = int(np.count_nonzero(freed))
            if n_freed:
                np.subtract.at(self.loads, out[freed], 1)
            misses = keys.size - n_freed
        self.counters["deletes"] += n_freed
        self.counters["delete_misses"] += misses
        self._ops += keys.size
        self._metrics.increment("service.deletes", n_freed)
        if misses:
            self._metrics.increment("service.delete_misses", misses)
        self._maybe_sample()
        return out

    def lookup_many(self, keys) -> np.ndarray:
        """Current bin per key (``-1`` for keys not in the store)."""
        keys = _as_key_array(keys)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        with self._metrics.timer("service.lookup_seconds"):
            out = self._map.lookup_many(keys)
            misses = int(np.count_nonzero(out == NOT_FOUND))
        self.counters["lookups"] += keys.size
        self.counters["lookup_misses"] += misses
        self._ops += keys.size
        self._metrics.increment("service.lookups", keys.size)
        self._maybe_sample()
        return out

    # -- SLO sampling -----------------------------------------------------

    def record_slo(self) -> dict:
        """Record one tail-SLO sample onto the metrics time series.

        Returns the sample (also appended to ``metrics`` under
        ``self.series``): total ops so far, live size, max load, and the
        p50/p99/p999 of the per-bin load vector.
        """
        p50, p99, p999 = self.load_quantiles()
        sample = {
            "ops": self._ops,
            "size": self.size,
            "max_load": int(self.loads.max(initial=0)),
            "p50": p50,
            "p99": p99,
            "p999": p999,
        }
        self._metrics.sample(self.series, **sample)
        self._ops_at_last_sample = self._ops
        return sample

    def _maybe_sample(self) -> None:
        if (
            self.slo_interval is not None
            and self._ops - self._ops_at_last_sample >= self.slo_interval
        ):
            self.record_slo()

    # -- shard merge ------------------------------------------------------

    def merge(self, other: "KeyedStore") -> "KeyedStore":
        """Combine two shard states into a new store (associative).

        Both stores must be built from the same hash functions (equal
        scheme fingerprints) and hold disjoint key sets; loads, the
        assignment, and the operation counters are combined.  The SLO
        series is not merged — the merged store starts a fresh one.
        """
        if not isinstance(other, KeyedStore):
            raise ConfigurationError(
                f"can only merge KeyedStore, got {type(other).__name__}"
            )
        if (self.n_bins, self.d) != (other.n_bins, other.d):
            raise ConfigurationError(
                f"geometry mismatch: ({self.n_bins}, {self.d}) vs "
                f"({other.n_bins}, {other.d})"
            )
        if self.keyed.fingerprint() != other.keyed.fingerprint():
            raise ConfigurationError(
                "cannot merge shards built from different hash functions "
                f"({self.keyed.describe()} vs {other.keyed.describe()})"
            )
        merged = KeyedStore(
            self.n_bins,
            self.d,
            scheme=self.keyed,
            micro_batch=self.micro_batch,
            backend=self.backend,
            expected_keys=self.size + other.size,
            slo_interval=self.slo_interval,
            metrics=self._metrics,
            series=self.series,
        )
        for shard in (self, other):
            keys, bins = shard._map.items()
            if keys.size:
                prior = merged._map.insert_many(keys, bins)
                if (prior != NOT_FOUND).any():
                    raise ConfigurationError(
                        "cannot merge shards with overlapping keys"
                    )
        np.add(self.loads, other.loads, out=merged.loads)
        for name in _COUNTERS:
            merged.counters[name] = self.counters[name] + other.counters[name]
        merged._ops = self._ops + other._ops
        return merged
