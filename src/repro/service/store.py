"""The keyed store: live multiple-choice placement addressed by key.

:class:`KeyedStore` is the repo's production-shaped façade over the
paper's process: items are placed by *hashing their keys* through a keyed
double-hashing scheme (two hash computations per key — the paper's pitch),
per-bin load state is live, and insert/delete/lookup streams are processed
in vectorized batches.

Placement semantics
-------------------
``insert_many`` places each batch in **micro-batches** (default 2048
keys): the candidate loads of one micro-batch are gathered against a
single load snapshot, every key joins its least-loaded candidate
(ties to the lowest-index choice, i.e. asymmetric/left — deterministic),
and the increments are applied before the next micro-batch.  Keys inside
one micro-batch therefore do not see each other's placements — the batch
model of balanced allocations, which is exactly how concurrent routers
behave between state syncs.  ``micro_batch=1`` recovers the strictly
sequential process.  Given the hash functions (``seed``) and the input
stream, placement is fully deterministic: no per-ball randomness exists
anywhere on this path.

State
-----
Per-bin loads are a flat int64 vector; the key→bin assignment lives in a
dict updated in bulk per batch.  Re-inserting a live key is idempotent
(the existing placement wins; the speculative increment is rolled back and
counted under ``reinserts``).  Deleting an absent key is counted under
``delete_misses`` and reported as bin ``-1`` (or raises, with the store
untouched, under ``missing="error"``).

Tail-SLO observability
----------------------
:meth:`KeyedStore.record_slo` pushes a ``{ops, size, max_load, p50, p99,
p999}`` sample onto a :class:`repro.metrics.MetricsRegistry` time series
(p-quantiles are over the per-bin load vector — the tail a load balancer's
SLO cares about).  Pass ``slo_interval`` to sample automatically every so
many operations.

Sharding
--------
:meth:`KeyedStore.merge` combines two stores built from the *same* hash
functions (checked via scheme fingerprints) over disjoint key sets into a
new store — deterministic and associative, so shard states can be merged
in any grouping (see :mod:`repro.service.shard`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.keyed import KeyedChoices, _as_key_array
from repro.hashing.registry import make_keyed_scheme
from repro.metrics import MetricsRegistry, global_registry

__all__ = ["KeyedStore", "DEFAULT_MICRO_BATCH"]

#: Keys placed per load-snapshot micro-batch.  Large enough that the
#: per-micro-batch numpy dispatch overhead amortizes (the gather/argmin/
#: scatter costs ~3 ops of this length), small enough that the snapshot
#: staleness stays far below one ball per bin for the default geometries.
DEFAULT_MICRO_BATCH = 2048

_COUNTERS = (
    "inserts",
    "deletes",
    "lookups",
    "reinserts",
    "delete_misses",
    "lookup_misses",
)


class KeyedStore:
    """A keyed dictionary/router placing items via keyed double hashing.

    Parameters
    ----------
    n_bins:
        Number of bins (servers, slots).
    d:
        Choices per key (the paper's headline case is 2).
    scheme:
        Registry name resolved via
        :func:`repro.hashing.registry.make_keyed_scheme` (explicit >
        ``REPRO_SCHEME`` env > ``"double"`` when ``None``), or an existing
        :class:`~repro.hashing.keyed.KeyedChoices` instance (shards share
        one instance so their placements are mergeable).
    seed, rng:
        Construction-time randomness for the hash-family draws; at most
        one may be given, and both are ignored when ``scheme`` is already
        an instance.
    micro_batch:
        Keys per load-snapshot micro-batch (see module docstring).
    slo_interval:
        Record an SLO sample automatically every this many operations
        (``None`` — the default — samples only on explicit
        :meth:`record_slo` calls).
    metrics:
        Registry receiving counters/timers/SLO series (global by default).
    series:
        Name of the SLO time series in the registry.
    """

    def __init__(
        self,
        n_bins: int,
        d: int = 2,
        *,
        scheme: str | KeyedChoices | None = None,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        micro_batch: int = DEFAULT_MICRO_BATCH,
        slo_interval: int | None = None,
        metrics: MetricsRegistry | None = None,
        series: str = "service.slo",
    ) -> None:
        if micro_batch < 1:
            raise ConfigurationError(
                f"micro_batch must be positive, got {micro_batch}"
            )
        if slo_interval is not None and slo_interval < 1:
            raise ConfigurationError(
                f"slo_interval must be positive, got {slo_interval}"
            )
        if isinstance(scheme, KeyedChoices):
            if scheme.n_bins != n_bins or scheme.d != d:
                raise ConfigurationError(
                    f"scheme geometry ({scheme.n_bins}, {scheme.d}) does not "
                    f"match store geometry ({n_bins}, {d})"
                )
            self.keyed = scheme
        else:
            self.keyed = make_keyed_scheme(scheme, n_bins, d, rng=rng, seed=seed)
        self.n_bins = int(n_bins)
        self.d = int(d)
        self.micro_batch = int(micro_batch)
        self.slo_interval = slo_interval
        self.series = series
        self.loads = np.zeros(self.n_bins, dtype=np.int64)
        self._assign: dict[int, int] = {}
        self._metrics = metrics if metrics is not None else global_registry()
        self.counters: dict[str, int] = dict.fromkeys(_COUNTERS, 0)
        self._ops = 0
        self._ops_at_last_sample = 0

    # -- inspection -------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of live keys."""
        return len(self._assign)

    @property
    def ops(self) -> int:
        """Total operations processed (inserts + deletes + lookups)."""
        return self._ops

    def load_quantiles(self, qs=(0.5, 0.99, 0.999)) -> tuple[float, ...]:
        """Quantiles of the per-bin load vector (the SLO tail view)."""
        return tuple(float(q) for q in np.quantile(self.loads, qs))

    def describe(self) -> str:
        """One-line description used in reports."""
        return (
            f"KeyedStore({self.keyed.describe()}, size={self.size}, "
            f"micro_batch={self.micro_batch})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()

    # -- operations -------------------------------------------------------

    def insert_many(self, keys) -> np.ndarray:
        """Place a batch of keys; returns the assigned bin per key.

        Each key joins the least-loaded of its ``d`` hashed candidates
        under micro-batch snapshot semantics (see module docstring).
        Re-inserted live keys keep their existing bin.
        """
        keys = _as_key_array(keys)
        n_keys = keys.size
        if n_keys == 0:
            return np.empty(0, dtype=np.int64)
        with self._metrics.timer("service.insert_seconds"):
            choices = self.keyed.choices(keys)
            bins = np.empty(n_keys, dtype=np.int64)
            loads = self.loads
            mb = self.micro_batch
            for lo in range(0, n_keys, mb):
                block = choices[lo : lo + mb]
                rows = np.arange(block.shape[0])
                picks = np.argmin(loads[block], axis=1)
                chosen = block[rows, picks]
                np.add.at(loads, chosen, 1)
                bins[lo : lo + mb] = chosen
            # Bulk dict update; live keys keep their old bin and the
            # speculative increment above is rolled back.
            assign = self._assign
            get = assign.get
            out = bins.tolist()
            undo: list[int] = []
            for i, (k, b) in enumerate(zip(keys.tolist(), out)):
                prev = get(k)
                if prev is None:
                    assign[k] = b
                else:
                    undo.append(b)
                    out[i] = prev
            if undo:
                np.subtract.at(loads, undo, 1)
                self.counters["reinserts"] += len(undo)
        self.counters["inserts"] += n_keys
        self._ops += n_keys
        self._metrics.increment("service.inserts", n_keys)
        self._maybe_sample()
        return np.asarray(out, dtype=np.int64)

    def delete_many(self, keys, *, missing: str = "ignore") -> np.ndarray:
        """Remove a batch of keys; returns the freed bin per key.

        Absent keys yield bin ``-1`` and are counted under
        ``delete_misses``; with ``missing="error"`` the call raises
        :class:`KeyError` instead, leaving the store untouched.
        """
        if missing not in ("ignore", "error"):
            raise ConfigurationError(
                f"missing must be 'ignore' or 'error', got {missing!r}"
            )
        keys = _as_key_array(keys)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        with self._metrics.timer("service.delete_seconds"):
            assign = self._assign
            key_list = keys.tolist()
            if missing == "error":
                for k in key_list:
                    if k not in assign:
                        raise KeyError(k)
            pop = assign.pop
            out = [pop(k, -1) for k in key_list]
            freed = [b for b in out if b >= 0]
            if freed:
                np.subtract.at(self.loads, freed, 1)
            misses = len(out) - len(freed)
        self.counters["deletes"] += len(freed)
        self.counters["delete_misses"] += misses
        self._ops += keys.size
        self._metrics.increment("service.deletes", len(freed))
        if misses:
            self._metrics.increment("service.delete_misses", misses)
        self._maybe_sample()
        return np.asarray(out, dtype=np.int64)

    def lookup_many(self, keys) -> np.ndarray:
        """Current bin per key (``-1`` for keys not in the store)."""
        keys = _as_key_array(keys)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        with self._metrics.timer("service.lookup_seconds"):
            get = self._assign.get
            out = [get(k, -1) for k in keys.tolist()]
            misses = out.count(-1)
        self.counters["lookups"] += keys.size
        self.counters["lookup_misses"] += misses
        self._ops += keys.size
        self._metrics.increment("service.lookups", keys.size)
        self._maybe_sample()
        return np.asarray(out, dtype=np.int64)

    # -- SLO sampling -----------------------------------------------------

    def record_slo(self) -> dict:
        """Record one tail-SLO sample onto the metrics time series.

        Returns the sample (also appended to ``metrics`` under
        ``self.series``): total ops so far, live size, max load, and the
        p50/p99/p999 of the per-bin load vector.
        """
        p50, p99, p999 = self.load_quantiles()
        sample = {
            "ops": self._ops,
            "size": self.size,
            "max_load": int(self.loads.max(initial=0)),
            "p50": p50,
            "p99": p99,
            "p999": p999,
        }
        self._metrics.sample(self.series, **sample)
        self._ops_at_last_sample = self._ops
        return sample

    def _maybe_sample(self) -> None:
        if (
            self.slo_interval is not None
            and self._ops - self._ops_at_last_sample >= self.slo_interval
        ):
            self.record_slo()

    # -- shard merge ------------------------------------------------------

    def merge(self, other: "KeyedStore") -> "KeyedStore":
        """Combine two shard states into a new store (associative).

        Both stores must be built from the same hash functions (equal
        scheme fingerprints) and hold disjoint key sets; loads, the
        assignment, and the operation counters are combined.  The SLO
        series is not merged — the merged store starts a fresh one.
        """
        if not isinstance(other, KeyedStore):
            raise ConfigurationError(
                f"can only merge KeyedStore, got {type(other).__name__}"
            )
        if (self.n_bins, self.d) != (other.n_bins, other.d):
            raise ConfigurationError(
                f"geometry mismatch: ({self.n_bins}, {self.d}) vs "
                f"({other.n_bins}, {other.d})"
            )
        if self.keyed.fingerprint() != other.keyed.fingerprint():
            raise ConfigurationError(
                "cannot merge shards built from different hash functions "
                f"({self.keyed.describe()} vs {other.keyed.describe()})"
            )
        merged = KeyedStore(
            self.n_bins,
            self.d,
            scheme=self.keyed,
            micro_batch=self.micro_batch,
            slo_interval=self.slo_interval,
            metrics=self._metrics,
            series=self.series,
        )
        merged._assign = {**self._assign, **other._assign}
        if len(merged._assign) != self.size + other.size:
            raise ConfigurationError(
                "cannot merge shards with overlapping keys"
            )
        np.add(self.loads, other.loads, out=merged.loads)
        for name in _COUNTERS:
            merged.counters[name] = self.counters[name] + other.counters[name]
        merged._ops = self._ops + other._ops
        return merged
