"""Fused numpy placement kernel: out-of-order speculative commits.

Why a window
------------
Sequential balanced allocation cannot be vectorized along the ball axis
naively — ball ``t+1`` must see ball ``t``'s placement.  What *is* legal
is committing any ball whose candidate set is disjoint from the candidate
sets of **all earlier pending balls**: its placement cannot be affected by
their (unknown) outcomes, and it cannot affect theirs.  The kernel keeps a
window of up to ``window`` pending balls per trial and, each pass:

1. gathers the packed candidates of every window slot (flat ``np.take``
   with precomputed plane offsets, everything into preallocated scratch);
2. computes each slot's pick against the *frozen* loads via packed
   integer keys (``load << 31 | tie_key << cidx_bits | flat_bin`` — the
   minimum's low bits are the chosen bin, see :mod:`repro.kernels.generate`);
3. detects conflicts with an *ordered stamp* scatter: candidate indices
   are written in globally descending window order, so each touched bin
   ends up stamped with the **minimum window position** that references
   it; a slot violates iff some candidate's stamp precedes it;
4. commits every non-violating real slot (they are pairwise disjoint, so
   a plain fancy ``+= 1`` is exact), compacts the violators to the front
   of the window, and refills from the ball stream.

The first window slot never violates, so every pass commits at least one
ball per unfinished trial — no livelock.  The committed result is a pure
function of the drawn candidate/tie arrays and equals the sequential
reference bit-for-bit (property- and case-tested in ``tests/kernels``).

Epoch stamps
------------
The stamp table is never cleared between passes: stamp values are written
relative to a ``base`` that *decreases* by ``window`` each pass, so any
stale entry compares as "no violation".  ``base`` is re-armed with one
``fill`` every ~2**10 passes.

Commit throughput is ``≈ n/d²`` balls per trial-pass (the expected count
of prefix balls with pairwise-disjoint candidate sets), which makes total
kernel cost nearly window-invariant past ``window ≈ 64``;
:func:`choose_window` picks a value on that plateau.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.generate import KernelLayout

__all__ = ["NumpyBackend", "choose_window"]

_STAMP_FAR = np.int32(1 << 30)
_STAMP_REARM = np.int32(1 << 20)


def choose_window(n_bins: int, d: int) -> int:
    """Pending-window size: on the commits-per-pass plateau (see above).

    Giant tables get a wider window: commits-per-pass stays far from the
    conflict regime, and the larger batches amortize the per-pass fixed
    numpy dispatch cost.  Window size affects scheduling only, never
    results (the commit schedule is order-independent).
    """
    cap = 1024 if n_bins >= (1 << 18) else 192
    return min(cap, max(16, n_bins // (d * d * 6)))


class NumpyWorkspace:
    """Preallocated scratch reused across kernel invocations.

    Geometry-keyed on ``(d, trials, window, bins_p)``; per-call buffers
    (window state, plane offsets) are cheap and rebuilt each ``place``.
    ``dtype`` is the packed-candidate dtype (int32 narrow, int64 wide);
    only the gathered packed values need it — indices and loads stay
    int32 (wide layouts cap the flat index at 31 bits).
    """

    def __init__(
        self, d: int, trials: int, window: int, bins_p: int, dtype=np.int32
    ) -> None:
        self.d = d
        self.trials = trials
        self.window = window
        self.bins_p = bins_p
        plane = (d, trials, window)
        row = (trials, window)
        self.gidx = np.empty(plane, np.int32)
        self.pcg = np.empty(plane, dtype)
        self.cidx = np.empty(plane, np.int32)
        self.kv = np.empty(plane, np.int32)
        self.key = np.empty(plane, np.int64)
        self.sc = np.empty(plane, np.int32)
        self.scat = np.empty((window, trials, d), np.int32)
        self.svals = np.empty((window, trials, d), np.int32)
        self.scmin = np.empty(row, np.int32)
        self.kmin = np.empty(row, np.int64)
        self.chosen = np.empty(row, np.int64)
        self.viol = np.empty(row, bool)
        self.commit = np.empty(row, bool)
        self.keep = np.empty(row, bool)
        self.win = np.empty(row, np.int32)
        self.win2 = np.empty(row, np.int32)
        self.stamp = np.full(trials * bins_p, _STAMP_FAR, np.int32)
        self.base = _STAMP_FAR - np.int32(window)
        self.u_ix = np.arange(window, dtype=np.int32)[None, :]
        self.u_desc = np.arange(window - 1, -1, -1, dtype=np.int32)[:, None, None]
        self.trow = np.arange(trials, dtype=np.int32) * np.int32(window)


class NumpyBackend:
    """The always-available fused numpy backend."""

    name = "numpy"

    def make_workspace(
        self, *, d: int, trials: int, window: int, bins_p: int, dtype=np.int32
    ) -> NumpyWorkspace:
        """Allocate the scratch buffers for this geometry (reused per chunk)."""
        return NumpyWorkspace(d, trials, window, bins_p, dtype)

    def place(
        self,
        loads: np.ndarray,
        pc: np.ndarray,
        *,
        layout: KernelLayout,
        workspace: NumpyWorkspace,
    ) -> int:
        """Place every ball of ``pc`` into the flat ``loads`` table.

        ``loads`` is the int32 ``(trials * bins_p,)`` padded table;
        ``pc`` the packed ``(d, trials, steps + 1)`` candidates.  Returns
        the number of kernel passes (for instrumentation).
        """
        ws = workspace
        d, trials, steps_p = pc.shape
        steps = steps_p - 1
        window = ws.window
        cidx_mask = layout.cidx_mask
        kmul = np.int64(1) << np.int64(layout.key_shift)
        pcflat = pc.reshape(-1)
        # Flat offsets of each (plane, trial) row inside pcflat; cheap to
        # rebuild per call since steps may differ on the final superblock.
        goff = (
            (np.arange(d, dtype=np.int32) * np.int32(trials * steps_p))[:, None, None]
            + (np.arange(trials, dtype=np.int32) * np.int32(steps_p))[None, :, None]
        )
        win = ws.win
        win[:] = np.minimum(np.arange(window, dtype=np.int32), steps)[None, :]
        win2 = ws.win2
        cursor = np.full(trials, min(window, steps), dtype=np.int32)
        stamp = ws.stamp
        placed = 0
        total = trials * steps
        passes = 0
        while placed < total:
            passes += 1
            if ws.base < _STAMP_REARM:
                stamp.fill(_STAMP_FAR)
                ws.base = _STAMP_FAR - np.int32(window)
            # 1. gather the window's packed candidates
            np.add(win[None, :, :], goff, out=ws.gidx)
            pcflat.take(ws.gidx, out=ws.pcg, mode="clip")
            np.bitwise_and(ws.pcg, cidx_mask, out=ws.cidx, casting="unsafe")
            # 2. picks against frozen loads via packed keys
            loads.take(ws.cidx, out=ws.kv, mode="clip")
            np.multiply(ws.kv, kmul, out=ws.key)
            ws.key += ws.pcg
            np.copyto(ws.kmin, ws.key[0])
            for j in range(1, d):
                np.minimum(ws.kmin, ws.key[j], out=ws.kmin)
            np.bitwise_and(ws.kmin, cidx_mask, out=ws.chosen)
            # 3. ordered stamp round: each touched bin ends up holding the
            # minimum window position that references it this pass
            np.copyto(ws.scat, ws.cidx.transpose(2, 1, 0)[::-1])
            np.add(ws.u_desc, ws.base, out=ws.svals)
            stamp[ws.scat.reshape(-1)] = ws.svals.reshape(-1)
            stamp.take(ws.cidx, out=ws.sc, mode="clip")
            np.copyto(ws.scmin, ws.sc[0])
            for j in range(1, d):
                np.minimum(ws.scmin, ws.sc[j], out=ws.scmin)
            ws.scmin -= ws.base
            np.less(ws.scmin, ws.u_ix, out=ws.viol)
            ws.base -= np.int32(window)
            # 4. commit the disjoint slots, keep the violators
            real = win != steps
            np.logical_and(ws.viol, real, out=ws.keep)
            np.logical_xor(real, ws.keep, out=ws.commit)
            cb = ws.chosen[ws.commit]
            loads[cb] += 1
            placed += cb.size
            # compact kept slots to the window front (order-preserving)
            # and refill the tail from each trial's ball cursor
            nk_t, nk_c = ws.keep.nonzero()
            cnt = np.bincount(nk_t, minlength=trials).astype(np.int32)
            starts = np.zeros(trials + 1, np.int32)
            np.cumsum(cnt, out=starts[1:])
            rank = np.arange(nk_t.size, dtype=np.int32) - starts[nk_t]
            np.add(ws.u_ix, cursor[:, None] - cnt[:, None], out=win2)
            np.minimum(win2, steps, out=win2)
            win2.reshape(-1)[ws.trow[nk_t] + rank] = win[nk_t, nk_c]
            win, win2 = win2, win
            np.minimum(cursor + (window - cnt), steps, out=cursor)
        ws.win, ws.win2 = win, win2
        return passes
