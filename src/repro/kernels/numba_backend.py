"""Optional Numba JIT placement backend.

Consumes exactly the same packed-candidate arrays as the numpy backend
(:mod:`repro.kernels.generate`) and walks them with the plain sequential
loop the process definition describes, compiled with ``@njit(cache=True)``.
Because the numpy backend's out-of-order commit schedule is a pure
function of those arrays and provably order-independent, the two backends
are **bit-identical** for the same seed (asserted in
``tests/kernels/test_equivalence.py`` whenever numba is installed).

Numba is an optional dependency: importing this module never raises.
When the import fails, :data:`NUMBA_AVAILABLE` is ``False`` and backend
resolution in :mod:`repro.kernels` falls back to numpy, logging a
``backend-fallback`` metrics event.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.generate import KernelLayout

__all__ = ["NUMBA_AVAILABLE", "NUMBA_IMPORT_ERROR", "NumbaBackend"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
    NUMBA_IMPORT_ERROR: Exception | None = None
except Exception as _exc:  # ImportError, or a broken install
    njit = None
    NUMBA_AVAILABLE = False
    NUMBA_IMPORT_ERROR = _exc


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True)
    def _place_sequential(
        loads: np.ndarray, pc: np.ndarray, cidx_mask: np.int64, key_shift: np.int64
    ) -> None:
        d, trials, steps_p = pc.shape
        steps = steps_p - 1
        for t in range(trials):
            for b in range(steps):
                best_key = np.int64(0x7FFFFFFFFFFFFFFF)
                best_ci = np.int64(0)
                for j in range(d):
                    p = np.int64(pc[j, t, b])
                    ci = p & cidx_mask
                    key = (np.int64(loads[ci]) << key_shift) + p
                    if key < best_key:
                        best_key = key
                        best_ci = ci
                loads[best_ci] += 1


class NumbaBackend:
    """JIT-compiled whole-block sequential loop (requires numba)."""

    name = "numba"

    def make_workspace(
        self, *, d: int, trials: int, window: int, bins_p: int, dtype=np.int32
    ) -> None:
        """Return ``None``: the sequential loop carries no scratch state."""
        return None

    def place(
        self,
        loads: np.ndarray,
        pc: np.ndarray,
        *,
        layout: KernelLayout,
        workspace: None = None,
    ) -> int:
        """Place every ball of ``pc`` into ``loads``; returns 1 (one pass)."""
        if not NUMBA_AVAILABLE:  # pragma: no cover - registry prevents this
            raise RuntimeError("numba backend selected but numba is not importable")
        _place_sequential(loads, pc, layout.cidx_mask, np.int64(layout.key_shift))
        return 1
