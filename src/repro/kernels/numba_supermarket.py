"""Optional Numba JIT backend for the supermarket CTMC kernel.

Implements exactly the draw-stream and state-evolution contract of
:mod:`repro.kernels.supermarket` — same lazily refilled blocks, same fused
event coin, same dense busy set with slot swap-remove, same sequential
scalar float accumulation — so it is **bit-identical** to the reference
loop and the numpy backend for the same seed, and leaves the generator in
the same state (asserted in ``tests/kernels/test_supermarket_backends.py``
whenever numba is installed).

Structure: all randomness and array growth stay in the Python driver
(:func:`simulate_supermarket_numba`); the ``@njit`` advance function runs
events against flat preallocated arrays and returns a *reason code*
whenever it needs the driver — more draws, more FIFO slots, more tail
levels, termination, or a stability abort.  Resource checks happen
**before** an event commits any state, so re-entry replays the pending
event exactly.  Per-queue FIFOs are intrusive linked lists over one slab
of job slots (``job_time`` / ``job_next`` plus per-queue head/tail and a
free list), grown geometrically up to ``max_total_jobs + 2`` slots.

Numba is an optional dependency: importing this module never raises, and
backend resolution falls back to numpy (with a logged event) when it is
absent — see :mod:`repro.kernels.numba_backend`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StabilityError
from repro.hashing.base import ChoiceScheme
from repro.kernels.blockrng import (
    CHOICE_BLOCK,
    EVENT_BLOCK,
    TIE_BITS,
    refill_choice_block,
    refill_event_block,
)
from repro.kernels.numba_backend import NUMBA_AVAILABLE, njit
from repro.kernels.supermarket import (
    SupermarketStats,
    stability_message,
)

__all__ = ["simulate_supermarket_numba"]

# Reason codes returned by the JIT advance function.
_DONE = 0  # terminating event reached (not committed)
_NEED_EVENTS = 1  # exponential/uniform block exhausted
_NEED_CHOICES = 2  # choice/tie block exhausted
_NEED_SLOTS = 3  # job-slot free list exhausted
_UNSTABLE = 4  # population exceeded max_total_jobs (committed)
_NEED_LEVELS = 5  # tail-histogram arrays too short

# istate layout (int64 scalars shuttled across the JIT boundary).
_JOBS, _BUSY, _SCOUNT, _NARR, _NDEP, _EVI, _CHI, _FREE = range(8)
# fstate layout (float64 scalars).
_NOW, _SSUM, _AREA, _BUSYAREA = range(4)


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True)
    def _advance(
        expo,
        evu,
        choices,
        ties,
        qlen,
        busy,
        job_time,
        job_next,
        q_head,
        q_tail,
        counts,
        tail_area,
        last_t,
        fstate,
        istate,
        ar,
        sim_time,
        burn_in,
        d,
        max_jobs,
        track_tails,
        left_ties,
    ):
        n_events = expo.shape[0]
        n_choices = choices.shape[0] // d
        n_levels = counts.shape[0]
        now = fstate[_NOW]
        s_sum = fstate[_SSUM]
        area = fstate[_AREA]
        busy_area = fstate[_BUSYAREA]
        jobs = istate[_JOBS]
        b = istate[_BUSY]
        s_count = istate[_SCOUNT]
        n_arr = istate[_NARR]
        n_dep = istate[_NDEP]
        ev_i = istate[_EVI]
        ch_i = istate[_CHI]
        free_head = istate[_FREE]
        while True:
            if ev_i >= n_events:
                reason = _NEED_EVENTS
                break
            rate = ar + b
            t_new = now + expo[ev_i] / rate
            if t_new >= sim_time:
                reason = _DONE
                break
            x = evu[ev_i] * rate
            if x < ar:  # arrival (checks first: nothing committed yet)
                if ch_i >= n_choices:
                    reason = _NEED_CHOICES
                    break
                if free_head < 0:
                    reason = _NEED_SLOTS
                    break
                base = ch_i * d
                tgt = choices[base]
                if left_ties:
                    bk = qlen[tgt]
                    for j in range(1, d):
                        q = choices[base + j]
                        k = qlen[q]
                        if k < bk:
                            bk = k
                            tgt = q
                else:
                    bk = (qlen[tgt] << TIE_BITS) | ties[base]
                    for j in range(1, d):
                        q = choices[base + j]
                        k = (qlen[q] << TIE_BITS) | ties[base + j]
                        if k < bk:
                            bk = k
                            tgt = q
                if track_tails and qlen[tgt] + 2 >= n_levels:
                    reason = _NEED_LEVELS
                    break
                # Commit.
                start = now if now > burn_in else burn_in
                if t_new > start:
                    dt = t_new - start
                    area += jobs * dt
                    busy_area += b * dt
                now = t_new
                ev_i += 1
                ch_i += 1
                slot = free_head
                free_head = job_next[slot]
                job_time[slot] = now
                job_next[slot] = -1
                if q_tail[tgt] < 0:
                    q_head[tgt] = slot
                else:
                    job_next[q_tail[tgt]] = slot
                q_tail[tgt] = slot
                if qlen[tgt] == 0:
                    busy[b] = tgt
                    b += 1
                qlen[tgt] += 1
                jobs += 1
                n_arr += 1
                if track_tails:
                    new_len = qlen[tgt]
                    lev = new_len - 1
                    s = last_t[lev]
                    if s < burn_in:
                        s = burn_in
                    if now > s:
                        tail_area[lev] += counts[lev] * (now - s)
                    last_t[lev] = now
                    s = last_t[new_len]
                    if s < burn_in:
                        s = burn_in
                    if now > s:
                        tail_area[new_len] += counts[new_len] * (now - s)
                    last_t[new_len] = now
                    counts[lev] -= 1
                    counts[new_len] += 1
                if jobs > max_jobs:
                    reason = _UNSTABLE
                    break
            else:  # departure from busy slot int(x - ar)
                start = now if now > burn_in else burn_in
                if t_new > start:
                    dt = t_new - start
                    area += jobs * dt
                    busy_area += b * dt
                now = t_new
                ev_i += 1
                j = int(x - ar)
                if j >= b:
                    j = b - 1
                q = busy[j]
                slot = q_head[q]
                t_arr = job_time[slot]
                q_head[q] = job_next[slot]
                if q_head[q] < 0:
                    q_tail[q] = -1
                job_next[slot] = free_head
                free_head = slot
                if t_arr >= burn_in:
                    s_count += 1
                    s_sum += now - t_arr
                qlen[q] -= 1
                if qlen[q] == 0:
                    b -= 1
                    busy[j] = busy[b]
                jobs -= 1
                n_dep += 1
                if track_tails:
                    old_len = qlen[q] + 1
                    lev = old_len - 1
                    s = last_t[lev]
                    if s < burn_in:
                        s = burn_in
                    if now > s:
                        tail_area[lev] += counts[lev] * (now - s)
                    last_t[lev] = now
                    s = last_t[old_len]
                    if s < burn_in:
                        s = burn_in
                    if now > s:
                        tail_area[old_len] += counts[old_len] * (now - s)
                    last_t[old_len] = now
                    counts[old_len] -= 1
                    counts[lev] += 1
        fstate[_NOW] = now
        fstate[_SSUM] = s_sum
        fstate[_AREA] = area
        fstate[_BUSYAREA] = busy_area
        istate[_JOBS] = jobs
        istate[_BUSY] = b
        istate[_SCOUNT] = s_count
        istate[_NARR] = n_arr
        istate[_NDEP] = n_dep
        istate[_EVI] = ev_i
        istate[_CHI] = ch_i
        istate[_FREE] = free_head
        return reason


def simulate_supermarket_numba(
    scheme: ChoiceScheme,
    lam: float,
    sim_time: float,
    burn_in: float,
    rng: np.random.Generator,
    max_total_jobs: int,
    track_tails: bool,
    left_ties: bool,
) -> SupermarketStats:
    """Drive the JIT advance loop; bit-identical to the reference oracle.

    Arguments are pre-validated by
    :func:`repro.kernels.run_supermarket_kernel`, which only dispatches
    here when numba resolved successfully.
    """
    if not NUMBA_AVAILABLE:  # pragma: no cover - registry prevents this
        raise RuntimeError("numba backend selected but numba is not importable")
    n = scheme.n_bins
    d = scheme.d
    ar = lam * n

    qlen = np.zeros(n, dtype=np.int64)
    busy = np.zeros(n, dtype=np.int64)
    cap = int(min(max_total_jobs + 2, max(4 * n, 1024)))
    job_time = np.zeros(cap, dtype=np.float64)
    job_next = np.arange(1, cap + 1, dtype=np.int64)
    job_next[-1] = -1
    q_head = np.full(n, -1, dtype=np.int64)
    q_tail = np.full(n, -1, dtype=np.int64)
    levels = 64 if track_tails else 1
    counts = np.zeros(levels, dtype=np.int64)
    tail_area = np.zeros(levels, dtype=np.float64)
    last_t = np.zeros(levels, dtype=np.float64)
    if track_tails:
        counts[0] = n

    fstate = np.zeros(4, dtype=np.float64)
    istate = np.zeros(8, dtype=np.int64)
    istate[_EVI] = EVENT_BLOCK  # cursors start exhausted: lazy refills
    istate[_CHI] = CHOICE_BLOCK
    expo = np.zeros(EVENT_BLOCK, dtype=np.float64)
    evu = np.zeros(EVENT_BLOCK, dtype=np.float64)
    choices = np.zeros(CHOICE_BLOCK * d, dtype=np.int64)
    ties = np.zeros(CHOICE_BLOCK * d, dtype=np.int64)

    while True:
        reason = _advance(
            expo,
            evu,
            choices,
            ties,
            qlen,
            busy,
            job_time,
            job_next,
            q_head,
            q_tail,
            counts,
            tail_area,
            last_t,
            fstate,
            istate,
            ar,
            sim_time,
            burn_in,
            d,
            max_total_jobs,
            track_tails,
            left_ties,
        )
        if reason == _DONE:
            break
        if reason == _NEED_EVENTS:
            expo, evu = refill_event_block(rng)
            istate[_EVI] = 0
        elif reason == _NEED_CHOICES:
            cb, tb = refill_choice_block(scheme, rng)
            choices = np.ascontiguousarray(cb).reshape(-1)
            ties = tb.reshape(-1)
            istate[_CHI] = 0
        elif reason == _NEED_SLOTS:
            new_cap = int(min(cap * 2, max_total_jobs + 2))
            job_time = np.concatenate(
                [job_time, np.zeros(new_cap - cap, dtype=np.float64)]
            )
            nxt = np.arange(cap + 1, new_cap + 1, dtype=np.int64)
            nxt[-1] = istate[_FREE]  # chain onto the (empty) old free list
            job_next = np.concatenate([job_next, nxt])
            istate[_FREE] = cap
            cap = new_cap
        elif reason == _NEED_LEVELS:
            counts = np.concatenate([counts, np.zeros_like(counts)])
            tail_area = np.concatenate([tail_area, np.zeros_like(tail_area)])
            last_t = np.concatenate([last_t, np.zeros_like(last_t)])
        else:  # _UNSTABLE
            raise StabilityError(
                stability_message(max_total_jobs, float(fstate[_NOW]))
            )

    # Final flush at sim_time (the terminating event was never committed).
    now = float(fstate[_NOW])
    area = float(fstate[_AREA])
    busy_area = float(fstate[_BUSYAREA])
    jobs = int(istate[_JOBS])
    b = int(istate[_BUSY])
    start = now if now > burn_in else burn_in
    if sim_time > start:
        dt = sim_time - start
        area += jobs * dt
        busy_area += b * dt
    tails_out = None
    if track_tails:
        for lev in range(len(counts)):
            s = float(last_t[lev])
            if s < burn_in:
                s = burn_in
            if sim_time > s:
                tail_area[lev] += counts[lev] * (sim_time - s)
            last_t[lev] = sim_time
        tails_out = tail_area
    return SupermarketStats(
        s_count=int(istate[_SCOUNT]),
        s_sum=float(fstate[_SSUM]),
        area=area,
        busy_area=busy_area,
        n_arrivals=int(istate[_NARR]),
        n_departures=int(istate[_NDEP]),
        tail_area=tails_out,
    )
